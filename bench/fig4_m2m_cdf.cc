// Figure 4: distribution of CCT/TcL and CCT/TpL on many-to-many coflows
// for Sunflow and Solstice (B = 1 Gbps, δ = 10 ms).
//
// Paper: Sunflow CCT/TcL on M2M is 1.10 mean / 1.46 p95 (bounded by 2);
// Solstice 2.81 mean / 7.70 p95. All Sunflow CCT/TpL < 4.5 (Lemma 2 with
// α = 1.25).
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/intra_runner.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  bench::BenchSession session(
      argc, argv,
      {.name = "fig4_m2m_cdf",
       .help = "Figure 4: M2M CDFs of CCT over bounds",
       .banner = "Figure 4 — CCT over lower bounds on many-to-many coflows",
       .engine_default = ""});
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();
  const std::string& engine = session.engine();

  IntraRunConfig cfg;
  cfg.threads = threads;
  cfg.engine = engine;
  TextTable table("M2M summary");
  table.SetHeader({"series", "mean", "p50", "p95", "max"});
  for (auto algorithm :
       {IntraAlgorithm::kSunflow, IntraAlgorithm::kSolstice}) {
    const auto run = RunIntra(w.trace, algorithm, cfg);
    std::vector<double> over_tcl, over_tpl;
    for (const auto& rec : run.records) {
      if (rec.category != CoflowCategory::kManyToMany) continue;
      over_tcl.push_back(rec.CctOverTcl());
      over_tpl.push_back(rec.CctOverTpl());
    }
    for (const auto& [name, data] :
         {std::pair{std::string(" CCT/TcL"), &over_tcl},
          std::pair{std::string(" CCT/TpL"), &over_tpl}}) {
      const auto s = stats::Summarize(*data);
      table.AddRow({run.algorithm + name, TextTable::Fmt(s.mean, 3),
                    TextTable::Fmt(s.p50, 3), TextTable::Fmt(s.p95, 3),
                    TextTable::Fmt(s.max, 2)});
    }
    PrintCdf(std::cout, run.algorithm + " CCT/TcL (M2M)", over_tcl);
    PrintCdf(std::cout, run.algorithm + " CCT/TpL (M2M)", over_tpl);
    PrintCdfAscii(std::cout, run.algorithm + " CCT/TcL (M2M)", over_tcl, 1.0,
                  8.0);
  }
  table.AddFootnote("paper: Sunflow CCT/TcL 1.10 mean / 1.46 p95 (< 2)");
  table.AddFootnote("paper: Solstice CCT/TcL 2.81 mean / 7.70 p95");
  table.Print(std::cout);
  return session.Finish();
}
