// Figure 6: intra-Coflow sensitivity to the reconfiguration delay δ,
// normalized per coflow to the δ = 10 ms baseline (Sunflow, B = 1 Gbps).
//
// Paper: average (p95) normalized CCT is 5.71 (13.12) at δ = 100 ms,
// 1.00 (1.00) at 10 ms, 0.65 (0.99) at 1 ms, 0.61 (0.99) at 100 µs and
// 0.61 (0.99) at 10 µs — a faster-than-1-ms switch buys almost nothing.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/intra_runner.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  bench::BenchSession session(
      argc, argv,
      {.name = "fig6_delta_intra",
       .help = "Figure 6: intra sensitivity to delta",
       .banner = "Figure 6 — intra-Coflow CCT vs delta (normalized to 10ms)",
       .engine_default = ""});
  const bool include_solstice = session.flags().GetBool(
      "solstice", true, "also sweep Solstice for the §5.3.1 comparison");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();
  const std::string& engine = session.engine();

  const std::vector<std::pair<std::string, Time>> deltas = {
      {"100ms", Millis(100)}, {"10ms", Millis(10)},   {"1ms", Millis(1)},
      {"100us", Micros(100)}, {"10us", Micros(10)},
  };

  std::vector<IntraAlgorithm> algorithms = {IntraAlgorithm::kSunflow};
  if (include_solstice) algorithms.push_back(IntraAlgorithm::kSolstice);

  for (auto algorithm : algorithms) {
    // Baseline run at 10 ms.
    IntraRunConfig base_cfg;
    base_cfg.delta = Millis(10);
    base_cfg.threads = threads;
    base_cfg.engine = engine;
    const auto base = RunIntra(w.trace, algorithm, base_cfg);
    std::map<CoflowId, double> base_cct;
    for (const auto& rec : base.records) base_cct[rec.id] = rec.cct;

    TextTable table(base.algorithm +
                    " CCT w.r.t. 10ms baseline (per-coflow normalized)");
    table.SetHeader({"delta", "average", "p95"});
    for (const auto& [label, delta] : deltas) {
      IntraRunConfig cfg;
      cfg.delta = delta;
      cfg.threads = threads;
      cfg.engine = engine;
      const auto run = RunIntra(w.trace, algorithm, cfg);
      std::vector<double> normalized;
      for (const auto& rec : run.records) {
        const double b = base_cct.at(rec.id);
        if (b > 0) normalized.push_back(rec.cct / b);
      }
      table.AddRow({label, TextTable::Fmt(stats::Mean(normalized), 2),
                    TextTable::Fmt(stats::Percentile(normalized, 95), 2)});
    }
    if (algorithm == IntraAlgorithm::kSunflow) {
      table.AddFootnote(
          "paper (Sunflow): avg 5.71 / 1.00 / 0.65 / 0.61 / 0.61; p95 13.12 "
          "/ 1.00 / 0.99 / 0.99 / 0.99");
    }
    table.Print(std::cout);
  }
  return session.Finish();
}
