// K-core OCS sweep: joint plane-aware planning vs the Sunflow-per-core
// baseline on the same K-plane fabric, K ∈ {1, 2, 4, 8} by default.
//
// For each K the fabric is FabricSpec::Uniform(K, δ, B/K) — the aggregate
// capacity is held constant across the sweep (pass --split_bandwidth=false
// for K full-rate planes instead), so the CCT columns isolate the
// scheduling question: how much does pinning each coflow to one core (the
// K-core literature's O(K)-style baseline, sched/kcore.h) cost against
// letting the planner pick the earliest feasible plane per reservation?
// Every replay is traced into a memory sink and audited (obs/audit.h) —
// plane-exclusivity and δ-carryover violations fail the bench, so the
// committed baseline doubles as a physical-consistency gate for the
// K-core execution path.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/fabric.h"
#include "core/policy.h"
#include "obs/audit.h"
#include "obs/trace_sink.h"
#include "runtime/thread_pool.h"
#include "sim/engine/scenario.h"

namespace {

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sunflow;
  bench::BenchSession session(
      argc, argv,
      {.name = "fig_kcore",
       .help = "K-core OCS: joint plane-aware planning vs Sunflow-per-core"});
  const std::string k_csv = session.flags().GetString(
      "k_list", "1,2,4,8", "comma-separated plane counts to sweep");
  const double bandwidth_gbps = session.flags().GetDouble(
      "bandwidth_gbps", 1.0, "aggregate fabric bandwidth in Gbit/s");
  const double delta_ms = session.flags().GetDouble(
      "delta_ms", 10.0, "circuit reconfiguration delay per plane, ms");
  const bool split_bandwidth = session.flags().GetBool(
      "split_bandwidth", true,
      "true: each of the K planes runs at B/K (constant aggregate "
      "capacity); false: K full-rate planes");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();

  const auto policy = MakeShortestFirstPolicy();
  runtime::ThreadPool pool(session.threads());
  const Bandwidth bandwidth = Gbps(bandwidth_gbps);
  const Time delta = Millis(delta_ms);

  TextTable table(std::string("joint vs per-core CCT (") +
                  (split_bandwidth ? "aggregate capacity held constant"
                                   : "K full-rate planes") +
                  ")");
  table.SetHeader({"K", "joint total CCT", "percore total CCT",
                   "percore/joint", "joint makespan", "percore makespan"});

  std::size_t audit_violations = 0;
  std::vector<obs::Event> last_joint_events;
  for (const int k : ParseIntList(k_csv)) {
    engine::EngineConfig ec;
    ec.sunflow.bandwidth = bandwidth;
    ec.sunflow.delta = delta;
    ec.sunflow.fabric = FabricSpec::Uniform(
        k, delta, split_bandwidth ? bandwidth / k : bandwidth);
    ec.plan_pool = &pool;

    double totals[2] = {0, 0};
    double makespans[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      ec.kcore_joint = mode == 0;
      obs::MemorySink sink;
      ec.sink = &sink;
      const engine::EngineResult result =
          engine::ScenarioRegistry::Global().Run("kcore", w.trace,
                                                 policy.get(), ec);
      for (const auto& [id, cct] : result.cct) totals[mode] += cct;
      makespans[mode] = result.makespan;

      const obs::AuditReport audit = obs::AuditTrace(sink.events());
      for (const obs::AuditViolation& v : audit.violations) {
        std::fprintf(stderr, "K=%d %s audit [%s] %s\n", k,
                     mode == 0 ? "joint" : "percore", v.invariant.c_str(),
                     v.detail.c_str());
      }
      audit_violations += audit.violations.size();
      // Every run is traced through a private sink for the audit. With
      // --trace_out the session tracer gets the joint replay of the last
      // K in the sweep — one physically consistent run, so the exported
      // file itself passes `trace_inspect --audit` (concatenating all
      // 2·|K| replays would re-admit every coflow per run).
      if (mode == 0) last_joint_events = sink.events();
    }

    table.AddRow({std::to_string(k), TextTable::Fmt(totals[0], 2),
                  TextTable::Fmt(totals[1], 2),
                  TextTable::Fmt(totals[0] > 0 ? totals[1] / totals[0] : 0, 4),
                  TextTable::Fmt(makespans[0], 2),
                  TextTable::Fmt(makespans[1], 2)});
    const std::string prefix = "kcore.K" + std::to_string(k);
    session.AddManifestValue(prefix + ".joint_total_cct", totals[0]);
    session.AddManifestValue(prefix + ".percore_total_cct", totals[1]);
    session.AddManifestValue(
        prefix + ".percore_over_joint",
        totals[0] > 0 ? totals[1] / totals[0] : 0);
  }
  table.AddFootnote(
      "every replay audited for plane-exclusivity / delta-carryover; "
      "violations fail the bench");
  table.Print(std::cout);
  session.AddManifestValue("kcore.audit_violations",
                           static_cast<double>(audit_violations));
  if (session.sink() != nullptr) {
    for (const obs::Event& e : last_joint_events) session.sink()->OnEvent(e);
  }

  if (audit_violations > 0) {
    std::fprintf(stderr, "FAILED: %zu audit violation(s)\n",
                 audit_violations);
    session.Finish();
    return 1;
  }
  return session.Finish();
}
