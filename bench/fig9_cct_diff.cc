// Figure 9: per-coflow CCT difference between Sunflow (circuit switched)
// and Varys / Aalo (packet switched) at the original trace load, as a
// function of the coflow's TpL.
//
// Paper: small-TpL coflows finish slower under Sunflow (circuit setup
// penalty); large-TpL coflows often finish *quicker* than under Varys
// (which strands bandwidth between reschedules) and Aalo (which starves
// long subflows).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/csv_export.h"
#include "exp/inter_runner.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  bench::BenchSession session(
      argc, argv,
      {.name = "fig9_cct_diff",
       .help = "Figure 9: per-coflow delta-CCT vs TpL",
       .banner = "Figure 9 — Sunflow CCT minus Varys/Aalo CCT by TpL",
       .engine_default = "circuit"});
  const double delta_ms =
      session.flags().GetDouble("delta_ms", 10.0, "δ in ms");
  const std::string csv_out = session.flags().GetString(
      "csv_out", "", "write per-coflow (tpl, dcct_varys, dcct_aalo) here");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();
  const std::string& engine = session.engine();

  InterRunConfig cfg;
  cfg.delta = Millis(delta_ms);
  cfg.engine = engine;
  cfg.threads = threads;  // Sunflow/Varys/Aalo replays fan out
  cfg.timeline = session.timeline();  // samples the Sunflow circuit replay
  const auto cmp = RunInterComparison(w.trace, cfg);

  // Bucket coflows by TpL quintile and report ΔCCT stats per bucket.
  std::vector<std::pair<double, CoflowId>> by_tpl;
  for (const auto& [id, tpl] : cmp.tpl) by_tpl.push_back({tpl, id});
  std::sort(by_tpl.begin(), by_tpl.end());

  for (const auto& [name, other] :
       {std::pair{std::string("Varys"), &cmp.varys},
        std::pair{std::string("Aalo"), &cmp.aalo}}) {
    TextTable table("ΔCCT = Sunflow − " + name + " (seconds), by TpL bucket");
    table.SetHeader({"TpL bucket", "count", "mean Δ", "p50 Δ", "frac Δ<0"});
    const std::size_t buckets = 5;
    const std::size_t per = (by_tpl.size() + buckets - 1) / buckets;
    for (std::size_t b = 0; b < buckets; ++b) {
      std::vector<double> diffs;
      double lo = 1e30, hi = 0;
      for (std::size_t i = b * per;
           i < std::min(by_tpl.size(), (b + 1) * per); ++i) {
        const auto [tpl, id] = by_tpl[i];
        diffs.push_back(cmp.sunflow.at(id) - other->at(id));
        lo = std::min(lo, tpl);
        hi = std::max(hi, tpl);
      }
      if (diffs.empty()) continue;
      table.AddRow({TextTable::Fmt(lo, 2) + "s–" + TextTable::Fmt(hi, 2) +
                        "s",
                    std::to_string(diffs.size()),
                    TextTable::Fmt(stats::Mean(diffs), 3),
                    TextTable::Fmt(stats::Median(diffs), 3),
                    TextTable::FmtPct(
                        stats::FractionAtMost(diffs, -1e-12), 0)});
    }
    const auto all = InterComparison::Differences(cmp.sunflow, *other);
    table.AddFootnote("overall: mean Δ = " +
                      TextTable::Fmt(stats::Mean(all), 3) + "s, " +
                      TextTable::FmtPct(stats::FractionAtMost(all, -1e-12),
                                        0) +
                      " of coflows faster under Sunflow");
    table.AddFootnote(
        "paper shape: Δ>0 for small TpL (circuit setup), increasingly Δ<0 "
        "for large TpL");
    table.Print(std::cout);
  }

  if (!csv_out.empty()) {
    CsvColumn tpl_col{"tpl_seconds", {}}, dv{"delta_vs_varys", {}},
        da{"delta_vs_aalo", {}};
    for (const auto& [id, tpl] : cmp.tpl) {
      tpl_col.values.push_back(tpl);
      dv.values.push_back(cmp.sunflow.at(id) - cmp.varys.at(id));
      da.values.push_back(cmp.sunflow.at(id) - cmp.aalo.at(id));
    }
    WriteCsv(csv_out, {tpl_col, dv, da});
    std::cout << "per-coflow data written to " << csv_out << "\n";
  }
  return session.Finish();
}
