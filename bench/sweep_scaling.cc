// Microbench for the parallel sweep engine (src/runtime): runs the §5.3
// intra-Coflow sweep serially and at increasing thread counts, reports
// wall-clock speedup, and checks that every record is bit-identical to
// the serial run — the engine's determinism contract, measured.
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "exp/intra_runner.h"
#include "runtime/thread_pool.h"

namespace {

using namespace sunflow;
using namespace sunflow::exp;

double TimeRun(const Trace& trace, IntraRunConfig cfg, int repeat,
               IntraRunResult* out) {
  double best = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto start = std::chrono::steady_clock::now();
    IntraRunResult run = RunIntra(trace, IntraAlgorithm::kSunflow, cfg);
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
    if (out) *out = std::move(run);
  }
  return best;
}

bool SameRecords(const std::vector<IntraRecord>& a,
                 const std::vector<IntraRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const IntraRecord &x = a[i], &y = b[i];
    // Exact comparison on purpose: the contract is bit-identical output,
    // not approximately-equal output.
    if (x.id != y.id || x.category != y.category ||
        x.num_flows != y.num_flows || x.bytes != y.bytes ||
        x.pavg != y.pavg || x.tcl != y.tcl || x.tpl != y.tpl ||
        x.cct != y.cct || x.switching_count != y.switching_count)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sunflow::bench::BenchSession session(
      argc, argv,
      {.name = "sweep_scaling",
       .help = "Sweep-engine scaling microbench",
       .banner = "Parallel sweep scaling — RunIntra across thread counts"});
  const auto repeat = session.flags().GetInt(
      "repeat", 3, "timed repetitions per point (best-of)");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int max_threads = session.threads();
  bench::BenchTracer& tracer = session.tracer();

  IntraRunConfig cfg;

  // Serial reference: pool size 1 means no worker threads at all, so this
  // is the schedule every parallel run must reproduce byte for byte.
  IntraRunResult serial;
  const double serial_ms =
      TimeRun(w.trace, cfg, static_cast<int>(repeat), &serial);

  std::vector<int> points = {1};
  for (int t = 2; t < max_threads; t *= 2) points.push_back(t);
  if (max_threads > 1) points.push_back(max_threads);

  TextTable table("RunIntra wall clock vs --threads (best of " +
                  std::to_string(repeat) + ")");
  table.SetHeader({"threads", "wall (ms)", "speedup", "identical"});
  bool all_identical = true;
  double best_speedup = 1.0;
  for (int t : points) {
    cfg.threads = t;
    IntraRunResult run;
    const double ms = t == 1 ? serial_ms
                             : TimeRun(w.trace, cfg, static_cast<int>(repeat),
                                       &run);
    const bool same = t == 1 || SameRecords(serial.records, run.records);
    all_identical = all_identical && same;
    const double speedup = serial_ms / ms;
    best_speedup = std::max(best_speedup, speedup);
    table.AddRow({std::to_string(t), TextTable::Fmt(ms, 1),
                  TextTable::Fmt(speedup, 2) + "x", same ? "yes" : "NO"});
  }
  table.AddFootnote("identical = records bit-equal to the --threads=1 run");
  table.Print(std::cout);
  std::printf("\nbest speedup %.2fx over serial, determinism %s\n",
              best_speedup, all_identical ? "held" : "VIOLATED");

  // One final traced run so --trace_out / --metrics_csv capture a
  // parallel execution (events are merged in task order, so the stream
  // matches a serial run too).
  if (tracer.enabled()) {
    cfg.threads = max_threads;
    cfg.sink = tracer.sink();
    RunIntra(w.trace, IntraAlgorithm::kSunflow, cfg);
  }
  session.AddManifestValue("best_speedup", best_speedup);
  session.Finish();
  return all_identical ? 0 : 1;
}
