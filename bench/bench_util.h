// Shared workload construction and session plumbing for the bench
// binaries.
//
// Every bench accepts the same flags so experiments are reproducible and
// scalable: --coflows, --ports, --seed, --perturb, --threads, and (where
// meaningful) --bandwidth_gbps / --delta_ms. The default workload matches §5.1: a
// 526-coflow, 150-port one-hour trace with ±5% flow-size perturbation
// floored at 1 MB. Pass --trace=<file> to use a real coflow-benchmark file
// (e.g. FB2010-1Hr-150-0.txt) instead of the synthetic trace.
//
// BenchSession below is the one-stop preamble/epilogue: flags, workload,
// --threads/--engine, the event tracer, and the run manifest every bench
// emits (obs/manifest.h). A bench main is
//   bench::BenchSession s(argc, argv, {.name = "fig5_switching",
//                                      .help = "...", .banner = "..."});
//   ... register bench-specific flags via s.flags() ...
//   if (s.done()) return 0;   // --help path; else prints the banner
//   ... run, using s.workload()/s.threads()/s.engine()/s.sink() ...
//   return s.Finish();
// Finish (or the destructor, which also runs when the bench throws)
// flushes the trace, reports metrics, and writes the manifest.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "common/cli.h"
#include "exp/csv_export.h"
#include "sim/engine/scenario.h"
#include "obs/attribution.h"
#include "obs/chrome_trace.h"
#include "obs/jsonl.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "obs/trace_sink.h"
#include "runtime/thread_pool.h"
#include "trace/coflow.h"
#include "trace/generator.h"
#include "trace/parser.h"

namespace sunflow::bench {

struct Workload {
  Trace trace;
  std::string description;
  std::uint64_t seed = 0;  ///< the --seed flag (for run manifests)
};

inline Workload LoadWorkload(CliFlags& flags) {
  const std::string path = flags.GetString(
      "trace", "", "coflow-benchmark trace file (empty = synthetic)");
  const auto coflows =
      flags.GetInt("coflows", 526, "synthetic trace: number of coflows");
  const auto ports = flags.GetInt("ports", 150, "synthetic trace: fabric ports");
  const auto seed = flags.GetInt("seed", 20161212, "synthetic trace seed");
  const double perturb =
      flags.GetDouble("perturb", 0.05, "flow-size perturbation fraction");

  Workload w;
  w.seed = static_cast<std::uint64_t>(seed);
  if (!path.empty()) {
    w.trace = ParseCoflowBenchmarkFile(path);
    w.description = "trace file " + path;
  } else {
    SyntheticTraceConfig cfg;
    cfg.num_coflows = static_cast<int>(coflows);
    cfg.num_ports = static_cast<PortId>(ports);
    cfg.seed = static_cast<std::uint64_t>(seed);
    w.trace = GenerateSyntheticTrace(cfg);
    w.description = "synthetic FB-like trace (" + std::to_string(coflows) +
                    " coflows, " + std::to_string(ports) + " ports, seed " +
                    std::to_string(seed) + ")";
  }
  if (perturb > 0) {
    w.trace = PerturbFlowSizes(w.trace, perturb, MB(1),
                               static_cast<std::uint64_t>(seed) + 1);
    w.description += ", ±" + std::to_string(static_cast<int>(perturb * 100)) +
                     "% perturbation";
  }
  return w;
}

/// The shared --threads flag: worker threads for the parallel sweep
/// engine (src/runtime). The default uses every hardware thread; results
/// are bit-identical at any value — deterministic sharding plus the
/// sharded-merge obs contract mean --threads only changes wall-clock
/// time, never output. Pass --threads=1 for a serial run.
inline int Threads(CliFlags& flags) {
  const auto n = flags.GetInt(
      "threads", 0,
      "worker threads for parallel sweeps (0 = all hardware threads; "
      "output is identical at any value)");
  return n <= 0 ? runtime::HardwareConcurrency() : static_cast<int>(n);
}

/// The shared --engine flag: which registered simulation-kernel scenario
/// (sim/engine) replays the trace. Inter benches default to "circuit"
/// (the paper's Sunflow replay); intra benches default to "" — the direct
/// single-coflow planner path, with a name opting into the kernel. The
/// help text lists the registry so new scenarios are discoverable without
/// touching the benches.
inline std::string Engine(CliFlags& flags, const std::string& def) {
  std::string names;
  for (const auto& [name, desc] : engine::ScenarioRegistry::Global().List()) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return flags.GetString(
      "engine", def,
      "simulation kernel scenario (registered: " + names +
          (def.empty() ? "; empty = direct planner path)" : ")"));
}

/// Standard preamble: handles --help, prints the workload banner.
inline bool HandleHelp(CliFlags& flags, const std::string& what) {
  if (flags.help_requested()) {
    flags.PrintHelp(what);
    return true;
  }
  return false;
}

inline void Banner(const std::string& title, const Workload& w) {
  if (w.description.empty()) {
    std::printf("### %s\n\n", title.c_str());
  } else {
    std::printf("### %s\n### workload: %s\n\n", title.c_str(),
                w.description.c_str());
  }
}

/// Structured-tracing and metrics support shared by the bench binaries.
/// Pass --trace_out=<file> to record the run's events: a ".jsonl" suffix
/// writes the compact line format (inspect with sunflow_trace_inspect),
/// anything else writes Chrome trace-event JSON (open in Perfetto or
/// chrome://tracing). Without the flag, sink() is null and tracing
/// compiles down to a skipped branch at every emission site. --metrics
/// prints the global registry at exit; --metrics_csv=<file> dumps it as
/// CSV. Construct before HandleHelp so the flags appear in --help.
///
/// Durability: Finish() is idempotent and the destructor calls it, so the
/// buffered trace reaches disk even when the bench exits early or unwinds
/// through an exception (a destructor-context failure is reported to
/// stderr instead of throwing).
class BenchTracer {
 public:
  explicit BenchTracer(CliFlags& flags)
      : path_(flags.GetString(
            "trace_out", "",
            "write a structured event trace (.jsonl = compact lines, "
            "otherwise Chrome trace JSON)")),
        print_metrics_(
            flags.GetBool("metrics", false, "print the metrics registry")),
        metrics_csv_(flags.GetString(
            "metrics_csv", "", "write the metrics registry as CSV")) {
    // Fail before the run, not after: a typo'd path should not cost a
    // full bench execution.
    if (!path_.empty() && !std::ofstream(path_)) {
      throw std::runtime_error("cannot open trace output " + path_);
    }
  }

  BenchTracer(const BenchTracer&) = delete;
  BenchTracer& operator=(const BenchTracer&) = delete;

  ~BenchTracer() {
    try {
      Finish();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench tracer: %s\n", e.what());
    }
  }

  obs::TraceSink* sink() { return path_.empty() ? nullptr : &sink_; }
  bool enabled() const { return !path_.empty(); }
  const std::vector<obs::Event>& events() const { return sink_.events(); }

  /// Writes the buffered events (if tracing was requested) and reports
  /// where they went. Idempotent: the first call wins, later calls (and
  /// the destructor) are no-ops.
  void Finish() {
    if (path_.empty() || finished_) return;
    finished_ = true;
    if (path_.size() >= 6 &&
        path_.compare(path_.size() - 6, 6, ".jsonl") == 0) {
      std::ofstream f(path_);
      if (!f) throw std::runtime_error("cannot open " + path_);
      obs::WriteJsonl(f, sink_.events());
      f.flush();
      if (!f) throw std::runtime_error("failed writing " + path_);
    } else {
      obs::WriteChromeTraceFile(path_, sink_.events());
    }
    std::printf("\nwrote %zu trace events to %s\n", sink_.events().size(),
                path_.c_str());
  }

  /// Dumps the global metrics registry as requested by --metrics /
  /// --metrics_csv. Call once at the end of the bench.
  void ReportMetrics() const {
    if (print_metrics_) {
      std::printf("\n--- metrics ---\n");
      obs::GlobalMetrics().WriteText(std::cout);
    }
    if (!metrics_csv_.empty()) {
      exp::WriteMetricsCsv(metrics_csv_, obs::GlobalMetrics().Merged());
      std::printf("wrote metrics to %s\n", metrics_csv_.c_str());
    }
  }

 private:
  std::string path_;
  bool print_metrics_ = false;
  bool finished_ = false;
  std::string metrics_csv_;
  obs::MemorySink sink_;
};

struct BenchOptions {
  std::string name = {};    ///< tool name: manifest + default manifest file
  std::string help = {};    ///< --help description
  std::string banner = {};  ///< printed banner (defaults to `help`)
  /// Default for the shared --engine flag; nullopt skips registering it.
  std::optional<std::string> engine_default = std::nullopt;
  bool use_threads = true;
  bool load_workload = true;
};

/// The standard bench preamble/epilogue as one RAII object: parses flags,
/// loads the workload, registers --threads/--engine, owns the tracer and
/// the run manifest (obs/manifest.h), handles --help, prints the banner.
/// Finish() — or the destructor, including during exception unwind —
/// flushes the trace, reports metrics, finalizes the manifest (wall time,
/// peak RSS, merged metrics + phase-profile snapshot, profiler-overhead
/// estimate) and writes it to --manifest_out (default
/// "<name>.manifest.json"; empty skips).
class BenchSession {
 public:
  BenchSession(int argc, char** argv, BenchOptions opts)
      : opts_(std::move(opts)),
        flags_(argc, argv),
        manifest_(obs::RunManifest::Begin(opts_.name, argc, argv)) {
    if (opts_.load_workload) workload_ = LoadWorkload(flags_);
    if (opts_.use_threads) threads_ = Threads(flags_);
    if (opts_.engine_default.has_value())
      engine_ = Engine(flags_, *opts_.engine_default);
    tracer_.emplace(flags_);
    // Telemetry-timeline flags (obs/timeline.h). Registered always so they
    // show in --help; the sampler exists only when an output path was
    // given, so default runs skip every sampling branch.
    timeline_path_ = flags_.GetString(
        "timeline_out", "",
        "write the sim-time telemetry timeline (.jsonl = JSON lines, "
        "otherwise CSV); also folds util.*/idle.*/replan.*/slo.* "
        "aggregates into the run manifest");
    const double timeline_dt_ms = flags_.GetDouble(
        "timeline_dt_ms", 100.0, "timeline sample window, sim milliseconds");
    const auto timeline_cap = flags_.GetInt(
        "timeline_cap", 4096,
        "max retained timeline samples; at the cap the buffer halves "
        "resolution (adjacent-sample merge) so memory stays bounded");
    const double timeline_slo_us = flags_.GetDouble(
        "timeline_slo_us", 0.0,
        "replan wall-latency SLO budget in microseconds (0 = no SLO)");
    const bool timeline_wall = flags_.GetBool(
        "timeline_wall", false,
        "include host-dependent columns (replan wall latency, memo hits) "
        "in the timeline export; off keeps the file byte-identical at any "
        "--threads");
    if (!timeline_path_.empty()) {
      if (!std::ofstream(timeline_path_)) {
        throw std::runtime_error("cannot open timeline output " +
                                 timeline_path_);
      }
      obs::TimelineConfig tc;
      tc.dt = timeline_dt_ms / 1e3;
      tc.cap = static_cast<std::size_t>(std::max<long long>(timeline_cap, 2));
      tc.slo_budget_us = timeline_slo_us;
      tc.include_wall = timeline_wall;
      timeline_.emplace(tc);
    }
    manifest_path_ = flags_.GetString(
        "manifest_out", opts_.name + ".manifest.json",
        "write the self-describing run manifest JSON (empty = skip)");
    if (flags_.GetBool("no_profile", false,
                       "disable the phase profiler for this run")) {
      obs::SetProfilingEnabled(false);
    }
  }

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  ~BenchSession() {
    try {
      Finish();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench session: %s\n", e.what());
    }
  }

  /// Call once after registering bench-specific flags: on --help, prints
  /// the help text (covering the just-registered flags) and returns true
  /// — main should return 0 and the manifest is suppressed. Otherwise
  /// prints the workload banner and returns false.
  bool done() {
    if (flags_.help_requested()) {
      flags_.PrintHelp(opts_.help);
      done_ = true;
      return true;
    }
    Banner(opts_.banner.empty() ? opts_.help : opts_.banner, workload_);
    return false;
  }

  CliFlags& flags() { return flags_; }
  const Workload& workload() const { return workload_; }
  const Trace& trace() const { return workload_.trace; }
  int threads() const { return threads_; }
  const std::string& engine() const { return engine_; }
  BenchTracer& tracer() { return *tracer_; }
  obs::TraceSink* sink() { return tracer_->sink(); }
  /// The telemetry sampler, or null when --timeline_out was not given.
  /// Wire it into EngineConfig::timeline / InterRunConfig::timeline for
  /// the run that should be charted.
  obs::TimelineSampler* timeline() {
    return timeline_.has_value() ? &*timeline_ : nullptr;
  }
  /// Bench-specific scalars surfaced in the manifest's "run" object.
  void AddManifestValue(const std::string& key, double value) {
    manifest_.extra[key] = value;
  }
  /// For benches that skip LoadWorkload but still have a seed to record.
  void SetManifestSeed(std::uint64_t seed) { workload_.seed = seed; }

  /// Epilogue: trace flush + metrics report + manifest emission. Runs at
  /// most once; returns 0 so a bench can `return session.Finish();`.
  int Finish() {
    if (finished_ || done_) return 0;
    finished_ = true;
    tracer_->Finish();
    tracer_->ReportMetrics();
    // When the run was traced, fold the CCT attribution aggregates into
    // the manifest so a regression in δ overhead or contention shows up
    // in bench_compare's informational rows without re-reading the trace.
    if (tracer_->enabled() && !tracer_->events().empty()) {
      const obs::AttributionReport attr = obs::Attribute(tracer_->events());
      if (attr.total_cct > 0) {
        AddManifestValue("attr.delta_fraction", attr.delta_fraction);
        AddManifestValue("attr.contention_fraction", attr.contention_fraction);
        AddManifestValue("attr.transmit_fraction", attr.transmit_fraction);
        AddManifestValue("attr.starvation_fraction", attr.starvation_fraction);
      }
    }
    if (timeline_.has_value() && !timeline_->empty()) {
      std::ofstream f(timeline_path_);
      if (!f) {
        throw std::runtime_error("cannot open " + timeline_path_);
      }
      if (timeline_path_.size() >= 6 &&
          timeline_path_.compare(timeline_path_.size() - 6, 6, ".jsonl") ==
              0) {
        timeline_->WriteJsonl(f);
      } else {
        timeline_->WriteCsv(f);
      }
      f.flush();
      if (!f) throw std::runtime_error("failed writing " + timeline_path_);
      std::printf("wrote %zu timeline samples to %s\n",
                  timeline_->samples().size(), timeline_path_.c_str());
      // The aggregates come from exact accumulators, not the decimated
      // samples; the wall-latency ones are host-dependent, which is fine
      // here — manifests are never byte-diffed (bench_compare treats
      // non-rate extras as informational rows).
      const obs::TimelineSummary ts = timeline_->Summarize();
      AddManifestValue("util.mean", ts.util_mean);
      AddManifestValue("util.p99", ts.util_p99);
      AddManifestValue("idle.fraction", ts.idle_fraction);
      AddManifestValue("engine.active_fraction", ts.engine_active_fraction);
      AddManifestValue("timeline.samples",
                       static_cast<double>(ts.samples));
      AddManifestValue("timeline.decimations",
                       static_cast<double>(ts.decimations));
      AddManifestValue("plan.memo_hit_rate", ts.memo_hit_rate);
      AddManifestValue("pool.peak_groups",
                       static_cast<double>(ts.pool_peak_groups));
      AddManifestValue("replan.p50_us", ts.slo.p50_ns / 1e3);
      AddManifestValue("replan.p99_us", ts.slo.p99_ns / 1e3);
      AddManifestValue("replan.max_us", ts.slo.max_ns / 1e3);
      AddManifestValue("slo.burn", static_cast<double>(ts.slo.burn));
      if (ts.slo.first_breach_t >= 0)
        AddManifestValue("slo.first_breach_t", ts.slo.first_breach_t);
    }
    if (!manifest_path_.empty()) {
      manifest_.seed = workload_.seed;
      manifest_.threads = threads_;
      manifest_.Finalize();
      manifest_.WriteFile(manifest_path_);
      std::printf("wrote run manifest to %s\n", manifest_path_.c_str());
    }
    return 0;
  }

 private:
  BenchOptions opts_;
  CliFlags flags_;
  obs::RunManifest manifest_;
  Workload workload_;
  int threads_ = 1;
  std::string engine_;
  std::optional<BenchTracer> tracer_;
  std::optional<obs::TimelineSampler> timeline_;
  std::string timeline_path_;
  std::string manifest_path_;
  bool done_ = false;
  bool finished_ = false;
};

}  // namespace sunflow::bench
