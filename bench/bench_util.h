// Shared workload construction for the bench binaries.
//
// Every bench accepts the same flags so experiments are reproducible and
// scalable: --coflows, --ports, --seed, --perturb, and (where meaningful)
// --bandwidth_gbps / --delta_ms. The default workload matches §5.1: a
// 526-coflow, 150-port one-hour trace with ±5% flow-size perturbation
// floored at 1 MB. Pass --trace=<file> to use a real coflow-benchmark file
// (e.g. FB2010-1Hr-150-0.txt) instead of the synthetic trace.
#pragma once

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "trace/coflow.h"
#include "trace/generator.h"
#include "trace/parser.h"

namespace sunflow::bench {

struct Workload {
  Trace trace;
  std::string description;
};

inline Workload LoadWorkload(CliFlags& flags) {
  const std::string path = flags.GetString(
      "trace", "", "coflow-benchmark trace file (empty = synthetic)");
  const auto coflows =
      flags.GetInt("coflows", 526, "synthetic trace: number of coflows");
  const auto ports = flags.GetInt("ports", 150, "synthetic trace: fabric ports");
  const auto seed = flags.GetInt("seed", 20161212, "synthetic trace seed");
  const double perturb =
      flags.GetDouble("perturb", 0.05, "flow-size perturbation fraction");

  Workload w;
  if (!path.empty()) {
    w.trace = ParseCoflowBenchmarkFile(path);
    w.description = "trace file " + path;
  } else {
    SyntheticTraceConfig cfg;
    cfg.num_coflows = static_cast<int>(coflows);
    cfg.num_ports = static_cast<PortId>(ports);
    cfg.seed = static_cast<std::uint64_t>(seed);
    w.trace = GenerateSyntheticTrace(cfg);
    w.description = "synthetic FB-like trace (" + std::to_string(coflows) +
                    " coflows, " + std::to_string(ports) + " ports, seed " +
                    std::to_string(seed) + ")";
  }
  if (perturb > 0) {
    w.trace = PerturbFlowSizes(w.trace, perturb, MB(1),
                               static_cast<std::uint64_t>(seed) + 1);
    w.description += ", ±" + std::to_string(static_cast<int>(perturb * 100)) +
                     "% perturbation";
  }
  return w;
}

/// Standard preamble: handles --help, prints the workload banner.
inline bool HandleHelp(CliFlags& flags, const std::string& what) {
  if (flags.help_requested()) {
    flags.PrintHelp(what);
    return true;
  }
  return false;
}

inline void Banner(const std::string& title, const Workload& w) {
  std::printf("### %s\n### workload: %s\n\n", title.c_str(),
              w.description.c_str());
}

}  // namespace sunflow::bench
