// §5.3.1 "Sensitivity to reservation ordering": OrderedPort (default) vs
// Random vs SortedDemand, per-coflow normalized to OrderedPort.
//
// Paper: Random is 0.94x (1.01x p95) of OrderedPort; SortedDemand 0.95x
// (1.01x) — i.e. Sunflow is insensitive to the reservation ordering.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/intra_runner.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  bench::BenchSession session(
      argc, argv,
      {.name = "ordering_sensitivity",
       .help = "Reservation-ordering sensitivity",
       .banner = "§5.3.1 — sensitivity to reservation ordering"});
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();

  IntraRunConfig base_cfg;
  base_cfg.order = ReservationOrder::kOrderedPort;
  base_cfg.threads = threads;
  const auto base = RunIntra(w.trace, IntraAlgorithm::kSunflow, base_cfg);
  std::map<CoflowId, double> base_cct;
  for (const auto& rec : base.records) base_cct[rec.id] = rec.cct;

  TextTable table("Sunflow CCT normalized to OrderedPort");
  table.SetHeader({"ordering", "average", "p95", "max"});
  table.AddRow({"OrderedPort", "1.00", "1.00", "1.00"});
  for (auto order :
       {ReservationOrder::kRandom, ReservationOrder::kSortedDemandDesc,
        ReservationOrder::kSortedDemandAsc}) {
    IntraRunConfig cfg;
    cfg.order = order;
    cfg.shuffle_seed = 7;
    cfg.threads = threads;
    const auto run = RunIntra(w.trace, IntraAlgorithm::kSunflow, cfg);
    std::vector<double> normalized;
    for (const auto& rec : run.records) {
      const double b = base_cct.at(rec.id);
      if (b > 0) normalized.push_back(rec.cct / b);
    }
    table.AddRow({ToString(order), TextTable::Fmt(stats::Mean(normalized), 3),
                  TextTable::Fmt(stats::Percentile(normalized, 95), 3),
                  TextTable::Fmt(stats::Max(normalized), 3)});
  }
  table.AddFootnote(
      "paper: Random 0.94 avg / 1.01 p95; SortedDemand 0.95 / 1.01 — "
      "insensitive");
  table.Print(std::cout);
  return session.Finish();
}
