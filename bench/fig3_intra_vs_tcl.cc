// Figure 3: intra-Coflow CCT vs the circuit-switched lower bound TcL for
// Sunflow and Solstice at B = 1 / 10 / 100 Gbps, δ = 10 ms.
//
// Paper: at 1 Gbps Sunflow CCT/TcL is 1.03x mean / 1.18x p95 (< 2 always);
// Solstice is 1.48x mean / 4.74x p95 (up to 10.63x). Scaling B to 10 and
// 100 Gbps leaves Sunflow at ~1.03-1.04x while Solstice degrades to 2.30x
// and 3.17x mean.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/intra_runner.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  CliFlags flags(argc, argv);
  bench::Workload w = bench::LoadWorkload(flags);
  const double delta_ms = flags.GetDouble("delta_ms", 10.0, "δ in ms");
  const int threads = bench::Threads(flags);
  const std::string engine = bench::Engine(flags, "");
  if (bench::HandleHelp(flags, "Figure 3: CCT vs TcL across link rates"))
    return 0;
  bench::Banner("Figure 3 — CCT/TcL for Sunflow and Solstice", w);

  TextTable table("CCT / TcL (delta = " + TextTable::Fmt(delta_ms, 2) +
                  " ms)");
  table.SetHeader({"B", "algorithm", "mean", "p50", "p95", "max",
                   "frac>=2x"});
  for (double gbps : {1.0, 10.0, 100.0}) {
    for (auto algorithm :
         {IntraAlgorithm::kSunflow, IntraAlgorithm::kSolstice}) {
      IntraRunConfig cfg;
      cfg.bandwidth = Gbps(gbps);
      cfg.delta = Millis(delta_ms);
      cfg.threads = threads;
      cfg.engine = engine;
      const auto run = RunIntra(w.trace, algorithm, cfg);
      const auto ratios =
          run.Collect([](const IntraRecord& r) { return r.CctOverTcl(); });
      const auto s = stats::Summarize(ratios);
      table.AddRow({TextTable::Fmt(gbps, 0) + " Gbps", run.algorithm,
                    TextTable::Fmt(s.mean, 3), TextTable::Fmt(s.p50, 3),
                    TextTable::Fmt(s.p95, 3), TextTable::Fmt(s.max, 2),
                    TextTable::FmtPct(1.0 - stats::FractionAtMost(
                                                ratios, 2.0 - 1e-12))});
    }
  }
  table.AddFootnote(
      "paper @1Gbps: Sunflow 1.03 mean / 1.18 p95; Solstice 1.48 / 4.74");
  table.AddFootnote(
      "paper @10/100Gbps: Solstice mean degrades to 2.30 / 3.17; Sunflow "
      "stays at 1.03 / 1.04");
  table.AddFootnote("Lemma 1 guarantees Sunflow frac>=2x is 0");
  table.Print(std::cout);

  // Per-category optimality at the original 1 Gbps setting (§5.3.1):
  // one-sided coflows achieve exactly TcL under both algorithms.
  IntraRunConfig cfg;
  cfg.delta = Millis(delta_ms);
  cfg.threads = threads;
  cfg.engine = engine;
  TextTable cat("Per-category mean CCT/TcL at 1 Gbps");
  cat.SetHeader({"algorithm", "O2O", "O2M", "M2O", "M2M"});
  for (auto algorithm :
       {IntraAlgorithm::kSunflow, IntraAlgorithm::kSolstice}) {
    const auto run = RunIntra(w.trace, algorithm, cfg);
    double sum[4] = {0, 0, 0, 0};
    int count[4] = {0, 0, 0, 0};
    for (const auto& rec : run.records) {
      sum[static_cast<int>(rec.category)] += rec.CctOverTcl();
      ++count[static_cast<int>(rec.category)];
    }
    std::vector<std::string> row = {run.algorithm};
    for (int k = 0; k < 4; ++k) {
      row.push_back(count[k] > 0 ? TextTable::Fmt(sum[k] / count[k], 3)
                                 : "n/a");
    }
    cat.AddRow(row);
  }
  cat.AddFootnote(
      "paper: O2O/O2M/M2O achieve exactly 1.0 for both algorithms; the gap "
      "is in M2M");
  cat.Print(std::cout);
  return 0;
}
