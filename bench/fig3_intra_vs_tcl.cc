// Figure 3: intra-Coflow CCT vs the circuit-switched lower bound TcL for
// Sunflow and Solstice at B = 1 / 10 / 100 Gbps, δ = 10 ms.
//
// Paper: at 1 Gbps Sunflow CCT/TcL is 1.03x mean / 1.18x p95 (< 2 always);
// Solstice is 1.48x mean / 4.74x p95 (up to 10.63x). Scaling B to 10 and
// 100 Gbps leaves Sunflow at ~1.03-1.04x while Solstice degrades to 2.30x
// and 3.17x mean.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/intra_runner.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  bench::BenchSession session(
      argc, argv,
      {.name = "fig3_intra_vs_tcl",
       .help = "Figure 3: CCT vs TcL across link rates",
       .banner = "Figure 3 — CCT/TcL for Sunflow and Solstice",
       .engine_default = ""});
  const double delta_ms =
      session.flags().GetDouble("delta_ms", 10.0, "δ in ms");
  const bool all_algos = session.flags().GetBool(
      "all_algos", false,
      "also run TMS and Edmonds (slower; fills in their phase profile)");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();
  const std::string& engine = session.engine();

  std::vector<IntraAlgorithm> algorithms = {IntraAlgorithm::kSunflow,
                                            IntraAlgorithm::kSolstice};
  if (all_algos) {
    algorithms.push_back(IntraAlgorithm::kTms);
    algorithms.push_back(IntraAlgorithm::kEdmonds);
  }

  TextTable table("CCT / TcL (delta = " + TextTable::Fmt(delta_ms, 2) +
                  " ms)");
  table.SetHeader({"B", "algorithm", "mean", "p50", "p95", "max",
                   "frac>=2x"});
  for (double gbps : {1.0, 10.0, 100.0}) {
    for (auto algorithm : algorithms) {
      IntraRunConfig cfg;
      cfg.bandwidth = Gbps(gbps);
      cfg.delta = Millis(delta_ms);
      cfg.threads = threads;
      cfg.engine = engine;
      const auto run = RunIntra(w.trace, algorithm, cfg);
      const auto ratios =
          run.Collect([](const IntraRecord& r) { return r.CctOverTcl(); });
      const auto s = stats::Summarize(ratios);
      table.AddRow({TextTable::Fmt(gbps, 0) + " Gbps", run.algorithm,
                    TextTable::Fmt(s.mean, 3), TextTable::Fmt(s.p50, 3),
                    TextTable::Fmt(s.p95, 3), TextTable::Fmt(s.max, 2),
                    TextTable::FmtPct(1.0 - stats::FractionAtMost(
                                                ratios, 2.0 - 1e-12))});
    }
  }
  table.AddFootnote(
      "paper @1Gbps: Sunflow 1.03 mean / 1.18 p95; Solstice 1.48 / 4.74");
  table.AddFootnote(
      "paper @10/100Gbps: Solstice mean degrades to 2.30 / 3.17; Sunflow "
      "stays at 1.03 / 1.04");
  table.AddFootnote("Lemma 1 guarantees Sunflow frac>=2x is 0");
  table.Print(std::cout);

  // Per-category optimality at the original 1 Gbps setting (§5.3.1):
  // one-sided coflows achieve exactly TcL under both algorithms.
  IntraRunConfig cfg;
  cfg.delta = Millis(delta_ms);
  cfg.threads = threads;
  cfg.engine = engine;
  TextTable cat("Per-category mean CCT/TcL at 1 Gbps");
  cat.SetHeader({"algorithm", "O2O", "O2M", "M2O", "M2M"});
  for (auto algorithm : algorithms) {
    const auto run = RunIntra(w.trace, algorithm, cfg);
    double sum[4] = {0, 0, 0, 0};
    int count[4] = {0, 0, 0, 0};
    for (const auto& rec : run.records) {
      sum[static_cast<int>(rec.category)] += rec.CctOverTcl();
      ++count[static_cast<int>(rec.category)];
    }
    std::vector<std::string> row = {run.algorithm};
    for (int k = 0; k < 4; ++k) {
      row.push_back(count[k] > 0 ? TextTable::Fmt(sum[k] / count[k], 3)
                                 : "n/a");
    }
    cat.AddRow(row);
  }
  cat.AddFootnote(
      "paper: O2O/O2M/M2O achieve exactly 1.0 for both algorithms; the gap "
      "is in M2M");
  cat.Print(std::cout);
  return session.Finish();
}
