// Table 3 (+ §6 "Scheduler latency"): scheduler computation time.
//
// Paper: Edmonds O(N³), TMS O(N^4.5), Solstice O(N³ log² N) — all scale
// with the fabric size N — while Sunflow is O(|C|²), scaling with the
// coflow's own footprint. §6 reports < 1 s for coflows with up to 3000
// subflows.
//
// google-benchmark binary: Sunflow is swept over |C| and the baselines over
// N, so the asymptotic difference is directly visible in the timings. The
// custom main additionally writes a run manifest (--manifest_out=...) so
// bench/harness.py covers this bench like every other, and swallows the
// shared sunflow bench flags (--coflows etc.) google-benchmark would
// otherwise reject — the workloads here are fixed by the BENCHMARK args.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/manifest.h"

#include "common/rng.h"
#include "core/sunflow.h"
#include "exp/intra_runner.h"
#include "sched/edmonds.h"
#include "sched/solstice.h"
#include "sched/tms.h"
#include "core/prt.h"
#include "matching/decomposition.h"
#include "trace/demand_matrix.h"
#include "trace/generator.h"

namespace sunflow {
namespace {

// Dense many-to-many coflow with ~|C| = width² subflows on a fabric big
// enough to hold it.
Coflow DenseCoflow(int width, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(width) *
                static_cast<std::size_t>(width));
  for (PortId i = 0; i < width; ++i)
    for (PortId j = 0; j < width; ++j)
      flows.push_back({i, j, MB(rng.Uniform(1, 50))});
  return Coflow(1, 0, std::move(flows));
}

DemandMatrix RandomMatrix(int n, std::uint64_t seed, double density = 0.5) {
  Rng rng(seed);
  std::vector<std::vector<Time>> e(
      static_cast<std::size_t>(n),
      std::vector<Time>(static_cast<std::size_t>(n), 0));
  for (auto& row : e)
    for (auto& v : row)
      if (rng.Bernoulli(density)) v = rng.Uniform(0.01, 0.5);
  e[0][0] = std::max(e[0][0], 0.1);
  return DemandMatrix(e);
}

void BM_SunflowIntra(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const Coflow coflow = DenseCoflow(width, 1);
  SunflowConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ScheduleSingleCoflow(coflow, static_cast<PortId>(width), cfg));
  }
  state.SetLabel("|C|=" + std::to_string(coflow.size()));
}
// width 55 ≈ the §6 "3000 subflows" latency claim.
BENCHMARK(BM_SunflowIntra)->Arg(8)->Arg(16)->Arg(32)->Arg(55);

void BM_Solstice(benchmark::State& state) {
  const DemandMatrix demand =
      RandomMatrix(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScheduleSolstice(demand));
  }
}
BENCHMARK(BM_Solstice)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_Tms(benchmark::State& state) {
  const DemandMatrix demand =
      RandomMatrix(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScheduleTms(demand));
  }
}
BENCHMARK(BM_Tms)->Arg(16)->Arg(32)->Arg(64);

void BM_Edmonds(benchmark::State& state) {
  const DemandMatrix demand =
      RandomMatrix(static_cast<int>(state.range(0)), 4);
  EdmondsConfig cfg;
  cfg.slot_duration = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScheduleEdmonds(demand, cfg));
  }
}
BENCHMARK(BM_Edmonds)->Arg(16)->Arg(32)->Arg(64);

// Sunflow on a sparse coflow over a HUGE fabric: complexity tracks |C|,
// not N (the baselines cannot do this).
void BM_SunflowSparseHugeFabric(benchmark::State& state) {
  Rng rng(5);
  std::vector<Flow> flows;
  const PortId fabric = 4096;
  for (int k = 0; k < 64; ++k) {
    const PortId s = static_cast<PortId>(rng.UniformInt(0, fabric - 1));
    const PortId d = static_cast<PortId>(rng.UniformInt(0, fabric - 1));
    bool dup = false;
    for (const auto& f : flows)
      if (f.src == s && f.dst == d) dup = true;
    if (!dup) flows.push_back({s, d, MB(rng.Uniform(1, 50))});
  }
  const Coflow coflow(1, 0, std::move(flows));
  SunflowConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScheduleSingleCoflow(coflow, fabric, cfg));
  }
  state.SetLabel("N=4096, |C|=64");
}
BENCHMARK(BM_SunflowSparseHugeFabric);

// Whole-trace intra sweep through the runtime engine: per-coflow
// schedules fan out across the pool, so this directly measures the
// SweepRunner speedup available to every fig* target. Arg = thread count.
void BM_IntraSweep(benchmark::State& state) {
  SyntheticTraceConfig tc;
  tc.num_coflows = 200;
  tc.num_ports = 32;
  const Trace trace = GenerateSyntheticTrace(tc);
  exp::IntraRunConfig cfg;
  cfg.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::RunIntra(trace, exp::IntraAlgorithm::kSunflow, cfg));
  }
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_IntraSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Substrate micro-benchmarks: the data structures behind Table 3. ---

void BM_PrtReserve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PortReservationTable prt(static_cast<PortId>(n));
    // n back-to-back reservations per port pair chain.
    Time t = 0;
    for (int k = 0; k < n; ++k) {
      prt.Reserve({static_cast<PortId>(k % n),
                   static_cast<PortId>((k + 1) % n), t, t + 0.5, 0.01, 1});
      t += 0.6;
    }
    benchmark::DoNotOptimize(prt.NextReleaseAfter(0.0));
  }
}
BENCHMARK(BM_PrtReserve)->Arg(64)->Arg(256)->Arg(1024);

void BM_QuickStuff(benchmark::State& state) {
  const DemandMatrix demand =
      RandomMatrix(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    DemandMatrix m = demand;
    benchmark::DoNotOptimize(QuickStuff(m));
  }
}
BENCHMARK(BM_QuickStuff)->Arg(32)->Arg(128);

void BM_BvnDecompose(benchmark::State& state) {
  DemandMatrix demand = RandomMatrix(static_cast<int>(state.range(0)), 7);
  QuickStuff(demand);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BvnDecompose(demand));
  }
}
BENCHMARK(BM_BvnDecompose)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace sunflow

int main(int argc, char** argv) {
  std::string manifest_out;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--manifest_out=", 0) == 0) {
      manifest_out = std::string(arg.substr(15));
      continue;
    }
    // Shared sunflow bench flags the harness appends to every bench; the
    // fixed BENCHMARK args define the workloads here, so they are no-ops.
    static constexpr std::string_view kIgnored[] = {
        "--coflows=", "--ports=",   "--seed=",  "--perturb=",
        "--threads=", "--trace=",   "--engine=",
    };
    bool ignored = false;
    for (const std::string_view prefix : kIgnored) {
      if (arg.rfind(prefix, 0) == 0) ignored = true;
    }
    if (ignored) continue;
    passthrough.push_back(argv[i]);
  }
  auto manifest =
      sunflow::obs::RunManifest::Begin("table3_complexity", argc, argv);
  int pass_argc = static_cast<int>(passthrough.size());
  passthrough.push_back(nullptr);
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!manifest_out.empty()) {
    manifest.Finalize();
    manifest.WriteFile(manifest_out);
    std::printf("wrote run manifest to %s\n", manifest_out.c_str());
  }
  return 0;
}
