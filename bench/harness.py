#!/usr/bin/env python3
"""Bench regression harness: run each bench N times, aggregate manifests.

Every bench binary writes a self-describing run manifest
(``sunflow.run_manifest/v1``, see src/obs/manifest.h). This harness runs a
configurable set of benches ``--repeat`` times each, collects the per-run
manifests, and writes one ``BENCH_<name>.json`` aggregate per bench
(schema ``sunflow.bench/v1``) carrying the median and p95 of wall time,
peak RSS, every profiled phase, and rate-style extras. Those aggregates
are what ``tools/bench_compare`` diffs and what CI gates on; committed
baselines live in bench/baselines/.

Usage:
  python3 bench/harness.py --build-dir build --out-dir bench_results \
      [--repeat 3] [--benches fig3,engine_replan] \
      [--extra-args="--coflows=80 --ports=40"]

Only the Python standard library is used.
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_SCHEMA = "sunflow.bench/v1"
MANIFEST_SCHEMA = "sunflow.run_manifest/v1"

# name -> (binary relative to the build dir, extra fixed args, threads).
# `threads` is the explicit --threads value for the bench, appended as a
# column so every aggregate records what it ran with; None leaves the flag
# off (table3_complexity is a google-benchmark binary with its own flags).
# sweep_scaling and engine_replan pin --threads=8 so the committed
# baselines actually exercise the pool (sweep fan-out and intra-replan
# group planning respectively): the default (0 = hardware threads)
# degenerates to a serial run on a 1-core bless host, silently committing
# parallel-path-never-ran numbers. The threads pin changes wall-clock
# only — outputs are byte-identical at any value.
# table3_complexity's short min_time keeps the repeat loop affordable.
BENCHES = {
    "fig3_intra_vs_tcl": ("bench/fig3_intra_vs_tcl", ["--all_algos"], 1),
    "fig4_m2m_cdf": ("bench/fig4_m2m_cdf", [], 1),
    "fig5_switching": ("bench/fig5_switching", [], 1),
    "fig6_delta_intra": ("bench/fig6_delta_intra", [], 1),
    "fig7_vs_tpl": ("bench/fig7_vs_tpl", [], 1),
    "fig8_inter_idleness": ("bench/fig8_inter_idleness", [], 1),
    "fig9_cct_diff": ("bench/fig9_cct_diff", [], 1),
    "fig10_delta_inter": ("bench/fig10_delta_inter", [], 1),
    "engine_replan": (
        "bench/engine_replan",
        ["--sweep_coflows=20,40,80,160"],
        8,
    ),
    "sweep_scaling": ("bench/sweep_scaling", [], 8),
    "fig_kcore": ("bench/fig_kcore", ["--coflows=120"], 8),
    "table3_complexity": (
        "bench/table3_complexity",
        ["--benchmark_min_time=0.05"],
        None,
    ),
    # Out-of-core trace pipeline (docs/traces.md): stream write/read/sort
    # throughput, and the generate -> extsort -> streamed-replay loop.
    # Both surface trace.write_mb_s / trace.read_mb_s / trace.sort_mb_s
    # in the manifest "extra" scalars.
    "trace_io": ("tools/sunflow_trace_tool", ["bench", "--run_mb=8"], 8),
    # Replay wall-clock grows superlinearly with the active set, so the
    # harness default stays modest; CI's smoke --extra-args override wins
    # (later duplicate flags take precedence).
    "trace_scale": ("bench/trace_scale", ["--coflows=2000", "--run_mb=4"], 8),
}


def percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile, matching common/stats.h semantics."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(values: list[float]) -> dict:
    return {
        "median": statistics.median(values),
        "p95": percentile(values, 95),
        "min": min(values),
        "max": max(values),
    }


def aggregate(name: str, manifests: list[dict]) -> dict:
    """Folds N run manifests into one sunflow.bench/v1 document."""
    first = manifests[0]
    out = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "repeat": len(manifests),
        "tool": first["tool"],
        "argv": first["argv"],
        "git_sha": first["git_sha"],
        "git_dirty": first["git_dirty"],
        "build_type": first["build_type"],
        "host": first["host"],
        # Core count of the machine that produced this aggregate: rate
        # metrics from hosts with different parallelism are not comparable,
        # and bench_compare warns when the counts differ.
        "host_nproc": first.get("hardware_threads", 0),
        "threads": first["run"].get("threads", 0),
        "wall_ns": summarize([m["run"]["wall_ns"] for m in manifests]),
        "peak_rss_kb": summarize(
            [float(m["run"]["peak_rss_kb"]) for m in manifests]
        ),
        "overhead_fraction": summarize(
            [m["profile"]["overhead"]["fraction"] for m in manifests]
        ),
    }

    # Phases: aggregate only those present in every run (a phase that only
    # sometimes fires would compare medians of different populations).
    common = set(manifests[0]["profile"]["phases"])
    for m in manifests[1:]:
        common &= set(m["profile"]["phases"])
    phases = {}
    for phase in sorted(common):
        rows = [m["profile"]["phases"][phase] for m in manifests]
        phases[phase] = {
            "total_ns": summarize([r["total_ns"] for r in rows]),
            "self_ns": summarize([r["self_ns"] for r in rows]),
            "count": summarize([float(r["count"]) for r in rows]),
        }
    out["phases"] = phases

    # Extras are whatever scalar keys the bench added beyond the standard
    # four; keep them all so rate metrics reach bench_compare.
    standard = {"seed", "threads", "wall_ns", "peak_rss_kb"}
    extra_keys = set(first["run"]) - standard
    for m in manifests[1:]:
        extra_keys &= set(m["run"])
    out["extra"] = {
        key: summarize([m["run"][key] for m in manifests])
        for key in sorted(extra_keys)
    }
    return out


def run_bench(
    name: str,
    binary: Path,
    fixed_args: list[str],
    extra_args: list[str],
    repeat: int,
    scratch: Path,
) -> list[dict]:
    manifests = []
    for i in range(repeat):
        manifest_path = scratch / f"{name}.{i}.manifest.json"
        cmd = [
            str(binary),
            *fixed_args,
            *extra_args,
            f"--manifest_out={manifest_path}",
        ]
        proc = subprocess.run(
            cmd, cwd=scratch, capture_output=True, text=True
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            raise RuntimeError(
                f"{name} run {i} failed with exit {proc.returncode}"
            )
        with open(manifest_path, encoding="utf-8") as f:
            manifest = json.load(f)
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise RuntimeError(
                f"{manifest_path} has schema {manifest.get('schema')!r}, "
                f"expected {MANIFEST_SCHEMA!r}"
            )
        manifests.append(manifest)
    return manifests


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--build-dir", default="build", help="CMake build directory"
    )
    parser.add_argument(
        "--out-dir",
        default="bench_results",
        help="directory for BENCH_<name>.json aggregates",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="runs per bench"
    )
    parser.add_argument(
        "--benches",
        default=",".join(BENCHES),
        help="comma-separated subset of: " + ", ".join(BENCHES),
    )
    parser.add_argument(
        "--extra-args",
        default="",
        help="flags appended to every bench invocation "
        '(e.g. "--coflows=80 --ports=40")',
    )
    args = parser.parse_args()

    build_dir = Path(args.build_dir).resolve()
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    extra_args = args.extra_args.split()

    selected = [b.strip() for b in args.benches.split(",") if b.strip()]
    unknown = [b for b in selected if b not in BENCHES]
    if unknown:
        parser.error(f"unknown bench(es): {', '.join(unknown)}")

    failures = []
    with tempfile.TemporaryDirectory(prefix="sunflow_bench_") as scratch_str:
        scratch = Path(scratch_str)
        for name in selected:
            rel, fixed_args, threads = BENCHES[name]
            if threads is not None:
                fixed_args = [*fixed_args, f"--threads={threads}"]
            binary = build_dir / rel
            if not binary.exists():
                failures.append(f"{name}: missing binary {binary}")
                continue
            print(f"[harness] {name}: {args.repeat} run(s)", flush=True)
            try:
                manifests = run_bench(
                    name, binary, fixed_args, extra_args, args.repeat, scratch
                )
            except RuntimeError as err:
                failures.append(str(err))
                continue
            result = aggregate(name, manifests)
            out_path = out_dir / f"BENCH_{name}.json"
            with open(out_path, "w", encoding="utf-8") as f:
                json.dump(result, f, indent=2, sort_keys=True)
                f.write("\n")
            wall_ms = result["wall_ns"]["median"] / 1e6
            print(
                f"[harness]   wall median {wall_ms:.1f} ms, "
                f"{len(result['phases'])} phases -> {out_path}",
                flush=True,
            )

    if failures:
        for failure in failures:
            print(f"[harness] FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
