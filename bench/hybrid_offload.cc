// §6 extension: hybrid circuit/packet operation (REACToR-style).
//
// Sweeps the offload threshold: coflows at or below it are served by a
// small companion packet network, the rest by Sunflow on the OCS. Shows
// the §5.4/Fig 9 short-coflow setup penalty being bought back with a
// fraction of the bandwidth.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/policy.h"
#include "runtime/thread_pool.h"
#include "sim/hybrid_replay.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  bench::BenchSession session(
      argc, argv,
      {.name = "hybrid_offload",
       .help = "Hybrid circuit/packet offload sweep",
       .banner = "Hybrid OCS + packet offload (§6 deployment discussion)"});
  const double packet_gbps = session.flags().GetDouble(
      "packet_gbps", 0.1, "companion packet network bandwidth");
  const double delta_ms =
      session.flags().GetDouble("delta_ms", 10.0, "δ in ms");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();

  const auto policy = MakeShortestFirstPolicy();

  // Pure-OCS baseline plus one replay per threshold — five independent
  // whole-trace simulations, fanned out over the pool. Per-threshold rows
  // compare the *offloaded subset's* average CCT against what the same
  // coflows saw on the OCS (the baseline).
  const std::vector<double> thresholds_mb = {0.0, 10.0, 50.0, 200.0};
  std::map<CoflowId, Time> baseline;
  std::vector<HybridReplayResult> sweeps(thresholds_mb.size());
  {
    runtime::ThreadPool pool(
        std::min<int>(threads, static_cast<int>(thresholds_mb.size()) + 1));
    pool.ParallelFor(0, thresholds_mb.size() + 1, [&](std::size_t i) {
      HybridReplayConfig cfg;
      cfg.circuit.sunflow.bandwidth = Gbps(1);
      cfg.circuit.sunflow.delta = Millis(delta_ms);
      if (i == 0) {
        cfg.offload_threshold = 0;
        baseline = ReplayHybridTrace(w.trace, *policy, cfg).cct;
      } else {
        cfg.packet_bandwidth = Gbps(packet_gbps);
        cfg.offload_threshold = MB(thresholds_mb[i - 1]);
        sweeps[i - 1] = ReplayHybridTrace(w.trace, *policy, cfg);
      }
    });
  }

  TextTable table("Offload-threshold sweep (packet side " +
                  TextTable::Fmt(packet_gbps, 2) + " Gbps)");
  table.SetHeader({"threshold", "offloaded", "on OCS", "avg CCT (all)",
                   "avg CCT offloaded set", "same set on pure OCS"});
  for (std::size_t t = 0; t < thresholds_mb.size(); ++t) {
    const double threshold_mb = thresholds_mb[t];
    const auto& result = sweeps[t];
    const Bytes offload_threshold = MB(threshold_mb);
    std::vector<double> all, offloaded_set, same_set_pure;
    for (const Coflow& c : w.trace.coflows) {
      all.push_back(result.cct.at(c.id()));
      if (c.total_bytes() <= offload_threshold) {
        offloaded_set.push_back(result.cct.at(c.id()));
        same_set_pure.push_back(baseline.at(c.id()));
      }
    }
    table.AddRow(
        {TextTable::Fmt(threshold_mb, 0) + " MB",
         std::to_string(result.offloaded), std::to_string(result.circuit),
         TextTable::Fmt(stats::Mean(all), 3) + "s",
         offloaded_set.empty()
             ? "-"
             : TextTable::Fmt(stats::Mean(offloaded_set), 3) + "s",
         same_set_pure.empty()
             ? "-"
             : TextTable::Fmt(stats::Mean(same_set_pure), 3) + "s"});
  }
  table.AddFootnote(
      "threshold 0 = pure OCS baseline; offloaded coflows dodge the circuit "
      "setup penalty but run at a fraction of the bandwidth");
  table.AddFootnote(
      "at δ = 10 ms the SCF-prioritized OCS already serves small coflows "
      "well, so whole-coflow offload only pays at larger δ (try "
      "--delta_ms=100) — consistent with §6 reserving the packet side for "
      "leftover traffic, not whole coflows");
  table.Print(std::cout);
  return session.Finish();
}
