// Figure 8 (and the §5.4 ratio paragraphs): inter-Coflow scheduling.
//
// Part 1 — per-coflow CCT ratios at the original trace load:
//   paper: Sunflow/Varys 1.87x mean (2.52x p95); Sunflow/Aalo 1.69x (2.37x);
//   short coflows 2.16x / 1.96x; long coflows 1.07x / 0.90x.
// Part 2 — network efficiency (average CCT) across idleness levels:
//   paper: Sunflow's avg CCT is 0.98-1.01x of Varys and 0.48-0.83x of Aalo
//   at 12-40% idleness, degrading to 3.27x / 2.40x at 98% idleness.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/inter_runner.h"
#include "exp/intra_runner.h"
#include "trace/idleness.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  bench::BenchSession session(
      argc, argv,
      {.name = "fig8_inter_idleness",
       .help = "Figure 8: inter-Coflow avg CCT vs idleness",
       .banner = "Figure 8 — inter-Coflow comparison with Varys and Aalo",
       .engine_default = "circuit"});
  const double delta_ms =
      session.flags().GetDouble("delta_ms", 10.0, "δ in ms");
  const bool all_bandwidths = session.flags().GetBool(
      "all_bandwidths", false, "also sweep B = 10 and 100 Gbps");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();
  const std::string& engine = session.engine();
  bench::BenchTracer& tracer = session.tracer();

  InterRunConfig cfg;
  cfg.delta = Millis(delta_ms);
  cfg.engine = engine;
  cfg.threads = threads;  // the 3 replays per comparison run fan out
  // Trace and sample only the original-load Sunflow replay (Part 1); the
  // idleness sweep below reuses cfg without the sink or sampler — so the
  // manifest's idle.fraction aggregate describes the same run as the
  // NetworkIdleness() print below (they must agree within 1%).
  cfg.sink = tracer.sink();
  cfg.timeline = session.timeline();

  // ---- Part 1: per-coflow CCT ratios at the original load. ----
  const double original_idleness = NetworkIdleness(w.trace, cfg.bandwidth);
  std::printf("original trace idleness at 1 Gbps: %.0f%% (paper: 12%%)\n\n",
              original_idleness * 100);
  const auto cmp = RunInterComparison(w.trace, cfg);
  cfg.sink = nullptr;
  cfg.timeline = nullptr;

  TextTable ratios("Per-coflow CCT ratios (original load)");
  ratios.SetHeader({"pair", "coflows", "mean", "p50", "p95"});
  auto add_ratio = [&](const std::string& name,
                       const std::map<CoflowId, Time>& a,
                       const std::map<CoflowId, Time>& b, bool long_only,
                       bool short_only) {
    std::vector<double> rs;
    for (const auto& [id, va] : a) {
      const double tpl = cmp.tpl.at(id);
      const double pavg = cmp.pavg.at(id);
      const bool is_long = IsLongCoflow(pavg, cfg.delta);
      if (long_only && !is_long) continue;
      if (short_only && is_long) continue;
      const double vb = b.at(id);
      if (vb > 0 && tpl >= 0) rs.push_back(va / vb);
    }
    if (rs.empty()) return;
    const auto s = stats::Summarize(rs);
    ratios.AddRow({name, std::to_string(s.count), TextTable::Fmt(s.mean, 2),
                   TextTable::Fmt(s.p50, 2), TextTable::Fmt(s.p95, 2)});
  };
  add_ratio("Sunflow/Varys (all)", cmp.sunflow, cmp.varys, false, false);
  add_ratio("Sunflow/Varys (short)", cmp.sunflow, cmp.varys, false, true);
  add_ratio("Sunflow/Varys (long)", cmp.sunflow, cmp.varys, true, false);
  add_ratio("Sunflow/Aalo  (all)", cmp.sunflow, cmp.aalo, false, false);
  add_ratio("Sunflow/Aalo  (short)", cmp.sunflow, cmp.aalo, false, true);
  add_ratio("Sunflow/Aalo  (long)", cmp.sunflow, cmp.aalo, true, false);
  ratios.AddFootnote(
      "paper: Sunflow/Varys 1.87 mean, 2.52 p95 (short 2.16, long 1.07)");
  ratios.AddFootnote(
      "paper: Sunflow/Aalo 1.69 mean, 2.37 p95 (short 1.96, long 0.90)");
  ratios.Print(std::cout);

  // ---- Part 2: average CCT across idleness levels (Fig 8 proper). ----
  TextTable fig8("Normalized average CCT vs network idleness");
  fig8.SetHeader({"idleness", "factor", "avgCCT Sunflow", "avgCCT Varys",
                  "avgCCT Aalo", "Sun/Varys", "Sun/Aalo"});
  auto run_at = [&](const std::string& label, const Trace& trace,
                    double factor) {
    const auto c = RunInterComparison(trace, cfg);
    const double sun = c.AvgCct(c.sunflow);
    const double varys = c.AvgCct(c.varys);
    const double aalo = c.AvgCct(c.aalo);
    fig8.AddRow({label, TextTable::Fmt(factor, 3),
                 TextTable::Fmt(sun, 2) + "s", TextTable::Fmt(varys, 2) + "s",
                 TextTable::Fmt(aalo, 2) + "s",
                 TextTable::Fmt(sun / varys, 2),
                 TextTable::Fmt(sun / aalo, 2)});
  };
  run_at("original (" + TextTable::FmtPct(original_idleness, 0) + ")",
         w.trace, 1.0);
  for (double target : {0.20, 0.40, 0.81, 0.98}) {
    const auto scaled =
        ScaleTraceToIdleness(w.trace, cfg.bandwidth, target, 0.01);
    run_at(TextTable::FmtPct(scaled.achieved_idleness, 0), scaled.trace,
           scaled.factor);
  }
  // Paper Fig 8 repeats the sweep at 10 and 100 Gbps (byte sizes re-scaled
  // to the same idleness levels at each B); pass --all_bandwidths to run
  // them — each extra B roughly doubles the runtime.
  if (all_bandwidths) {
    for (double gbps : {10.0, 100.0}) {
      InterRunConfig bcfg = cfg;
      bcfg.bandwidth = Gbps(gbps);
      for (double target : {0.20, 0.40, 0.81, 0.98}) {
        const auto scaled =
            ScaleTraceToIdleness(w.trace, bcfg.bandwidth, target, 0.01);
        const auto c = RunInterComparison(scaled.trace, bcfg);
        const double sun = c.AvgCct(c.sunflow);
        fig8.AddRow({TextTable::FmtPct(scaled.achieved_idleness, 0) + " @" +
                         TextTable::Fmt(gbps, 0) + "G",
                     TextTable::Fmt(scaled.factor, 3),
                     TextTable::Fmt(sun, 2) + "s",
                     TextTable::Fmt(c.AvgCct(c.varys), 2) + "s",
                     TextTable::Fmt(c.AvgCct(c.aalo), 2) + "s",
                     TextTable::Fmt(sun / c.AvgCct(c.varys), 2),
                     TextTable::Fmt(sun / c.AvgCct(c.aalo), 2)});
      }
    }
  }
  fig8.AddFootnote(
      "paper Sun/Varys: 0.98 / 1.00 / 1.01 (12-40%), 1.24 (81%), 3.27 "
      "(98%)");
  fig8.AddFootnote(
      "paper Sun/Aalo: 0.48-0.83 (12-40%), 0.95 (81%), 2.40 (98%)");
  fig8.Print(std::cout);
  return session.Finish();
}
