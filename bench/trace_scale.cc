// Out-of-core replay at scale: generate → external-sort → streamed replay
// of a trace that never sits in memory, with a peak-RSS assertion proving
// the bound.
//
// The pipeline is the million-coflow path from docs/traces.md:
//   1. GenerateSyntheticTrace streams i.i.d.-arrival coflows straight to a
//      block-compressed .sft file (O(block) writer memory, emission order
//      deliberately NOT arrival order).
//   2. ExternalSortTrace produces the arrival-ordered replay input with a
//      bounded in-memory run budget (--run_mb).
//   3. RunScenarioStream replays the circuit engine pulling arrivals
//      lazily, streaming completions out through a CompletionSink — engine
//      memory is O(active coflows), independent of the trace length.
//
// --max_rss_mb (default 0 = report only) turns the RSS ceiling into a
// hard gate: the process exits 1 when getrusage peak RSS exceeds it. CI
// runs the 100k-coflow smoke with a ceiling that a whole-trace load would
// blow through.
//
//   trace_scale --coflows=1000000 --run_mb=64 --max_rss_mb=1024
#include <chrono>
#include <cstdio>
#include <memory>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "bench_util.h"
#include "common/assert.h"
#include "core/policy.h"
#include "runtime/thread_pool.h"
#include "sim/engine/driver.h"
#include "sim/engine/scenario.h"
#include "trace/extsort.h"
#include "trace/generator.h"
#include "trace/stream.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

double MbPerSec(std::uint64_t bytes, double seconds) {
  return seconds > 0 ? bytes / 1e6 / seconds : 0;
}

long PeakRssKb() {
#ifdef __unix__
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
#else
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sunflow;
  bench::BenchSession session(
      argc, argv,
      {.name = "trace_scale",
       .help = "Out-of-core pipeline: generate, external sort, streamed "
               "replay under an RSS ceiling",
       .banner = "Trace scale — bounded-memory million-coflow replay",
       .load_workload = false});
  CliFlags& flags = session.flags();
  const auto coflows = flags.GetInt("coflows", 20000, "coflows to replay");
  const auto ports = flags.GetInt("ports", 150, "fabric ports");
  const auto seed = flags.GetInt("seed", 20161212, "generator seed");
  const auto block_kb = flags.GetInt("block_kb", 256, "stream block, KiB");
  const auto run_mb = flags.GetInt("run_mb", 64, "extsort run budget, MB");
  const auto max_rss_mb = flags.GetInt(
      "max_rss_mb", 0,
      "fail (exit 1) if peak RSS exceeds this many MB; 0 = report only");
  const Time delta =
      Millis(flags.GetDouble("delta_ms", 10, "reconfiguration delay"));
  const Bandwidth bandwidth =
      Gbps(flags.GetDouble("bandwidth_gbps", 1, "per-port link rate"));
  const bool keep =
      flags.GetBool("keep", false, "keep the generated .sft files");
  if (session.done()) return 0;
  const int threads = session.threads();

  std::unique_ptr<runtime::ThreadPool> pool;
  if (threads > 1)
    pool = std::make_unique<runtime::ThreadPool>(threads);
  TraceStreamOptions stream_options;
  stream_options.block_bytes = static_cast<std::size_t>(block_kb) << 10;
  stream_options.pool = pool.get();

  SyntheticTraceConfig cfg;
  cfg.num_coflows = static_cast<int>(coflows);
  cfg.num_ports = static_cast<PortId>(ports);
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.horizon = 3600.0 * cfg.num_coflows / 526.0;  // paper arrival density
  cfg.iid_arrivals = true;  // scrambled emission — the sorter earns its keep

  const std::string unsorted = "trace_scale_unsorted.sft";
  const std::string sorted = "trace_scale_sorted.sft";

  // 1. Generate straight to disk.
  auto begin = Clock::now();
  std::uint64_t payload_bytes = 0;
  {
    TraceStreamOptions wo = stream_options;
    wo.pool = nullptr;
    TraceWriter writer(unsorted, cfg.num_ports, wo);
    GenerateSyntheticTrace(cfg, [&](Coflow&& c) { writer.Append(c); });
    writer.Close();
    payload_bytes = writer.stats().payload_bytes;
  }
  const double write_s = SecondsSince(begin);
  std::printf("generate: %lld coflows, %.1f MB payload, %.2f s (%.1f MB/s)\n",
              static_cast<long long>(coflows), payload_bytes / 1e6, write_s,
              MbPerSec(payload_bytes, write_s));

  // 2. External sort into arrival order.
  begin = Clock::now();
  ExtSortOptions sort_options;
  sort_options.stream = stream_options;
  sort_options.run_payload_bytes = static_cast<std::size_t>(run_mb) << 20;
  const auto sort_stats = ExternalSortTrace(unsorted, sorted, sort_options);
  const double sort_s = SecondsSince(begin);
  std::printf("extsort : %llu run(s), %llu merge pass(es), %.2f s "
              "(%.1f MB/s)\n",
              static_cast<unsigned long long>(sort_stats.runs),
              static_cast<unsigned long long>(sort_stats.merge_passes),
              sort_s, MbPerSec(sort_stats.payload_bytes, sort_s));

  // 3. Streamed replay with a completion sink: nothing accumulates
  // per-coflow — completions reduce to count/sum on the way out.
  begin = Clock::now();
  std::uint64_t completed = 0;
  double cct_sum = 0, cct_max = 0;
  engine::EngineConfig ec;
  ec.sunflow.bandwidth = bandwidth;
  ec.sunflow.delta = delta;
  ec.sink = session.sink();
  ec.timeline = session.timeline();
  ec.plan_pool = pool.get();
  const auto policy = MakeShortestFirstPolicy();
  const auto scenario =
      engine::MakeCircuitScenario(cfg.num_ports, *policy, ec);
  {
    TraceReader reader(sorted, stream_options);
    const auto result = engine::RunScenarioStream(
        reader, *scenario, ec.sink, ec.timeline,
        [&](const engine::CompletionRecord& r) {
          ++completed;
          cct_sum += r.cct;
          cct_max = std::max(cct_max, r.cct);
        });
    SUNFLOW_CHECK_MSG(result.completed == static_cast<std::uint64_t>(coflows),
                      "streamed replay lost coflows");
  }
  const double replay_s = SecondsSince(begin);
  SUNFLOW_CHECK_MSG(completed == static_cast<std::uint64_t>(coflows),
                    "completion sink missed coflows");
  const double read_mb_s = MbPerSec(payload_bytes, replay_s);
  std::printf("replay  : %llu completions, avg CCT %.3f s, max %.3f s, "
              "%.2f s (%.0f coflows/s)\n",
              static_cast<unsigned long long>(completed),
              completed > 0 ? cct_sum / static_cast<double>(completed) : 0,
              cct_max, replay_s,
              replay_s > 0 ? static_cast<double>(completed) / replay_s : 0);

  const long rss_kb = PeakRssKb();
  std::printf("peak RSS: %.1f MB (trace payload %.1f MB)\n", rss_kb / 1024.0,
              payload_bytes / 1e6);
  if (!keep) {
    std::remove(unsorted.c_str());
    std::remove(sorted.c_str());
  }

  session.SetManifestSeed(cfg.seed);
  session.AddManifestValue("coflows", static_cast<double>(coflows));
  session.AddManifestValue("ports", static_cast<double>(ports));
  session.AddManifestValue("trace.payload_mb", payload_bytes / 1e6);
  session.AddManifestValue("trace.write_mb_s", MbPerSec(payload_bytes, write_s));
  session.AddManifestValue("trace.sort_mb_s",
                           MbPerSec(sort_stats.payload_bytes, sort_s));
  session.AddManifestValue("trace.read_mb_s", read_mb_s);
  session.AddManifestValue("trace.sort_runs",
                           static_cast<double>(sort_stats.runs));
  session.AddManifestValue(
      "replay.coflows_per_s",
      replay_s > 0 ? static_cast<double>(completed) / replay_s : 0);
  session.AddManifestValue("replay.avg_cct_s",
                           completed > 0 ? cct_sum / completed : 0);

  if (max_rss_mb > 0 && rss_kb > max_rss_mb * 1024) {
    std::fprintf(stderr,
                 "RSS GATE FAILED: peak %.1f MB exceeds --max_rss_mb=%lld\n",
                 rss_kb / 1024.0, static_cast<long long>(max_rss_mb));
    return 1;
  }
  if (max_rss_mb > 0) std::printf("RSS gate OK (<= %lld MB)\n",
                                  static_cast<long long>(max_rss_mb));
  return 0;
}
