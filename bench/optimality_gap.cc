// Beyond the paper: Sunflow vs the *exact* non-preemptive optimum.
//
// §2.4 compares against the lower bound TcL because "the optimal
// achievable CCT may be much larger than the lower bound". For small
// coflows we compute the true optimum by branch-and-bound
// (sched/optimal.h) and report the real optimality gap — which turns out
// even tighter than the paper's CCT/TcL ≈ 1.03 suggests.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/sunflow.h"
#include "runtime/sweep.h"
#include "sched/optimal.h"
#include "trace/bounds.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  bench::BenchSession session(
      argc, argv,
      {.name = "optimality_gap",
       .help = "Sunflow vs exact non-preemptive optimum",
       .banner = "Sunflow vs exact optimum (branch-and-bound over random "
                 "coflows per |C|)",
       .load_workload = false});
  const auto trials =
      session.flags().GetInt("trials", 300, "random coflows per size");
  const double delta_ms =
      session.flags().GetDouble("delta_ms", 10.0, "δ in ms");
  const auto seed =
      session.flags().GetInt("seed", 2016, "base seed for random coflows");
  if (session.done()) return 0;
  session.SetManifestSeed(static_cast<std::uint64_t>(seed));
  const int threads = session.threads();

  SunflowConfig cfg;
  cfg.delta = Millis(delta_ms);

  TextTable table("CCT ratios by coflow size");
  table.SetHeader({"|C|", "Sunflow/OPT mean", "p95", "max",
                   "OPT/TcL mean", "Sunflow/TcL mean"});
  const std::vector<int> sizes = {2, 4, 6, 8};
  runtime::SweepConfig sweep_cfg;
  sweep_cfg.threads = threads;
  sweep_cfg.base_seed = static_cast<std::uint64_t>(seed);
  runtime::SweepRunner runner(sweep_cfg);
  for (std::size_t ki = 0; ki < sizes.size(); ++ki) {
    const int k = sizes[ki];
    struct TrialRatios {
      double vs_opt = 0, opt_vs_tcl = 0, vs_tcl = 0;
    };
    // One branch-and-bound trial per task; each draws its coflow from an
    // Rng seeded by (seed, global trial index), so results don't depend on
    // execution order or thread count.
    const auto sweep = runner.Run<TrialRatios>(
        static_cast<std::size_t>(trials), /*capture_events=*/false,
        [&](runtime::TaskContext& ctx) {
          Rng rng(runtime::TaskSeed(
              ctx.seed, ki * static_cast<std::size_t>(trials)));
          std::vector<Flow> flows;
          while (static_cast<int>(flows.size()) < k) {
            const PortId s = static_cast<PortId>(rng.UniformInt(0, 5));
            const PortId d = static_cast<PortId>(rng.UniformInt(0, 5));
            bool dup = false;
            for (const auto& e : flows)
              if (e.src == s && e.dst == d) dup = true;
            if (!dup) flows.push_back({s, d, MB(rng.Uniform(1, 80))});
          }
          const Coflow c(1, 0, std::move(flows));
          const Time opt =
              OptimalNonPreemptiveCct(c, cfg.bandwidth, cfg.delta).makespan;
          const Time tcl = CircuitLowerBound(c, cfg.bandwidth, cfg.delta);
          const Time sunflow_cct =
              ScheduleSingleCoflow(c, 6, cfg).completion_time.at(1);
          return TrialRatios{sunflow_cct / opt, opt / tcl,
                             sunflow_cct / tcl};
        });
    std::vector<double> vs_opt, opt_vs_tcl, vs_tcl;
    for (const TrialRatios& r : sweep.results) {
      vs_opt.push_back(r.vs_opt);
      opt_vs_tcl.push_back(r.opt_vs_tcl);
      vs_tcl.push_back(r.vs_tcl);
    }
    table.AddRow({std::to_string(k),
                  TextTable::Fmt(stats::Mean(vs_opt), 4),
                  TextTable::Fmt(stats::Percentile(vs_opt, 95), 4),
                  TextTable::Fmt(stats::Max(vs_opt), 3),
                  TextTable::Fmt(stats::Mean(opt_vs_tcl), 4),
                  TextTable::Fmt(stats::Mean(vs_tcl), 4)});
  }
  table.AddFootnote(
      "Lemma 1 guarantees Sunflow/OPT <= Sunflow/TcL <= 2; the measured "
      "gap to the true optimum is the tighter story");
  table.Print(std::cout);
  return session.Finish();
}
