// Table 4: Coflows classified by sender-to-receiver ratio.
//
// Paper (Facebook trace): O2O 23.4% of coflows / 0.005% of bytes,
// O2M 9.9% / 0.024%, M2O 40.1% / 0.028%, M2M 26.6% / 99.943%.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "exp/classify.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  // --threads is accepted for CLI uniformity across bench targets but
  // classification is pure counting; there is nothing to parallelize.
  bench::BenchSession session(
      argc, argv,
      {.name = "table4_traffic",
       .help = "Table 4: coflow classification",
       .banner =
           "Table 4 — Coflow classification by sender-to-receiver ratio"});
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();

  const auto breakdown = exp::ClassifyTrace(w.trace);

  TextTable table("Coflow% and Bytes% by category");
  table.SetHeader({"Category", "O2O", "O2M", "M2O", "M2M"});
  std::vector<std::string> coflow_row = {"Coflow%"};
  std::vector<std::string> bytes_row = {"Bytes%"};
  std::vector<std::string> count_row = {"Count"};
  for (const auto& share : breakdown) {
    coflow_row.push_back(TextTable::Fmt(share.coflow_fraction * 100, 1));
    bytes_row.push_back(TextTable::Fmt(share.byte_fraction * 100, 3));
    count_row.push_back(std::to_string(share.count));
  }
  table.AddRow(coflow_row);
  table.AddRow(bytes_row);
  table.AddRow(count_row);
  table.AddFootnote("paper: Coflow% 23.4 / 9.9 / 40.1 / 26.6");
  table.AddFootnote("paper: Bytes%  0.005 / 0.024 / 0.028 / 99.943");
  table.Print(std::cout);
  return session.Finish();
}
