// Figure 7: Sunflow CCT against the packet-switched lower bound TpL, split
// into long and short coflows (long: p_avg > 40 δ).
//
// Paper: long coflows (25.2% of coflows, 98.8% of bytes) achieve
// CCT/TpL = 1.09 mean / 1.25 p95; overall 1.86 mean / 2.31 p95; everything
// within the 4.5x Lemma-2 bound (α = 1.25); rank correlation between p_avg
// and CCT/TpL is -0.96.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/csv_export.h"
#include "exp/intra_runner.h"
#include "trace/bounds.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  bench::BenchSession session(
      argc, argv,
      {.name = "fig7_vs_tpl",
       .help = "Figure 7: Sunflow CCT vs TpL",
       .banner = "Figure 7 — Sunflow CCT vs packet lower bound",
       .engine_default = ""});
  const double delta_ms =
      session.flags().GetDouble("delta_ms", 10.0, "δ in ms");
  const std::string csv_out = session.flags().GetString(
      "csv_out", "", "write per-coflow (tpl, cct, pavg, long) rows here");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();
  const std::string& engine = session.engine();

  IntraRunConfig cfg;
  cfg.delta = Millis(delta_ms);
  cfg.threads = threads;
  cfg.engine = engine;
  const auto run = RunIntra(w.trace, IntraAlgorithm::kSunflow, cfg);

  std::vector<double> all_r, long_r, short_r, pavg, lemma2_bound;
  Bytes long_bytes = 0, total_bytes = 0;
  int long_count = 0;
  for (const auto& rec : run.records) {
    const double r = rec.CctOverTpl();
    all_r.push_back(r);
    pavg.push_back(rec.pavg);
    total_bytes += rec.bytes;
    if (IsLongCoflow(rec, cfg.delta)) {
      long_r.push_back(r);
      long_bytes += rec.bytes;
      ++long_count;
    } else {
      short_r.push_back(r);
    }
  }
  // Per-coflow Lemma 2 check: CCT <= 2(1+α)·TpL.
  int lemma2_violations = 0;
  for (std::size_t i = 0; i < run.records.size(); ++i) {
    const auto& rec = run.records[i];
    const Coflow& coflow = w.trace.coflows[i];
    const double alpha = LemmaTwoAlpha(coflow, cfg.bandwidth, cfg.delta);
    if (rec.cct > 2 * (1 + alpha) * rec.tpl + 1e-9) ++lemma2_violations;
  }

  TextTable table("Sunflow CCT/TpL");
  table.SetHeader({"coflows", "count", "bytes%", "mean", "p50", "p95", "max"});
  auto add = [&](const std::string& name, const std::vector<double>& data,
                 double bytes_pct) {
    if (data.empty()) return;
    const auto s = stats::Summarize(data);
    table.AddRow({name, std::to_string(s.count),
                  TextTable::Fmt(bytes_pct, 1), TextTable::Fmt(s.mean, 3),
                  TextTable::Fmt(s.p50, 3), TextTable::Fmt(s.p95, 3),
                  TextTable::Fmt(s.max, 2)});
  };
  add("long (pavg>40δ)", long_r, 100.0 * long_bytes / total_bytes);
  add("short", short_r, 100.0 * (total_bytes - long_bytes) / total_bytes);
  add("all", all_r, 100.0);
  table.AddFootnote("paper: long 1.09 mean / 1.25 p95; all 1.86 / 2.31");
  table.AddFootnote(
      "paper: long coflows are 25.2% of coflows, 98.8% of bytes (here " +
      TextTable::Fmt(100.0 * long_count /
                         static_cast<double>(run.records.size()),
                     1) +
      "% / " + TextTable::Fmt(100.0 * long_bytes / total_bytes, 1) + "%)");
  table.AddFootnote(
      "rank corr(pavg, CCT/TpL) = " +
      TextTable::Fmt(stats::SpearmanCorrelation(pavg, all_r), 3) +
      " (paper: -0.96)");
  table.AddFootnote("Lemma-2 violations: " +
                    std::to_string(lemma2_violations) + " (must be 0)");
  table.Print(std::cout);

  PrintCdf(std::cout, "Sunflow CCT/TpL (all coflows)", all_r);

  if (!csv_out.empty()) {
    CsvColumn tpl_col{"tpl_seconds", {}}, cct_col{"cct_seconds", {}},
        pavg_col{"pavg_seconds", {}}, long_col{"is_long", {}};
    for (const auto& rec : run.records) {
      tpl_col.values.push_back(rec.tpl);
      cct_col.values.push_back(rec.cct);
      pavg_col.values.push_back(rec.pavg);
      long_col.values.push_back(IsLongCoflow(rec, cfg.delta) ? 1 : 0);
    }
    WriteCsv(csv_out, {tpl_col, cct_col, pavg_col, long_col});
    std::cout << "per-coflow data written to " << csv_out << "\n";
  }
  return session.Finish();
}
