// Figure 5: switching count normalized by the minimum necessary count
// (= |C|, the number of subflows) on many-to-many coflows.
//
// Paper: Sunflow's switching count is always exactly the minimum; Solstice
// schedules many switchings per subflow, and its normalized count grows
// with |C| (linear correlation coefficient 0.84).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/intra_runner.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  bench::BenchSession session(
      argc, argv,
      {.name = "fig5_switching",
       .help = "Figure 5: normalized switching counts",
       .banner = "Figure 5 — switching count over minimum (M2M coflows)",
       .engine_default = ""});
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();
  const std::string& engine = session.engine();
  bench::BenchTracer& tracer = session.tracer();

  IntraRunConfig cfg;
  cfg.sink = tracer.sink();
  cfg.threads = threads;
  cfg.engine = engine;
  TextTable table("Normalized switching count (M2M)");
  table.SetHeader(
      {"algorithm", "mean", "p50", "p95", "max", "corr(norm, |C|)"});
  for (auto algorithm :
       {IntraAlgorithm::kSunflow, IntraAlgorithm::kSolstice}) {
    const std::size_t setups_before =
        tracer.enabled()
            ? static_cast<std::size_t>(std::count_if(
                  tracer.events().begin(), tracer.events().end(),
                  [](const obs::Event& e) {
                    return e.type == obs::EventType::kCircuitSetup &&
                           e.value > 0;
                  }))
            : 0;
    const auto run = RunIntra(w.trace, algorithm, cfg);
    std::vector<double> normalized, sizes;
    long long total_switching = 0;
    for (const auto& rec : run.records) {
      total_switching += rec.switching_count;
      if (rec.category != CoflowCategory::kManyToMany) continue;
      normalized.push_back(rec.NormalizedSwitching());
      sizes.push_back(static_cast<double>(rec.num_flows));
    }
    const auto s = stats::Summarize(normalized);
    table.AddRow({run.algorithm, TextTable::Fmt(s.mean, 3),
                  TextTable::Fmt(s.p50, 3), TextTable::Fmt(s.p95, 3),
                  TextTable::Fmt(s.max, 2),
                  TextTable::Fmt(
                      stats::PearsonCorrelation(normalized, sizes), 3)});
    PrintCdf(std::cout, run.algorithm + " switching/minimum (M2M)",
             normalized);
    if (tracer.enabled()) {
      // The trace is the same count the records report: every δ-paying
      // kCircuitSetup event corresponds to one switching event.
      const auto traced = static_cast<long long>(
          static_cast<std::size_t>(std::count_if(
              tracer.events().begin(), tracer.events().end(),
              [](const obs::Event& e) {
                return e.type == obs::EventType::kCircuitSetup && e.value > 0;
              })) -
          setups_before);
      std::printf("%s: traced %lld circuit setups, switching counts sum to "
                  "%lld (%s)\n\n",
                  run.algorithm.c_str(), traced, total_switching,
                  traced == total_switching ? "match" : "MISMATCH");
    }
  }
  table.AddFootnote(
      "paper: Sunflow always exactly 1.0; Solstice grows with |C|, "
      "correlation 0.84");
  table.Print(std::cout);
  return session.Finish();
}
