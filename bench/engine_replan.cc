// Microbenchmark of the discrete-event kernel's plan/execute/replan loop
// (sim/engine): wall-clock replans/sec for a whole-trace replay, plus the
// event-queue traffic the run generated. Throughput lands in the metrics
// registry as engine.replans_per_sec next to the driver-maintained
// engine.event_pushes / engine.event_pops counters, so --metrics_csv
// captures everything a regression dashboard needs.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "sim/engine/scenario.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  CliFlags flags(argc, argv);
  bench::Workload w = bench::LoadWorkload(flags);
  const auto repeat =
      flags.GetInt("repeat", 3, "timed whole-trace replay repetitions");
  const std::string engine_name = bench::Engine(flags, "circuit");
  bench::BenchTracer tracer(flags);
  if (bench::HandleHelp(flags,
                        "Microbench: kernel replans/sec and queue traffic"))
    return 0;
  bench::Banner("Engine replan microbench — scenario \"" + engine_name + "\"",
                w);

  const auto policy = MakeShortestFirstPolicy();
  engine::EngineConfig ec;

  TextTable table("replan-loop throughput (" + engine_name + ")");
  table.SetHeader(
      {"run", "replans", "wall ms", "replans/sec", "evq pushes", "evq pops"});
  auto& throughput =
      obs::GlobalMetrics().GetHistogram("engine.replans_per_sec");
  for (int r = 0; r < repeat; ++r) {
    const auto begin = std::chrono::steady_clock::now();
    const engine::EngineResult result =
        engine::ScenarioRegistry::Global().Run(engine_name, w.trace,
                                               policy.get(), ec);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    const double rps = seconds > 0 ? result.replans / seconds : 0;
    throughput.Record(rps);
    table.AddRow({std::to_string(r), std::to_string(result.replans),
                  TextTable::Fmt(seconds * 1e3, 2), TextTable::Fmt(rps, 0),
                  std::to_string(result.queue.pushes),
                  std::to_string(result.queue.pops)});
  }
  table.AddFootnote(
      "engine.event_pushes / engine.event_pops accumulate in the metrics "
      "registry (--metrics / --metrics_csv)");
  table.Print(std::cout);
  tracer.ReportMetrics();
  return 0;
}
