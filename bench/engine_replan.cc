// Microbenchmark of the discrete-event kernel's plan/execute/replan loop
// (sim/engine): wall-clock replans/sec for a whole-trace replay, plus the
// event-queue traffic the run generated. Throughput lands in the metrics
// registry as engine.replans_per_sec next to the driver-maintained
// engine.event_pushes / engine.event_pops counters, and the run manifest
// carries the phase breakdown (engine.plan / engine.execute / ...), so
// one run yields everything a regression dashboard needs.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "sim/engine/scenario.h"
#include "trace/generator.h"

namespace {

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

// Full-precision CCT dump, one "<label> <coflow> <cct>" line per coflow in
// id order. Wall-clock never enters the file, so two runs of the same
// workload must produce byte-identical dumps at any --threads value — the
// determinism contract CI enforces by diffing --threads=1 against
// --threads=8.
void DumpCcts(std::ofstream& out, const std::string& label,
              const std::map<sunflow::CoflowId, sunflow::Time>& cct) {
  char buf[64];
  for (const auto& [id, t] : cct) {
    std::snprintf(buf, sizeof(buf), "%.17g", t);
    out << label << " " << id << " " << buf << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sunflow;
  bench::BenchSession session(
      argc, argv,
      {.name = "engine_replan",
       .help = "Microbench: kernel replans/sec and queue traffic",
       .engine_default = "circuit"});
  const auto repeat = session.flags().GetInt(
      "repeat", 3, "timed whole-trace replay repetitions");
  const std::string sweep_csv = session.flags().GetString(
      "sweep_coflows", "",
      "comma-separated coflow counts (e.g. 20,40,80,160): additionally "
      "replay a regenerated synthetic workload at each count and record "
      "sweep.N<k>.replans_per_sec in the manifest");
  const std::string cct_out = session.flags().GetString(
      "cct_out", "",
      "write per-coflow CCTs (full precision, deterministic order) to this "
      "file; byte-identical across --threads values");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const std::string& engine_name = session.engine();

  const auto policy = MakeShortestFirstPolicy();
  // The pool drives intra-replan group planning (scenario plan_pool);
  // --threads=1 exercises the serial fallback.
  runtime::ThreadPool pool(session.threads());
  engine::EngineConfig ec;
  ec.plan_pool = &pool;

  std::ofstream cct_file;
  if (!cct_out.empty()) {
    cct_file.open(cct_out);
    if (!cct_file) {
      std::cerr << "cannot open --cct_out file: " << cct_out << "\n";
      return 1;
    }
  }

  TextTable table("replan-loop throughput (" + engine_name + ")");
  table.SetHeader({"run", "replans", "wall ms", "replans/sec", "evq pushes",
                   "evq pops", "evq hwm"});
  auto& throughput =
      obs::GlobalMetrics().GetHistogram("engine.replans_per_sec");
  double best_rps = 0;
  for (int r = 0; r < repeat; ++r) {
    // Sample only the first timed replay — BeginRun resets the sampler,
    // so attaching every repetition would keep just the last and charge
    // its windows a second warm-cache pass.
    ec.timeline = r == 0 ? session.timeline() : nullptr;
    const auto begin = std::chrono::steady_clock::now();
    const engine::EngineResult result =
        engine::ScenarioRegistry::Global().Run(engine_name, w.trace,
                                               policy.get(), ec);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    const double rps = seconds > 0 ? result.replans / seconds : 0;
    throughput.Record(rps);
    best_rps = std::max(best_rps, rps);
    table.AddRow({std::to_string(r), std::to_string(result.replans),
                  TextTable::Fmt(seconds * 1e3, 2), TextTable::Fmt(rps, 0),
                  std::to_string(result.queue.pushes),
                  std::to_string(result.queue.pops),
                  std::to_string(result.queue.depth_high_water)});
    if (cct_file.is_open() && r == 0) DumpCcts(cct_file, "main", result.cct);
  }
  table.AddFootnote(
      "engine.event_pushes / engine.event_pops accumulate in the metrics "
      "registry (--metrics / --metrics_csv)");
  table.Print(std::cout);
  session.AddManifestValue("replans_per_sec_best", best_rps);

  // Scaling sweep: regenerate the synthetic workload at each requested
  // coflow count (same ports / seed / perturbation as the main run) and
  // record per-N throughput, so a regression harness can check that
  // replan cost stays sub-quadratic in the active-set size.
  if (!sweep_csv.empty()) {
    const auto ports = session.flags().GetInt("ports", 150);
    const auto seed = session.flags().GetInt("seed", 20161212);
    const double perturb = session.flags().GetDouble("perturb", 0.05);
    TextTable sweep_table("replan scaling sweep (" + engine_name + ")");
    sweep_table.SetHeader({"coflows", "replans", "best replans/sec"});
    for (const int n : ParseIntList(sweep_csv)) {
      SyntheticTraceConfig cfg;
      cfg.num_coflows = n;
      cfg.num_ports = static_cast<PortId>(ports);
      cfg.seed = static_cast<std::uint64_t>(seed);
      Trace trace = GenerateSyntheticTrace(cfg);
      if (perturb > 0) {
        trace = PerturbFlowSizes(trace, perturb, MB(1),
                                 static_cast<std::uint64_t>(seed) + 1);
      }
      double best = 0;
      int replans = 0;
      for (int r = 0; r < repeat; ++r) {
        const auto begin = std::chrono::steady_clock::now();
        const engine::EngineResult result =
            engine::ScenarioRegistry::Global().Run(engine_name, trace,
                                                   policy.get(), ec);
        const double seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - begin)
                                   .count();
        best = std::max(best, seconds > 0 ? result.replans / seconds : 0);
        replans = result.replans;
        if (cct_file.is_open() && r == 0) {
          DumpCcts(cct_file, "sweep.N" + std::to_string(n), result.cct);
        }
      }
      sweep_table.AddRow({std::to_string(n), std::to_string(replans),
                          TextTable::Fmt(best, 0)});
      session.AddManifestValue(
          "sweep.N" + std::to_string(n) + ".replans_per_sec", best);
    }
    sweep_table.Print(std::cout);
  }
  return session.Finish();
}
