// Microbenchmark of the discrete-event kernel's plan/execute/replan loop
// (sim/engine): wall-clock replans/sec for a whole-trace replay, plus the
// event-queue traffic the run generated. Throughput lands in the metrics
// registry as engine.replans_per_sec next to the driver-maintained
// engine.event_pushes / engine.event_pops counters, and the run manifest
// carries the phase breakdown (engine.plan / engine.execute / ...), so
// one run yields everything a regression dashboard needs.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "sim/engine/scenario.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  bench::BenchSession session(
      argc, argv,
      {.name = "engine_replan",
       .help = "Microbench: kernel replans/sec and queue traffic",
       .engine_default = "circuit"});
  const auto repeat = session.flags().GetInt(
      "repeat", 3, "timed whole-trace replay repetitions");
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const std::string& engine_name = session.engine();

  const auto policy = MakeShortestFirstPolicy();
  engine::EngineConfig ec;

  TextTable table("replan-loop throughput (" + engine_name + ")");
  table.SetHeader(
      {"run", "replans", "wall ms", "replans/sec", "evq pushes", "evq pops"});
  auto& throughput =
      obs::GlobalMetrics().GetHistogram("engine.replans_per_sec");
  double best_rps = 0;
  for (int r = 0; r < repeat; ++r) {
    const auto begin = std::chrono::steady_clock::now();
    const engine::EngineResult result =
        engine::ScenarioRegistry::Global().Run(engine_name, w.trace,
                                               policy.get(), ec);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    const double rps = seconds > 0 ? result.replans / seconds : 0;
    throughput.Record(rps);
    best_rps = std::max(best_rps, rps);
    table.AddRow({std::to_string(r), std::to_string(result.replans),
                  TextTable::Fmt(seconds * 1e3, 2), TextTable::Fmt(rps, 0),
                  std::to_string(result.queue.pushes),
                  std::to_string(result.queue.pops)});
  }
  table.AddFootnote(
      "engine.event_pushes / engine.event_pops accumulate in the metrics "
      "registry (--metrics / --metrics_csv)");
  table.Print(std::cout);
  session.AddManifestValue("replans_per_sec_best", best_rps);
  return session.Finish();
}
