// Figure 10: inter-Coflow sensitivity to the reconfiguration delay δ,
// normalized per coflow to the δ = 10 ms baseline (full trace replay,
// shortest-Coflow-first policy).
//
// Paper: average (p95) normalized CCT is 4.91 (7.22) at δ = 100 ms,
// 1.00 (1.00) at 10 ms, 0.65 (0.98) at 1 ms, 0.61 (0.98) at 100 µs and
// 0.61 (0.98) at 10 µs.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/policy.h"
#include "runtime/thread_pool.h"
#include "sim/engine/scenario.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  bench::BenchSession session(
      argc, argv,
      {.name = "fig10_delta_inter",
       .help = "Figure 10: inter sensitivity to delta",
       .banner = "Figure 10 — inter-Coflow CCT vs delta (normalized to 10ms)",
       .engine_default = "circuit"});
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();
  const std::string& engine_name = session.engine();

  const auto policy = MakeShortestFirstPolicy();

  // Each δ point is an independent whole-trace replay — fan them out and
  // normalize against the 10 ms entry once all points are in.
  const std::vector<std::pair<std::string, Time>> deltas = {
      {"100ms", Millis(100)}, {"10ms", Millis(10)},   {"1ms", Millis(1)},
      {"100us", Micros(100)}, {"10us", Micros(10)},
  };
  std::vector<engine::EngineResult> results(deltas.size());
  {
    runtime::ThreadPool pool(
        std::min<int>(threads, static_cast<int>(deltas.size())));
    pool.ParallelFor(0, deltas.size(), [&](std::size_t i) {
      engine::EngineConfig cfg;
      cfg.sunflow.bandwidth = Gbps(1);
      cfg.sunflow.delta = deltas[i].second;
      // Sample only the paper's reference point (δ = 10 ms): the other
      // points run concurrently and the sampler observes one replay.
      if (deltas[i].first == "10ms") cfg.timeline = session.timeline();
      results[i] = engine::ScenarioRegistry::Global().Run(
          engine_name, w.trace, policy.get(), cfg);
    });
  }
  const auto& base = results[1];  // the 10 ms point

  TextTable table("Sunflow inter-Coflow CCT w.r.t. 10ms baseline");
  table.SetHeader({"delta", "average", "p95"});
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    std::vector<double> normalized;
    for (const auto& [id, cct] : results[i].cct) {
      const double b = base.cct.at(id);
      if (b > 0) normalized.push_back(cct / b);
    }
    table.AddRow({deltas[i].first, TextTable::Fmt(stats::Mean(normalized), 2),
                  TextTable::Fmt(stats::Percentile(normalized, 95), 2)});
  }
  table.AddFootnote(
      "paper: avg 4.91 / 1.00 / 0.65 / 0.61 / 0.61; p95 7.22 / 1.00 / 0.98 "
      "/ 0.98 / 0.98");
  table.Print(std::cout);
  return session.Finish();
}
