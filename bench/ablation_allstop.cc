// Ablation (§2.1 / §3.1.2): how much the not-all-stop switch model matters.
//
// 1. The same Solstice schedules executed under not-all-stop vs all-stop:
//    the all-stop model pays a global δ at every assignment change.
// 2. Sunflow's inter-Coflow replay with and without circuit carry-over at
//    replan instants (DESIGN.md substitution #4).
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/policy.h"
#include "exp/intra_runner.h"
#include "runtime/thread_pool.h"
#include "sim/circuit_replay.h"
#include "sim/rotor_replay.h"
#include "trace/generator.h"

int main(int argc, char** argv) {
  using namespace sunflow;
  using namespace sunflow::exp;
  bench::BenchSession session(
      argc, argv,
      {.name = "ablation_allstop",
       .help = "Ablation: all-stop model and carry-over",
       .banner = "Ablation — switch model and replan carry-over"});
  if (session.done()) return 0;
  const bench::Workload& w = session.workload();
  const int threads = session.threads();

  {
    TextTable table("Solstice under the two switch models (CCT/TcL)");
    table.SetHeader({"executor", "mean", "p95", "max"});
    for (bool all_stop : {false, true}) {
      IntraRunConfig cfg;
      cfg.all_stop = all_stop;
      cfg.threads = threads;
      const auto run = RunIntra(w.trace, IntraAlgorithm::kSolstice, cfg);
      const auto ratios =
          run.Collect([](const IntraRecord& r) { return r.CctOverTcl(); });
      const auto s = stats::Summarize(ratios);
      table.AddRow({all_stop ? "all-stop" : "not-all-stop",
                    TextTable::Fmt(s.mean, 3), TextTable::Fmt(s.p95, 3),
                    TextTable::Fmt(s.max, 2)});
    }
    table.AddFootnote(
        "the all-stop model (classic TSA assumption) pays a global delta at "
        "every assignment change");
    table.Print(std::cout);
  }

  {
    TextTable table("Sunflow inter-Coflow replay: circuit carry-over");
    table.SetHeader({"carry-over", "avg CCT", "p95 CCT", "reservations"});
    const auto policy = MakeShortestFirstPolicy();
    // The two carry-over variants are independent replays — fan them out.
    const bool carry_options[] = {true, false};
    CircuitReplayResult replays[2];
    {
      runtime::ThreadPool pool(std::min(threads, 2));
      pool.ParallelFor(0, 2, [&](std::size_t i) {
        CircuitReplayConfig cfg;
        cfg.sunflow.bandwidth = Gbps(1);
        cfg.sunflow.delta = Millis(10);
        cfg.carry_over_circuits = carry_options[i];
        replays[i] = ReplayCircuitTrace(w.trace, *policy, cfg);
      });
    }
    for (std::size_t i = 0; i < 2; ++i) {
      const auto& result = replays[i];
      std::vector<double> ccts;
      for (const auto& [id, cct] : result.cct) ccts.push_back(cct);
      long long reservations = 0;
      for (const auto& [id, n] : result.reservations) reservations += n;
      table.AddRow({carry_options[i] ? "on" : "off",
                    TextTable::Fmt(stats::Mean(ccts), 3) + "s",
                    TextTable::Fmt(stats::Percentile(ccts, 95), 3) + "s",
                    std::to_string(reservations)});
    }
    table.AddFootnote(
        "without carry-over every replan re-pays delta for in-flight "
        "circuits");
    table.Print(std::cout);
  }
  {
    // Demand-aware scheduling vs blind Φ rotation, on a small workload
    // (rotor's 1/N duty cycle makes the full trace infeasible by design).
    SyntheticTraceConfig tc;
    tc.num_coflows = 30;
    tc.num_ports = 12;
    tc.horizon = 600.0;
    const Trace small = GenerateSyntheticTrace(tc);
    TextTable table("Demand-aware (Sunflow) vs blind rotation (rotor)");
    table.SetHeader({"scheduler", "avg CCT", "p95 CCT"});
    const auto policy = MakeShortestFirstPolicy();
    CircuitReplayConfig cc;
    const auto sun = ReplayCircuitTrace(small, *policy, cc);
    RotorReplayConfig rc;
    const auto rotor = ReplayRotorTrace(small, rc);
    for (const auto& [name, cct] :
         {std::pair{std::string("Sunflow (SCF)"), &sun.cct},
          std::pair{std::string("rotor (blind Φ rotation)"), &rotor.cct}}) {
      std::vector<double> values;
      for (const auto& [id, v] : *cct) values.push_back(v);
      table.AddRow({name, TextTable::Fmt(stats::Mean(values), 2) + "s",
                    TextTable::Fmt(stats::Percentile(values, 95), 2) + "s"});
    }
    table.AddFootnote(
        "rotor gives each port pair a 1/N duty cycle regardless of demand — "
        "the value of demand-aware circuit scheduling in one row");
    table.Print(std::cout);
  }
  return session.Finish();
}
