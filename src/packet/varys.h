// Varys (Chowdhury, Zhong, Stoica — SIGCOMM 2014): clairvoyant
// packet-switched coflow scheduling, the main inter-Coflow comparison of
// §5.4.
//
// SEBF (Smallest Effective Bottleneck First) orders coflows by their
// remaining bottleneck completion time; MADD (Minimum Allocation for
// Desired Duration) gives every flow of a coflow exactly the rate that
// makes all of its flows finish together at the coflow's effective
// bottleneck. Later coflows are backfilled with leftover capacity.
//
// Faithful to §5.4's discussion, rates are recomputed only on coflow
// arrivals and completions — a subflow finishing early leaves its bandwidth
// idle until the next rescheduling decision.
#pragma once

#include <memory>

#include "packet/fabric.h"

namespace sunflow::packet {

std::unique_ptr<RateAllocator> MakeVarysAllocator();

}  // namespace sunflow::packet
