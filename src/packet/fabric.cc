#include "packet/fabric.h"

#include <algorithm>

#include "common/assert.h"

namespace sunflow::packet {

Time ActiveCoflow::RemainingTpl(Bandwidth bandwidth) const {
  SUNFLOW_CHECK(bandwidth > 0);
  std::map<PortId, Bytes> in_load, out_load;
  for (const auto& f : flows) {
    if (f.done()) continue;
    in_load[f.src] += f.remaining;
    out_load[f.dst] += f.remaining;
  }
  Bytes busiest = 0;
  for (const auto& [p, v] : in_load) busiest = std::max(busiest, v);
  for (const auto& [p, v] : out_load) busiest = std::max(busiest, v);
  return busiest / bandwidth;
}

PortCapacity::PortCapacity(PortId num_ports, Bandwidth bandwidth)
    : in_(static_cast<std::size_t>(num_ports), bandwidth),
      out_(static_cast<std::size_t>(num_ports), bandwidth) {
  SUNFLOW_CHECK(num_ports > 0 && bandwidth > 0);
}

void PortCapacity::Consume(PortId src, PortId dst, Bandwidth rate) {
  SUNFLOW_CHECK(rate >= 0);
  auto& i = in_[static_cast<std::size_t>(src)];
  auto& o = out_[static_cast<std::size_t>(dst)];
  // Tolerate tiny FP overshoot, clamp at zero.
  SUNFLOW_CHECK_MSG(rate <= i * (1 + 1e-9) + 1e-6 &&
                        rate <= o * (1 + 1e-9) + 1e-6,
                    "rate exceeds port capacity");
  i = std::max(0.0, i - rate);
  o = std::max(0.0, o - rate);
}

void CheckRates(const std::vector<ActiveCoflow*>& active, PortId num_ports,
                Bandwidth bandwidth) {
  std::vector<Bandwidth> in(static_cast<std::size_t>(num_ports), 0);
  std::vector<Bandwidth> out(static_cast<std::size_t>(num_ports), 0);
  for (const ActiveCoflow* c : active) {
    for (const auto& f : c->flows) {
      SUNFLOW_CHECK(f.rate >= 0);
      in[static_cast<std::size_t>(f.src)] += f.rate;
      out[static_cast<std::size_t>(f.dst)] += f.rate;
    }
  }
  const Bandwidth limit = bandwidth * (1 + 1e-6);
  for (PortId p = 0; p < num_ports; ++p) {
    SUNFLOW_CHECK_MSG(in[static_cast<std::size_t>(p)] <= limit,
                      "input port " << p << " oversubscribed");
    SUNFLOW_CHECK_MSG(out[static_cast<std::size_t>(p)] <= limit,
                      "output port " << p << " oversubscribed");
  }
}

}  // namespace sunflow::packet
