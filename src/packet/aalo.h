// Aalo (Chowdhury, Stoica — SIGCOMM 2015): non-clairvoyant packet-switched
// coflow scheduling via D-CLAS (Discretized Coflow-aware Least-Attained
// Service), the second inter-Coflow comparison of §5.4.
//
// Coflows are placed in priority queues keyed by bytes *already sent*
// (attained service): queue q holds coflows with sent bytes in
// [q0·E^q, q0·E^{q+1}). Lower queues are served first; within a queue,
// FIFO by arrival. Aalo does not know flow sizes, so within a coflow the
// unfinished flows share capacity equally (no MADD) — the intra-Coflow
// inefficiency §5.4 observes for large coflows. A final backfill pass keeps
// the allocation work-conserving, approximating Aalo's weighted queue
// sharing with its strongly skewed default weights.
#pragma once

#include <memory>

#include "common/units.h"
#include "packet/fabric.h"

namespace sunflow::packet {

struct AaloConfig {
  Bytes first_queue_limit = 10e6;  ///< q0: 10 MB, Aalo's default
  double queue_spacing = 10.0;     ///< E: exponential spacing factor
  int num_queues = 10;             ///< K
  /// Cross-queue discipline. Strict priority (default) serves lower queues
  /// first with a work-conserving backfill — the strongest D-CLAS reading.
  /// With `weighted_queues`, each non-empty queue q is instead *guaranteed*
  /// a slice of every port proportional to queue_weight_decay^q (Aalo's
  /// weighted sharing), which deliberately leaks bandwidth to heavy
  /// coflows and weakens average CCT — closer to the deployed system.
  bool weighted_queues = false;
  double queue_weight_decay = 0.5;
};

std::unique_ptr<RateAllocator> MakeAaloAllocator(const AaloConfig& config = {});

/// Queue index for a coflow with `sent` attained bytes (exposed for tests
/// and for the replay engine's queue-crossing events).
int AaloQueueIndex(const AaloConfig& config, Bytes sent);

/// Attained-bytes threshold at which a coflow in queue `q` moves to q+1;
/// +inf for the last queue.
Bytes AaloNextThreshold(const AaloConfig& config, Bytes sent);

}  // namespace sunflow::packet
