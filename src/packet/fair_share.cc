#include "packet/fair_share.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/assert.h"

namespace sunflow::packet {

namespace {

class FairShareAllocator : public RateAllocator {
 public:
  const char* name() const override { return "per-flow-fair"; }

  void Allocate(std::vector<ActiveCoflow*>& active, PortId num_ports,
                Bandwidth bandwidth, Time /*now*/) override {
    struct Slot {
      FlowState* flow;
      bool frozen = false;
    };
    std::vector<Slot> slots;
    for (ActiveCoflow* c : active) {
      for (auto& f : c->flows) {
        f.rate = 0;
        if (!f.done()) slots.push_back({&f, false});
      }
    }
    std::vector<Bandwidth> in_left(static_cast<std::size_t>(num_ports),
                                   bandwidth);
    std::vector<Bandwidth> out_left(static_cast<std::size_t>(num_ports),
                                    bandwidth);

    // Progressive filling: raise every unfrozen flow's rate in lockstep
    // until a port saturates, freeze the flows crossing it, repeat.
    int unfrozen = static_cast<int>(slots.size());
    int guard = num_ports * 2 + 2;
    while (unfrozen > 0 && guard-- > 0) {
      // Unfrozen flow counts per port.
      std::vector<int> in_n(static_cast<std::size_t>(num_ports), 0);
      std::vector<int> out_n(static_cast<std::size_t>(num_ports), 0);
      for (const Slot& s : slots) {
        if (s.frozen) continue;
        ++in_n[static_cast<std::size_t>(s.flow->src)];
        ++out_n[static_cast<std::size_t>(s.flow->dst)];
      }
      // Largest uniform increment every unfrozen flow can take.
      Bandwidth inc = std::numeric_limits<Bandwidth>::infinity();
      for (PortId p = 0; p < num_ports; ++p) {
        if (in_n[static_cast<std::size_t>(p)] > 0)
          inc = std::min(inc, in_left[static_cast<std::size_t>(p)] /
                                  in_n[static_cast<std::size_t>(p)]);
        if (out_n[static_cast<std::size_t>(p)] > 0)
          inc = std::min(inc, out_left[static_cast<std::size_t>(p)] /
                                   out_n[static_cast<std::size_t>(p)]);
      }
      SUNFLOW_CHECK(std::isfinite(inc) && inc >= 0);
      for (Slot& s : slots) {
        if (s.frozen) continue;
        s.flow->rate += inc;
        in_left[static_cast<std::size_t>(s.flow->src)] -= inc;
        out_left[static_cast<std::size_t>(s.flow->dst)] -= inc;
      }
      // Freeze flows touching an exhausted port.
      for (Slot& s : slots) {
        if (s.frozen) continue;
        if (in_left[static_cast<std::size_t>(s.flow->src)] <= 1e-6 ||
            out_left[static_cast<std::size_t>(s.flow->dst)] <= 1e-6) {
          s.frozen = true;
          --unfrozen;
        }
      }
      if (inc <= 0) break;  // numeric floor: everything left is saturated
    }
    // Clamp tiny negative leftovers from the lockstep arithmetic.
    for (auto& v : in_left) v = std::max(0.0, v);
    for (auto& v : out_left) v = std::max(0.0, v);
  }
};

}  // namespace

std::unique_ptr<RateAllocator> MakeFairShareAllocator() {
  return std::make_unique<FairShareAllocator>();
}

}  // namespace sunflow::packet
