#include "packet/replay.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"
#include "packet/aalo.h"

namespace sunflow::packet {

namespace {

AaloConfig QueueConfig(const PacketReplayConfig& config) {
  AaloConfig q;
  q.first_queue_limit = config.first_queue_limit;
  q.queue_spacing = config.queue_spacing;
  q.num_queues = config.num_queues;
  return q;
}

ActiveCoflow MakeActive(const Coflow& coflow) {
  ActiveCoflow a;
  a.id = coflow.id();
  a.arrival = coflow.arrival();
  a.flows.reserve(coflow.size());
  for (const Flow& f : coflow.flows())
    a.flows.push_back({f.src, f.dst, f.bytes, f.bytes, 0});
  return a;
}

}  // namespace

PacketReplayResult ReplayPacketTrace(const Trace& trace,
                                     RateAllocator& allocator,
                                     const PacketReplayConfig& config) {
  SUNFLOW_CHECK(config.bandwidth > 0);
  trace.Validate();
  const AaloConfig queue_cfg = QueueConfig(config);

  PacketReplayResult result;
  std::vector<ActiveCoflow> active;
  active.reserve(trace.coflows.size());
  std::size_t next_arrival = 0;
  Time t = 0;

  auto reallocate = [&] {
    std::vector<ActiveCoflow*> ptrs;
    ptrs.reserve(active.size());
    for (auto& a : active) ptrs.push_back(&a);
    allocator.Allocate(ptrs, trace.num_ports, config.bandwidth, t);
    CheckRates(ptrs, trace.num_ports, config.bandwidth);
    ++result.reschedules;
  };

  // Safety valve: far above any event count a valid replay can produce.
  const std::size_t max_events = 1000 * (trace.coflows.size() + 1) *
                                     (trace.num_ports + 1) +
                                 1000000;
  std::size_t events = 0;

  while (!active.empty() || next_arrival < trace.coflows.size()) {
    SUNFLOW_CHECK_MSG(++events < max_events, "packet replay event explosion");

    if (active.empty()) {
      // Jump to the next arrival batch.
      t = std::max(t, trace.coflows[next_arrival].arrival());
      while (next_arrival < trace.coflows.size() &&
             trace.coflows[next_arrival].arrival() <= t + kTimeEps) {
        active.push_back(MakeActive(trace.coflows[next_arrival++]));
      }
      reallocate();
      continue;
    }

    // Horizon: next arrival, next flow completion, next queue crossing.
    Time t_next = kTimeInf;
    if (next_arrival < trace.coflows.size())
      t_next = trace.coflows[next_arrival].arrival();
    for (const auto& c : active) {
      Bandwidth total_rate = 0;
      for (const auto& f : c.flows) {
        if (f.done() || f.rate <= 0) continue;
        total_rate += f.rate;
        t_next = std::min(t_next, t + f.remaining / f.rate);
      }
      if (config.track_queue_crossings && total_rate > 0) {
        const Bytes threshold = AaloNextThreshold(queue_cfg, c.sent);
        if (std::isfinite(threshold)) {
          t_next = std::min(t_next, t + (threshold - c.sent) / total_rate);
        }
      }
    }
    SUNFLOW_CHECK_MSG(t_next < kTimeInf,
                      "packet replay stalled: active coflows but no rates "
                      "and no arrivals");

    // Drain linearly until the event.
    const Time dt = std::max(0.0, t_next - t);
    bool flow_completed = false;
    bool queue_crossed = false;
    for (auto& c : active) {
      const int q_before = AaloQueueIndex(queue_cfg, c.sent);
      for (auto& f : c.flows) {
        if (f.rate <= 0 || f.done()) continue;
        const Bytes moved = std::min(f.remaining, f.rate * dt);
        f.remaining -= moved;
        c.sent += moved;
        if (f.done()) {
          f.remaining = 0;
          f.rate = 0;
          flow_completed = true;
        }
      }
      if (config.track_queue_crossings &&
          AaloQueueIndex(queue_cfg, c.sent) != q_before) {
        queue_crossed = true;
      }
    }
    t = t_next;

    // Coflow completions.
    bool coflow_completed = false;
    for (auto it = active.begin(); it != active.end();) {
      if (it->done()) {
        result.cct[it->id] = t - it->arrival;
        result.completion[it->id] = t;
        result.makespan = std::max(result.makespan, t);
        it = active.erase(it);
        coflow_completed = true;
      } else {
        ++it;
      }
    }

    // Arrivals at this instant.
    bool arrived = false;
    while (next_arrival < trace.coflows.size() &&
           trace.coflows[next_arrival].arrival() <= t + kTimeEps) {
      active.push_back(MakeActive(trace.coflows[next_arrival++]));
      arrived = true;
    }

    const bool should_reallocate =
        arrived || coflow_completed ||
        (flow_completed && config.reallocate_on_flow_completion) ||
        (queue_crossed && config.track_queue_crossings);
    if (should_reallocate && !active.empty()) reallocate();
  }

  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

Time PacketSingleCoflowCct(const Coflow& coflow, RateAllocator& allocator,
                           const PacketReplayConfig& config) {
  Trace trace;
  trace.num_ports = std::max<PortId>(coflow.max_port(), 1);
  trace.coflows.push_back(coflow.WithArrival(0));
  const auto result = ReplayPacketTrace(trace, allocator, config);
  return result.cct.at(coflow.id());
}

}  // namespace sunflow::packet
