#include "packet/aalo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/assert.h"

namespace sunflow::packet {

// Attained-service values within half a byte of a threshold count as having
// crossed it: the replay advances time to the exact crossing instant, and
// floating-point drain can land infinitesimally below the limit, which
// would otherwise re-arm an ever-shrinking crossing event (a Zeno loop).
constexpr Bytes kQueueEps = 0.5;

int AaloQueueIndex(const AaloConfig& config, Bytes sent) {
  SUNFLOW_CHECK(config.first_queue_limit > 0 && config.queue_spacing > 1);
  Bytes limit = config.first_queue_limit;
  for (int q = 0; q < config.num_queues - 1; ++q) {
    if (sent < limit - kQueueEps) return q;
    limit *= config.queue_spacing;
  }
  return config.num_queues - 1;
}

Bytes AaloNextThreshold(const AaloConfig& config, Bytes sent) {
  Bytes limit = config.first_queue_limit;
  for (int q = 0; q < config.num_queues - 1; ++q) {
    if (sent < limit - kQueueEps) return limit;
    limit *= config.queue_spacing;
  }
  return std::numeric_limits<Bytes>::infinity();
}

namespace {

class AaloAllocator : public RateAllocator {
 public:
  explicit AaloAllocator(const AaloConfig& config) : config_(config) {}

  const char* name() const override { return "Aalo"; }

  void Allocate(std::vector<ActiveCoflow*>& active, PortId num_ports,
                Bandwidth bandwidth, Time /*now*/) override {
    // D-CLAS order: queue index ascending (least attained service first),
    // FIFO within a queue.
    std::vector<ActiveCoflow*> order = active;
    std::stable_sort(order.begin(), order.end(),
                     [&](const ActiveCoflow* a, const ActiveCoflow* b) {
                       const int qa = AaloQueueIndex(config_, a->sent);
                       const int qb = AaloQueueIndex(config_, b->sent);
                       if (qa != qb) return qa < qb;
                       if (a->arrival != b->arrival)
                         return a->arrival < b->arrival;
                       return a->id < b->id;
                     });

    for (ActiveCoflow* c : active)
      for (auto& f : c->flows) f.rate = 0;

    if (config_.weighted_queues) {
      WeightedAllocate(order, num_ports, bandwidth);
    } else {
      PortCapacity cap(num_ports, bandwidth);
      // Two passes: the first gives each coflow its fair-share slice in
      // priority order; the second backfills leftover capacity (work
      // conservation) in the same order.
      for (int pass = 0; pass < 2; ++pass) {
        for (ActiveCoflow* c : order) EqualShareAllocate(*c, cap);
      }
    }
  }

 private:
  // Flow sizes are unknown to Aalo, so every unfinished flow of the coflow
  // receives an equal split of the remaining capacity of its two ports
  // (the split counts this coflow's own contenders per port).
  static void EqualShareAllocate(ActiveCoflow& coflow, PortCapacity& cap) {
    std::map<PortId, int> in_count, out_count;
    for (const auto& f : coflow.flows) {
      if (f.done()) continue;
      ++in_count[f.src];
      ++out_count[f.dst];
    }
    for (auto& f : coflow.flows) {
      if (f.done()) continue;
      const Bandwidth share =
          std::min(cap.in(f.src) / in_count[f.src],
                   cap.out(f.dst) / out_count[f.dst]);
      if (share <= 1e-6) continue;
      f.rate += share;
      cap.Consume(f.src, f.dst, share);
    }
  }

  // Weighted cross-queue sharing: each round of allocation runs over the
  // non-empty queues with a per-queue capacity budget proportional to
  // decay^q, then a final unweighted backfill soaks the leftovers. The
  // guaranteed slice for lower-priority (heavier) queues is exactly what
  // delays small coflows relative to strict priority.
  void WeightedAllocate(const std::vector<ActiveCoflow*>& order,
                        PortId num_ports, Bandwidth bandwidth) {
    std::map<int, std::vector<ActiveCoflow*>> queues;
    for (ActiveCoflow* c : order)
      queues[AaloQueueIndex(config_, c->sent)].push_back(c);
    double total_weight = 0;
    for (const auto& [q, list] : queues)
      total_weight += std::pow(config_.queue_weight_decay, q);
    SUNFLOW_CHECK(total_weight > 0);

    PortCapacity cap(num_ports, bandwidth);
    // Pass 1: each queue gets its weighted share of the fabric, realized
    // as a scaled-down port capacity it may draw from.
    for (const auto& [q, list] : queues) {
      const double share =
          std::pow(config_.queue_weight_decay, q) / total_weight;
      PortCapacity queue_cap(num_ports, bandwidth * share);
      for (ActiveCoflow* c : list) {
        // Allocate inside the queue budget, mirrored against the global
        // capacity so port constraints hold across queues.
        std::map<PortId, int> in_count, out_count;
        for (const auto& f : c->flows) {
          if (f.done()) continue;
          ++in_count[f.src];
          ++out_count[f.dst];
        }
        for (auto& f : c->flows) {
          if (f.done()) continue;
          const Bandwidth r = std::min(
              {queue_cap.in(f.src) / in_count[f.src],
               queue_cap.out(f.dst) / out_count[f.dst], cap.in(f.src),
               cap.out(f.dst)});
          if (r <= 1e-6) continue;
          f.rate += r;
          queue_cap.Consume(f.src, f.dst, r);
          cap.Consume(f.src, f.dst, r);
        }
      }
    }
    // Pass 2: unweighted backfill in D-CLAS order (work conservation).
    for (ActiveCoflow* c : order) EqualShareAllocate(*c, cap);
  }

  AaloConfig config_;
};

}  // namespace

std::unique_ptr<RateAllocator> MakeAaloAllocator(const AaloConfig& config) {
  return std::make_unique<AaloAllocator>(config);
}

}  // namespace sunflow::packet
