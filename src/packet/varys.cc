#include "packet/varys.h"

#include <algorithm>
#include <map>

#include "common/assert.h"

namespace sunflow::packet {

namespace {

class VarysAllocator : public RateAllocator {
 public:
  const char* name() const override { return "Varys"; }

  void Allocate(std::vector<ActiveCoflow*>& active, PortId num_ports,
                Bandwidth bandwidth, Time /*now*/) override {
    // SEBF: serve in order of remaining bottleneck (at full bandwidth).
    std::vector<ActiveCoflow*> order = active;
    std::stable_sort(order.begin(), order.end(),
                     [&](const ActiveCoflow* a, const ActiveCoflow* b) {
                       const Time ta = a->RemainingTpl(bandwidth);
                       const Time tb = b->RemainingTpl(bandwidth);
                       if (ta != tb) return ta < tb;
                       if (a->arrival != b->arrival)
                         return a->arrival < b->arrival;
                       return a->id < b->id;
                     });

    PortCapacity cap(num_ports, bandwidth);
    for (ActiveCoflow* c : order) MaddAllocate(*c, cap);
  }

 private:
  // MADD with residual capacities: the effective bottleneck Γ is the
  // longest time any port needs to drain this coflow's remaining demand at
  // the capacity left over from more prioritized coflows; every flow then
  // gets remaining/Γ so all flows finish together at Γ.
  static void MaddAllocate(ActiveCoflow& coflow, PortCapacity& cap) {
    std::map<PortId, Bytes> in_load, out_load;
    for (auto& f : coflow.flows) {
      f.rate = 0;
      if (f.done()) continue;
      in_load[f.src] += f.remaining;
      out_load[f.dst] += f.remaining;
    }
    Time gamma = 0;
    bool blocked = false;
    auto account = [&](const std::map<PortId, Bytes>& load,
                       auto capacity_of) {
      for (const auto& [port, bytes] : load) {
        const Bandwidth avail = capacity_of(port);
        if (avail <= 1e-6) {
          blocked = true;  // a needed port is exhausted: coflow waits
          return;
        }
        gamma = std::max(gamma, bytes / avail);
      }
    };
    account(in_load, [&](PortId p) { return cap.in(p); });
    if (!blocked) account(out_load, [&](PortId p) { return cap.out(p); });
    if (blocked || gamma <= 0) return;

    for (auto& f : coflow.flows) {
      if (f.done()) continue;
      f.rate = f.remaining / gamma;
      cap.Consume(f.src, f.dst, f.rate);
    }
  }
};

}  // namespace

std::unique_ptr<RateAllocator> MakeVarysAllocator() {
  return std::make_unique<VarysAllocator>();
}

}  // namespace sunflow::packet
