// Trace replay on the fluid packet fabric (Varys / Aalo side of §5.4).
//
// Event-driven: rates are piecewise constant between events. Events are
// coflow arrivals, flow completions, coflow completions, and (for Aalo)
// attained-service queue crossings. The allocator is re-run according to
// its rescheduling discipline; in between, completed flows simply stop and
// leave their bandwidth idle — the Varys behaviour §5.4 calls out.
#pragma once

#include <map>
#include <memory>

#include "packet/fabric.h"
#include "trace/coflow.h"

namespace sunflow::packet {

struct PacketReplayConfig {
  Bandwidth bandwidth = Gbps(1);
  /// Re-run the allocator when an individual flow (not the whole coflow)
  /// completes. Varys: false (§5.4); Aalo: true (approximates its periodic
  /// share updates).
  bool reallocate_on_flow_completion = false;
  /// Re-run the allocator when a coflow crosses an attained-service queue
  /// threshold (Aalo only — pass the matching config).
  bool track_queue_crossings = false;
  Bytes first_queue_limit = 10e6;
  double queue_spacing = 10.0;
  int num_queues = 10;
};

struct PacketReplayResult {
  /// CCT per coflow (completion − arrival).
  std::map<CoflowId, Time> cct;
  /// Absolute completion time per coflow.
  std::map<CoflowId, Time> completion;
  Time makespan = 0;
  std::size_t reschedules = 0;
};

PacketReplayResult ReplayPacketTrace(const Trace& trace,
                                     RateAllocator& allocator,
                                     const PacketReplayConfig& config);

/// Convenience single-coflow run (intra-level sanity: Varys on one coflow
/// achieves exactly TpL).
Time PacketSingleCoflowCct(const Coflow& coflow, RateAllocator& allocator,
                           const PacketReplayConfig& config);

}  // namespace sunflow::packet
