// Fluid-flow packet fabric model (§2.1, "Electrical Packet Switch").
//
// At any instant each flow has a rate; the per-port constraints
// Σ_i b_ij ≤ B and Σ_j b_ij ≤ B must hold. Rate allocators (Varys, Aalo)
// set rates at rescheduling instants; between instants flows drain
// linearly. This is the same flow-level abstraction the paper's simulator
// uses for the packet-switched comparisons.
#pragma once

#include <map>
#include <vector>

#include "common/units.h"
#include "trace/coflow.h"

namespace sunflow::packet {

/// Mutable per-flow state during a replay.
struct FlowState {
  PortId src = 0;
  PortId dst = 0;
  Bytes total = 0;
  Bytes remaining = 0;
  Bandwidth rate = 0;

  bool done() const { return remaining <= kBytesEps; }
};

/// Mutable per-coflow state during a replay.
struct ActiveCoflow {
  CoflowId id = -1;
  Time arrival = 0;
  std::vector<FlowState> flows;
  Bytes sent = 0;  ///< total bytes already delivered (Aalo's queue key)

  Bytes remaining_bytes() const {
    Bytes r = 0;
    for (const auto& f : flows) r += f.remaining;
    return r;
  }
  bool done() const {
    for (const auto& f : flows)
      if (!f.done()) return false;
    return true;
  }
  /// Remaining packet lower bound: busiest-port remaining time at full B.
  Time RemainingTpl(Bandwidth bandwidth) const;
};

/// Tracks leftover capacity per port during one allocation round.
class PortCapacity {
 public:
  PortCapacity(PortId num_ports, Bandwidth bandwidth);

  Bandwidth in(PortId p) const { return in_[static_cast<std::size_t>(p)]; }
  Bandwidth out(PortId p) const { return out_[static_cast<std::size_t>(p)]; }

  /// Consumes `rate` on both ports; checks non-negative leftovers.
  void Consume(PortId src, PortId dst, Bandwidth rate);

 private:
  std::vector<Bandwidth> in_;
  std::vector<Bandwidth> out_;
};

/// Interface implemented by Varys and Aalo: assigns flow rates for all
/// active coflows. Called at every rescheduling instant with all rates
/// zeroed beforehand.
class RateAllocator {
 public:
  virtual ~RateAllocator() = default;
  virtual const char* name() const = 0;
  /// `active` is ordered by arrival; implementations impose their own
  /// service order internally. `now` supports attained-service policies.
  virtual void Allocate(std::vector<ActiveCoflow*>& active, PortId num_ports,
                        Bandwidth bandwidth, Time now) = 0;
};

/// Verifies the port constraints over the current rates; throws on
/// violation beyond tolerance.
void CheckRates(const std::vector<ActiveCoflow*>& active, PortId num_ports,
                Bandwidth bandwidth);

}  // namespace sunflow::packet
