// Per-flow max-min fair sharing — the "TCP-like" coflow-agnostic baseline.
//
// Every unfinished flow in the fabric gets its max-min fair rate subject to
// the per-port capacity constraints, with no notion of coflows at all. This
// is the classic strawman the coflow-scheduling literature (Varys §2,
// Aalo §2) compares against: fair per-flow sharing is typically far from
// minimizing coflow completion times because it splits bandwidth across
// coflows that should be serialized.
#pragma once

#include <memory>

#include "packet/fabric.h"

namespace sunflow::packet {

/// Progressive-filling max-min fairness over all unfinished flows.
std::unique_ptr<RateAllocator> MakeFairShareAllocator();

}  // namespace sunflow::packet
