#include "exp/intra_runner.h"

#include "common/assert.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "runtime/sweep.h"
#include "sched/executor.h"
#include "sim/engine/scenario.h"
#include "trace/bounds.h"
#include "trace/demand_matrix.h"

namespace sunflow::exp {

const char* ToString(IntraAlgorithm a) {
  switch (a) {
    case IntraAlgorithm::kSunflow:
      return "Sunflow";
    case IntraAlgorithm::kSolstice:
      return "Solstice";
    case IntraAlgorithm::kTms:
      return "TMS";
    case IntraAlgorithm::kEdmonds:
      return "Edmonds";
  }
  return "?";
}

std::vector<double> IntraRunResult::Collect(
    double (*fn)(const IntraRecord&)) const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(fn(r));
  return out;
}

namespace {

IntraRecord BaseRecord(const Coflow& coflow, const IntraRunConfig& config) {
  IntraRecord rec;
  rec.id = coflow.id();
  rec.category = coflow.category();
  rec.num_flows = coflow.size();
  rec.bytes = coflow.total_bytes();
  rec.pavg = coflow.AvgProcessingTime(config.bandwidth);
  rec.tcl = CircuitLowerBound(coflow, config.bandwidth, config.delta);
  rec.tpl = PacketLowerBound(coflow, config.bandwidth);
  return rec;
}

void RunSunflowOne(const Coflow& coflow, PortId num_ports,
                   const IntraRunConfig& config, IntraRecord& rec,
                   obs::TraceSink* sink) {
  SunflowConfig sc;
  sc.bandwidth = config.bandwidth;
  sc.delta = config.delta;
  sc.fabric = config.fabric;
  sc.order = config.order;
  sc.shuffle_seed = config.shuffle_seed;
  const Coflow at_zero = coflow.WithArrival(0);
  SunflowSchedule schedule;
  {
    // thread_local: GlobalMetrics() shards per thread (see obs/metrics.h).
    static thread_local obs::Histogram& compute_ns =
        obs::GlobalMetrics().GetHistogram("scheduler.sunflow.compute_ns");
    obs::ScopedTimer timer(compute_ns);
    schedule = ScheduleSingleCoflow(at_zero, num_ports, sc, sink);
  }
  rec.cct = schedule.completion_time.at(coflow.id());
  rec.switching_count = schedule.reservation_count.at(coflow.id());
}

// The --engine path: the coflow becomes a one-entry trace (arrival 0,
// matching the isolated-evaluation framing) replayed through the named
// kernel scenario. The driver emits admitted/completed itself, so the
// sweep lambda must not double-emit around this call.
void RunScenarioOne(const Coflow& coflow, PortId num_ports,
                    const IntraRunConfig& config, IntraRecord& rec,
                    obs::TraceSink* sink) {
  Trace one;
  one.num_ports = num_ports;
  one.coflows.push_back(coflow.WithArrival(0));
  engine::EngineConfig ec;
  ec.sunflow.bandwidth = config.bandwidth;
  ec.sunflow.delta = config.delta;
  ec.sunflow.fabric = config.fabric;
  ec.sunflow.order = config.order;
  ec.sunflow.shuffle_seed = config.shuffle_seed;
  ec.sink = sink;
  const auto policy = MakeShortestFirstPolicy();
  const engine::EngineResult er = engine::ScenarioRegistry::Global().Run(
      config.engine, one, policy.get(), ec);
  rec.cct = er.cct.at(coflow.id());
  auto it = er.reservations.find(coflow.id());
  if (it != er.reservations.end()) rec.switching_count = it->second;
}

void RunBaselineOne(const Coflow& coflow, IntraAlgorithm algorithm,
                    const IntraRunConfig& config, IntraRecord& rec,
                    obs::TraceSink* sink) {
  DemandMatrix demand(coflow, config.bandwidth);
  demand.MakeSquare();
  AssignmentSchedule schedule;
  switch (algorithm) {
    case IntraAlgorithm::kSolstice:
      schedule = ScheduleSolstice(demand, config.solstice);
      break;
    case IntraAlgorithm::kTms:
      schedule = ScheduleTms(demand, config.tms);
      break;
    case IntraAlgorithm::kEdmonds:
      schedule = ScheduleEdmonds(demand, config.edmonds);
      break;
    case IntraAlgorithm::kSunflow:
      SUNFLOW_CHECK(false);
  }
  const ExecutionResult exec =
      config.all_stop ? ExecuteAllStop(demand, schedule, config.delta,
                                       /*start=*/0, sink, coflow.id())
                      : ExecuteNotAllStop(demand, schedule, config.delta,
                                          /*start=*/0, sink, coflow.id());
  rec.cct = exec.cct;
  rec.switching_count = exec.circuit_setups;
}

}  // namespace

IntraRunResult RunIntra(const Trace& trace, IntraAlgorithm algorithm,
                        const IntraRunConfig& config) {
  IntraRunResult result;
  result.algorithm = ToString(algorithm);
  result.config = config;

  // Each coflow is evaluated in isolation, which makes this the canonical
  // sweep: one task per coflow, records written to their own slots, events
  // buffered per task. Results are bit-identical at any thread count.
  runtime::SweepConfig sweep_cfg;
  sweep_cfg.threads = config.threads;
  sweep_cfg.base_seed = config.shuffle_seed;
  runtime::SweepRunner runner(sweep_cfg);
  const bool engine_path =
      algorithm == IntraAlgorithm::kSunflow && !config.engine.empty();
  auto sweep = runner.Run<IntraRecord>(
      trace.coflows.size(), config.sink != nullptr,
      [&](runtime::TaskContext& ctx) {
        const Coflow& coflow = trace.coflows[ctx.index];
        IntraRecord rec = BaseRecord(coflow, config);
        // On the kernel path the replay driver emits admitted/completed;
        // emitting here as well would duplicate them in the merged stream.
        if (ctx.sink != nullptr && !engine_path) {
          obs::Emit(ctx.sink, {.type = obs::EventType::kCoflowAdmitted,
                               .t = 0,
                               .coflow = coflow.id()});
        }
        if (engine_path) {
          RunScenarioOne(coflow, trace.num_ports, config, rec, ctx.sink);
        } else if (algorithm == IntraAlgorithm::kSunflow) {
          RunSunflowOne(coflow, trace.num_ports, config, rec, ctx.sink);
        } else {
          RunBaselineOne(coflow, algorithm, config, rec, ctx.sink);
        }
        if (ctx.sink != nullptr && !engine_path) {
          obs::Emit(ctx.sink, {.type = obs::EventType::kCoflowCompleted,
                               .t = rec.cct,
                               .coflow = coflow.id(),
                               .value = rec.cct});
        }
        return rec;
      });
  result.records = std::move(sweep.results);

  // The paper's framing is sequential ("a Coflow arrives only after the
  // previous one is finished"): merge the per-task buffers in task order,
  // shifting each coflow onto the shared end-to-end clock — the same
  // stream a serial run emits through an OffsetSink.
  if (config.sink != nullptr) {
    obs::OffsetSink sequenced(config.sink);
    Time clock = 0;
    for (std::size_t i = 0; i < sweep.events.size(); ++i) {
      sequenced.set_offset(clock);
      for (const obs::Event& e : sweep.events[i]) sequenced.OnEvent(e);
      clock += result.records[i].cct;
    }
  }
  return result;
}

bool IsLongCoflow(const IntraRecord& record, Time delta, double multiple) {
  return record.pavg > multiple * delta;
}

bool IsLongCoflow(Time pavg, Time delta, double multiple) {
  return pavg > multiple * delta;
}

}  // namespace sunflow::exp
