#include "exp/intra_runner.h"

#include "common/assert.h"
#include "obs/metrics.h"
#include "sched/executor.h"
#include "trace/bounds.h"
#include "trace/demand_matrix.h"

namespace sunflow::exp {

const char* ToString(IntraAlgorithm a) {
  switch (a) {
    case IntraAlgorithm::kSunflow:
      return "Sunflow";
    case IntraAlgorithm::kSolstice:
      return "Solstice";
    case IntraAlgorithm::kTms:
      return "TMS";
    case IntraAlgorithm::kEdmonds:
      return "Edmonds";
  }
  return "?";
}

std::vector<double> IntraRunResult::Collect(
    double (*fn)(const IntraRecord&)) const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(fn(r));
  return out;
}

namespace {

IntraRecord BaseRecord(const Coflow& coflow, const IntraRunConfig& config) {
  IntraRecord rec;
  rec.id = coflow.id();
  rec.category = coflow.category();
  rec.num_flows = coflow.size();
  rec.bytes = coflow.total_bytes();
  rec.pavg = coflow.AvgProcessingTime(config.bandwidth);
  rec.tcl = CircuitLowerBound(coflow, config.bandwidth, config.delta);
  rec.tpl = PacketLowerBound(coflow, config.bandwidth);
  return rec;
}

void RunSunflowOne(const Coflow& coflow, PortId num_ports,
                   const IntraRunConfig& config, IntraRecord& rec,
                   obs::TraceSink* sink) {
  SunflowConfig sc;
  sc.bandwidth = config.bandwidth;
  sc.delta = config.delta;
  sc.order = config.order;
  sc.shuffle_seed = config.shuffle_seed;
  const Coflow at_zero = coflow.WithArrival(0);
  SunflowSchedule schedule;
  {
    static obs::Histogram& compute_ns =
        obs::GlobalMetrics().GetHistogram("scheduler.sunflow.compute_ns");
    obs::ScopedTimer timer(compute_ns);
    schedule = ScheduleSingleCoflow(at_zero, num_ports, sc, sink);
  }
  rec.cct = schedule.completion_time.at(coflow.id());
  rec.switching_count = schedule.reservation_count.at(coflow.id());
}

void RunBaselineOne(const Coflow& coflow, IntraAlgorithm algorithm,
                    const IntraRunConfig& config, IntraRecord& rec,
                    obs::TraceSink* sink) {
  DemandMatrix demand(coflow, config.bandwidth);
  demand.MakeSquare();
  AssignmentSchedule schedule;
  switch (algorithm) {
    case IntraAlgorithm::kSolstice:
      schedule = ScheduleSolstice(demand, config.solstice);
      break;
    case IntraAlgorithm::kTms:
      schedule = ScheduleTms(demand, config.tms);
      break;
    case IntraAlgorithm::kEdmonds:
      schedule = ScheduleEdmonds(demand, config.edmonds);
      break;
    case IntraAlgorithm::kSunflow:
      SUNFLOW_CHECK(false);
  }
  const ExecutionResult exec =
      config.all_stop ? ExecuteAllStop(demand, schedule, config.delta,
                                       /*start=*/0, sink, coflow.id())
                      : ExecuteNotAllStop(demand, schedule, config.delta,
                                          /*start=*/0, sink, coflow.id());
  rec.cct = exec.cct;
  rec.switching_count = exec.circuit_setups;
}

}  // namespace

IntraRunResult RunIntra(const Trace& trace, IntraAlgorithm algorithm,
                        const IntraRunConfig& config) {
  IntraRunResult result;
  result.algorithm = ToString(algorithm);
  result.config = config;
  result.records.reserve(trace.coflows.size());
  // Intra mode evaluates coflows in isolation but the paper's framing is
  // sequential; the tracer sees them laid end-to-end on one clock.
  obs::OffsetSink sequenced(config.sink);
  obs::TraceSink* sink = config.sink != nullptr ? &sequenced : nullptr;
  Time clock = 0;
  for (const Coflow& coflow : trace.coflows) {
    IntraRecord rec = BaseRecord(coflow, config);
    sequenced.set_offset(clock);
    if (sink != nullptr) {
      obs::Emit(sink, {.type = obs::EventType::kCoflowAdmitted,
                       .t = 0,
                       .coflow = coflow.id()});
    }
    if (algorithm == IntraAlgorithm::kSunflow) {
      RunSunflowOne(coflow, trace.num_ports, config, rec, sink);
    } else {
      RunBaselineOne(coflow, algorithm, config, rec, sink);
    }
    if (sink != nullptr) {
      obs::Emit(sink, {.type = obs::EventType::kCoflowCompleted,
                       .t = rec.cct,
                       .coflow = coflow.id(),
                       .value = rec.cct});
    }
    clock += rec.cct;
    result.records.push_back(rec);
  }
  return result;
}

bool IsLongCoflow(const IntraRecord& record, Time delta, double multiple) {
  return record.pavg > multiple * delta;
}

bool IsLongCoflow(Time pavg, Time delta, double multiple) {
  return pavg > multiple * delta;
}

}  // namespace sunflow::exp
