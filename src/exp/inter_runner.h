// Inter-Coflow experiment runner (§5.4).
//
// Replays the full trace (arrival times included) under Sunflow with the
// shortest-Coflow-first policy on the circuit switch, and under Varys and
// Aalo on the packet switch, and aligns the per-coflow CCTs for ratio /
// difference analysis (Figs 8–10 and the §5.4 ratio paragraphs).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/fabric.h"
#include "sim/circuit_replay.h"
#include "trace/coflow.h"
#include "trace/source.h"

namespace sunflow::obs {
class TimelineSampler;
}  // namespace sunflow::obs

namespace sunflow::exp {

struct InterRunConfig {
  Bandwidth bandwidth = Gbps(1);
  Time delta = Millis(10);
  /// Switch-plane layout for the optical arm (core/fabric.h). Empty =
  /// classic single-plane fabric; Uniform(1, delta, bandwidth) is
  /// byte-identical to empty (the K=1 equivalence contract).
  FabricSpec fabric;
  bool carry_over_circuits = true;
  /// Named kernel scenario (sim/engine registry) for the optical-switch
  /// arm of the comparison. "circuit" is the paper's Sunflow replay;
  /// other registered scenarios ("guarded", "rotor", "hybrid") slot in
  /// unchanged for ablations. Benches wire the shared --engine flag here.
  std::string engine = "circuit";
  bool run_varys = true;
  bool run_aalo = true;
  /// Optional structured event tracer for the Sunflow circuit replay
  /// (packet baselines are not traced).
  obs::TraceSink* sink = nullptr;
  /// Optional sim-time telemetry sampler for the Sunflow circuit replay
  /// (obs/timeline.h; packet baselines are not sampled). Not owned.
  obs::TimelineSampler* timeline = nullptr;
  /// Worker threads. The three replays (Sunflow circuit, Varys, Aalo) are
  /// independent whole-trace simulations, so they fan out across up to
  /// three workers; each writes its own CCT map, keeping the comparison
  /// bit-identical at any thread count. 1 (default) runs serially inline,
  /// <= 0 uses all hardware threads. Benches wire the --threads flag here.
  int threads = 1;
};

struct InterComparison {
  /// Per-coflow CCT under each scheme (same key set: all trace coflows).
  std::map<CoflowId, Time> sunflow;
  std::map<CoflowId, Time> varys;
  std::map<CoflowId, Time> aalo;
  /// Per-coflow static TpL at the run bandwidth (Fig 7/9 x-axis; long/short
  /// split) and pavg.
  std::map<CoflowId, Time> tpl;
  std::map<CoflowId, Time> pavg;

  double AvgCct(const std::map<CoflowId, Time>& cct) const;
  /// Per-coflow ratios a/b for every coflow present in both maps.
  static std::vector<double> Ratios(const std::map<CoflowId, Time>& a,
                                    const std::map<CoflowId, Time>& b);
  /// Per-coflow differences a−b (Fig 9's ΔCCT).
  static std::vector<double> Differences(const std::map<CoflowId, Time>& a,
                                         const std::map<CoflowId, Time>& b);
};

InterComparison RunInterComparison(const Trace& trace,
                                   const InterRunConfig& config);

/// Out-of-core variant: replays the optical arm only, pulling arrivals
/// from `source` (arrival-ordered; a TraceReader over a sorted stream
/// file) — the packet baselines need the whole trace resident, so
/// config.run_varys/run_aalo must be false. tpl/pavg are computed per
/// coflow as it streams past. Engine memory is O(active set); the
/// returned per-coflow maps are O(trace) by the InterComparison contract
/// (they ARE the product). Supports the "circuit", "guarded" and "rotor"
/// scenarios (composites orchestrate whole traces). Byte-identical
/// sunflow/tpl/pavg maps to RunInterComparison on the same sequence.
InterComparison RunInterComparisonStreamed(CoflowSource& source,
                                           const InterRunConfig& config);

}  // namespace sunflow::exp
