#include "exp/inter_runner.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/assert.h"
#include "core/policy.h"
#include "packet/aalo.h"
#include "packet/replay.h"
#include "packet/varys.h"
#include "runtime/thread_pool.h"
#include "sim/engine/scenario.h"
#include "trace/bounds.h"

namespace sunflow::exp {

double InterComparison::AvgCct(const std::map<CoflowId, Time>& cct) const {
  if (cct.empty()) return 0;
  Time total = 0;
  for (const auto& [id, t] : cct) total += t;
  return total / static_cast<double>(cct.size());
}

std::vector<double> InterComparison::Ratios(
    const std::map<CoflowId, Time>& a, const std::map<CoflowId, Time>& b) {
  std::vector<double> out;
  out.reserve(a.size());
  for (const auto& [id, va] : a) {
    auto it = b.find(id);
    if (it == b.end() || it->second <= 0) continue;
    out.push_back(va / it->second);
  }
  return out;
}

std::vector<double> InterComparison::Differences(
    const std::map<CoflowId, Time>& a, const std::map<CoflowId, Time>& b) {
  std::vector<double> out;
  out.reserve(a.size());
  for (const auto& [id, va] : a) {
    auto it = b.find(id);
    if (it == b.end()) continue;
    out.push_back(va - it->second);
  }
  return out;
}

InterComparison RunInterComparison(const Trace& trace,
                                   const InterRunConfig& config) {
  InterComparison cmp;
  for (const Coflow& c : trace.coflows) {
    cmp.tpl[c.id()] = PacketLowerBound(c, config.bandwidth);
    cmp.pavg[c.id()] = c.AvgProcessingTime(config.bandwidth);
  }

  // The three replays are independent whole-trace simulations writing
  // disjoint maps — fan them out. Only the Sunflow replay carries the
  // caller's sink, so the one-sink-per-task contract holds. The same pool
  // also serves as the Sunflow replay's intra-replan plan pool: its group
  // planning nests a ParallelFor inside the replay task, which the pool's
  // work-stealing wait makes deadlock-free at any size.
  const int threads =
      config.threads <= 0 ? runtime::HardwareConcurrency() : config.threads;
  runtime::ThreadPool pool(threads);
  std::vector<std::function<void()>> replays;
  replays.push_back([&] {
    engine::EngineConfig ec;
    ec.sunflow.bandwidth = config.bandwidth;
    ec.sunflow.delta = config.delta;
    ec.sunflow.fabric = config.fabric;
    ec.carry_over_circuits = config.carry_over_circuits;
    ec.sink = config.sink;
    ec.timeline = config.timeline;
    ec.plan_pool = &pool;
    const auto policy = MakeShortestFirstPolicy();
    cmp.sunflow = engine::ScenarioRegistry::Global()
                      .Run(config.engine, trace, policy.get(), ec)
                      .cct;
  });
  if (config.run_varys) {
    replays.push_back([&] {
      packet::PacketReplayConfig pc;
      pc.bandwidth = config.bandwidth;
      pc.reallocate_on_flow_completion = false;  // §5.4's Varys behaviour
      auto varys = packet::MakeVarysAllocator();
      cmp.varys = packet::ReplayPacketTrace(trace, *varys, pc).cct;
    });
  }
  if (config.run_aalo) {
    replays.push_back([&] {
      packet::PacketReplayConfig pc;
      pc.bandwidth = config.bandwidth;
      pc.reallocate_on_flow_completion = true;
      pc.track_queue_crossings = true;
      auto aalo = packet::MakeAaloAllocator();
      cmp.aalo = packet::ReplayPacketTrace(trace, *aalo, pc).cct;
    });
  }
  pool.ParallelFor(0, replays.size(),
                   [&](std::size_t i) { replays[i](); });
  return cmp;
}

}  // namespace sunflow::exp
