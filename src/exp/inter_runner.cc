#include "exp/inter_runner.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "core/policy.h"
#include "packet/aalo.h"
#include "packet/replay.h"
#include "packet/varys.h"
#include "runtime/thread_pool.h"
#include "sim/engine/driver.h"
#include "sim/engine/scenario.h"
#include "trace/bounds.h"

namespace sunflow::exp {

double InterComparison::AvgCct(const std::map<CoflowId, Time>& cct) const {
  if (cct.empty()) return 0;
  Time total = 0;
  for (const auto& [id, t] : cct) total += t;
  return total / static_cast<double>(cct.size());
}

std::vector<double> InterComparison::Ratios(
    const std::map<CoflowId, Time>& a, const std::map<CoflowId, Time>& b) {
  std::vector<double> out;
  out.reserve(a.size());
  for (const auto& [id, va] : a) {
    auto it = b.find(id);
    if (it == b.end() || it->second <= 0) continue;
    out.push_back(va / it->second);
  }
  return out;
}

std::vector<double> InterComparison::Differences(
    const std::map<CoflowId, Time>& a, const std::map<CoflowId, Time>& b) {
  std::vector<double> out;
  out.reserve(a.size());
  for (const auto& [id, va] : a) {
    auto it = b.find(id);
    if (it == b.end()) continue;
    out.push_back(va - it->second);
  }
  return out;
}

InterComparison RunInterComparison(const Trace& trace,
                                   const InterRunConfig& config) {
  InterComparison cmp;
  for (const Coflow& c : trace.coflows) {
    cmp.tpl[c.id()] = PacketLowerBound(c, config.bandwidth);
    cmp.pavg[c.id()] = c.AvgProcessingTime(config.bandwidth);
  }

  // The three replays are independent whole-trace simulations writing
  // disjoint maps — fan them out. Only the Sunflow replay carries the
  // caller's sink, so the one-sink-per-task contract holds. The same pool
  // also serves as the Sunflow replay's intra-replan plan pool: its group
  // planning nests a ParallelFor inside the replay task, which the pool's
  // work-stealing wait makes deadlock-free at any size.
  const int threads =
      config.threads <= 0 ? runtime::HardwareConcurrency() : config.threads;
  runtime::ThreadPool pool(threads);
  std::vector<std::function<void()>> replays;
  replays.push_back([&] {
    engine::EngineConfig ec;
    ec.sunflow.bandwidth = config.bandwidth;
    ec.sunflow.delta = config.delta;
    ec.sunflow.fabric = config.fabric;
    ec.carry_over_circuits = config.carry_over_circuits;
    ec.sink = config.sink;
    ec.timeline = config.timeline;
    ec.plan_pool = &pool;
    const auto policy = MakeShortestFirstPolicy();
    cmp.sunflow = engine::ScenarioRegistry::Global()
                      .Run(config.engine, trace, policy.get(), ec)
                      .cct;
  });
  if (config.run_varys) {
    replays.push_back([&] {
      packet::PacketReplayConfig pc;
      pc.bandwidth = config.bandwidth;
      pc.reallocate_on_flow_completion = false;  // §5.4's Varys behaviour
      auto varys = packet::MakeVarysAllocator();
      cmp.varys = packet::ReplayPacketTrace(trace, *varys, pc).cct;
    });
  }
  if (config.run_aalo) {
    replays.push_back([&] {
      packet::PacketReplayConfig pc;
      pc.bandwidth = config.bandwidth;
      pc.reallocate_on_flow_completion = true;
      pc.track_queue_crossings = true;
      auto aalo = packet::MakeAaloAllocator();
      cmp.aalo = packet::ReplayPacketTrace(trace, *aalo, pc).cct;
    });
  }
  pool.ParallelFor(0, replays.size(),
                   [&](std::size_t i) { replays[i](); });
  return cmp;
}

namespace {

/// Forwards a source while recording each coflow's TpL / pavg — the
/// comparison's x-axis columns — so the streamed path fills the same
/// maps the whole-trace path precomputes, without a second pass.
class BoundsTeeSource final : public CoflowSource {
 public:
  BoundsTeeSource(CoflowSource& inner, InterComparison& cmp, Bandwidth b)
      : inner_(&inner), cmp_(&cmp), bandwidth_(b) {}

  PortId num_ports() const override { return inner_->num_ports(); }
  std::optional<std::uint64_t> size_hint() const override {
    return inner_->size_hint();
  }
  bool Next(Coflow& out) override {
    if (!inner_->Next(out)) return false;
    cmp_->tpl[out.id()] = PacketLowerBound(out, bandwidth_);
    cmp_->pavg[out.id()] = out.AvgProcessingTime(bandwidth_);
    return true;
  }

 private:
  CoflowSource* inner_;
  InterComparison* cmp_;
  Bandwidth bandwidth_;
};

}  // namespace

InterComparison RunInterComparisonStreamed(CoflowSource& source,
                                           const InterRunConfig& config) {
  SUNFLOW_CHECK_MSG(!config.run_varys && !config.run_aalo,
                    "packet baselines need the whole trace in memory; "
                    "disable run_varys/run_aalo for streamed runs");
  InterComparison cmp;
  engine::EngineConfig ec;
  ec.sunflow.bandwidth = config.bandwidth;
  ec.sunflow.delta = config.delta;
  ec.sunflow.fabric = config.fabric;
  ec.carry_over_circuits = config.carry_over_circuits;
  ec.sink = config.sink;
  ec.timeline = config.timeline;
  const int threads =
      config.threads <= 0 ? runtime::HardwareConcurrency() : config.threads;
  runtime::ThreadPool pool(threads);
  ec.plan_pool = &pool;

  const auto policy = MakeShortestFirstPolicy();
  std::unique_ptr<engine::ScenarioPolicy> scenario;
  if (config.engine == "circuit") {
    scenario = engine::MakeCircuitScenario(source.num_ports(), *policy, ec);
  } else if (config.engine == "guarded") {
    scenario = engine::MakeGuardScenario(source.num_ports(), *policy, ec);
  } else if (config.engine == "rotor") {
    scenario = engine::MakeRotorScenario(source.num_ports(), ec);
  } else {
    SUNFLOW_CHECK_MSG(false,
                      "streamed replay supports circuit/guarded/rotor only");
  }
  BoundsTeeSource tee(source, cmp, config.bandwidth);
  cmp.sunflow =
      engine::RunScenarioStream(tee, *scenario, config.sink, config.timeline)
          .cct;
  return cmp;
}

}  // namespace sunflow::exp
