#include "exp/inter_runner.h"

#include "common/assert.h"
#include "packet/aalo.h"
#include "packet/replay.h"
#include "packet/varys.h"
#include "trace/bounds.h"

namespace sunflow::exp {

double InterComparison::AvgCct(const std::map<CoflowId, Time>& cct) const {
  if (cct.empty()) return 0;
  Time total = 0;
  for (const auto& [id, t] : cct) total += t;
  return total / static_cast<double>(cct.size());
}

std::vector<double> InterComparison::Ratios(
    const std::map<CoflowId, Time>& a, const std::map<CoflowId, Time>& b) {
  std::vector<double> out;
  out.reserve(a.size());
  for (const auto& [id, va] : a) {
    auto it = b.find(id);
    if (it == b.end() || it->second <= 0) continue;
    out.push_back(va / it->second);
  }
  return out;
}

std::vector<double> InterComparison::Differences(
    const std::map<CoflowId, Time>& a, const std::map<CoflowId, Time>& b) {
  std::vector<double> out;
  out.reserve(a.size());
  for (const auto& [id, va] : a) {
    auto it = b.find(id);
    if (it == b.end()) continue;
    out.push_back(va - it->second);
  }
  return out;
}

InterComparison RunInterComparison(const Trace& trace,
                                   const InterRunConfig& config) {
  InterComparison cmp;
  for (const Coflow& c : trace.coflows) {
    cmp.tpl[c.id()] = PacketLowerBound(c, config.bandwidth);
    cmp.pavg[c.id()] = c.AvgProcessingTime(config.bandwidth);
  }

  {
    CircuitReplayConfig rc;
    rc.sunflow.bandwidth = config.bandwidth;
    rc.sunflow.delta = config.delta;
    rc.carry_over_circuits = config.carry_over_circuits;
    rc.sink = config.sink;
    const auto policy = MakeShortestFirstPolicy();
    cmp.sunflow = ReplayCircuitTrace(trace, *policy, rc).cct;
  }
  if (config.run_varys) {
    packet::PacketReplayConfig pc;
    pc.bandwidth = config.bandwidth;
    pc.reallocate_on_flow_completion = false;  // §5.4's Varys behaviour
    auto varys = packet::MakeVarysAllocator();
    cmp.varys = packet::ReplayPacketTrace(trace, *varys, pc).cct;
  }
  if (config.run_aalo) {
    packet::PacketReplayConfig pc;
    pc.bandwidth = config.bandwidth;
    pc.reallocate_on_flow_completion = true;
    pc.track_queue_crossings = true;
    auto aalo = packet::MakeAaloAllocator();
    cmp.aalo = packet::ReplayPacketTrace(trace, *aalo, pc).cct;
  }
  return cmp;
}

}  // namespace sunflow::exp
