#include "exp/csv_export.h"

#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace sunflow::exp {

void WriteCsv(const std::string& path, const std::vector<CsvColumn>& columns) {
  if (columns.empty()) throw std::runtime_error("WriteCsv: no columns");
  const std::size_t rows = columns.front().values.size();
  for (const auto& c : columns) {
    if (c.values.size() != rows)
      throw std::runtime_error("WriteCsv: ragged columns (" + c.name + ")");
  }
  std::ofstream f(path);
  if (!f) throw std::runtime_error("WriteCsv: cannot open " + path);
  f.precision(12);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    f << (c ? "," : "") << columns[c].name;
  }
  f << "\n";
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      f << (c ? "," : "") << columns[c].values[r];
    }
    f << "\n";
  }
}

void WriteMetricsCsv(const std::string& path,
                     const obs::MetricsRegistry& registry) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("WriteMetricsCsv: cannot open " + path);
  f.precision(12);
  f << "name,kind,count,value,mean,p50,p95,max\n";
  for (const obs::MetricRow& row : registry.Rows()) {
    f << row.name << "," << row.kind << "," << row.count << "," << row.value
      << "," << row.mean << "," << row.p50 << "," << row.p95 << "," << row.max
      << "\n";
  }
  if (!f.good())
    throw std::runtime_error("WriteMetricsCsv: error writing " + path);
}

}  // namespace sunflow::exp
