// Per-coflow CSV export so the paper's scatter plots (Figs 3, 7, 9) can be
// regenerated with any plotting tool. Bench binaries expose this through
// a --csv_out flag.
#pragma once

#include <string>
#include <vector>

namespace sunflow::exp {

/// One named column of per-coflow values; all columns must be equal length.
struct CsvColumn {
  std::string name;
  std::vector<double> values;
};

/// Writes "name1,name2,...\n" then one row per index. Throws
/// std::runtime_error if the file cannot be opened or lengths mismatch.
void WriteCsv(const std::string& path, const std::vector<CsvColumn>& columns);

}  // namespace sunflow::exp
