// Per-coflow CSV export so the paper's scatter plots (Figs 3, 7, 9) can be
// regenerated with any plotting tool. Bench binaries expose this through
// a --csv_out flag. Also exports the obs metrics registry (counters,
// gauges, histograms) in the same spirit via --metrics_csv.
#pragma once

#include <string>
#include <vector>

namespace sunflow::obs {
class MetricsRegistry;
}  // namespace sunflow::obs

namespace sunflow::exp {

/// One named column of per-coflow values; all columns must be equal length.
struct CsvColumn {
  std::string name;
  std::vector<double> values;
};

/// Writes "name1,name2,...\n" then one row per index. Throws
/// std::runtime_error if the file cannot be opened or lengths mismatch.
void WriteCsv(const std::string& path, const std::vector<CsvColumn>& columns);

/// Dumps a metrics registry as CSV: one row per instrument with columns
/// name,kind,count,value,mean,p50,p95,max (histogram-only columns are 0
/// for counters/gauges). Throws std::runtime_error on I/O failure.
void WriteMetricsCsv(const std::string& path,
                     const obs::MetricsRegistry& registry);

}  // namespace sunflow::exp
