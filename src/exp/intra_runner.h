// Intra-Coflow experiment runner (§5.3).
//
// Evaluates each coflow of a trace in isolation ("a Coflow arrives only
// after the previous one is finished"): for each coflow it records the
// lower bounds, the CCT achieved by the chosen algorithm, and the circuit
// switching count. These records feed Figs 3–7 and the ordering and
// all-stop ablations.
#pragma once

#include <string>
#include <vector>

#include "core/fabric.h"
#include "core/sunflow.h"
#include "obs/trace_sink.h"
#include "sched/edmonds.h"
#include "sched/solstice.h"
#include "sched/tms.h"
#include "trace/coflow.h"

namespace sunflow::exp {

enum class IntraAlgorithm { kSunflow, kSolstice, kTms, kEdmonds };

const char* ToString(IntraAlgorithm a);

struct IntraRunConfig {
  Bandwidth bandwidth = Gbps(1);
  Time delta = Millis(10);
  /// Sunflow only: switch-plane layout (core/fabric.h). Empty = classic
  /// single-plane fabric; Uniform(1, delta, bandwidth) is byte-identical
  /// to empty (the K=1 equivalence contract the golden suite pins).
  FabricSpec fabric;
  /// Sunflow only: reservation ordering (§5.3.1 sensitivity).
  ReservationOrder order = ReservationOrder::kOrderedPort;
  std::uint64_t shuffle_seed = 1;
  /// Sunflow only: named kernel scenario (sim/engine registry) to replay
  /// each coflow through. Empty (default) keeps the direct single-coflow
  /// planner + executor path; a name (e.g. "circuit") routes the coflow
  /// through the shared discrete-event kernel instead, whose driver then
  /// emits the admitted/completed events. Baseline algorithms ignore it.
  std::string engine;
  /// Baselines only: execute the assignment sequence under the all-stop
  /// switch model instead of not-all-stop (ablation of §3.1.2).
  bool all_stop = false;
  EdmondsConfig edmonds;
  SolsticeConfig solstice;
  TmsConfig tms;
  /// Optional structured event tracer. Intra evaluation runs coflows
  /// back-to-back ("a Coflow arrives only after the previous one is
  /// finished"), so each coflow's events are shifted onto a shared
  /// sequential clock before emission.
  obs::TraceSink* sink = nullptr;
  /// Worker threads for the per-coflow fan-out (runtime::SweepRunner).
  /// Coflows are evaluated in isolation, so records, metrics counts and
  /// the merged event stream are bit-identical at any thread count;
  /// 1 (default) runs inline on the caller, <= 0 uses all hardware
  /// threads. Benches wire this to the shared --threads flag.
  int threads = 1;
};

/// Per-coflow record: identity, bounds and measured performance.
struct IntraRecord {
  CoflowId id = -1;
  CoflowCategory category = CoflowCategory::kOneToOne;
  std::size_t num_flows = 0;
  Bytes bytes = 0;
  Time pavg = 0;  ///< average processing time (long/short split, §5.3.2)
  Time tcl = 0;   ///< circuit-switched lower bound
  Time tpl = 0;   ///< packet-switched lower bound
  Time cct = 0;
  int switching_count = 0;

  double CctOverTcl() const { return tcl > 0 ? cct / tcl : 1.0; }
  double CctOverTpl() const { return tpl > 0 ? cct / tpl : 1.0; }
  /// Fig 5's normalization: switching events over the minimum (=|C|).
  double NormalizedSwitching() const {
    return num_flows > 0
               ? static_cast<double>(switching_count) /
                     static_cast<double>(num_flows)
               : 1.0;
  }
};

struct IntraRunResult {
  std::string algorithm;
  IntraRunConfig config;
  std::vector<IntraRecord> records;

  /// Extracts one field across records (for stats::Summarize).
  std::vector<double> Collect(double (*fn)(const IntraRecord&)) const;
};

/// Runs the algorithm over every coflow of the trace independently.
IntraRunResult RunIntra(const Trace& trace, IntraAlgorithm algorithm,
                        const IntraRunConfig& config);

/// Paper §5.3.2: a coflow is "long" if its average processing time exceeds
/// `multiple`·δ. The paper's text says 40×δ but parenthetically equates
/// this to "an average subflow size of ≥ 5 MB", which at B = 1 Gbps and
/// δ = 10 ms is 4×δ — and only the 4×δ reading reproduces the stated
/// 25.2%-of-coflows / 98.8%-of-bytes long split, so 4 is the default.
bool IsLongCoflow(const IntraRecord& record, Time delta,
                  double multiple = 4.0);

/// The same split keyed on avg processing time directly (for inter runs).
bool IsLongCoflow(Time pavg, Time delta, double multiple = 4.0);

}  // namespace sunflow::exp
