#include "exp/classify.h"

namespace sunflow::exp {

CategoryBreakdown ClassifyTrace(const Trace& trace) {
  CategoryBreakdown breakdown{};
  Bytes total_bytes = 0;
  for (const Coflow& c : trace.coflows) {
    auto& share = breakdown[static_cast<std::size_t>(c.category())];
    ++share.count;
    share.byte_fraction += c.total_bytes();  // bytes for now, normalized below
    total_bytes += c.total_bytes();
  }
  const double n = static_cast<double>(trace.coflows.size());
  for (auto& share : breakdown) {
    share.coflow_fraction = n > 0 ? static_cast<double>(share.count) / n : 0;
    share.byte_fraction =
        total_bytes > 0 ? share.byte_fraction / total_bytes : 0;
  }
  return breakdown;
}

}  // namespace sunflow::exp
