// Trace composition statistics (paper Table 4).
#pragma once

#include <array>

#include "trace/coflow.h"

namespace sunflow::exp {

struct CategoryShare {
  double coflow_fraction = 0;
  double byte_fraction = 0;
  std::size_t count = 0;
};

/// Indexed by CoflowCategory (O2O, O2M, M2O, M2M).
using CategoryBreakdown = std::array<CategoryShare, 4>;

CategoryBreakdown ClassifyTrace(const Trace& trace);

}  // namespace sunflow::exp
