// Internal: the generic circuit-replay engine shared by the plain trace
// replay (sim/circuit_replay.h) and the dependency-gated DAG replay
// (sim/dag_replay.h). Most users want those wrappers, not this.
#pragma once

#include <functional>
#include <vector>

#include "core/policy.h"
#include "sim/circuit_replay.h"

namespace sunflow::sim_detail {

/// A coflow waiting for its release instant.
struct PendingCoflow {
  Time release = 0;
  const Coflow* coflow = nullptr;
};

/// Called when a coflow completes; may append newly released coflows
/// (dependency gating). The engine re-sorts the unconsumed tail afterwards.
using CompletionHook =
    std::function<void(CoflowId, Time, std::vector<PendingCoflow>&)>;

/// The plan → execute-until-next-event → replan loop. `pending` must be
/// sorted by release time. CCTs are measured from each coflow's release.
CircuitReplayResult RunEngine(PortId num_ports, const PriorityPolicy& policy,
                              const CircuitReplayConfig& config,
                              std::vector<PendingCoflow> pending,
                              const CompletionHook& on_complete);

}  // namespace sunflow::sim_detail
