// Replay with the starvation-avoidance guard of §4.2.
//
// Time is divided into recurring (T + τ) intervals. During each T span the
// normal InterCoflow plan runs (replanned on arrivals/completions, cut at
// the span boundary). During each τ span the fixed assignment A_k ∈ Φ is
// installed (round-robin over spans): each circuit of A_k pays one setup δ
// and then serves *all* coflows with demand on that port pair, sharing the
// link bandwidth equally — so every coflow receives non-zero service within
// any N(T + τ) window regardless of its priority.
#pragma once

#include <map>

#include "core/policy.h"
#include "core/starvation.h"
#include "sim/circuit_replay.h"

namespace sunflow {

struct GuardedReplayResult {
  std::map<CoflowId, Time> cct;
  std::map<CoflowId, Time> completion;
  /// Longest stretch a coflow waited between arrival/service events while
  /// it still had demand (bounded by N(T+τ) when the guard is on and the
  /// coflow has demand on some Φ circuit).
  std::map<CoflowId, Time> max_service_gap;
  Time makespan = 0;
};

GuardedReplayResult ReplayWithStarvationGuard(
    const Trace& trace, const PriorityPolicy& policy,
    const CircuitReplayConfig& config, const StarvationGuardConfig& guard);

}  // namespace sunflow
