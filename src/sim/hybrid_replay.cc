#include "sim/hybrid_replay.h"

#include "common/assert.h"
#include "packet/replay.h"
#include "packet/varys.h"

namespace sunflow {

HybridReplayResult ReplayHybridTrace(const Trace& trace,
                                     const PriorityPolicy& policy,
                                     const HybridReplayConfig& config) {
  SUNFLOW_CHECK(config.packet_bandwidth > 0);
  Trace circuit_side, packet_side;
  circuit_side.num_ports = trace.num_ports;
  packet_side.num_ports = trace.num_ports;
  for (const Coflow& c : trace.coflows) {
    if (c.total_bytes() <= config.offload_threshold) {
      packet_side.coflows.push_back(c);
    } else {
      circuit_side.coflows.push_back(c);
    }
  }

  HybridReplayResult result;
  result.offloaded = packet_side.coflows.size();
  result.circuit = circuit_side.coflows.size();

  if (!circuit_side.coflows.empty()) {
    const auto circuit_result =
        ReplayCircuitTrace(circuit_side, policy, config.circuit);
    result.cct.insert(circuit_result.cct.begin(), circuit_result.cct.end());
  }
  if (!packet_side.coflows.empty()) {
    // The companion packet network is coflow-scheduled too (the offloaded
    // traffic is small, so SEBF+MADD is a natural choice there).
    packet::PacketReplayConfig pc;
    pc.bandwidth = config.packet_bandwidth;
    auto varys = packet::MakeVarysAllocator();
    const auto packet_result =
        packet::ReplayPacketTrace(packet_side, *varys, pc);
    result.cct.insert(packet_result.cct.begin(), packet_result.cct.end());
  }
  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

}  // namespace sunflow
