// Thin adapter: the split-and-merge composite runs as the kernel's
// "hybrid" scenario (sim/engine/scenarios.cc); this entry point keeps the
// historical API and result shape.
#include "sim/hybrid_replay.h"

#include <utility>

#include "sim/adapter_util.h"
#include "sim/engine/scenario.h"

namespace sunflow {

HybridReplayResult ReplayHybridTrace(const Trace& trace,
                                     const PriorityPolicy& policy,
                                     const HybridReplayConfig& config) {
  engine::EngineConfig ec = sim_detail::ToEngineConfig(config.circuit);
  ec.packet_bandwidth = config.packet_bandwidth;
  ec.offload_threshold = config.offload_threshold;
  engine::EngineResult er =
      engine::ScenarioRegistry::Global().Run("hybrid", trace, &policy, ec);
  HybridReplayResult result;
  result.cct = std::move(er.cct);
  result.offloaded = er.offloaded;
  result.circuit = er.circuit;
  return result;
}

}  // namespace sunflow
