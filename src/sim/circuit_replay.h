// Trace replay for Sunflow on the optical circuit switch (§5.4 and §6).
//
// Like Varys, Sunflow reschedules only upon coflow arrivals and completions
// (§6): at each such instant the engine rebuilds the Port Reservation Table
// for all active coflows in priority order (the InterCoflow procedure of
// Algorithm 1 on remaining demand), executes that plan until the next
// event, then replans. Circuits that are up and transmitting at a replan
// instant can be carried over without paying δ again (configurable,
// DESIGN.md §4.4).
#pragma once

#include <map>
#include <memory>

#include "core/policy.h"
#include "core/sunflow.h"
#include "trace/coflow.h"

namespace sunflow {

struct CircuitReplayConfig {
  SunflowConfig sunflow;
  /// Re-reserve circuits that are mid-transmission at a replan instant
  /// without a new setup δ.
  bool carry_over_circuits = true;
  /// Controller-load throttle (§6 scheduler-latency concern): arrivals do
  /// not trigger a replan until at least this long after the previous one
  /// — they queue and are admitted in a batch. Completions always replan
  /// (required for progress). 0 = replan on every arrival, the paper's
  /// Varys-like cadence.
  Time min_replan_interval = 0;
  /// Optional structured event tracer (obs/trace_sink.h). The replay emits
  /// kCoflowAdmitted / kCoflowCompleted, one kAssignmentComputed per
  /// replan, and kCircuitSetup spans for the *executed* portion of each
  /// plan (planned-but-superseded reservations are not traced).
  obs::TraceSink* sink = nullptr;
};

struct CircuitReplayResult {
  std::map<CoflowId, Time> cct;
  std::map<CoflowId, Time> completion;  ///< absolute completion times
  /// Total reservations issued per coflow across all plans (≥ the pure
  /// intra switching count because replans may re-reserve).
  std::map<CoflowId, int> reservations;
  Time makespan = 0;
  std::size_t replans = 0;
};

/// Replays a trace under Sunflow + the given inter-Coflow priority policy.
CircuitReplayResult ReplayCircuitTrace(const Trace& trace,
                                       const PriorityPolicy& policy,
                                       const CircuitReplayConfig& config);

}  // namespace sunflow
