// Thin adapter: blind Φ rotation runs as the kernel's "rotor" scenario
// (sim/engine/scenarios.cc); this entry point keeps the historical API
// and result shape.
#include "sim/rotor_replay.h"

#include <utility>

#include "sim/engine/scenario.h"

namespace sunflow {

RotorReplayResult ReplayRotorTrace(const Trace& trace,
                                   const RotorReplayConfig& config) {
  engine::EngineConfig ec;
  ec.sunflow.bandwidth = config.bandwidth;
  ec.sunflow.delta = config.delta;
  ec.rotor_slot_duration = config.slot_duration;
  engine::EngineResult er = engine::ScenarioRegistry::Global().Run(
      "rotor", trace, /*policy=*/nullptr, ec);
  RotorReplayResult result;
  result.cct = std::move(er.cct);
  result.completion = std::move(er.completion);
  result.makespan = er.makespan;
  return result;
}

}  // namespace sunflow
