#include "sim/rotor_replay.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"

namespace sunflow {

namespace {

struct RotorCoflow {
  CoflowId id = -1;
  Time arrival = 0;
  std::map<std::pair<PortId, PortId>, Bytes> remaining;
  Time last_finish = 0;

  bool done() const {
    for (const auto& [pair, b] : remaining)
      if (b > kBytesEps) return false;
    return true;
  }
};

// Equal-share fluid drain on one circuit over [begin, end).
void DrainPair(std::vector<std::pair<RotorCoflow*, Bytes*>>& flows,
               Time begin, Time end, Bandwidth bandwidth) {
  Time t = begin;
  std::vector<std::pair<RotorCoflow*, Bytes*>> live;
  for (auto& f : flows)
    if (*f.second > kBytesEps) live.push_back(f);
  while (!live.empty() && t < end - kTimeEps) {
    const Bandwidth share = bandwidth / static_cast<double>(live.size());
    Time first_finish = kTimeInf;
    for (auto& f : live)
      first_finish = std::min(first_finish, t + *f.second / share);
    const Time step_end = std::min(end, first_finish);
    const Bytes moved = share * (step_end - t);
    std::vector<std::pair<RotorCoflow*, Bytes*>> next_live;
    for (auto& f : live) {
      *f.second = std::max(0.0, *f.second - moved);
      if (*f.second <= kBytesEps) {
        *f.second = 0;
        f.first->last_finish = std::max(f.first->last_finish, step_end);
      } else {
        next_live.push_back(f);
      }
    }
    live = std::move(next_live);
    t = step_end;
  }
}

}  // namespace

RotorReplayResult ReplayRotorTrace(const Trace& trace,
                                   const RotorReplayConfig& config) {
  trace.Validate();
  SUNFLOW_CHECK(config.slot_duration > 0);
  SUNFLOW_CHECK(config.delta >= 0);
  const Time span = config.delta + config.slot_duration;
  const PhiAssignments phi(trace.num_ports);

  RotorReplayResult result;
  std::vector<RotorCoflow> active;
  std::size_t next_arrival = 0;
  Time t = 0;

  // Rotor utilization is ~1/N per pair, so the makespan can be enormous;
  // this engine is meant for small ablation workloads. Cap the slot count
  // well above anything a sensible workload needs.
  const std::size_t max_slots =
      2000000 + 2000 * (trace.coflows.size() + 1);
  std::size_t steps = 0;

  auto admit = [&] {
    while (next_arrival < trace.coflows.size() &&
           trace.coflows[next_arrival].arrival() <= t + kTimeEps) {
      const Coflow& c = trace.coflows[next_arrival++];
      RotorCoflow rc;
      rc.id = c.id();
      rc.arrival = c.arrival();
      for (const Flow& f : c.flows()) rc.remaining[{f.src, f.dst}] = f.bytes;
      active.push_back(std::move(rc));
    }
  };

  while (!active.empty() || next_arrival < trace.coflows.size()) {
    SUNFLOW_CHECK_MSG(++steps < max_slots,
                      "rotor replay exceeded its slot budget — the workload "
                      "is too heavy for blind rotation");
    admit();
    if (active.empty()) {
      t = trace.coflows[next_arrival].arrival();
      admit();
    }

    // The rotation grid is absolute: slot s covers [s·span, (s+1)·span)
    // with light from s·span + δ.
    const auto slot = static_cast<long long>(
        std::floor((t + kTimeEps) / span));
    const Time slot_begin = static_cast<Time>(slot) * span;
    const Time window_end = slot_begin + span;
    const Time transmit_begin = slot_begin + config.delta;
    const Time t_arrival = next_arrival < trace.coflows.size()
                               ? trace.coflows[next_arrival].arrival()
                               : kTimeInf;
    const Time t_next = std::min(window_end, t_arrival);
    const Time begin = std::max(t, transmit_begin);

    if (begin < t_next - kTimeEps) {
      const int k = static_cast<int>(slot % trace.num_ports);
      for (PortId i = 0; i < trace.num_ports; ++i) {
        const PortId j = phi.OutputOf(k, i);
        std::vector<std::pair<RotorCoflow*, Bytes*>> flows;
        for (auto& rc : active) {
          auto it = rc.remaining.find({i, j});
          if (it != rc.remaining.end() && it->second > kBytesEps)
            flows.emplace_back(&rc, &it->second);
        }
        if (!flows.empty())
          DrainPair(flows, begin, t_next, config.bandwidth);
      }
    }
    t = t_next;

    for (auto it = active.begin(); it != active.end();) {
      if (it->done()) {
        const Time finish = it->last_finish > 0 ? it->last_finish : t;
        result.cct[it->id] = finish - it->arrival;
        result.completion[it->id] = finish;
        result.makespan = std::max(result.makespan, finish);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }
  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

}  // namespace sunflow
