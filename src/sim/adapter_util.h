// Internal: maps the legacy per-engine config structs onto the kernel's
// EngineConfig. The public entry points in sim/*.h are thin adapters over
// src/sim/engine/; most users want those, not this.
#pragma once

#include "sim/circuit_replay.h"
#include "sim/engine/scenario.h"

namespace sunflow::sim_detail {

inline engine::EngineConfig ToEngineConfig(const CircuitReplayConfig& config) {
  engine::EngineConfig ec;
  ec.sunflow = config.sunflow;
  ec.carry_over_circuits = config.carry_over_circuits;
  ec.min_replan_interval = config.min_replan_interval;
  ec.sink = config.sink;
  return ec;
}

}  // namespace sunflow::sim_detail
