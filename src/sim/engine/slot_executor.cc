#include "sim/engine/slot_executor.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace sunflow::engine {

namespace {

// Decompositions drop floating-point dust relative to the matrix scale
// (see BvnDecompose); a schedule may under-serve each flow by up to this
// much and still count as covering it.
Time CoverageTolerance(const DemandMatrix& demand) {
  return std::max(1e-6, demand.MaxLineSum() * 2e-6);
}

// Shared bookkeeping: remaining real demand and flow completions.
struct DemandTracker {
  explicit DemandTracker(const DemandMatrix& demand)
      : demand_(demand),
        tolerance_(CoverageTolerance(demand)),
        remaining_(demand),
        completed_(static_cast<std::size_t>(demand.rows()),
                   std::vector<char>(static_cast<std::size_t>(demand.cols()),
                                     0)) {}

  // Transmits up to `window` seconds of (r, c) starting at `begin`;
  // records completion if the flow drains (within tolerance).
  void Transmit(int r, int c, Time begin, Time window,
                std::vector<FlowCompletion>& completions) {
    Time& rem = remaining_.at(r, c);
    if (completed_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)])
      return;
    if (rem <= kTimeEps || window <= kTimeEps) return;
    if (rem <= window + tolerance_) {
      completions.push_back({demand_.InPort(r), demand_.OutPort(c),
                             begin + std::min(rem, window)});
      rem = 0;
      completed_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = 1;
    } else {
      rem -= window;
    }
  }

  // Validates coverage and sweeps up flows whose residue is pure dust,
  // completing them at the schedule end so every non-zero flow reports
  // exactly one completion.
  void FinishStragglers(const char* algorithm, Time schedule_end,
                        std::vector<FlowCompletion>& completions) {
    for (int r = 0; r < remaining_.rows(); ++r) {
      for (int c = 0; c < remaining_.cols(); ++c) {
        if (demand_.at(r, c) <= kTimeEps) continue;
        if (completed_[static_cast<std::size_t>(r)]
                      [static_cast<std::size_t>(c)])
          continue;
        SUNFLOW_CHECK_MSG(
            remaining_.at(r, c) <= tolerance_,
            algorithm << " schedule left " << remaining_.at(r, c)
                      << "s of demand unserved at (" << r << "," << c << ")");
        completions.push_back(
            {demand_.InPort(r), demand_.OutPort(c), schedule_end});
        completed_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            1;
      }
    }
  }

  const DemandMatrix& demand_;
  Time tolerance_;
  DemandMatrix remaining_;
  std::vector<std::vector<char>> completed_;
};

ExecutionResult Finalize(DemandTracker& tracker,
                         const AssignmentSchedule& schedule, Time start,
                         Time schedule_end,
                         std::vector<FlowCompletion> completions,
                         int setups) {
  tracker.FinishStragglers(schedule.algorithm.c_str(), schedule_end,
                           completions);
  ExecutionResult result;
  result.completions = std::move(completions);
  result.circuit_setups = setups;
  result.num_slots = schedule.num_slots();
  result.schedule_end = schedule_end;
  Time last = start;
  for (const auto& fc : result.completions) last = std::max(last, fc.finish);
  result.cct = last - start;
  // The same counts feed the metrics registry — benches read either source.
  auto& metrics = obs::GlobalMetrics();
  metrics.GetCounter("executor.circuit_setups")
      .Increment(static_cast<std::uint64_t>(setups));
  metrics.GetCounter("executor.slots").Increment(result.num_slots);
  return result;
}

ExecutionResult ExecuteNotAllStopImpl(const DemandMatrix& demand,
                                      const AssignmentSchedule& schedule,
                                      Time delta, Time start,
                                      obs::TraceSink* sink, CoflowId coflow) {
  const int n = demand.rows();

  DemandTracker tracker(demand);
  std::vector<FlowCompletion> completions;
  std::vector<Time> free_in(static_cast<std::size_t>(n), start);
  std::vector<Time> free_out(static_cast<std::size_t>(n), start);
  // Last peer each port was circuited to; a circuit persists across slots
  // (even through idle gaps) while both ports still point at each other.
  std::vector<int> last_peer_in(static_cast<std::size_t>(n), -1);
  std::vector<int> last_peer_out(static_cast<std::size_t>(n), -1);

  int setups = 0;
  Time schedule_end = start;

  for (const auto& slot : schedule.slots) {
    SUNFLOW_CHECK(static_cast<int>(slot.col_of_row.size()) == n);
    SUNFLOW_CHECK(slot.duration > 0);
    // Guard the matching property within the slot.
    std::vector<char> col_used(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < n; ++r) {
      const int c = slot.col_of_row[static_cast<std::size_t>(r)];
      if (c < 0) continue;
      SUNFLOW_CHECK_MSG(!col_used[static_cast<std::size_t>(c)],
                        "assignment is not a matching");
      col_used[static_cast<std::size_t>(c)] = 1;

      const Time t0 = std::max(free_in[static_cast<std::size_t>(r)],
                               free_out[static_cast<std::size_t>(c)]);
      const bool carried = last_peer_in[static_cast<std::size_t>(r)] == c &&
                           last_peer_out[static_cast<std::size_t>(c)] == r;
      const Time setup = carried ? 0 : delta;
      if (!carried) {
        ++setups;
        obs::Emit(sink, {.type = obs::EventType::kCircuitSetup,
                         .t = t0,
                         .dur = setup + slot.duration,
                         .coflow = coflow,
                         .in = demand.InPort(r),
                         .out = demand.OutPort(c),
                         .value = setup});
      }

      const Time transmit_begin = t0 + setup;
      tracker.Transmit(r, c, transmit_begin, slot.duration, completions);

      const Time end = transmit_begin + slot.duration;
      free_in[static_cast<std::size_t>(r)] = end;
      free_out[static_cast<std::size_t>(c)] = end;
      last_peer_in[static_cast<std::size_t>(r)] = c;
      last_peer_out[static_cast<std::size_t>(c)] = r;
      schedule_end = std::max(schedule_end, end);
    }
  }
  return Finalize(tracker, schedule, start, schedule_end,
                  std::move(completions), setups);
}

ExecutionResult ExecuteAllStopImpl(const DemandMatrix& demand,
                                   const AssignmentSchedule& schedule,
                                   Time delta, Time start,
                                   obs::TraceSink* sink, CoflowId coflow) {
  const int n = demand.rows();

  DemandTracker tracker(demand);
  std::vector<FlowCompletion> completions;
  std::vector<int> prev(static_cast<std::size_t>(n), -1);

  int setups = 0;
  Time t = start;

  for (const auto& slot : schedule.slots) {
    SUNFLOW_CHECK(static_cast<int>(slot.col_of_row.size()) == n);
    // Under all-stop, any change in the assignment stops *all* circuits
    // for δ; identical consecutive assignments continue for free.
    bool changed = false;
    for (int r = 0; r < n; ++r) {
      const int c = slot.col_of_row[static_cast<std::size_t>(r)];
      if (c != prev[static_cast<std::size_t>(r)]) {
        changed = true;
        if (c >= 0) {
          ++setups;
          obs::Emit(sink, {.type = obs::EventType::kCircuitSetup,
                           .t = t,
                           .dur = delta + slot.duration,
                           .coflow = coflow,
                           .in = demand.InPort(r),
                           .out = demand.OutPort(c),
                           .value = delta});
        }
      }
    }
    if (changed) t += delta;

    std::vector<char> col_used(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < n; ++r) {
      const int c = slot.col_of_row[static_cast<std::size_t>(r)];
      if (c < 0) continue;
      SUNFLOW_CHECK_MSG(!col_used[static_cast<std::size_t>(c)],
                        "assignment is not a matching");
      col_used[static_cast<std::size_t>(c)] = 1;
      tracker.Transmit(r, c, t, slot.duration, completions);
    }
    t += slot.duration;
    prev = slot.col_of_row;
  }
  return Finalize(tracker, schedule, start, t, std::move(completions), setups);
}

}  // namespace

ExecutionResult ExecuteAssignmentSchedule(const DemandMatrix& demand,
                                          const AssignmentSchedule& schedule,
                                          Time delta, Time start,
                                          SwitchModel model,
                                          obs::TraceSink* sink,
                                          CoflowId coflow) {
  SUNFLOW_CHECK(demand.rows() == demand.cols());
  SUNFLOW_CHECK(delta >= 0);
  switch (model) {
    case SwitchModel::kNotAllStop:
      return ExecuteNotAllStopImpl(demand, schedule, delta, start, sink,
                                   coflow);
    case SwitchModel::kAllStop:
      return ExecuteAllStopImpl(demand, schedule, delta, start, sink, coflow);
  }
  SUNFLOW_CHECK_MSG(false, "unknown switch model");
  return {};
}

}  // namespace sunflow::engine
