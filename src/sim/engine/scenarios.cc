// The built-in scenarios: "circuit" (Sunflow replan-on-events replay),
// "guarded" (the §4.2 starvation guard's (T + τ) cadence), "rotor" (blind
// Φ rotation) and "hybrid" (circuit + companion packet fabric). Each is a
// direct port of a former standalone engine loop onto the kernel; the
// arithmetic — summation order, dust handling, ε comparisons — is
// preserved expression-for-expression so replays are bit-identical to the
// pre-kernel engines.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "core/components.h"
#include "packet/replay.h"
#include "packet/varys.h"
#include "sched/kcore.h"
#include "sim/engine/driver.h"
#include "sim/engine/scenario.h"
#include "trace/bounds.h"

namespace sunflow::engine {

namespace {

// The effective per-plane link rates of a config's fabric, index-aligned
// with CircuitReservation::plane. Mirrors the planner's resolution of the
// empty spec: one plane at the config bandwidth (SunflowPlanner::planes()).
std::vector<Bandwidth> PlaneRates(const SunflowConfig& config) {
  std::vector<Bandwidth> rates;
  if (config.fabric.is_default()) {
    rates.push_back(config.bandwidth);
  } else {
    rates.reserve(config.fabric.planes.size());
    for (const PlaneSpec& p : config.fabric.planes) rates.push_back(p.rate);
  }
  return rates;
}

bool AnyEstablished(const FabricEstablished& established) {
  for (const auto& m : established)
    if (!m.empty()) return true;
  return false;
}

// How executed service is charged against remaining demand. The circuit
// planner guarantees every reservation covers its flow, so the plain
// replay clamps dust with max(0, ·) and lets completions land at span
// ends; the fluid scenarios cap at the remaining bytes and resolve exact
// per-flow finish instants (needed for starvation accounting).
enum class DrainRule { kCircuitDust, kExactFinish };

// Orders reservation pointers by (in, out); heterogeneous overloads let
// equal_range probe with a bare port pair.
struct ByPortPair {
  static std::pair<PortId, PortId> PairOf(const CircuitReservation* r) {
    return {r->in, r->out};
  }
  bool operator()(const CircuitReservation* a,
                  const CircuitReservation* b) const {
    return PairOf(a) < PairOf(b);
  }
  bool operator()(const CircuitReservation* r,
                  const std::pair<PortId, PortId>& p) const {
    return PairOf(r) < p;
  }
  bool operator()(const std::pair<PortId, PortId>& p,
                  const CircuitReservation* r) const {
    return p < PairOf(r);
  }
};

// Executes a plan over [t, t_next): charges each active coflow the circuit
// time its reservations actually got before the span end. Reservation
// groups are walked in plan order, preserving the pre-kernel summation
// order exactly: `scratch` (a caller-owned buffer reused across spans, so
// the old per-span map-of-vectors churn is gone) is stable-sorted by port
// pair, which keeps plan order within each pair.
void ExecutePlanSpan(ReplayDriver& driver, std::vector<SimCoflow>& active,
                     const SunflowSchedule& plan, Time t, Time t_next,
                     const std::vector<Bandwidth>& rates, DrainRule rule,
                     std::vector<const CircuitReservation*>& scratch) {
  scratch.clear();
  scratch.reserve(plan.reservations.size());
  for (const auto& r : plan.reservations) scratch.push_back(&r);
  std::stable_sort(scratch.begin(), scratch.end(), ByPortPair{});

  // Circuit time per plane; a plane's seconds convert to bytes at its own
  // rate. Summed in plane-id order, so the single-plane fabric reduces to
  // the pre-fabric `served * bandwidth` multiply bit-for-bit.
  std::vector<Time> served_by_plane(rates.size(), 0);
  for (auto& sc : active) {
    Bytes served_total = 0;
    for (auto& [pair, bytes] : sc.remaining) {
      if (bytes <= kBytesEps) continue;
      const auto [first, last] =
          std::equal_range(scratch.begin(), scratch.end(), pair, ByPortPair{});
      if (first == last) continue;
      std::fill(served_by_plane.begin(), served_by_plane.end(), 0.0);
      Time flow_finish = 0;
      for (auto rit = first; rit != last; ++rit) {
        const CircuitReservation* r = *rit;
        if (r->coflow != sc.id) continue;
        SUNFLOW_CHECK(static_cast<std::size_t>(r->plane) < rates.size());
        const Time b = std::max(r->transmit_begin(), t);
        const Time e = std::min(r->end, t_next);
        if (e > b) {
          served_by_plane[static_cast<std::size_t>(r->plane)] += e - b;
          flow_finish = std::max(flow_finish, e);
        }
      }
      Bytes served_bytes = 0;
      for (std::size_t p = 0; p < rates.size(); ++p)
        served_bytes += served_by_plane[p] * rates[p];
      if (rule == DrainRule::kCircuitDust) {
        bytes = std::max(0.0, bytes - served_bytes);
      } else {
        const Bytes moved = std::min(bytes, served_bytes);
        bytes -= moved;
        served_total += moved;
        if (bytes <= kBytesEps) {
          bytes = 0;
          sc.last_finish = std::max(sc.last_finish, flow_finish);
          driver.EmitFlowFinished(flow_finish, sc.id, pair.first, pair.second);
        }
      }
    }
    if (rule == DrainRule::kExactFinish && served_total > 0)
      sc.NoteService(t, t_next);
  }
}

// Equal-share fluid drain of the flows on one circuit over [begin, end):
// n live flows each get B/n; when one drains the rest speed up. Updates
// remaining bytes and records exact finish instants.
void DrainEqualShare(std::vector<std::pair<SimCoflow*, Bytes*>>& flows,
                     Time begin, Time end, Bandwidth bandwidth,
                     ReplayDriver& driver, PortId in, PortId out) {
  Time t = begin;
  std::vector<std::pair<SimCoflow*, Bytes*>> live;
  for (auto& f : flows)
    if (*f.second > kBytesEps) live.push_back(f);
  while (!live.empty() && t < end - kTimeEps) {
    const Bandwidth share = bandwidth / static_cast<double>(live.size());
    // Earliest finish among live flows at this share.
    Time first_finish = kTimeInf;
    for (auto& f : live)
      first_finish = std::min(first_finish, t + *f.second / share);
    const Time step_end = std::min(end, first_finish);
    const Bytes moved = share * (step_end - t);
    std::vector<std::pair<SimCoflow*, Bytes*>> next_live;
    for (auto& f : live) {
      *f.second = std::max(0.0, *f.second - moved);
      if (*f.second <= kBytesEps) {
        *f.second = 0;
        f.first->last_finish = std::max(f.first->last_finish, step_end);
        driver.EmitFlowFinished(step_end, f.first->id, in, out);
      } else {
        next_live.push_back(f);
      }
    }
    live = std::move(next_live);
    t = step_end;
  }
}

// Long-lived PlanRequest objects, one per coflow, reused across replans.
// A coflow whose remaining demand is unchanged since the previous replan
// keeps its request object — and with it the memoized Ordered() view, so
// the planner skips the per-replan demand copy and sort. Only `start` is
// refreshed; a demand change swaps the vector in (which invalidates the
// Ordered() cache through its content hash). Entries for departed coflows
// are dropped lazily once the map outgrows the active set.
class PlanRequestCache {
 public:
  const PlanRequest* Refresh(const SimCoflow& sc, Bandwidth bandwidth,
                             Time t) {
    scratch_.clear();
    for (const auto& [pair, bytes] : sc.remaining) {
      if (bytes > kBytesEps)
        scratch_.push_back({pair.first, pair.second, bytes / bandwidth});
    }
    PlanRequest& req = by_coflow_[sc.id];
    if (req.coflow != sc.id || !SameDemand(req.demand, scratch_)) {
      req.coflow = sc.id;
      req.demand = scratch_;
    }
    req.start = t;
    return &req;
  }

  void PruneTo(std::size_t active_size) {
    if (by_coflow_.size() <= 2 * active_size + 16) return;
    std::erase_if(by_coflow_, [this](const auto& kv) {
      return !keep_.contains(kv.first);
    });
  }
  void NoteActive(CoflowId id) { keep_.insert(id); }
  void BeginReplan() { keep_.clear(); }

 private:
  static bool SameDemand(const std::vector<FlowDemand>& a,
                         const std::vector<FlowDemand>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].src != b[i].src || a[i].dst != b[i].dst ||
          a[i].processing != b[i].processing) {
        return false;
      }
    }
    return true;
  }

  std::map<CoflowId, PlanRequest> by_coflow_;
  std::set<CoflowId> keep_;
  std::vector<FlowDemand> scratch_;
};

// InterCoflow over the active set in policy order: builds views, orders,
// plans on a fresh PRT (optionally seeded with carried-over circuits) and
// reports the replan through the driver. With a pool, port-disjoint groups
// of the active set plan concurrently (byte-identical output; the planner
// here never carries a sink — the driver is the sole emitter — so the
// parallel path's no-observer precondition always holds).
SunflowSchedule PlanActiveSet(ReplayDriver& driver,
                              const PriorityPolicy& policy,
                              const SunflowConfig& config,
                              const FabricEstablished* established, Time t,
                              PlanRequestCache& cache,
                              runtime::ThreadPool* pool) {
  SimState& s = driver.state();
  auto& active = s.active();
  const Bandwidth bandwidth = config.bandwidth;

  std::vector<CoflowView> views;
  views.reserve(active.size());
  for (const auto& sc : active) {
    const Bytes remaining_bytes = sc.remaining_bytes();
    views.push_back({sc.id, sc.arrival, sc.RemainingTpl(bandwidth),
                     sc.static_tpl, remaining_bytes, sc.remaining.size(),
                     std::max(0.0, sc.total - remaining_bytes)});
  }
  const std::vector<std::size_t> order = policy.Order(views);
  SUNFLOW_CHECK(order.size() == active.size());

  SunflowPlanner planner(s.num_ports(), config);
  if (established != nullptr && AnyEstablished(*established)) {
    SUNFLOW_CHECK(static_cast<int>(established->size()) ==
                  planner.num_planes());
    planner.SetEstablishedCircuitsByPlane(*established, t);
  }
  cache.BeginReplan();
  std::vector<const PlanRequest*> requests;
  requests.reserve(active.size());
  for (std::size_t idx : order) {
    const SimCoflow& sc = active[idx];
    requests.push_back(cache.Refresh(sc, bandwidth, t));
    cache.NoteActive(sc.id);
  }
  cache.PruneTo(active.size());
  const auto plan_begin = std::chrono::steady_clock::now();
  SunflowSchedule plan = ScheduleRequestsParallel(planner, requests, pool);
  const auto plan_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - plan_begin)
                           .count();
  driver.NoteReplan(t, plan, static_cast<double>(plan_ns), requests.size());
  return plan;
}

// --- "circuit": Sunflow's Varys-like replan on arrivals/completions. ----

class CircuitScenario final : public ScenarioPolicy {
 public:
  CircuitScenario(const PriorityPolicy& policy, const EngineConfig& config,
                  CompletionHook hook)
      : policy_(policy),
        config_(config),
        hook_(std::move(hook)),
        plane_rates_(PlaneRates(config_.sunflow)),
        established_(plane_rates_.size()) {
    SUNFLOW_CHECK(config_.sunflow.bandwidth > 0);
  }

  std::string name() const override { return "circuit"; }

  void OnAdmit(SimCoflow& sc, const Coflow& coflow, Time /*now*/) override {
    sc.static_tpl = PacketLowerBound(coflow, config_.sunflow.bandwidth);
  }

  void OnComplete(SimState& state, const SimCoflow& sc,
                  Time finish) override {
    if (hook_) hook_(state, sc.id, finish);
  }

  void OnIdleGap(SimState& /*state*/, Time /*now*/) override {
    for (auto& m : established_) m.clear();  // circuits idle away
  }

  Time ExecuteSpan(ReplayDriver& driver, Time t) override {
    SimState& s = driver.state();
    auto& active = s.active();

    SunflowSchedule plan = PlanActiveSet(
        driver, policy_, config_.sunflow,
        config_.carry_over_circuits ? &established_ : nullptr, t,
        request_cache_, config_.plan_pool);
    last_plan_ = t;

    // Next event: a release or the earliest planned completion. A release
    // only forces a replan once min_replan_interval has elapsed since the
    // previous plan; until then newly released coflows queue while the
    // current plan keeps executing (completions always replan).
    Time t_next = kTimeInf;
    if (s.HasPendingReleases()) {
      t_next = std::max(s.NextReleaseTime(),
                        last_plan_ + config_.min_replan_interval);
    }
    for (const auto& sc : active) {
      auto it = plan.completion_time.find(sc.id);
      SUNFLOW_CHECK(it != plan.completion_time.end());
      t_next = std::min(t_next, t + it->second);
    }
    SUNFLOW_CHECK_MSG(t_next < kTimeInf && t_next > t,
                      "circuit replay stalled at t=" << t);

    ExecutePlanSpan(driver, active, plan, t, t_next, plane_rates_,
                    DrainRule::kCircuitDust, span_scratch_);
    driver.EmitExecutedPlan(plan, t, t_next);
    driver.EmitBlockedSpans(plan, t, t_next);

    // Circuits up at the replan instant (for carry-over), per plane.
    for (auto& m : established_) m.clear();
    if (config_.carry_over_circuits) {
      for (const auto& r : plan.reservations) {
        if (r.transmit_begin() <= t_next + kTimeEps &&
            t_next < r.end - kTimeEps) {
          established_[static_cast<std::size_t>(r.plane)][r.in] = r.out;
        }
      }
    }
    return t_next;
  }

  std::size_t StepBudget(const SimState& state) const override {
    // Every iteration consumes at least one release or completion; the
    // hook can only add each coflow once.
    return 10 * state.total_released() + 1000;
  }
  const char* budget_message() const override {
    return "circuit replay event explosion";
  }

 private:
  const PriorityPolicy& policy_;
  EngineConfig config_;
  CompletionHook hook_;
  std::vector<Bandwidth> plane_rates_;
  FabricEstablished established_;  // carry-over per plane
  PlanRequestCache request_cache_;
  std::vector<const CircuitReservation*> span_scratch_;
  Time last_plan_ = -kTimeInf;
};

// --- "kcore": K parallel switch planes (K-core OCS). --------------------
//
// Joint mode (EngineConfig::kcore_joint, the default) is the plane-aware
// circuit scenario itself: one planner assigns every reservation to the
// earliest feasible plane. This class is the comparison baseline from the
// K-core scheduling literature (sched/kcore.h): each coflow is pinned
// wholly to one core — shortest-effective-bottleneck-first onto the least
// loaded core — and Sunflow runs independently per core on a single-plane
// planner; the reservations are retagged with the owning plane so
// execution, tracing and the plane-exclusivity audit see the true fabric.
class KCorePerCoreScenario final : public ScenarioPolicy {
 public:
  KCorePerCoreScenario(const PriorityPolicy& policy,
                       const EngineConfig& config)
      : policy_(policy), config_(config) {
    SUNFLOW_CHECK(config_.sunflow.bandwidth > 0);
    // Resolve the plane list exactly like the planner does.
    if (config_.sunflow.fabric.is_default()) {
      planes_.push_back({config_.sunflow.delta, config_.sunflow.bandwidth});
    } else {
      planes_ = config_.sunflow.fabric.planes;
    }
    rates_.reserve(planes_.size());
    for (const PlaneSpec& p : planes_) rates_.push_back(p.rate);
    established_.resize(planes_.size());
  }

  std::string name() const override { return "kcore"; }

  void OnAdmit(SimCoflow& sc, const Coflow& coflow, Time /*now*/) override {
    sc.static_tpl = PacketLowerBound(coflow, config_.sunflow.bandwidth);
  }

  void OnIdleGap(SimState& /*state*/, Time /*now*/) override {
    for (auto& m : established_) m.clear();
  }

  Time ExecuteSpan(ReplayDriver& driver, Time t) override {
    SimState& s = driver.state();
    auto& active = s.active();
    const Bandwidth bandwidth = config_.sunflow.bandwidth;

    // Priority order + long-lived requests, exactly as in PlanActiveSet.
    std::vector<CoflowView> views;
    views.reserve(active.size());
    for (const auto& sc : active) {
      const Bytes remaining_bytes = sc.remaining_bytes();
      views.push_back({sc.id, sc.arrival, sc.RemainingTpl(bandwidth),
                       sc.static_tpl, remaining_bytes, sc.remaining.size(),
                       std::max(0.0, sc.total - remaining_bytes)});
    }
    const std::vector<std::size_t> order = policy_.Order(views);
    SUNFLOW_CHECK(order.size() == active.size());

    request_cache_.BeginReplan();
    std::vector<const PlanRequest*> requests;
    requests.reserve(active.size());
    for (std::size_t idx : order) {
      const SimCoflow& sc = active[idx];
      requests.push_back(request_cache_.Refresh(sc, bandwidth, t));
      request_cache_.NoteActive(sc.id);
    }
    request_cache_.PruneTo(active.size());

    const auto plan_begin = std::chrono::steady_clock::now();
    const KCoreAssignment assignment =
        AssignCoflowsToCores(requests, planes_, bandwidth);

    // Each core plans independently on a single-plane planner whose
    // implicit plane inherits that core's (δ, rate); the planner's demand
    // scale (bandwidth / rate) stretches the canonical processing times
    // exactly as the joint planner would. Requests keep their global
    // priority order within the core.
    SunflowSchedule plan;
    for (std::size_t p = 0; p < planes_.size(); ++p) {
      std::vector<const PlanRequest*> core_requests;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (assignment.plane_of[i] == static_cast<PlaneId>(p))
          core_requests.push_back(requests[i]);
      }
      if (core_requests.empty()) continue;
      SunflowConfig core_config = config_.sunflow;
      core_config.fabric =
          FabricSpec::Uniform(1, planes_[p].delta, planes_[p].rate);
      SunflowPlanner planner(s.num_ports(), core_config);
      if (config_.carry_over_circuits && !established_[p].empty())
        planner.SetEstablishedCircuits(established_[p], t);
      SunflowSchedule core_plan = planner.ScheduleAll(core_requests);
      for (auto& r : core_plan.reservations)
        r.plane = static_cast<PlaneId>(p);
      plan.reservations.insert(plan.reservations.end(),
                               core_plan.reservations.begin(),
                               core_plan.reservations.end());
      plan.completion_time.merge(core_plan.completion_time);
      plan.reservation_count.merge(core_plan.reservation_count);
      plan.flow_finish.merge(core_plan.flow_finish);
      plan.memo_hits += core_plan.memo_hits;
      plan.memo_lookups += core_plan.memo_lookups;
      // Per-core plans run back to back; peak pool occupancy is the
      // widest single core's group fan-out, not the sum.
      plan.parallel_groups =
          std::max(plan.parallel_groups, core_plan.parallel_groups);
    }
    const auto plan_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - plan_begin)
                             .count();
    driver.NoteReplan(t, plan, static_cast<double>(plan_ns), requests.size());
    last_plan_ = t;

    Time t_next = kTimeInf;
    if (s.HasPendingReleases()) {
      t_next = std::max(s.NextReleaseTime(),
                        last_plan_ + config_.min_replan_interval);
    }
    for (const auto& sc : active) {
      auto it = plan.completion_time.find(sc.id);
      SUNFLOW_CHECK(it != plan.completion_time.end());
      t_next = std::min(t_next, t + it->second);
    }
    SUNFLOW_CHECK_MSG(t_next < kTimeInf && t_next > t,
                      "kcore replay stalled at t=" << t);

    ExecutePlanSpan(driver, active, plan, t, t_next, rates_,
                    DrainRule::kCircuitDust, span_scratch_);
    driver.EmitExecutedPlan(plan, t, t_next);
    driver.EmitBlockedSpans(plan, t, t_next);

    for (auto& m : established_) m.clear();
    if (config_.carry_over_circuits) {
      for (const auto& r : plan.reservations) {
        if (r.transmit_begin() <= t_next + kTimeEps &&
            t_next < r.end - kTimeEps) {
          established_[static_cast<std::size_t>(r.plane)][r.in] = r.out;
        }
      }
    }
    return t_next;
  }

  std::size_t StepBudget(const SimState& state) const override {
    return 10 * state.total_released() + 1000;
  }
  const char* budget_message() const override {
    return "kcore replay event explosion";
  }

 private:
  const PriorityPolicy& policy_;
  EngineConfig config_;
  std::vector<PlaneSpec> planes_;
  std::vector<Bandwidth> rates_;
  FabricEstablished established_;  // carry-over per plane
  PlanRequestCache request_cache_;
  std::vector<const CircuitReservation*> span_scratch_;
  Time last_plan_ = -kTimeInf;
};

// --- "guarded": the (T + τ) starvation-guard cadence of §4.2. -----------

class GuardScenario final : public ScenarioPolicy {
 public:
  GuardScenario(PortId num_ports, const PriorityPolicy& policy,
                const EngineConfig& config)
      : policy_(policy),
        config_(config),
        timeline_(config.guard, num_ports),
        phi_(num_ports),
        plane_rates_(PlaneRates(config.sunflow)) {
    SUNFLOW_CHECK_MSG(config_.guard.small_interval > config_.sunflow.delta,
                      "starvation guard requires tau > delta");
    // The τ spans install one Φ assignment on *the* switch; the guard
    // models the paper's single-switch fabric only.
    SUNFLOW_CHECK_MSG(config_.sunflow.fabric.num_planes() == 1,
                      "the starvation guard models a single-plane fabric");
  }

  std::string name() const override { return "guarded"; }

  void OnAdmit(SimCoflow& sc, const Coflow& coflow, Time /*now*/) override {
    sc.static_tpl = PacketLowerBound(coflow, config_.sunflow.bandwidth);
    sc.last_service = sc.arrival;
  }

  Time ExecuteSpan(ReplayDriver& driver, Time t) override {
    SimState& s = driver.state();
    auto& active = s.active();
    const Bandwidth bandwidth = config_.sunflow.bandwidth;
    const Time span_end = timeline_.NextBoundaryAfter(t);
    const Time t_arrival =
        s.HasPendingReleases() ? s.NextReleaseTime() : kTimeInf;

    if (!timeline_.InTauInterval(t)) {
      // --- T span: priority-scheduled InterCoflow plan, cut at events
      // (no carry-over, no throttle — each span replans from scratch). ---
      SunflowSchedule plan =
          PlanActiveSet(driver, policy_, config_.sunflow, nullptr, t,
                        request_cache_, config_.plan_pool);

      Time t_next = std::min(span_end, t_arrival);
      for (const auto& sc : active)
        t_next = std::min(t_next, t + plan.completion_time.at(sc.id));
      SUNFLOW_CHECK(t_next > t);

      ExecutePlanSpan(driver, active, plan, t, t_next, plane_rates_,
                      DrainRule::kExactFinish, span_scratch_);
      driver.EmitExecutedPlan(plan, t, t_next);
      driver.EmitBlockedSpans(plan, t, t_next);
      return t_next;
    }

    // --- τ span: fixed assignment A_k, bandwidth shared per circuit. ---
    const int k = timeline_.AssignmentIndexAt(t);
    const Time span_begin = span_end - config_.guard.small_interval;
    if (!TimeEq(span_begin, last_traced_tau_)) {
      last_traced_tau_ = span_begin;  // dedupes re-entries into one τ span
      driver.NoteStarvationRound(span_begin, config_.guard.small_interval, k);
    }
    // One setup δ at the start of the τ span; if we enter mid-span the
    // circuits are already up.
    const Time transmit_begin = std::max(t, span_begin + config_.sunflow.delta);
    const Time t_next = std::min(span_end, t_arrival);

    if (transmit_begin < t_next - kTimeEps) {
      for (PortId i = 0; i < s.num_ports(); ++i) {
        const PortId j = phi_.OutputOf(k, i);
        std::vector<std::pair<SimCoflow*, Bytes*>> flows;
        for (auto& sc : active) {
          auto it = sc.remaining.find({i, j});
          if (it != sc.remaining.end() && it->second > kBytesEps)
            flows.emplace_back(&sc, &it->second);
        }
        if (flows.empty()) continue;
        DrainEqualShare(flows, transmit_begin, t_next, bandwidth, driver, i,
                        j);
        for (auto& f : flows) f.first->NoteService(transmit_begin, t_next);
      }
    }
    // Flows off the fixed assignment A_k are held by the guard for the
    // whole τ span (no single blaming coflow — the guard owns the fabric).
    if (s.sink() != nullptr && t_next > t + kTimeEps) {
      for (const auto& sc : active) {
        for (const auto& [pair, bytes] : sc.remaining) {
          if (bytes <= kBytesEps) continue;
          if (phi_.OutputOf(k, pair.first) == pair.second) continue;
          driver.EmitBlockedSpan(t, t_next, sc.id, pair.first, pair.second,
                                 obs::BlockReason::kStarvationHold, -1);
        }
      }
    }
    return t_next;
  }

  std::size_t StepBudget(const SimState& state) const override {
    return 1000 * (state.total_released() + 1) + 100000;
  }
  const char* budget_message() const override {
    return "guarded replay explosion";
  }

 private:
  const PriorityPolicy& policy_;
  EngineConfig config_;
  StarvationGuardTimeline timeline_;
  PhiAssignments phi_;
  std::vector<Bandwidth> plane_rates_;
  PlanRequestCache request_cache_;
  std::vector<const CircuitReservation*> span_scratch_;
  Time last_traced_tau_ = -kTimeInf;
};

// --- "rotor": demand-oblivious blind Φ rotation. ------------------------

class RotorScenario final : public ScenarioPolicy {
 public:
  RotorScenario(PortId num_ports, const EngineConfig& config)
      : config_(config),
        phi_(num_ports),
        span_(config.sunflow.delta + config.rotor_slot_duration) {
    SUNFLOW_CHECK(config_.rotor_slot_duration > 0);
    SUNFLOW_CHECK(config_.sunflow.delta >= 0);
    SUNFLOW_CHECK_MSG(config_.sunflow.fabric.num_planes() == 1,
                      "blind rotation models a single-plane fabric");
  }

  std::string name() const override { return "rotor"; }

  Time ExecuteSpan(ReplayDriver& driver, Time t) override {
    SimState& s = driver.state();
    auto& active = s.active();

    // The rotation grid is absolute: slot s covers [s·span, (s+1)·span)
    // with light from s·span + δ.
    const auto slot =
        static_cast<long long>(std::floor((t + kTimeEps) / span_));
    const Time slot_begin = static_cast<Time>(slot) * span_;
    const Time window_end = slot_begin + span_;
    const Time transmit_begin = slot_begin + config_.sunflow.delta;
    const Time t_arrival =
        s.HasPendingReleases() ? s.NextReleaseTime() : kTimeInf;
    const Time t_next = std::min(window_end, t_arrival);
    const Time begin = std::max(t, transmit_begin);

    if (begin < t_next - kTimeEps) {
      const int k = static_cast<int>(slot % s.num_ports());
      for (PortId i = 0; i < s.num_ports(); ++i) {
        const PortId j = phi_.OutputOf(k, i);
        std::vector<std::pair<SimCoflow*, Bytes*>> flows;
        for (auto& sc : active) {
          auto it = sc.remaining.find({i, j});
          if (it != sc.remaining.end() && it->second > kBytesEps)
            flows.emplace_back(&sc, &it->second);
        }
        if (!flows.empty())
          DrainEqualShare(flows, begin, t_next, config_.sunflow.bandwidth,
                          driver, i, j);
      }
    }
    return t_next;
  }

  std::size_t StepBudget(const SimState& state) const override {
    // Rotor utilization is ~1/N per pair, so the makespan can be enormous;
    // this scenario is meant for small ablation workloads. Cap the slot
    // count well above anything a sensible workload needs.
    return 2000000 + 2000 * (state.total_released() + 1);
  }
  const char* budget_message() const override {
    return "rotor replay exceeded its slot budget — the workload is too "
           "heavy for blind rotation";
  }

 private:
  EngineConfig config_;
  PhiAssignments phi_;
  Time span_ = 0;
};

// --- Registry run functions. --------------------------------------------

EngineResult RunCircuit(const Trace& trace, const PriorityPolicy* policy,
                        const EngineConfig& config) {
  trace.Validate();
  SUNFLOW_CHECK_MSG(policy != nullptr,
                    "the circuit scenario needs a priority policy");
  CircuitScenario scenario(*policy, config, nullptr);
  auto result = RunScenarioReplay(trace, scenario, config.sink, config.timeline);
  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

EngineResult RunGuarded(const Trace& trace, const PriorityPolicy* policy,
                        const EngineConfig& config) {
  trace.Validate();
  SUNFLOW_CHECK_MSG(policy != nullptr,
                    "the guarded scenario needs a priority policy");
  GuardScenario scenario(trace.num_ports, *policy, config);
  auto result = RunScenarioReplay(trace, scenario, config.sink, config.timeline);
  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

EngineResult RunRotor(const Trace& trace, const PriorityPolicy* /*policy*/,
                      const EngineConfig& config) {
  trace.Validate();
  RotorScenario scenario(trace.num_ports, config);
  auto result = RunScenarioReplay(trace, scenario, config.sink, config.timeline);
  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

EngineResult RunKCore(const Trace& trace, const PriorityPolicy* policy,
                      const EngineConfig& config) {
  trace.Validate();
  SUNFLOW_CHECK_MSG(policy != nullptr,
                    "the kcore scenario needs a priority policy");
  EngineResult result;
  if (config.kcore_joint) {
    // Joint planning over all K planes is the plane-aware circuit
    // scenario itself — with an empty fabric spec this is byte-identical
    // to "circuit" (the K=1 equivalence contract, core/fabric.h).
    CircuitScenario scenario(*policy, config, nullptr);
    result = RunScenarioReplay(trace, scenario, config.sink, config.timeline);
  } else {
    KCorePerCoreScenario scenario(*policy, config);
    result = RunScenarioReplay(trace, scenario, config.sink, config.timeline);
  }
  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

// Hybrid is a composite, not a span scenario: the trace is split by the
// offload rule and each side replays on its own (physically separate)
// fabric, so it registers a whole-trace run function.
EngineResult RunHybrid(const Trace& trace, const PriorityPolicy* policy,
                       const EngineConfig& config) {
  SUNFLOW_CHECK(config.packet_bandwidth > 0);
  Trace circuit_side, packet_side;
  circuit_side.num_ports = trace.num_ports;
  packet_side.num_ports = trace.num_ports;
  for (const Coflow& c : trace.coflows) {
    if (c.total_bytes() <= config.offload_threshold) {
      packet_side.coflows.push_back(c);
    } else {
      circuit_side.coflows.push_back(c);
    }
  }

  EngineResult result;
  result.offloaded = packet_side.coflows.size();
  result.circuit = circuit_side.coflows.size();

  if (!circuit_side.coflows.empty()) {
    EngineResult circuit_result = RunCircuit(circuit_side, policy, config);
    result.cct.insert(circuit_result.cct.begin(), circuit_result.cct.end());
    result.completion.insert(circuit_result.completion.begin(),
                             circuit_result.completion.end());
    result.makespan = std::max(result.makespan, circuit_result.makespan);
    result.replans += circuit_result.replans;
    result.queue = circuit_result.queue;
  }
  if (!packet_side.coflows.empty()) {
    // The companion packet network is coflow-scheduled too (the offloaded
    // traffic is small, so SEBF+MADD is a natural choice there).
    packet::PacketReplayConfig pc;
    pc.bandwidth = config.packet_bandwidth;
    auto varys = packet::MakeVarysAllocator();
    const auto packet_result =
        packet::ReplayPacketTrace(packet_side, *varys, pc);
    result.cct.insert(packet_result.cct.begin(), packet_result.cct.end());
    result.completion.insert(packet_result.completion.begin(),
                             packet_result.completion.end());
    result.makespan = std::max(result.makespan, packet_result.makespan);
  }
  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

}  // namespace

std::unique_ptr<ScenarioPolicy> MakeCircuitScenario(
    PortId /*num_ports*/, const PriorityPolicy& policy,
    const EngineConfig& config, CompletionHook hook) {
  return std::make_unique<CircuitScenario>(policy, config, std::move(hook));
}

std::unique_ptr<ScenarioPolicy> MakeGuardScenario(
    PortId num_ports, const PriorityPolicy& policy,
    const EngineConfig& config) {
  return std::make_unique<GuardScenario>(num_ports, policy, config);
}

std::unique_ptr<ScenarioPolicy> MakeRotorScenario(PortId num_ports,
                                                  const EngineConfig& config) {
  return std::make_unique<RotorScenario>(num_ports, config);
}

void RegisterBuiltinScenarios(ScenarioRegistry& registry) {
  registry.Register("circuit",
                    "Sunflow OCS replay: replan on arrivals/completions, "
                    "carry-over + replan throttle",
                    RunCircuit);
  registry.Register("guarded",
                    "circuit replay under the (T+tau) starvation guard",
                    RunGuarded);
  registry.Register("rotor",
                    "demand-oblivious blind Phi rotation (no policy)",
                    RunRotor);
  registry.Register("hybrid",
                    "OCS for big coflows, companion packet fabric below the "
                    "offload threshold",
                    RunHybrid);
  registry.Register("kcore",
                    "K-core OCS fabric: joint plane-aware planning "
                    "(kcore_joint), or the per-core baseline — each coflow "
                    "pinned to one core, Sunflow per core",
                    RunKCore);
}

}  // namespace sunflow::engine
