// The kernel's event queue: a binary min-heap keyed by
// (time, push sequence number).
//
// The sequence number is the deterministic tie-break: among events at the
// same instant, the queue is FIFO in push order. This replaces the
// sorted-vector rescans and unconsumed-tail std::sort of the per-engine
// loops with one O(log n) structure whose ordering is pinned by
// construction — two runs that push the same events in the same order pop
// them in the same order, regardless of heap internals.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.h"

namespace sunflow::engine {

/// Lifetime push/pop totals, surfaced through `EngineResult` and the
/// `engine.event_pushes` / `engine.event_pops` metrics so the heap-vs-scan
/// win is visible in the perf trajectory (bench/engine_replan).
struct EventQueueStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  /// Largest queue size ever reached — how far admission lags behind
  /// release pressure (bench/engine_replan prints it, the timeline
  /// sampler tracks its trajectory).
  std::uint64_t depth_high_water = 0;
};

template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    Time t = 0;
    std::uint64_t seq = 0;  ///< push order — the deterministic tie-break
    Payload payload{};
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Earliest (time, seq) entry. Undefined when empty.
  Time next_time() const { return heap_.front().t; }
  const Payload& next() const { return heap_.front().payload; }

  void Push(Time t, Payload payload) {
    ++stats_.pushes;
    heap_.push_back(Entry{t, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
    stats_.depth_high_water = std::max<std::uint64_t>(
        stats_.depth_high_water, heap_.size());
  }

  /// Batched push: appends every (time, payload) pair — assigning
  /// sequence numbers in batch order, exactly as element-wise Push would —
  /// then heapifies once. (time, seq) is a total order (seq is unique), so
  /// the pop order is identical to N element-wise pushes; only the number
  /// of sift operations changes: one make_heap instead of N push_heaps.
  void PushBatch(const std::vector<std::pair<Time, Payload>>& batch) {
    if (batch.empty()) return;
    stats_.pushes += batch.size();
    heap_.reserve(heap_.size() + batch.size());
    for (const auto& [t, payload] : batch) {
      heap_.push_back(Entry{t, next_seq_++, payload});
    }
    std::make_heap(heap_.begin(), heap_.end(), Later);
    stats_.depth_high_water = std::max<std::uint64_t>(
        stats_.depth_high_water, heap_.size());
  }

  Entry Pop() {
    ++stats_.pops;
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    return entry;
  }

  /// Batched pop: appends every entry with t <= cutoff to `out` in
  /// (time, seq) order and returns how many were taken. Lets a caller
  /// drain all due events into one reusable per-replan buffer instead of
  /// interleaving Pop calls with processing.
  std::size_t PopDue(Time cutoff, std::vector<Entry>& out) {
    std::size_t taken = 0;
    while (!heap_.empty() && heap_.front().t <= cutoff) {
      out.push_back(Pop());
      ++taken;
    }
    return taken;
  }

  const EventQueueStats& stats() const { return stats_; }

 private:
  // std::push_heap keeps the *greatest* element at the front, so "greater"
  // here means "fires later"; the earliest (time, seq) pair wins the front.
  static bool Later(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  EventQueueStats stats_;
};

}  // namespace sunflow::engine
