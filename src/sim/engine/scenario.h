// ScenarioPolicy — the strategy interface every replay engine implements —
// and the string-keyed registry that makes new fabric models one-file
// additions (see docs/engine.md for the contract and a worked example).
//
// A scenario owns the *physics* of one span: how the active set is planned
// (or not), which executor model drains bytes, and when the next event
// lands. The ReplayDriver owns everything else — admissions, completions,
// tie-breaking, event emission — so all scenarios share identical event
// semantics.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "core/starvation.h"
#include "core/sunflow.h"
#include "sim/engine/state.h"

namespace sunflow::runtime {
class ThreadPool;
}  // namespace sunflow::runtime

namespace sunflow::obs {
class TimelineSampler;
}  // namespace sunflow::obs

namespace sunflow::engine {

class ReplayDriver;

/// Union of the knobs the built-in scenarios consume. Each scenario reads
/// its own slice and ignores the rest, so one config type can flow from a
/// `--engine` flag through any registry entry.
struct EngineConfig {
  SunflowConfig sunflow;
  /// Re-reserve circuits that are mid-transmission at a replan instant
  /// without a new setup δ ("circuit" scenario).
  bool carry_over_circuits = true;
  /// Controller-load throttle: arrivals do not trigger a replan until at
  /// least this long after the previous one ("circuit" scenario).
  Time min_replan_interval = 0;
  /// Optional structured event tracer; the driver is the only emitter.
  obs::TraceSink* sink = nullptr;
  /// Optional sim-time telemetry sampler (obs/timeline.h); like the sink,
  /// the driver is the only feeder, so every scenario shares identical
  /// sampling semantics. Null (the default) compiles down to skipped
  /// branches — default runs stay byte-identical. Not owned.
  obs::TimelineSampler* timeline = nullptr;
  /// Optional worker pool for intra-replan parallelism: port-disjoint
  /// groups of the active set plan concurrently (ScheduleRequestsParallel,
  /// core/components.h). Null or size <= 1 plans serially; output is
  /// byte-identical either way — the pool changes wall-clock only. Not
  /// owned; must outlive the replay.
  runtime::ThreadPool* plan_pool = nullptr;
  /// (T + τ) cadence for the "guarded" scenario (τ > δ required).
  StarvationGuardConfig guard;
  /// How long each Φ assignment stays up in the "rotor" scenario
  /// (excluding the δ to install it; the rotor δ is `sunflow.delta`).
  Time rotor_slot_duration = Millis(90);
  /// Companion packet fabric for the "hybrid" scenario.
  Bandwidth packet_bandwidth = Gbps(0.1);
  /// Coflows with total bytes at or below this go to the packet network
  /// ("hybrid" scenario).
  Bytes offload_threshold = 10e6;
  /// "kcore" scenario: plan the active set jointly on the K-plane fabric
  /// (true, the default — earliest-feasible-plane greedy inside the
  /// planner), or run the literature's per-core baseline (false — each
  /// coflow pinned wholly to one core, Sunflow independently per core).
  bool kcore_joint = true;
};

/// Per-scenario hooks around the driver's plan → execute → replan loop.
class ScenarioPolicy {
 public:
  virtual ~ScenarioPolicy() = default;

  virtual std::string name() const = 0;

  /// Fills scenario-specific fields of a just-released coflow (the driver
  /// has already set id/arrival/total/remaining from `coflow`).
  virtual void OnAdmit(SimCoflow& sc, const Coflow& coflow, Time now) {
    (void)sc;
    (void)coflow;
    (void)now;
  }

  /// Fires after the driver records a completion at `finish`; may push
  /// further releases into `state` (dependency gating).
  virtual void OnComplete(SimState& state, const SimCoflow& sc, Time finish) {
    (void)state;
    (void)sc;
    (void)finish;
  }

  /// Fires when the driver fast-forwards over an idle gap (empty active
  /// set) to `now`; circuits idle away between bursts.
  virtual void OnIdleGap(SimState& state, Time now) {
    (void)state;
    (void)now;
  }

  /// Plans and executes one span starting at `now`: updates remaining
  /// demand (and `last_finish` where the model resolves exact finishes)
  /// and returns the span end — the next release, planned completion, or
  /// scenario boundary. Must return a time strictly after `now`.
  virtual Time ExecuteSpan(ReplayDriver& driver, Time now) = 0;

  /// Iteration cap for the driver loop (recomputed every iteration so
  /// completion hooks may grow the workload), and the CHECK message used
  /// when a non-advancing loop trips it.
  virtual std::size_t StepBudget(const SimState& state) const = 0;
  virtual const char* budget_message() const {
    return "replay exceeded its step budget";
  }
};

/// Hook for dependency-gated replays: invoked with the completed coflow id
/// and instant; pushes newly released coflows into the state.
using CompletionHook = std::function<void(SimState&, CoflowId, Time)>;

// --- Built-in scenario factories (defined in scenarios.cc). -------------

/// Sunflow circuit replay: Varys-like replan on arrivals/completions,
/// optional carry-over and replan throttle. `hook` enables DAG gating.
std::unique_ptr<ScenarioPolicy> MakeCircuitScenario(
    PortId num_ports, const PriorityPolicy& policy, const EngineConfig& config,
    CompletionHook hook = nullptr);

/// Circuit replay under the §4.2 starvation guard's (T + τ) cadence.
std::unique_ptr<ScenarioPolicy> MakeGuardScenario(PortId num_ports,
                                                  const PriorityPolicy& policy,
                                                  const EngineConfig& config);

/// Demand-oblivious blind Φ rotation (no priority policy).
std::unique_ptr<ScenarioPolicy> MakeRotorScenario(PortId num_ports,
                                                  const EngineConfig& config);

// --- Registry ------------------------------------------------------------

/// A registered scenario is a whole-trace run function; most wrap a
/// ScenarioPolicy in a ReplayDriver, but composites (e.g. "hybrid", which
/// splits the trace across two fabrics) own their orchestration. `policy`
/// may be null for policy-free scenarios ("rotor").
using ScenarioFn = std::function<EngineResult(
    const Trace&, const PriorityPolicy* policy, const EngineConfig&)>;

class ScenarioRegistry {
 public:
  /// The process-wide registry, with the built-ins ("circuit", "guarded",
  /// "rotor", "hybrid") registered on first use. Thread-safe.
  static ScenarioRegistry& Global();

  void Register(std::string name, std::string description, ScenarioFn run);
  bool Has(const std::string& name) const;
  /// Runs the named scenario; throws CheckFailure for unknown names.
  EngineResult Run(const std::string& name, const Trace& trace,
                   const PriorityPolicy* policy,
                   const EngineConfig& config) const;
  /// (name, description) pairs, sorted by name — for --help text.
  std::vector<std::pair<std::string, std::string>> List() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::pair<std::string, ScenarioFn>> scenarios_;
};

/// Registers the built-in scenarios into `registry` (idempotent only if
/// called once; ScenarioRegistry::Global() handles that).
void RegisterBuiltinScenarios(ScenarioRegistry& registry);

}  // namespace sunflow::engine
