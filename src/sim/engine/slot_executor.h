// Slot-schedule execution for the two switch models of §2.1, hosted by the
// kernel so the per-model loops live in one place (sched/executor.h keeps
// the public entry points as thin adapters).
//
// Not-all-stop (the accurate optical-switch model): reconfiguring one
// circuit costs δ on the two ports involved; unchanged circuits keep
// transmitting, and ports progress independently (Fig 1b's staggering).
//
// All-stop (the conventional TSA model): every assignment change stops all
// circuits for δ.
#pragma once

#include "common/units.h"
#include "sched/executor.h"
#include "sched/schedule.h"
#include "trace/demand_matrix.h"

namespace sunflow::engine {

enum class SwitchModel {
  kNotAllStop,  ///< per-port staggered δ (Fig 1b)
  kAllStop,     ///< global δ barrier on any assignment change
};

/// Replays an assignment schedule against the *original* (real) demand;
/// stuffed dummy demand occupies circuit time but moves no bytes. Also a
/// validator: leftover demand after the last slot is a bug in the
/// scheduler and throws. `sink` optionally receives one kCircuitSetup
/// event per δ paid (labelled `coflow`), and the run's totals feed the
/// `executor.circuit_setups` / `executor.slots` metrics.
ExecutionResult ExecuteAssignmentSchedule(const DemandMatrix& demand,
                                          const AssignmentSchedule& schedule,
                                          Time delta, Time start,
                                          SwitchModel model,
                                          obs::TraceSink* sink,
                                          CoflowId coflow);

}  // namespace sunflow::engine
