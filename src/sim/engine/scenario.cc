#include "sim/engine/scenario.h"

#include <utility>

#include "common/assert.h"

namespace sunflow::engine {

ScenarioRegistry& ScenarioRegistry::Global() {
  // Leaked singleton; built-ins are registered before first use so a
  // registry obtained here is never half-initialized.
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    RegisterBuiltinScenarios(*r);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::Register(std::string name, std::string description,
                                ScenarioFn run) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool inserted =
      scenarios_
          .emplace(std::move(name),
                   std::make_pair(std::move(description), std::move(run)))
          .second;
  SUNFLOW_CHECK_MSG(inserted, "scenario registered twice");
}

bool ScenarioRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scenarios_.count(name) > 0;
}

EngineResult ScenarioRegistry::Run(const std::string& name, const Trace& trace,
                                   const PriorityPolicy* policy,
                                   const EngineConfig& config) const {
  ScenarioFn run;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = scenarios_.find(name);
    if (it == scenarios_.end()) {
      std::string names;
      for (const auto& [n, entry] : scenarios_) {
        if (!names.empty()) names += ", ";
        names += n;
      }
      SUNFLOW_CHECK_MSG(false, "unknown scenario '" << name
                                                    << "' — registered: "
                                                    << names);
    }
    run = it->second.second;
  }
  return run(trace, policy, config);
}

std::vector<std::pair<std::string, std::string>> ScenarioRegistry::List()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, entry] : scenarios_)
    out.emplace_back(name, entry.first);
  return out;
}

}  // namespace sunflow::engine
