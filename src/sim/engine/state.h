// Shared simulation state for the discrete-event kernel: the pending
// release queue, the active coflow set, and the accumulated results.
//
// `SimCoflow` is the superset of the per-engine bookkeeping structs the
// kernel replaced (circuit ReplayCoflow, guard GuardCoflow, rotor
// RotorCoflow); scenarios use the fields they need and ignore the rest.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/engine/event_queue.h"
#include "trace/coflow.h"

namespace sunflow::obs {
class TraceSink;
}  // namespace sunflow::obs

namespace sunflow::engine {

/// Remaining demand of one coflow during a replay, in bytes.
struct SimCoflow {
  CoflowId id = -1;
  Time arrival = 0;  ///< release instant (CCT is measured from here)
  Time static_tpl = 0;
  Bytes total = 0;  ///< original demand (for attained-service policies)
  std::map<std::pair<PortId, PortId>, Bytes> remaining;
  /// End of the last window with non-zero service (starvation accounting).
  Time last_service = 0;
  Time max_gap = 0;
  /// Latest exact flow-finish instant seen so far; scenarios that track
  /// per-flow finishes record completions here, and the driver uses it as
  /// the completion instant when set (fluid engines finish mid-span).
  Time last_finish = 0;

  Bytes remaining_bytes() const {
    Bytes sum = 0;
    for (const auto& [pair, b] : remaining) sum += b;
    return sum;
  }
  bool done() const {
    for (const auto& [pair, b] : remaining)
      if (b > kBytesEps) return false;
    return true;
  }
  Time RemainingTpl(Bandwidth bandwidth) const {
    std::map<PortId, Bytes> in_load, out_load;
    for (const auto& [pair, b] : remaining) {
      if (b <= kBytesEps) continue;
      in_load[pair.first] += b;
      out_load[pair.second] += b;
    }
    Bytes busiest = 0;
    for (const auto& [p, v] : in_load) busiest = std::max(busiest, v);
    for (const auto& [p, v] : out_load) busiest = std::max(busiest, v);
    return busiest / bandwidth;
  }

  void NoteService(Time window_begin, Time window_end) {
    max_gap = std::max(max_gap, window_begin - last_service);
    last_service = window_end;
  }
};

/// Superset result of one kernel run; legacy adapters project the fields
/// their public result structs expose.
struct EngineResult {
  std::map<CoflowId, Time> cct;
  std::map<CoflowId, Time> completion;  ///< absolute completion times
  /// Total reservations issued per coflow across all plans (planning
  /// scenarios only).
  std::map<CoflowId, int> reservations;
  std::map<CoflowId, Time> max_service_gap;
  Time makespan = 0;
  std::size_t replans = 0;
  /// Streaming-replay aggregates: with a completion sink installed the
  /// per-coflow maps above stay empty (O(active) memory) and these carry
  /// the whole-run totals instead. Without a sink, completed mirrors
  /// cct.size() and cct_sum its sum.
  std::uint64_t completed = 0;
  double cct_sum = 0;
  /// Hybrid split accounting (the "hybrid" scenario only).
  std::size_t offloaded = 0;
  std::size_t circuit = 0;
  /// Event-queue traffic for this run (also mirrored into the
  /// `engine.event_pushes` / `engine.event_pops` metrics).
  EventQueueStats queue;
};

/// Pending releases + active set + results. Owned by the ReplayDriver;
/// scenarios mutate the active set and may push further releases
/// (dependency gating).
class SimState {
 public:
  SimState(PortId num_ports, obs::TraceSink* sink)
      : num_ports_(num_ports), sink_(sink) {}

  /// Queues a coflow for admission at `release` (≥ its nominal arrival for
  /// dependency-gated releases). CCT is measured from this instant.
  void PushRelease(Time release, const Coflow* coflow) {
    releases_.Push(release, coflow);
  }
  /// Batched variant for whole-trace seeding: one heapify instead of one
  /// sift per coflow, identical (time, seq) pop order (event_queue.h).
  void PushReleaseBatch(
      const std::vector<std::pair<Time, const Coflow*>>& batch) {
    releases_.PushBatch(batch);
  }
  bool HasPendingReleases() const { return !releases_.empty(); }
  Time NextReleaseTime() const { return releases_.next_time(); }
  EventQueue<const Coflow*>& releases() { return releases_; }

  /// Every coflow ever pushed (admitted or still pending) — the step
  /// budgets scale with this so completion hooks can grow the workload.
  std::size_t total_released() const { return releases_.stats().pushes; }

  std::vector<SimCoflow>& active() { return active_; }
  const std::vector<SimCoflow>& active() const { return active_; }

  PortId num_ports() const { return num_ports_; }
  obs::TraceSink* sink() const { return sink_; }
  EngineResult& result() { return result_; }

 private:
  PortId num_ports_ = 0;
  obs::TraceSink* sink_ = nullptr;
  EventQueue<const Coflow*> releases_;
  std::vector<SimCoflow> active_;
  EngineResult result_;
};

}  // namespace sunflow::engine
