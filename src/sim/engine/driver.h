// ReplayDriver — the single plan → execute-until-next-event → replan loop
// behind every replay engine, and the only place obs events are emitted.
//
// Tie-break contract for simultaneous events (docs/engine.md):
//   1. Completions at instant t are processed before releases at t: the
//      driver harvests the active set after each executed span, then admits
//      releases due at the new time at the top of the next iteration — so a
//      replan at t sees the departures first and the arrivals second, which
//      is also when a dependency-gated release triggered *at* t is admitted.
//   2. Among releases at the same instant, admission is FIFO in push order
//      (the event queue's (time, seq) key) — trace order for initial
//      releases, hook order for gated ones.
//   3. "Due" is tolerance-inclusive: a release at r is admitted at t when
//      r ≤ t + kTimeEps, matching every other kTimeEps comparison.
#pragma once

#include <deque>
#include <functional>

#include "core/sunflow.h"
#include "obs/event.h"
#include "obs/timeline.h"
#include "sim/engine/scenario.h"
#include "sim/engine/state.h"
#include "trace/source.h"

namespace sunflow::engine {

/// One completed coflow, as delivered to a CompletionSink: everything the
/// per-coflow result maps would have recorded.
struct CompletionRecord {
  CoflowId id = -1;
  Time arrival = 0;
  Time finish = 0;
  Time cct = 0;
  Time max_service_gap = 0;
  /// Total circuit reservations issued for this coflow (planning
  /// scenarios; 0 otherwise).
  int reservations = 0;
};

/// Out-of-core results: with a sink installed, the driver streams each
/// completion out instead of growing EngineResult's per-coflow maps, so
/// replay memory is bounded by the *active* set, not the trace length.
using CompletionSink = std::function<void(const CompletionRecord&)>;

class ReplayDriver {
 public:
  ReplayDriver(PortId num_ports, obs::TraceSink* sink,
               obs::TimelineSampler* timeline = nullptr)
      : state_(num_ports, sink), timeline_(timeline) {}

  /// Seed releases via state().PushRelease(), then Run. Every pushed coflow
  /// appears in the result exactly once.
  SimState& state() { return state_; }

  /// The replan loop. Each iteration: fast-forward over an idle gap if the
  /// active set is empty, admit due releases, let the scenario execute one
  /// span, harvest completions at the span end. Consumes the driver.
  EngineResult Run(ScenarioPolicy& scenario);

  /// Streaming replay: instead of pre-seeded releases, admission pulls
  /// arrivals lazily from `source` (which must yield coflows in
  /// (arrival, id) order — a sorted stream file or TraceCoflowSource).
  /// At most one undelivered arrival is held at a time, so driver memory
  /// is O(active set), and the (time, seq) pop order — hence every
  /// scheduling decision — is byte-identical to the pre-seeded path.
  /// Dependency-gated scenarios (completion hooks pushing new releases)
  /// are not supported with a source. Consumes the driver.
  EngineResult RunStream(ScenarioPolicy& scenario, CoflowSource& source);

  /// Streams completions out instead of accumulating them (see
  /// CompletionSink). Install before Run/RunStream.
  void set_completion_sink(CompletionSink sink) {
    completion_sink_ = std::move(sink);
  }

  // --- Emission helpers (scenarios call these; they never emit directly,
  // so every scenario shares identical event + metrics semantics). -------

  /// One replan: bumps replans/reservation counts and the scheduler
  /// metrics, emits kAssignmentComputed.
  void NoteReplan(Time t, const SunflowSchedule& plan, double plan_ns,
                  std::size_t num_requests);

  /// kCircuitSetup/kCircuitTeardown spans for the executed portion of a
  /// plan ([t, t_next) only; reservations superseded by the next replan
  /// never ran).
  void EmitExecutedPlan(const SunflowSchedule& plan, Time t, Time t_next);

  /// One τ round of the starvation guard: bumps `starvation.rounds`, emits
  /// kStarvationRound.
  void NoteStarvationRound(Time span_begin, Time dur, int k);

  /// A flow drained to zero at `t` on circuit (in → out).
  void EmitFlowFinished(Time t, CoflowId coflow, PortId in, PortId out);

  /// A flow held for the whole span [t, t_next) with no circuit: one
  /// kFlowBlocked at t plus the matching kFlowUnblocked at t_next
  /// (dur = span length). Scenarios use this for spans whose blocking
  /// cause they know directly (the starvation guard's τ hold).
  void EmitBlockedSpan(Time t, Time t_next, CoflowId coflow, PortId in,
                       PortId out, obs::BlockReason reason, CoflowId blamer);

  /// Derives blocked spans from an executed plan: every pending flow of
  /// the active set that got no circuit time in [t, t_next) is blocked for
  /// the span, blamed on the owner of an overlapping reservation on its
  /// input (then output) port. Call after ExecutePlanSpan so `remaining`
  /// reflects the drain — a flow that finished in the span is not blocked.
  void EmitBlockedSpans(const SunflowSchedule& plan, Time t, Time t_next);

 private:
  void AdmitDue(ScenarioPolicy& scenario, Time t);
  void AdmitOne(ScenarioPolicy& scenario,
                const EventQueue<const Coflow*>::Entry& entry, Time t);
  void Harvest(ScenarioPolicy& scenario, Time now);
  /// Pulls the next coflow off source_ into the window and pushes its
  /// release; false when the source is exhausted (or absent).
  bool PullOne();
  /// Feeds the executed portion of `plan` ([t, t_next) clips) plus the
  /// active/blocked gauges into the timeline sampler.
  void SampleExecutedPlan(const SunflowSchedule& plan, Time t, Time t_next);

  SimState state_;
  /// Optional telemetry sampler (obs/timeline.h); null in default runs.
  /// Not owned.
  obs::TimelineSampler* timeline_ = nullptr;
  /// Reusable batch buffer for AdmitDue's PopDue drain (allocated once,
  /// cleared per admission round).
  std::vector<EventQueue<const Coflow*>::Entry> due_;
  /// Reusable clipped-circuit buffer for SampleExecutedPlan.
  std::vector<obs::TimelineCircuitUse> circuit_uses_;
  /// Streaming mode (RunStream): the pull source and the FIFO of pulled
  /// but not-yet-admitted coflows the release queue points into. The
  /// invariant "releases non-empty unless source_ is dry" keeps
  /// NextReleaseTime()/AdmitDue oblivious to the laziness.
  CoflowSource* source_ = nullptr;
  std::deque<Coflow> window_;
  Time last_pulled_arrival_ = 0;
  CompletionSink completion_sink_;
};

/// Front door: seeds one release per trace coflow at its arrival and runs
/// `scenario`. Callers needing custom releases (DAG gating) drive a
/// ReplayDriver directly.
EngineResult RunScenarioReplay(const Trace& trace, ScenarioPolicy& scenario,
                               obs::TraceSink* sink,
                               obs::TimelineSampler* timeline = nullptr);

/// Streaming front door: pulls arrivals from `source` (arrival-ordered)
/// and — when `completion_sink` is given — streams completions out, so
/// the whole replay holds O(active coflows) regardless of trace length.
/// Scheduling output is byte-identical to RunScenarioReplay on the same
/// coflow sequence.
EngineResult RunScenarioStream(CoflowSource& source, ScenarioPolicy& scenario,
                               obs::TraceSink* sink,
                               obs::TimelineSampler* timeline = nullptr,
                               CompletionSink completion_sink = nullptr);

}  // namespace sunflow::engine
