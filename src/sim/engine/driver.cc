#include "sim/engine/driver.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_sink.h"

namespace sunflow::engine {

EngineResult ReplayDriver::Run(ScenarioPolicy& scenario) {
  SUNFLOW_PROFILE_SCOPE("engine.replay");
  SimState& s = state_;
  Time t = 0;
  std::size_t steps = 0;

  while (!s.active().empty() || s.HasPendingReleases()) {
    // Every iteration consumes at least one release or strictly advances
    // time toward one; the budget trips non-advancing scenarios.
    SUNFLOW_CHECK_MSG(++steps < scenario.StepBudget(s),
                      scenario.budget_message());

    if (s.active().empty()) {
      t = std::max(t, s.NextReleaseTime());
      scenario.OnIdleGap(s, t);
    }
    {
      SUNFLOW_PROFILE_SCOPE("engine.admit");
      AdmitDue(scenario, t);
    }
    {
      SUNFLOW_PROFILE_SCOPE("engine.execute");
      t = scenario.ExecuteSpan(*this, t);
    }
    {
      SUNFLOW_PROFILE_SCOPE("engine.harvest");
      Harvest(scenario, t);
    }
  }

  s.result().queue = s.releases().stats();
  auto& metrics = obs::GlobalMetrics();
  metrics.GetCounter("engine.event_pushes").Increment(s.result().queue.pushes);
  metrics.GetCounter("engine.event_pops").Increment(s.result().queue.pops);
  return std::move(s.result());
}

void ReplayDriver::AdmitDue(ScenarioPolicy& scenario, Time t) {
  auto& releases = state_.releases();
  while (!releases.empty() && releases.next_time() <= t + kTimeEps) {
    const auto entry = releases.Pop();
    const Coflow& coflow = *entry.payload;
    SimCoflow sc;
    sc.id = coflow.id();
    sc.arrival = entry.t;
    sc.total = coflow.total_bytes();
    for (const Flow& f : coflow.flows()) sc.remaining[{f.src, f.dst}] = f.bytes;
    scenario.OnAdmit(sc, coflow, t);
    const CoflowId id = sc.id;
    state_.active().push_back(std::move(sc));
    obs::Emit(state_.sink(), {.type = obs::EventType::kCoflowAdmitted,
                              .t = std::max(t, entry.t),
                              .coflow = id});
  }
}

void ReplayDriver::Harvest(ScenarioPolicy& scenario, Time now) {
  auto& active = state_.active();
  EngineResult& result = state_.result();
  for (auto it = active.begin(); it != active.end();) {
    if (it->done()) {
      // Fluid scenarios resolve exact finish instants mid-span
      // (last_finish); the circuit planner's dust semantics finish at the
      // span end.
      const Time finish = it->last_finish > 0 ? it->last_finish : now;
      result.cct[it->id] = finish - it->arrival;
      result.completion[it->id] = finish;
      result.max_service_gap[it->id] = it->max_gap;
      result.makespan = std::max(result.makespan, finish);
      obs::Emit(state_.sink(), {.type = obs::EventType::kCoflowCompleted,
                                .t = finish,
                                .coflow = it->id,
                                .value = finish - it->arrival});
      scenario.OnComplete(state_, *it, finish);
      it = active.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplayDriver::NoteReplan(Time t, const SunflowSchedule& plan,
                              double plan_ns, std::size_t num_requests) {
  EngineResult& result = state_.result();
  ++result.replans;
  for (const auto& [id, count] : plan.reservation_count)
    result.reservations[id] += count;
  obs::GlobalMetrics().GetHistogram("scheduler.compute_ns").Record(plan_ns);
  obs::GlobalMetrics().GetCounter("replay.replans").Increment();
  // Externally timed by the scenario (the same number the
  // kAssignmentComputed event carries); lands next to the scope-measured
  // engine.* phases so a manifest shows planning vs execution directly.
  obs::GlobalProfiler().RecordNs("engine.plan", plan_ns);
  obs::Emit(state_.sink(),
            {.type = obs::EventType::kAssignmentComputed,
             .t = t,
             .value = plan_ns,
             .count = static_cast<std::int64_t>(num_requests)});
}

void ReplayDriver::EmitExecutedPlan(const SunflowSchedule& plan,
                                    Time /*t*/, Time t_next) {
  if (state_.sink() == nullptr) return;
  for (const auto& r : plan.reservations) {
    if (r.start >= t_next - kTimeEps) continue;
    const Time end = std::min(r.end, t_next);
    obs::Emit(state_.sink(), {.type = obs::EventType::kCircuitSetup,
                              .t = r.start,
                              .dur = end - r.start,
                              .coflow = r.coflow,
                              .in = r.in,
                              .out = r.out,
                              .value = r.setup});
    if (r.end <= t_next + kTimeEps) {
      obs::Emit(state_.sink(), {.type = obs::EventType::kCircuitTeardown,
                                .t = r.end,
                                .coflow = r.coflow,
                                .in = r.in,
                                .out = r.out});
    }
  }
}

void ReplayDriver::NoteStarvationRound(Time span_begin, Time dur, int k) {
  obs::GlobalMetrics().GetCounter("starvation.rounds").Increment();
  obs::Emit(state_.sink(), {.type = obs::EventType::kStarvationRound,
                            .t = span_begin,
                            .dur = dur,
                            .count = k});
}

void ReplayDriver::EmitFlowFinished(Time t, CoflowId coflow, PortId in,
                                    PortId out) {
  obs::Emit(state_.sink(), {.type = obs::EventType::kFlowFinished,
                            .t = t,
                            .coflow = coflow,
                            .in = in,
                            .out = out});
}

EngineResult RunScenarioReplay(const Trace& trace, ScenarioPolicy& scenario,
                               obs::TraceSink* sink) {
  ReplayDriver driver(trace.num_ports, sink);
  for (const Coflow& c : trace.coflows)
    driver.state().PushRelease(c.arrival(), &c);
  return driver.Run(scenario);
}

}  // namespace sunflow::engine
