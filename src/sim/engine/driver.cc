#include "sim/engine/driver.h"

#include <algorithm>
#include <set>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_sink.h"

namespace sunflow::engine {

EngineResult ReplayDriver::Run(ScenarioPolicy& scenario) {
  SUNFLOW_PROFILE_SCOPE("engine.replay");
  SimState& s = state_;
  Time t = 0;
  std::size_t steps = 0;

  if (timeline_ != nullptr) timeline_->BeginRun(s.num_ports());
  while (!s.active().empty() || s.HasPendingReleases()) {
    // Every iteration consumes at least one release or strictly advances
    // time toward one; the budget trips non-advancing scenarios.
    SUNFLOW_CHECK_MSG(++steps < scenario.StepBudget(s),
                      scenario.budget_message());

    if (s.active().empty()) {
      t = std::max(t, s.NextReleaseTime());
      scenario.OnIdleGap(s, t);
      // Close out the idle gap's windows before admissions land, so gap
      // samples carry active = 0 rather than the post-burst gauges.
      if (timeline_ != nullptr) {
        timeline_->Advance(t, 0, s.releases().size(),
                           s.releases().stats().pops);
      }
    }
    if (timeline_ != nullptr)
      timeline_->NoteQueueDepth(t, s.releases().size());
    {
      SUNFLOW_PROFILE_SCOPE("engine.admit");
      AdmitDue(scenario, t);
    }
    const Time span_begin = t;
    {
      SUNFLOW_PROFILE_SCOPE("engine.execute");
      t = scenario.ExecuteSpan(*this, t);
    }
    {
      SUNFLOW_PROFILE_SCOPE("engine.harvest");
      Harvest(scenario, t);
    }
    if (timeline_ != nullptr) {
      timeline_->NoteEngineSpan(span_begin, t);
      timeline_->Advance(t, static_cast<int>(s.active().size()),
                         s.releases().size(), s.releases().stats().pops);
    }
  }
  if (timeline_ != nullptr) timeline_->EndRun(t);

  s.result().queue = s.releases().stats();
  auto& metrics = obs::GlobalMetrics();
  metrics.GetCounter("engine.event_pushes").Increment(s.result().queue.pushes);
  metrics.GetCounter("engine.event_pops").Increment(s.result().queue.pops);
  return std::move(s.result());
}

void ReplayDriver::AdmitDue(ScenarioPolicy& scenario, Time t) {
  // Drain every due release into the reusable batch buffer first (one
  // PopDue call), then admit; (time, seq) order — and therefore the FIFO
  // tie-break contract — is preserved by the queue.
  due_.clear();
  state_.releases().PopDue(t + kTimeEps, due_);
  for (;;) {
    for (const auto& entry : due_) AdmitOne(scenario, entry, t);
    due_.clear();
    // Streaming mode: the release queue only ever holds a prefix of the
    // (arrival-ordered) source, so after draining it top up until the
    // next pending release is beyond t or the source is dry — laziness
    // must never change what counts as "due". Pulls assign the same
    // (time, seq) keys as whole-trace seeding, so admission order — and
    // every downstream scheduling decision — is identical.
    if (source_ == nullptr || state_.HasPendingReleases()) break;
    if (!PullOne()) break;
    state_.releases().PopDue(t + kTimeEps, due_);
    if (due_.empty()) break;
  }
}

void ReplayDriver::AdmitOne(ScenarioPolicy& scenario,
                            const EventQueue<const Coflow*>::Entry& entry,
                            Time t) {
  const Coflow& coflow = *entry.payload;
  SimCoflow sc;
  sc.id = coflow.id();
  sc.arrival = entry.t;
  sc.total = coflow.total_bytes();
  for (const Flow& f : coflow.flows()) sc.remaining[{f.src, f.dst}] = f.bytes;
  scenario.OnAdmit(sc, coflow, t);
  // static_tpl is set by OnAdmit; scenarios that leave it 0 (rotor)
  // contribute a zero-width demand interval — their idleness aggregate
  // is meaningless either way (no TpL model).
  if (timeline_ != nullptr)
    timeline_->NoteAdmitted(entry.t, sc.static_tpl);
  const CoflowId id = sc.id;
  state_.active().push_back(std::move(sc));
  // dur carries the admission queueing wait (admit instant minus release
  // instant — positive when the replan throttle queued the release), the
  // pre-admission component of the CCT decomposition.
  obs::Emit(state_.sink(), {.type = obs::EventType::kCoflowAdmitted,
                            .t = std::max(t, entry.t),
                            .dur = std::max(0.0, t - entry.t),
                            .coflow = id});
  if (source_ != nullptr) {
    // Admissions consume the pulled window strictly FIFO (the queue pops
    // in (time, seq) = pull order); the coflow's bytes now live in
    // sc.remaining, so the storage can go.
    SUNFLOW_CHECK_MSG(!window_.empty() && entry.payload == &window_.front(),
                      "streamed admission out of window order");
    window_.pop_front();
  }
}

bool ReplayDriver::PullOne() {
  if (source_ == nullptr) return false;
  Coflow c;
  if (!source_->Next(c)) return false;
  SUNFLOW_CHECK_MSG(c.arrival() >= last_pulled_arrival_,
                    "streamed source is not arrival-ordered (run extsort)");
  last_pulled_arrival_ = c.arrival();
  window_.push_back(std::move(c));
  state_.PushRelease(window_.back().arrival(), &window_.back());
  return true;
}

void ReplayDriver::Harvest(ScenarioPolicy& scenario, Time now) {
  auto& active = state_.active();
  EngineResult& result = state_.result();
  for (auto it = active.begin(); it != active.end();) {
    if (it->done()) {
      // Fluid scenarios resolve exact finish instants mid-span
      // (last_finish); the circuit planner's dust semantics finish at the
      // span end.
      const Time finish = it->last_finish > 0 ? it->last_finish : now;
      if (completion_sink_) {
        // Out-of-core mode: hand the record off and keep the per-coflow
        // maps empty. The reservations entry NoteReplan accumulated is
        // drained here too — it is the one map that would otherwise grow
        // with the trace.
        CompletionRecord rec;
        rec.id = it->id;
        rec.arrival = it->arrival;
        rec.finish = finish;
        rec.cct = finish - it->arrival;
        rec.max_service_gap = it->max_gap;
        if (auto rit = result.reservations.find(it->id);
            rit != result.reservations.end()) {
          rec.reservations = rit->second;
          result.reservations.erase(rit);
        }
        completion_sink_(rec);
      } else {
        result.cct[it->id] = finish - it->arrival;
        result.completion[it->id] = finish;
        result.max_service_gap[it->id] = it->max_gap;
      }
      ++result.completed;
      result.cct_sum += finish - it->arrival;
      result.makespan = std::max(result.makespan, finish);
      obs::Emit(state_.sink(), {.type = obs::EventType::kCoflowCompleted,
                                .t = finish,
                                .coflow = it->id,
                                .value = finish - it->arrival});
      scenario.OnComplete(state_, *it, finish);
      it = active.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplayDriver::NoteReplan(Time t, const SunflowSchedule& plan,
                              double plan_ns, std::size_t num_requests) {
  EngineResult& result = state_.result();
  ++result.replans;
  for (const auto& [id, count] : plan.reservation_count)
    result.reservations[id] += count;
  if (timeline_ != nullptr) {
    timeline_->NoteReplan(t, plan_ns, plan.memo_hits, plan.memo_lookups,
                          plan.parallel_groups);
  }
  obs::GlobalMetrics().GetHistogram("scheduler.compute_ns").Record(plan_ns);
  obs::GlobalMetrics().GetCounter("replay.replans").Increment();
  // Externally timed by the scenario (the same number the
  // kAssignmentComputed event carries); lands next to the scope-measured
  // engine.* phases so a manifest shows planning vs execution directly.
  obs::GlobalProfiler().RecordNs("engine.plan", plan_ns);
  obs::Emit(state_.sink(),
            {.type = obs::EventType::kAssignmentComputed,
             .t = t,
             .value = plan_ns,
             .count = static_cast<std::int64_t>(num_requests)});
}

void ReplayDriver::SampleExecutedPlan(const SunflowSchedule& plan, Time t,
                                      Time t_next) {
  circuit_uses_.clear();
  circuit_uses_.reserve(plan.reservations.size());
  // The served set mirrors EmitBlockedSpans' notion of "got circuit time
  // in the span", but at coflow granularity: a coflow with no overlapping
  // reservation at all spent the whole span blocked.
  std::set<CoflowId> served;
  for (const auto& r : plan.reservations) {
    const Time begin = std::max(r.start, t);
    const Time end = std::min(r.end, t_next);
    if (end - begin <= kTimeEps) continue;
    circuit_uses_.push_back({r.plane, begin, end});
    served.insert(r.coflow);
  }
  int blocked = 0;
  for (const auto& sc : state_.active()) {
    if (served.count(sc.id) == 0) ++blocked;
  }
  timeline_->IngestCircuits(t, t_next, circuit_uses_,
                            static_cast<int>(state_.active().size()), blocked);
}

void ReplayDriver::EmitExecutedPlan(const SunflowSchedule& plan,
                                    Time t, Time t_next) {
  if (timeline_ != nullptr) SampleExecutedPlan(plan, t, t_next);
  if (state_.sink() == nullptr) return;
  for (const auto& r : plan.reservations) {
    if (r.start >= t_next - kTimeEps) continue;
    const Time end = std::min(r.end, t_next);
    if (end - r.start <= kTimeEps) continue;  // superseded at birth
    // A reservation cut off by the replan may have spent only part of its
    // δ before being abandoned; the span records what physically ran.
    obs::Emit(state_.sink(), {.type = obs::EventType::kCircuitSetup,
                              .t = r.start,
                              .dur = end - r.start,
                              .coflow = r.coflow,
                              .in = r.in,
                              .out = r.out,
                              .value = std::min(r.setup, end - r.start),
                              .plane = r.plane});
    if (r.end <= t_next + kTimeEps) {
      obs::Emit(state_.sink(), {.type = obs::EventType::kCircuitTeardown,
                                .t = r.end,
                                .coflow = r.coflow,
                                .in = r.in,
                                .out = r.out,
                                .plane = r.plane});
    }
  }
}

void ReplayDriver::NoteStarvationRound(Time span_begin, Time dur, int k) {
  obs::GlobalMetrics().GetCounter("starvation.rounds").Increment();
  obs::Emit(state_.sink(), {.type = obs::EventType::kStarvationRound,
                            .t = span_begin,
                            .dur = dur,
                            .count = k});
}

void ReplayDriver::EmitFlowFinished(Time t, CoflowId coflow, PortId in,
                                    PortId out) {
  obs::Emit(state_.sink(), {.type = obs::EventType::kFlowFinished,
                            .t = t,
                            .coflow = coflow,
                            .in = in,
                            .out = out});
}

void ReplayDriver::EmitBlockedSpan(Time t, Time t_next, CoflowId coflow,
                                   PortId in, PortId out,
                                   obs::BlockReason reason, CoflowId blamer) {
  obs::Emit(state_.sink(), {.type = obs::EventType::kFlowBlocked,
                            .t = t,
                            .coflow = coflow,
                            .in = in,
                            .out = out,
                            .value = static_cast<double>(blamer),
                            .count = static_cast<std::int64_t>(reason)});
  obs::Emit(state_.sink(), {.type = obs::EventType::kFlowUnblocked,
                            .t = t_next,
                            .dur = t_next - t,
                            .coflow = coflow,
                            .in = in,
                            .out = out,
                            .value = static_cast<double>(blamer),
                            .count = static_cast<std::int64_t>(reason)});
}

void ReplayDriver::EmitBlockedSpans(const SunflowSchedule& plan, Time t,
                                    Time t_next) {
  if (state_.sink() == nullptr || t_next <= t + kTimeEps) return;
  for (const auto& sc : state_.active()) {
    for (const auto& [pair, bytes] : sc.remaining) {
      if (bytes <= kBytesEps) continue;
      // Was this flow's circuit up at any point in the span? If so its
      // wait, if any, is sub-span and the planner's own episode events
      // (when planning traced) carry the detail; the driver only derives
      // whole-span blocks.
      bool served = false;
      const CircuitReservation* in_blocker = nullptr;
      const CircuitReservation* out_blocker = nullptr;
      for (const auto& r : plan.reservations) {
        if (r.start >= t_next - kTimeEps || r.end <= t + kTimeEps) continue;
        if (r.coflow == sc.id && r.in == pair.first && r.out == pair.second) {
          served = true;
          break;
        }
        if (r.in == pair.first && in_blocker == nullptr) in_blocker = &r;
        if (r.out == pair.second && out_blocker == nullptr) out_blocker = &r;
      }
      if (served) continue;
      obs::BlockReason reason = obs::BlockReason::kCircuitConflict;
      CoflowId blamer = -1;
      if (in_blocker != nullptr) {
        reason = obs::BlockReason::kInputPortBusy;
        blamer = in_blocker->coflow;
      } else if (out_blocker != nullptr) {
        reason = obs::BlockReason::kOutputPortBusy;
        blamer = out_blocker->coflow;
      }
      EmitBlockedSpan(t, t_next, sc.id, pair.first, pair.second, reason,
                      blamer);
    }
  }
}

EngineResult ReplayDriver::RunStream(ScenarioPolicy& scenario,
                                     CoflowSource& source) {
  SUNFLOW_CHECK_MSG(state_.num_ports() == source.num_ports(),
                    "source fabric size differs from the driver's");
  SUNFLOW_CHECK_MSG(!state_.HasPendingReleases(),
                    "RunStream on a driver with pre-seeded releases");
  source_ = &source;
  // Prime the release queue so Run's loop condition and NextReleaseTime
  // see the first arrival; AdmitDue keeps the queue topped up after that.
  PullOne();
  return Run(scenario);
}

EngineResult RunScenarioReplay(const Trace& trace, ScenarioPolicy& scenario,
                               obs::TraceSink* sink,
                               obs::TimelineSampler* timeline) {
  ReplayDriver driver(trace.num_ports, sink, timeline);
  std::vector<std::pair<Time, const Coflow*>> seed;
  seed.reserve(trace.coflows.size());
  for (const Coflow& c : trace.coflows) seed.emplace_back(c.arrival(), &c);
  driver.state().PushReleaseBatch(seed);
  return driver.Run(scenario);
}

EngineResult RunScenarioStream(CoflowSource& source, ScenarioPolicy& scenario,
                               obs::TraceSink* sink,
                               obs::TimelineSampler* timeline,
                               CompletionSink completion_sink) {
  ReplayDriver driver(source.num_ports(), sink, timeline);
  if (completion_sink) driver.set_completion_sink(std::move(completion_sink));
  return driver.RunStream(scenario, source);
}

}  // namespace sunflow::engine
