// Demand-oblivious fixed-rotation baseline ("rotor" scheduling).
//
// The starvation guard's Φ assignment family (§4.2) can also be used as a
// complete scheduler: rotate through A_1 … A_N forever, paying δ per
// rotation, with no knowledge of demand at all. This is the logical
// extreme of schedule-less optical switching (later productized by
// RotorNet-style designs) and makes a sharp ablation: how much does
// Sunflow's demand-awareness actually buy over blind rotation on the same
// hardware?
#pragma once

#include <map>

#include "core/starvation.h"
#include "trace/coflow.h"

namespace sunflow {

struct RotorReplayConfig {
  Bandwidth bandwidth = Gbps(1);
  Time delta = Millis(10);
  /// How long each assignment stays up (excluding the δ to install it).
  Time slot_duration = Millis(90);
};

struct RotorReplayResult {
  std::map<CoflowId, Time> cct;
  std::map<CoflowId, Time> completion;
  Time makespan = 0;
};

/// Replays the trace under blind Φ rotation: during each slot, every
/// circuit (i, (i+k) mod N) serves the flows queued on that pair, sharing
/// the link bandwidth equally (all coflows alike — there is no priority).
RotorReplayResult ReplayRotorTrace(const Trace& trace,
                                   const RotorReplayConfig& config);

}  // namespace sunflow
