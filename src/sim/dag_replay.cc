#include "sim/dag_replay.h"

#include <algorithm>
#include <functional>

#include "common/assert.h"
#include "sim/adapter_util.h"
#include "sim/engine/driver.h"
#include "sim/engine/scenario.h"

namespace sunflow {

void CoflowDag::AddDependency(CoflowId coflow, CoflowId dependency) {
  SUNFLOW_CHECK_MSG(coflow != dependency, "self-dependency");
  deps_[coflow].push_back(dependency);
}

std::map<CoflowId, int> CoflowDag::StageOf(const Trace& trace) const {
  std::map<CoflowId, const Coflow*> by_id;
  for (const Coflow& c : trace.coflows) by_id[c.id()] = &c;
  for (const auto& [id, dependencies] : deps_) {
    SUNFLOW_CHECK_MSG(by_id.count(id), "DAG references unknown coflow " << id);
    for (CoflowId d : dependencies)
      SUNFLOW_CHECK_MSG(by_id.count(d),
                        "DAG references unknown dependency " << d);
  }

  std::map<CoflowId, int> stage;
  // DFS with cycle detection (0 = unvisited, 1 = on stack, 2 = done).
  std::map<CoflowId, int> state;
  std::function<int(CoflowId)> depth = [&](CoflowId id) -> int {
    auto it = stage.find(id);
    if (it != stage.end()) return it->second;
    SUNFLOW_CHECK_MSG(state[id] != 1, "DAG has a cycle through coflow " << id);
    state[id] = 1;
    int d = 0;
    auto dep_it = deps_.find(id);
    if (dep_it != deps_.end()) {
      for (CoflowId dep : dep_it->second) d = std::max(d, 1 + depth(dep));
    }
    state[id] = 2;
    stage[id] = d;
    return d;
  };
  for (const Coflow& c : trace.coflows) depth(c.id());
  return stage;
}

namespace {

class StagePolicy : public PriorityPolicy {
 public:
  explicit StagePolicy(std::map<CoflowId, int> stage_of)
      : stage_of_(std::move(stage_of)) {}

  std::string name() const override { return "earlier-stage-first"; }

  std::vector<std::size_t> Order(
      const std::vector<CoflowView>& views) const override {
    std::vector<std::size_t> order(views.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const int sa = StageOfId(views[a].id);
                       const int sb = StageOfId(views[b].id);
                       if (sa != sb) return sa < sb;
                       if (views[a].remaining_tpl != views[b].remaining_tpl)
                         return views[a].remaining_tpl <
                                views[b].remaining_tpl;
                       return views[a].id < views[b].id;
                     });
    return order;
  }

 private:
  int StageOfId(CoflowId id) const {
    auto it = stage_of_.find(id);
    return it == stage_of_.end() ? 0 : it->second;
  }

  std::map<CoflowId, int> stage_of_;
};

}  // namespace

std::unique_ptr<PriorityPolicy> MakeStagePolicy(
    std::map<CoflowId, int> stage_of) {
  return std::make_unique<StagePolicy>(std::move(stage_of));
}

DagReplayResult ReplayDagTrace(const Trace& trace, const CoflowDag& dag,
                               const PriorityPolicy& policy,
                               const CircuitReplayConfig& config) {
  trace.Validate();
  dag.StageOf(trace);  // validates ids + acyclicity

  std::map<CoflowId, const Coflow*> by_id;
  for (const Coflow& c : trace.coflows) by_id[c.id()] = &c;

  // Remaining unmet dependencies per gated coflow, and the reverse edges.
  std::map<CoflowId, std::size_t> unmet;
  std::map<CoflowId, std::vector<CoflowId>> dependents;
  for (const auto& [id, dependencies] : dag.deps()) {
    unmet[id] = dependencies.size();
    for (CoflowId d : dependencies) dependents[d].push_back(id);
  }

  // Gated coflows enter the kernel's release queue when their last
  // dependency completes; the rest are seeded up front.
  engine::ReplayDriver driver(trace.num_ports, config.sink);
  std::size_t initial = 0;
  for (const Coflow& c : trace.coflows) {
    if (unmet.find(c.id()) == unmet.end()) {
      driver.state().PushRelease(c.arrival(), &c);
      ++initial;
    }
  }
  SUNFLOW_CHECK_MSG(initial > 0 || trace.coflows.empty(),
                    "every coflow is dependency-gated — nothing can start");

  auto hook = [&](engine::SimState& state, CoflowId done, Time now) {
    auto it = dependents.find(done);
    if (it == dependents.end()) return;
    for (CoflowId dependent : it->second) {
      auto um = unmet.find(dependent);
      SUNFLOW_CHECK(um != unmet.end() && um->second > 0);
      if (--um->second == 0) {
        const Coflow* c = by_id.at(dependent);
        state.PushRelease(std::max(now, c->arrival()), c);
      }
    }
  };

  auto scenario = engine::MakeCircuitScenario(
      trace.num_ports, policy, sim_detail::ToEngineConfig(config), hook);
  const engine::EngineResult engine_result = driver.Run(*scenario);
  SUNFLOW_CHECK_MSG(engine_result.cct.size() == trace.coflows.size(),
                    "DAG replay finished with unreleased coflows");

  DagReplayResult result;
  result.cct = engine_result.cct;
  result.completion = engine_result.completion;
  Time first_arrival = kTimeInf;
  for (const Coflow& c : trace.coflows)
    first_arrival = std::min(first_arrival, c.arrival());
  for (const auto& [id, completion] : engine_result.completion) {
    result.release[id] = completion - engine_result.cct.at(id);
  }
  result.job_span = engine_result.makespan -
                    (trace.coflows.empty() ? 0 : first_arrival);
  return result;
}

}  // namespace sunflow
