#include "sim/starvation_replay.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "trace/bounds.h"

namespace sunflow {

namespace {

struct GuardCoflow {
  CoflowId id = -1;
  Time arrival = 0;
  Time static_tpl = 0;
  Bytes total = 0;
  std::map<std::pair<PortId, PortId>, Bytes> remaining;
  Time last_service = 0;  ///< end of the last window with non-zero service
  Time max_gap = 0;
  Time last_finish = 0;  ///< latest flow-finish instant seen so far

  bool done() const {
    for (const auto& [pair, b] : remaining)
      if (b > kBytesEps) return false;
    return true;
  }
  Bytes remaining_bytes() const {
    Bytes sum = 0;
    for (const auto& [pair, b] : remaining) sum += b;
    return sum;
  }
  Time RemainingTpl(Bandwidth bandwidth) const {
    std::map<PortId, Bytes> in_load, out_load;
    for (const auto& [pair, b] : remaining) {
      if (b <= kBytesEps) continue;
      in_load[pair.first] += b;
      out_load[pair.second] += b;
    }
    Bytes busiest = 0;
    for (const auto& [p, v] : in_load) busiest = std::max(busiest, v);
    for (const auto& [p, v] : out_load) busiest = std::max(busiest, v);
    return busiest / bandwidth;
  }

  void NoteService(Time window_begin, Time window_end) {
    max_gap = std::max(max_gap, window_begin - last_service);
    last_service = window_end;
  }
};

// Equal-share fluid drain of the flows on one circuit over [begin, end):
// n live flows each get B/n; when one drains the rest speed up. Updates
// remaining bytes and records exact finish instants.
void DrainShared(std::vector<std::pair<GuardCoflow*, Bytes*>>& flows,
                 Time begin, Time end, Bandwidth bandwidth,
                 std::map<CoflowId, Time>& finish_at) {
  Time t = begin;
  std::vector<std::pair<GuardCoflow*, Bytes*>> live;
  for (auto& f : flows)
    if (*f.second > kBytesEps) live.push_back(f);
  while (!live.empty() && t < end - kTimeEps) {
    const Bandwidth share = bandwidth / static_cast<double>(live.size());
    // Earliest finish among live flows at this share.
    Time first_finish = kTimeInf;
    for (auto& f : live)
      first_finish = std::min(first_finish, t + *f.second / share);
    const Time step_end = std::min(end, first_finish);
    const Bytes moved = share * (step_end - t);
    std::vector<std::pair<GuardCoflow*, Bytes*>> next_live;
    for (auto& f : live) {
      *f.second = std::max(0.0, *f.second - moved);
      if (*f.second <= kBytesEps) {
        *f.second = 0;
        auto& at = finish_at[f.first->id];
        at = std::max(at, step_end);
        f.first->last_finish = std::max(f.first->last_finish, step_end);
      } else {
        next_live.push_back(f);
      }
    }
    live = std::move(next_live);
    t = step_end;
  }
}

}  // namespace

GuardedReplayResult ReplayWithStarvationGuard(
    const Trace& trace, const PriorityPolicy& policy,
    const CircuitReplayConfig& config, const StarvationGuardConfig& guard) {
  trace.Validate();
  SUNFLOW_CHECK_MSG(guard.small_interval > config.sunflow.delta,
                    "starvation guard requires tau > delta");
  const Bandwidth bandwidth = config.sunflow.bandwidth;
  const StarvationGuardTimeline timeline(guard, trace.num_ports);
  const PhiAssignments phi(trace.num_ports);

  GuardedReplayResult result;
  std::vector<GuardCoflow> active;
  std::size_t next_arrival = 0;
  Time t = 0;
  Time last_traced_tau = -kTimeInf;  // dedupes re-entries into one τ span

  const std::size_t max_events = 1000 * (trace.coflows.size() + 1) + 100000;
  std::size_t events = 0;

  auto admit = [&] {
    while (next_arrival < trace.coflows.size() &&
           trace.coflows[next_arrival].arrival() <= t + kTimeEps) {
      const Coflow& c = trace.coflows[next_arrival++];
      GuardCoflow gc;
      gc.id = c.id();
      gc.arrival = c.arrival();
      gc.static_tpl = PacketLowerBound(c, bandwidth);
      gc.total = c.total_bytes();
      gc.last_service = c.arrival();
      for (const Flow& f : c.flows()) gc.remaining[{f.src, f.dst}] = f.bytes;
      active.push_back(std::move(gc));
    }
  };

  auto harvest_completions = [&](Time now) {
    for (auto it = active.begin(); it != active.end();) {
      if (it->done()) {
        const Time finish = it->last_finish > 0 ? it->last_finish : now;
        result.cct[it->id] = finish - it->arrival;
        result.completion[it->id] = finish;
        result.max_service_gap[it->id] = it->max_gap;
        result.makespan = std::max(result.makespan, finish);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (!active.empty() || next_arrival < trace.coflows.size()) {
    SUNFLOW_CHECK_MSG(++events < max_events, "guarded replay explosion");
    admit();
    if (active.empty()) {
      t = trace.coflows[next_arrival].arrival();
      admit();
    }

    const Time span_end = timeline.NextBoundaryAfter(t);
    const Time t_arrival = next_arrival < trace.coflows.size()
                               ? trace.coflows[next_arrival].arrival()
                               : kTimeInf;

    if (!timeline.InTauInterval(t)) {
      // --- T span: priority-scheduled InterCoflow plan, cut at events. ---
      std::vector<CoflowView> views;
      for (const auto& gc : active) {
        const Bytes remaining_bytes = gc.remaining_bytes();
        views.push_back({gc.id, gc.arrival, gc.RemainingTpl(bandwidth),
                         gc.static_tpl, remaining_bytes, gc.remaining.size(),
                         std::max(0.0, gc.total - remaining_bytes)});
      }
      const auto order = policy.Order(views);

      SunflowPlanner planner(trace.num_ports, config.sunflow);
      std::vector<PlanRequest> requests;
      for (std::size_t idx : order) {
        const GuardCoflow& gc = active[idx];
        PlanRequest req;
        req.coflow = gc.id;
        req.start = t;
        for (const auto& [pair, bytes] : gc.remaining) {
          if (bytes > kBytesEps)
            req.demand.push_back(
                {pair.first, pair.second, bytes / bandwidth});
        }
        requests.push_back(std::move(req));
      }
      SunflowSchedule plan = planner.ScheduleAll(requests);

      Time t_next = std::min(span_end, t_arrival);
      for (const auto& gc : active)
        t_next = std::min(t_next, t + plan.completion_time.at(gc.id));
      SUNFLOW_CHECK(t_next > t);

      for (auto& gc : active) {
        Bytes served_total = 0;
        for (auto& [pair, bytes] : gc.remaining) {
          if (bytes <= kBytesEps) continue;
          Time served = 0;
          Time flow_finish = 0;
          for (const auto& r : plan.reservations) {
            if (r.coflow != gc.id || r.in != pair.first ||
                r.out != pair.second)
              continue;
            const Time b = std::max(r.transmit_begin(), t);
            const Time e = std::min(r.end, t_next);
            if (e > b) {
              served += e - b;
              flow_finish = std::max(flow_finish, e);
            }
          }
          const Bytes moved = std::min(bytes, served * bandwidth);
          bytes -= moved;
          served_total += moved;
          if (bytes <= kBytesEps) {
            bytes = 0;
            gc.last_finish = std::max(gc.last_finish, flow_finish);
          }
        }
        if (served_total > 0) gc.NoteService(t, t_next);
      }
      harvest_completions(t_next);
      t = t_next;
    } else {
      // --- τ span: fixed assignment A_k, bandwidth shared per circuit. ---
      const int k = timeline.AssignmentIndexAt(t);
      const Time span_begin = span_end - guard.small_interval;
      if (!TimeEq(span_begin, last_traced_tau)) {
        last_traced_tau = span_begin;
        obs::GlobalMetrics().GetCounter("starvation.rounds").Increment();
        obs::Emit(config.sink, {.type = obs::EventType::kStarvationRound,
                                .t = span_begin,
                                .dur = guard.small_interval,
                                .count = k});
      }
      // One setup δ at the start of the τ span; if we enter mid-span the
      // circuits are already up.
      const Time transmit_begin =
          std::max(t, span_begin + config.sunflow.delta);
      const Time t_next = std::min(span_end, t_arrival);

      if (transmit_begin < t_next - kTimeEps) {
        std::map<CoflowId, Time> finish_at;
        for (PortId i = 0; i < trace.num_ports; ++i) {
          const PortId j = phi.OutputOf(k, i);
          std::vector<std::pair<GuardCoflow*, Bytes*>> flows;
          for (auto& gc : active) {
            auto it = gc.remaining.find({i, j});
            if (it != gc.remaining.end() && it->second > kBytesEps)
              flows.emplace_back(&gc, &it->second);
          }
          if (flows.empty()) continue;
          DrainShared(flows, transmit_begin, t_next, bandwidth, finish_at);
          for (auto& f : flows) f.first->NoteService(transmit_begin, t_next);
        }
        harvest_completions(t_next);
      }
      t = t_next;
    }
  }

  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

}  // namespace sunflow
