// Thin adapter: the (T + τ) cadence runs as the kernel's "guarded"
// scenario (sim/engine/scenarios.cc); this entry point keeps the
// historical API and result shape.
#include "sim/starvation_replay.h"

#include <utility>

#include "sim/adapter_util.h"
#include "sim/engine/scenario.h"

namespace sunflow {

GuardedReplayResult ReplayWithStarvationGuard(
    const Trace& trace, const PriorityPolicy& policy,
    const CircuitReplayConfig& config, const StarvationGuardConfig& guard) {
  engine::EngineConfig ec = sim_detail::ToEngineConfig(config);
  ec.guard = guard;
  engine::EngineResult er =
      engine::ScenarioRegistry::Global().Run("guarded", trace, &policy, ec);
  GuardedReplayResult result;
  result.cct = std::move(er.cct);
  result.completion = std::move(er.completion);
  result.max_service_gap = std::move(er.max_service_gap);
  result.makespan = er.makespan;
  return result;
}

}  // namespace sunflow
