// Multi-stage job replay (§4.2, third usage scenario).
//
// Multi-stage data-parallel jobs (Dryad/Tez/Hive/Spark DAGs) emit one
// coflow per stage, and a stage's coflow only materializes once its
// upstream stages finish. §4.2 argues the policy should make "later-staged
// Coflows yield to earlier-staged Coflows to avoid the potential creation
// of stragglers". This engine replays such DAGs on the circuit switch: a
// coflow is *released* when all of its dependencies complete (and its
// nominal arrival has passed), and the supplied policy decides priorities
// (MakeStagePolicy implements the earlier-stage-first rule).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/policy.h"
#include "sim/circuit_replay.h"

namespace sunflow {

/// Dependencies: edges from a coflow to the coflows it must wait for.
class CoflowDag {
 public:
  /// `coflow` cannot start before `dependency` completes.
  void AddDependency(CoflowId coflow, CoflowId dependency);

  const std::map<CoflowId, std::vector<CoflowId>>& deps() const {
    return deps_;
  }

  /// Topological depth: 0 for roots, 1 + max over dependencies otherwise.
  /// Validates acyclicity and that every referenced id is in `trace`;
  /// throws CheckFailure otherwise.
  std::map<CoflowId, int> StageOf(const Trace& trace) const;

 private:
  std::map<CoflowId, std::vector<CoflowId>> deps_;
};

/// Earlier-stage-first policy (§4.2): lower stage number wins; within a
/// stage, shortest-coflow-first.
std::unique_ptr<PriorityPolicy> MakeStagePolicy(
    std::map<CoflowId, int> stage_of);

struct DagReplayResult {
  /// CCT measured from each coflow's release (not its nominal arrival).
  std::map<CoflowId, Time> cct;
  std::map<CoflowId, Time> release;
  std::map<CoflowId, Time> completion;
  /// Job completion time: last completion minus first arrival.
  Time job_span = 0;
};

/// Replays the trace with dependency gating: a coflow is released at
/// max(its arrival, completion of all dependencies).
DagReplayResult ReplayDagTrace(const Trace& trace, const CoflowDag& dag,
                               const PriorityPolicy& policy,
                               const CircuitReplayConfig& config);

}  // namespace sunflow
