// Hybrid circuit/packet replay (§6, REACToR-style).
//
// §6 notes that a deployment can pair the OCS with "a small-bandwidth
// packet switched network to help accommodate the little leftover traffic".
// This engine models that architecture: coflows whose total demand is below
// an offload threshold bypass the circuit switch entirely and drain on a
// low-rate packet fabric (fair-shared per port), while everything else is
// Sunflow-scheduled on the OCS. Short coflows thus dodge the circuit setup
// penalty that dominates their CCT in the pure-OCS results (Fig 9).
#pragma once

#include "core/policy.h"
#include "sim/circuit_replay.h"

namespace sunflow {

struct HybridReplayConfig {
  CircuitReplayConfig circuit;
  /// Bandwidth of the companion packet network (paper suggests "small" —
  /// default one tenth of the circuit link rate).
  Bandwidth packet_bandwidth = Gbps(0.1);
  /// Coflows with total bytes at or below this go to the packet network.
  Bytes offload_threshold = 10e6;
};

struct HybridReplayResult {
  std::map<CoflowId, Time> cct;
  std::size_t offloaded = 0;  ///< coflows served by the packet network
  std::size_t circuit = 0;    ///< coflows served by the OCS
};

/// Splits the trace by the offload rule, replays each side on its own
/// fabric (they are physically separate networks), and merges CCTs.
HybridReplayResult ReplayHybridTrace(const Trace& trace,
                                     const PriorityPolicy& policy,
                                     const HybridReplayConfig& config);

}  // namespace sunflow
