// Thin adapter: the plan → execute → replan loop lives in the kernel
// (sim/engine/driver.h) as the "circuit" scenario; this entry point keeps
// the historical API and result shape.
#include "sim/circuit_replay.h"

#include <utility>

#include "sim/adapter_util.h"
#include "sim/engine/scenario.h"

namespace sunflow {

CircuitReplayResult ReplayCircuitTrace(const Trace& trace,
                                       const PriorityPolicy& policy,
                                       const CircuitReplayConfig& config) {
  engine::EngineResult er = engine::ScenarioRegistry::Global().Run(
      "circuit", trace, &policy, sim_detail::ToEngineConfig(config));
  CircuitReplayResult result;
  result.cct = std::move(er.cct);
  result.completion = std::move(er.completion);
  result.reservations = std::move(er.reservations);
  result.makespan = er.makespan;
  result.replans = er.replans;
  return result;
}

}  // namespace sunflow
