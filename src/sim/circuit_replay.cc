#include "sim/circuit_replay.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/replay_engine.h"
#include "trace/bounds.h"

namespace sunflow {

namespace sim_detail {

// Remaining demand of one coflow during the replay, in bytes.
struct ReplayCoflow {
  CoflowId id = -1;
  Time arrival = 0;  ///< release instant (CCT is measured from here)
  Time static_tpl = 0;
  Bytes total = 0;   ///< original demand (for attained-service policies)
  std::map<std::pair<PortId, PortId>, Bytes> remaining;

  Bytes remaining_bytes() const {
    Bytes total = 0;
    for (const auto& [pair, b] : remaining) total += b;
    return total;
  }
  bool done() const {
    for (const auto& [pair, b] : remaining)
      if (b > kBytesEps) return false;
    return true;
  }
  Time RemainingTpl(Bandwidth bandwidth) const {
    std::map<PortId, Bytes> in_load, out_load;
    for (const auto& [pair, b] : remaining) {
      if (b <= kBytesEps) continue;
      in_load[pair.first] += b;
      out_load[pair.second] += b;
    }
    Bytes busiest = 0;
    for (const auto& [p, v] : in_load) busiest = std::max(busiest, v);
    for (const auto& [p, v] : out_load) busiest = std::max(busiest, v);
    return busiest / bandwidth;
  }
};

ReplayCoflow MakeReplayCoflow(const Coflow& coflow, Time release,
                              Bandwidth bandwidth) {
  ReplayCoflow rc;
  rc.id = coflow.id();
  rc.arrival = release;
  rc.static_tpl = PacketLowerBound(coflow, bandwidth);
  rc.total = coflow.total_bytes();
  for (const Flow& f : coflow.flows()) rc.remaining[{f.src, f.dst}] = f.bytes;
  return rc;
}

// The generic plan → execute → replan loop shared by trace replay and
// DAG replay (declared in sim/replay_engine.h).
CircuitReplayResult RunEngine(PortId num_ports, const PriorityPolicy& policy,
                              const CircuitReplayConfig& config,
                              std::vector<PendingCoflow> pending,
                              const CompletionHook& on_complete) {
  const Bandwidth bandwidth = config.sunflow.bandwidth;
  SUNFLOW_CHECK(bandwidth > 0);

  CircuitReplayResult result;
  std::vector<ReplayCoflow> active;
  std::size_t next_release = 0;
  std::size_t total_coflows = pending.size();
  Time t = 0;
  Time last_plan = -kTimeInf;
  EstablishedCircuits established;

  std::size_t events = 0;

  while (!active.empty() || next_release < pending.size()) {
    // Every iteration consumes at least one release or completion; the
    // hook can only add each coflow once.
    SUNFLOW_CHECK_MSG(++events < 10 * total_coflows + 1000,
                      "circuit replay event explosion");

    if (active.empty()) {
      t = std::max(t, pending[next_release].release);
      established.clear();  // circuits idle away between bursts
    }
    while (next_release < pending.size() &&
           pending[next_release].release <= t + kTimeEps) {
      active.push_back(MakeReplayCoflow(*pending[next_release].coflow,
                                        pending[next_release].release,
                                        bandwidth));
      obs::Emit(config.sink, {.type = obs::EventType::kCoflowAdmitted,
                              .t = std::max(t, pending[next_release].release),
                              .coflow = active.back().id});
      ++next_release;
    }

    // --- Plan: InterCoflow over the active set in policy order. ---
    std::vector<CoflowView> views;
    views.reserve(active.size());
    for (const auto& rc : active) {
      const Bytes remaining_bytes = rc.remaining_bytes();
      views.push_back({rc.id, rc.arrival, rc.RemainingTpl(bandwidth),
                       rc.static_tpl, remaining_bytes, rc.remaining.size(),
                       std::max(0.0, rc.total - remaining_bytes)});
    }
    const std::vector<std::size_t> order = policy.Order(views);
    SUNFLOW_CHECK(order.size() == active.size());

    SunflowPlanner planner(num_ports, config.sunflow);
    if (config.carry_over_circuits && !established.empty()) {
      planner.SetEstablishedCircuits(established, t);
    }
    std::vector<PlanRequest> requests;
    requests.reserve(active.size());
    for (std::size_t idx : order) {
      const ReplayCoflow& rc = active[idx];
      PlanRequest req;
      req.coflow = rc.id;
      req.start = t;
      for (const auto& [pair, bytes] : rc.remaining) {
        if (bytes > kBytesEps)
          req.demand.push_back({pair.first, pair.second, bytes / bandwidth});
      }
      requests.push_back(std::move(req));
    }
    const auto plan_begin = std::chrono::steady_clock::now();
    SunflowSchedule plan = planner.ScheduleAll(requests);
    const auto plan_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - plan_begin)
                             .count();
    ++result.replans;
    for (const auto& [id, count] : plan.reservation_count)
      result.reservations[id] += count;
    obs::GlobalMetrics()
        .GetHistogram("scheduler.compute_ns")
        .Record(static_cast<double>(plan_ns));
    obs::GlobalMetrics().GetCounter("replay.replans").Increment();
    obs::Emit(config.sink,
              {.type = obs::EventType::kAssignmentComputed,
               .t = t,
               .value = static_cast<double>(plan_ns),
               .count = static_cast<std::int64_t>(requests.size())});

    last_plan = t;

    // --- Next event: a release or the earliest planned completion. ---
    Time t_next = kTimeInf;
    if (next_release < pending.size()) {
      // Throttled: a release only forces a replan once the minimum
      // interval since the previous plan has elapsed; until then newly
      // released coflows queue while the current plan keeps executing.
      t_next = std::max(pending[next_release].release,
                        last_plan + config.min_replan_interval);
    }
    for (const auto& rc : active) {
      auto it = plan.completion_time.find(rc.id);
      SUNFLOW_CHECK(it != plan.completion_time.end());
      t_next = std::min(t_next, t + it->second);
    }
    SUNFLOW_CHECK_MSG(t_next < kTimeInf && t_next > t,
                      "circuit replay stalled at t=" << t);

    // --- Execute the plan over [t, t_next). ---
    std::map<std::pair<PortId, PortId>,
             std::vector<const CircuitReservation*>>
        by_pair;
    for (const auto& r : plan.reservations)
      by_pair[{r.in, r.out}].push_back(&r);

    for (auto& rc : active) {
      for (auto& [pair, bytes] : rc.remaining) {
        if (bytes <= kBytesEps) continue;
        auto it = by_pair.find(pair);
        if (it == by_pair.end()) continue;
        Time served = 0;
        for (const CircuitReservation* r : it->second) {
          if (r->coflow != rc.id) continue;
          const Time b = std::max(r->transmit_begin(), t);
          const Time e = std::min(r->end, t_next);
          if (e > b) served += e - b;
        }
        bytes = std::max(0.0, bytes - served * bandwidth);
      }
    }

    // --- Trace the executed portion of the plan ([t, t_next) only;
    // reservations superseded by the next replan never ran). ---
    if (config.sink != nullptr) {
      for (const auto& r : plan.reservations) {
        if (r.start >= t_next - kTimeEps) continue;
        const Time end = std::min(r.end, t_next);
        obs::Emit(config.sink, {.type = obs::EventType::kCircuitSetup,
                                .t = r.start,
                                .dur = end - r.start,
                                .coflow = r.coflow,
                                .in = r.in,
                                .out = r.out,
                                .value = r.setup});
        if (r.end <= t_next + kTimeEps) {
          obs::Emit(config.sink, {.type = obs::EventType::kCircuitTeardown,
                                  .t = r.end,
                                  .coflow = r.coflow,
                                  .in = r.in,
                                  .out = r.out});
        }
      }
    }

    // --- Circuits up at the replan instant (for carry-over). ---
    established.clear();
    if (config.carry_over_circuits) {
      for (const auto& r : plan.reservations) {
        if (r.transmit_begin() <= t_next + kTimeEps &&
            t_next < r.end - kTimeEps) {
          established[r.in] = r.out;
        }
      }
    }

    t = t_next;

    // --- Completions (may release dependent coflows via the hook). ---
    for (auto it = active.begin(); it != active.end();) {
      if (it->done()) {
        result.cct[it->id] = t - it->arrival;
        result.completion[it->id] = t;
        result.makespan = std::max(result.makespan, t);
        obs::Emit(config.sink, {.type = obs::EventType::kCoflowCompleted,
                                .t = t,
                                .coflow = it->id,
                                .value = t - it->arrival});
        if (on_complete) {
          const std::size_t before = pending.size();
          on_complete(it->id, t, pending);
          total_coflows += pending.size() - before;
          if (pending.size() > before) {
            std::sort(pending.begin() +
                          static_cast<std::ptrdiff_t>(next_release),
                      pending.end(),
                      [](const PendingCoflow& a, const PendingCoflow& b) {
                        return a.release < b.release;
                      });
          }
        }
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }
  return result;
}

}  // namespace sim_detail

CircuitReplayResult ReplayCircuitTrace(const Trace& trace,
                                       const PriorityPolicy& policy,
                                       const CircuitReplayConfig& config) {
  trace.Validate();
  std::vector<sim_detail::PendingCoflow> pending;
  pending.reserve(trace.coflows.size());
  for (const Coflow& c : trace.coflows) pending.push_back({c.arrival(), &c});
  auto result = sim_detail::RunEngine(trace.num_ports, policy, config,
                                      std::move(pending), nullptr);
  SUNFLOW_CHECK(result.cct.size() == trace.coflows.size());
  return result;
}

}  // namespace sunflow
