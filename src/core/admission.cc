#include "core/admission.h"

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace sunflow {

AdmissionResult TryAdmitWithDeadline(SunflowPlanner& planner,
                                     const PlanRequest& request,
                                     Time deadline, SunflowSchedule& out) {
  SUNFLOW_CHECK(deadline >= 0);
  AdmissionResult result;

  // Probe on a copy: planning is deterministic, so committing the same
  // request to the real planner reproduces the probe exactly. The probe is
  // not traced — only committed decisions appear in the event stream.
  SunflowPlanner probe = planner;
  probe.SetTraceSink(nullptr);
  SunflowSchedule probe_out;
  const Time finish = probe.ScheduleOne(request, probe_out);
  result.planned_cct = finish - request.start;
  if (result.planned_cct > deadline + kTimeEps) {
    obs::GlobalMetrics().GetCounter("admission.rejects").Increment();
    return result;  // rejected; planner untouched
  }

  const Time committed_finish = planner.ScheduleOne(request, out);
  SUNFLOW_CHECK_MSG(TimeEq(committed_finish, finish),
                    "probe and commit disagree — planner not deterministic");
  result.admitted = true;
  obs::GlobalMetrics().GetCounter("admission.admits").Increment();
  obs::Emit(planner.trace_sink(), {.type = obs::EventType::kCoflowAdmitted,
                                   .t = request.start,
                                   .coflow = request.coflow,
                                   .value = result.planned_cct});
  return result;
}

}  // namespace sunflow
