#include "core/admission.h"

#include "common/assert.h"

namespace sunflow {

AdmissionResult TryAdmitWithDeadline(SunflowPlanner& planner,
                                     const PlanRequest& request,
                                     Time deadline, SunflowSchedule& out) {
  SUNFLOW_CHECK(deadline >= 0);
  AdmissionResult result;

  // Probe on a copy: planning is deterministic, so committing the same
  // request to the real planner reproduces the probe exactly.
  SunflowPlanner probe = planner;
  SunflowSchedule probe_out;
  const Time finish = probe.ScheduleOne(request, probe_out);
  result.planned_cct = finish - request.start;
  if (result.planned_cct > deadline + kTimeEps) {
    return result;  // rejected; planner untouched
  }

  const Time committed_finish = planner.ScheduleOne(request, out);
  SUNFLOW_CHECK_MSG(TimeEq(committed_finish, finish),
                    "probe and commit disagree — planner not deterministic");
  result.admitted = true;
  return result;
}

}  // namespace sunflow
