#include "core/sunflow.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"
#include "core/plan_memo.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_sink.h"
#include "runtime/arena.h"

namespace sunflow {

namespace {

// Surfaces the thread-local arena's traffic as arena.* counters, as a
// delta over the enclosing scope (one flush per ScheduleAll call, so the
// counters never touch the per-flow hot path).
class ArenaMetricsScope {
 public:
  explicit ArenaMetricsScope(runtime::Arena& arena)
      : arena_(arena), before_(arena.stats()) {}
  ~ArenaMetricsScope() {
    static thread_local obs::Counter& allocations =
        obs::GlobalMetrics().GetCounter("arena.allocations");
    static thread_local obs::Counter& bytes =
        obs::GlobalMetrics().GetCounter("arena.bytes");
    static thread_local obs::Counter& block_allocs =
        obs::GlobalMetrics().GetCounter("arena.block_allocs");
    static thread_local obs::Counter& frames =
        obs::GlobalMetrics().GetCounter("arena.frames");
    const runtime::ArenaStats& after = arena_.stats();
    allocations.Increment(after.allocations - before_.allocations);
    bytes.Increment(after.bytes - before_.bytes);
    block_allocs.Increment(after.block_allocs - before_.block_allocs);
    frames.Increment(after.frames - before_.frames);
  }

  ArenaMetricsScope(const ArenaMetricsScope&) = delete;
  ArenaMetricsScope& operator=(const ArenaMetricsScope&) = delete;

 private:
  runtime::Arena& arena_;
  runtime::ArenaStats before_;
};

// 64-bit mix for the Ordered() cache key (splitmix64 finalizer). Not
// cryptographic; collisions only matter if a caller mutates a request's
// demand in place *and* the old and new contents collide, which the
// documented invalidation contract already rules out in practice.
std::uint64_t Mix64(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

std::uint64_t OrderedCacheKey(const SunflowConfig& config,
                              const PlanRequest& request) {
  std::uint64_t h = 0x517cc1b727220a95ULL;
  h = Mix64(h, static_cast<std::uint64_t>(config.order));
  h = Mix64(h, config.shuffle_seed);
  h = Mix64(h, std::bit_cast<std::uint64_t>(config.demand_quantum));
  h = Mix64(h, static_cast<std::uint64_t>(request.coflow));
  h = Mix64(h, request.demand.size());
  for (const FlowDemand& f : request.demand) {
    h = Mix64(h, static_cast<std::uint64_t>(f.src) << 32 |
                     static_cast<std::uint32_t>(f.dst));
    h = Mix64(h, std::bit_cast<std::uint64_t>(f.processing));
  }
  return h == 0 ? 1 : h;  // 0 marks "no cache"
}

}  // namespace

const char* ToString(ReservationOrder order) {
  switch (order) {
    case ReservationOrder::kOrderedPort:
      return "OrderedPort";
    case ReservationOrder::kRandom:
      return "Random";
    case ReservationOrder::kSortedDemandDesc:
      return "SortedDemandDesc";
    case ReservationOrder::kSortedDemandAsc:
      return "SortedDemandAsc";
  }
  return "?";
}

Time SunflowSchedule::MaxCompletion() const {
  Time best = 0;
  for (const auto& [id, cct] : completion_time) best = std::max(best, cct);
  return best;
}

PlanRequest PlanRequest::FromCoflow(const Coflow& coflow, Bandwidth bandwidth,
                                    std::optional<Time> start) {
  SUNFLOW_CHECK(bandwidth > 0);
  PlanRequest req;
  req.coflow = coflow.id();
  req.start = start.value_or(coflow.arrival());
  req.demand.reserve(coflow.size());
  for (const Flow& f : coflow.flows()) {
    req.demand.push_back({f.src, f.dst, f.bytes / bandwidth});
  }
  return req;
}

SunflowPlanner::SunflowPlanner(PortId num_ports, SunflowConfig config)
    : prt_(num_ports, config.fabric.num_planes()), config_(std::move(config)) {
  SUNFLOW_CHECK(config_.bandwidth > 0);
  SUNFLOW_CHECK(config_.delta >= 0);
  // Resolve the effective plane list once: the empty (default) fabric is
  // one plane inheriting the config's delta and bandwidth, which makes
  // plane_scale_[0] exactly 1.0 — the K=1 equivalence contract
  // (core/fabric.h) rests on that.
  if (config_.fabric.is_default()) {
    planes_ = {PlaneSpec{config_.delta, config_.bandwidth}};
  } else {
    planes_ = config_.fabric.planes;
  }
  plane_scale_.reserve(planes_.size());
  for (const PlaneSpec& p : planes_) {
    SUNFLOW_CHECK(p.delta >= 0);
    SUNFLOW_CHECK(p.rate > 0);
    plane_scale_.push_back(config_.bandwidth / p.rate);
  }
  established_.resize(planes_.size());
}

void SunflowPlanner::SetEstablishedCircuits(EstablishedCircuits circuits,
                                            Time at) {
  established_.assign(planes_.size(), {});
  established_[0] = std::move(circuits);
  established_at_ = at;
}

void SunflowPlanner::SetEstablishedCircuitsByPlane(FabricEstablished by_plane,
                                                   Time at) {
  SUNFLOW_CHECK(by_plane.size() == planes_.size());
  established_ = std::move(by_plane);
  established_at_ = at;
}

bool SunflowPlanner::has_established() const {
  for (const EstablishedCircuits& e : established_) {
    if (!e.empty()) return true;
  }
  return false;
}

void SunflowPlanner::SetReservationCallback(ReservationCallback callback) {
  callback_ = std::move(callback);
}

void SunflowPlanner::ImportReservations(
    const std::vector<CircuitReservation>& reservations) {
  for (const CircuitReservation& r : reservations) {
    prt_.Reserve(r);
    if (callback_) callback_(r);
    obs::Emit(sink_, {.type = obs::EventType::kCircuitSetup,
                      .t = r.start,
                      .dur = r.length(),
                      .coflow = r.coflow,
                      .in = r.in,
                      .out = r.out,
                      .value = r.setup,
                      .plane = r.plane});
    obs::Emit(sink_, {.type = obs::EventType::kCircuitTeardown,
                      .t = r.end,
                      .coflow = r.coflow,
                      .in = r.in,
                      .out = r.out,
                      .plane = r.plane});
  }
}

const std::vector<FlowDemand>& SunflowPlanner::Ordered(
    const PlanRequest& request) const {
  const std::uint64_t key = OrderedCacheKey(config_, request);
  if (request.ordered_cache_key == key) return request.ordered_cache;
  std::vector<FlowDemand> p = request.demand;
  if (config_.demand_quantum > 0) {
    for (FlowDemand& f : p) {
      f.processing = std::ceil(f.processing / config_.demand_quantum) *
                     config_.demand_quantum;
    }
  }
  switch (config_.order) {
    case ReservationOrder::kOrderedPort:
      std::sort(p.begin(), p.end(), [](const FlowDemand& a, const FlowDemand& b) {
        return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
      });
      break;
    case ReservationOrder::kRandom: {
      // Seed mixes in the coflow id so different coflows get different
      // shuffles while the whole run stays deterministic.
      Rng rng(config_.shuffle_seed * 0x9e3779b97f4a7c15ULL +
              static_cast<std::uint64_t>(request.coflow));
      rng.Shuffle(p);
      break;
    }
    case ReservationOrder::kSortedDemandDesc:
      std::stable_sort(p.begin(), p.end(),
                       [](const FlowDemand& a, const FlowDemand& b) {
                         return a.processing > b.processing;
                       });
      break;
    case ReservationOrder::kSortedDemandAsc:
      std::stable_sort(p.begin(), p.end(),
                       [](const FlowDemand& a, const FlowDemand& b) {
                         return a.processing < b.processing;
                       });
      break;
  }
  request.ordered_cache = std::move(p);
  request.ordered_cache_key = key;
  return request.ordered_cache;
}

Time SunflowPlanner::NextWakeInstant(Time t, Time wake,
                                     CoflowId coflow) const {
  // `wake` is the earliest pending wakeup: always the end of a recorded
  // reservation, strictly later than t + ε. The legacy loop visited every
  // release instant after t; instants before wake - ε are provably no-ops
  // (reservations are never removed, so a blocked flow only gets more
  // blocked), which lets the walk jump — but only onto an instant the
  // legacy chain itself would have visited, because a release within ε
  // below a chain instant is absorbed into it by the tolerant comparison.
  const Time a = prt_.FirstReleaseAtOrAfter(wake - kTimeEps);
  SUNFLOW_CHECK_MSG(a < kTimeInf,
                    "Sunflow stuck: pending demand but no future release "
                    "(coflow "
                        << coflow << ")");
  const Time b = prt_.LastReleaseBefore(a);
  if (b <= t + kTimeEps) {
    // Nothing releases strictly between here and the target, so the next
    // chain instant is simply the first release past t + ε; that is `a`
    // itself unless the target sits within ε of t (then the chain steps
    // over it and the tolerant retry at the next instant picks it up).
    return a > t + kTimeEps ? a : prt_.NextReleaseAfter(t);
  }
  if (a - b > kTimeEps) return a;  // `a` opens its own chain instant
  // A sub-ε cluster of release times straddles the target: replay the
  // legacy chain step by step so the visited instant matches it exactly.
  Time v = t;
  while (v < wake - kTimeEps) {
    const Time next = prt_.NextReleaseAfter(v);
    SUNFLOW_CHECK(next < kTimeInf && next > v);
    v = next;
  }
  return v;
}

Time SunflowPlanner::ScheduleOne(const PlanRequest& request,
                                 SunflowSchedule& out) {
  SUNFLOW_PROFILE_SCOPE("core.plan");
  // Established circuits declared after the request start could zero a
  // setup at a mid-plan instant; the wakeup index assumes setup never
  // shrinks as t advances (true for replay carry-over, where circuits are
  // observed up exactly at the replan instant), so this corner runs the
  // reference loop instead.
  if (has_established() && established_at_ > request.start + kTimeEps) {
    return ScheduleOneRescan(request, out);
  }
  const std::vector<FlowDemand>& ordered = Ordered(request);

  Time finish = request.start;
  Time t = request.start;
  int reservations_made = 0;

  // Per-request scratch lives on the thread-local arena: a handful of
  // vectors plus the wakeup heap, all bump-allocated and rewound wholesale
  // when the request finishes (runtime/arena.h). Steady-state planning
  // therefore makes zero heap round trips here.
  runtime::Arena& arena = runtime::ThisThreadArena();
  const runtime::ArenaScope scratch(arena);
  const runtime::ArenaAllocator<Time> alloc(arena);

  // Remaining demand per ordered index; 0 once the flow is done.
  runtime::ArenaVector<Time> remaining(ordered.size(), 0, alloc);

  // Blocked-episode tracking, trace emission only (inert without a sink —
  // the cursor-free owner probes are never called and no state allocates).
  // One open episode per flow; an episode closes and a new one opens when
  // the blocking cause (reason, blamer) changes, so contention spans
  // attribute to the coflow actually in the way at each instant.
  runtime::ArenaVector<Time> blk_since(alloc);
  runtime::ArenaVector<obs::BlockReason> blk_reason(alloc);
  runtime::ArenaVector<CoflowId> blk_blamer(alloc);
  if (sink_ != nullptr) {
    blk_since.assign(ordered.size(), kTimeInf);
    blk_reason.assign(ordered.size(), obs::BlockReason::kInputPortBusy);
    blk_blamer.assign(ordered.size(), -1);
  }
  auto close_episode = [&](std::size_t idx, const FlowDemand& f) {
    if (sink_ == nullptr || blk_since[idx] >= kTimeInf) return;
    obs::Emit(sink_, {.type = obs::EventType::kFlowUnblocked,
                      .t = t,
                      .dur = t - blk_since[idx],
                      .coflow = request.coflow,
                      .in = f.src,
                      .out = f.dst,
                      .value = static_cast<double>(blk_blamer[idx]),
                      .count = static_cast<std::int64_t>(blk_reason[idx])});
    blk_since[idx] = kTimeInf;
  };
  auto note_blocked = [&](std::size_t idx, const FlowDemand& f,
                          obs::BlockReason reason, CoflowId blamer) {
    if (blk_since[idx] < kTimeInf && blk_reason[idx] == reason &&
        blk_blamer[idx] == blamer) {
      return;  // same cause still in the way: the episode continues
    }
    close_episode(idx, f);
    blk_since[idx] = t;
    blk_reason[idx] = reason;
    blk_blamer[idx] = blamer;
    obs::Emit(sink_, {.type = obs::EventType::kFlowBlocked,
                      .t = t,
                      .coflow = request.coflow,
                      .in = f.src,
                      .out = f.dst,
                      .value = static_cast<double>(blamer),
                      .count = static_cast<std::int64_t>(reason)});
  };

  // MakeReservation (Algorithm 1 lines 13-23) for one flow at the current
  // instant t. Returns the flow's next wakeup: kTimeInf when its demand is
  // finished, its own reservation end when the reservation was truncated,
  // and otherwise the earliest future instant at which the blocking
  // constraint can change — the busy port's release, or the release of the
  // reservation whose start capped the gap. Every wakeup is the end of a
  // recorded reservation and lies strictly beyond t + ε, so the walk
  // always makes progress.
  // Plane assignment is earliest-feasible-plane greedy: planes are probed
  // in id order at the current instant and the first one where the pair is
  // free and the gap admits a useful circuit takes the reservation. When
  // every plane is blocked, the flow sleeps until the earliest instant any
  // plane's binding constraint can change, and the blocked episode blames
  // that plane's blocker (ties to the lowest plane id). With one plane
  // this is exactly the single-switch MakeReservation, branch for branch.
  const auto num_planes = static_cast<PlaneId>(planes_.size());
  auto try_flow = [&](std::size_t idx) -> Time {
    const FlowDemand& f = ordered[idx];
    Time best_wake = kTimeInf;
    PlaneId best_plane = 0;
    bool best_gap_limited = false;
    Time best_in_busy = 0;
    Time best_out_busy = 0;
    for (PlaneId p = 0; p < num_planes; ++p) {
      const Time in_busy =
          prt_.BusyUntil(FabricReservationTable::Side::kIn, f.src, t, p);
      const Time out_busy =
          prt_.BusyUntil(FabricReservationTable::Side::kOut, f.dst, t, p);
      if (in_busy > t || out_busy > t) {
        const Time wake = std::max(in_busy, out_busy);
        if (wake < best_wake) {
          best_wake = wake;
          best_plane = p;
          best_gap_limited = false;
          best_in_busy = in_busy;
          best_out_busy = out_busy;
        }
        continue;
      }
      // Setup is free when this pair is already an established circuit on
      // this plane and the reservation begins at the instant the circuit
      // was observed up.
      Time setup = planes_[static_cast<std::size_t>(p)].delta;
      if (TimeEq(t, established_at_)) {
        const EstablishedCircuits& est =
            established_[static_cast<std::size_t>(p)];
        auto it = est.find(f.src);
        if (it != est.end() && it->second == f.dst) setup = 0;
      }
      const auto [tm, tm_release] =
          prt_.NextReservationAfter(f.src, f.dst, t, p);
      const Time lm = tm - t;  // max length before blocking a prior one
      // Desired length: the remaining demand is in processing units at the
      // config bandwidth; this plane drains it plane_scale_ times slower
      // (or faster). Scale 1.0 on the default fabric keeps the arithmetic
      // bit-identical to the single-plane code.
      const Time ld =
          setup + remaining[idx] * plane_scale_[static_cast<std::size_t>(p)];
      // A reservation of length <= setup would transmit nothing: skip.
      if (lm <= setup + kTimeEps) {
        if (tm_release < best_wake) {
          best_wake = tm_release;
          best_plane = p;
          best_gap_limited = true;
        }
        continue;
      }
      const Time l = std::min(lm, ld);
      const CircuitReservation reservation{f.src, f.dst,        t, t + l,
                                           setup, request.coflow, p};
      prt_.Reserve(reservation);
      ++reservations_made;
      close_episode(idx, f);
      if (callback_) callback_(reservation);
      obs::Emit(sink_, {.type = obs::EventType::kCircuitSetup,
                        .t = reservation.start,
                        .dur = reservation.length(),
                        .coflow = request.coflow,
                        .in = f.src,
                        .out = f.dst,
                        .value = setup,
                        .plane = p});
      obs::Emit(sink_, {.type = obs::EventType::kCircuitTeardown,
                        .t = reservation.end,
                        .coflow = request.coflow,
                        .in = f.src,
                        .out = f.dst,
                        .plane = p});
      const Time rest = std::max(0.0, ld - l);
      if (rest <= kTimeEps) {
        remaining[idx] = 0;
        const Time flow_finish = t + l;
        out.flow_finish[{request.coflow, f.src, f.dst}] = flow_finish;
        finish = std::max(finish, flow_finish);
        obs::Emit(sink_, {.type = obs::EventType::kFlowFinished,
                          .t = flow_finish,
                          .coflow = request.coflow,
                          .in = f.src,
                          .out = f.dst});
        return kTimeInf;
      }
      remaining[idx] = rest / plane_scale_[static_cast<std::size_t>(p)];
      return reservation.end;
    }
    // Every plane blocked: report the binding constraint of the plane that
    // wakes first.
    if (sink_ != nullptr) {
      if (best_gap_limited) {
        note_blocked(idx, f, obs::BlockReason::kCircuitConflict,
                     prt_.NextOwnerAfter(f.src, f.dst, t, best_plane));
      } else {
        // Blame the port whose release is the binding constraint (the
        // later of the two busy-until instants — that is the wakeup).
        const bool input = best_in_busy > t &&
                           (best_out_busy <= t || best_in_busy >= best_out_busy);
        note_blocked(idx, f,
                     input ? obs::BlockReason::kInputPortBusy
                           : obs::BlockReason::kOutputPortBusy,
                     input ? prt_.OwnerAt(FabricReservationTable::Side::kIn,
                                          f.src, t, best_plane)
                           : prt_.OwnerAt(FabricReservationTable::Side::kOut,
                                          f.dst, t, best_plane));
      }
    }
    return best_wake;
  };

  // First pass at the request start, in Ordered() order, dropping
  // zero-demand entries (Equation 3: t_ij = 0 when p_ij = 0). Flows that
  // cannot finish here enter the wakeup queue.
  using Wakeup = std::pair<Time, std::size_t>;
  std::priority_queue<Wakeup, runtime::ArenaVector<Wakeup>, std::greater<>>
      wakeups{std::greater<>{}, runtime::ArenaVector<Wakeup>(alloc)};
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    if (ordered[i].processing <= kTimeEps) continue;
    remaining[i] = ordered[i].processing;
    const Time w = try_flow(i);
    if (w < kTimeInf) wakeups.push({w, i});
  }

  // Event-indexed walk: advance to the chain instant covering the
  // earliest pending wakeup and retry only the flows woken there. The
  // legacy loop retried the whole pending list in Ordered() order at
  // every release instant; sorting the woken indices replays that order
  // within the subset, and the flows left sleeping are exactly the ones
  // the rescan would have retried and failed.
  runtime::ArenaVector<std::size_t> woken{
      runtime::ArenaAllocator<std::size_t>(arena)};
  while (!wakeups.empty()) {
    const Time next = NextWakeInstant(t, wakeups.top().first, request.coflow);
    SUNFLOW_CHECK(next > t);
    t = next;
    woken.clear();
    while (!wakeups.empty() && wakeups.top().first <= t + kTimeEps) {
      woken.push_back(wakeups.top().second);
      wakeups.pop();
    }
    std::sort(woken.begin(), woken.end());
    for (std::size_t idx : woken) {
      const Time w = try_flow(idx);
      if (w < kTimeInf) wakeups.push({w, idx});
    }
  }

  out.completion_time[request.coflow] = finish - request.start;
  out.reservation_count[request.coflow] += reservations_made;
  return finish;
}

Time SunflowPlanner::ScheduleOneRescan(const PlanRequest& request,
                                       SunflowSchedule& out) {
  SUNFLOW_PROFILE_SCOPE("core.plan");
  std::vector<FlowDemand> pending = Ordered(request);
  // Drop zero-demand entries up front (Equation 3: t_ij = 0 when p_ij = 0).
  std::erase_if(pending,
                [](const FlowDemand& f) { return f.processing <= kTimeEps; });

  Time finish = request.start;
  Time t = request.start;
  int reservations_made = 0;

  // Blocked-episode tracking, trace emission only — the rescan analogue of
  // ScheduleOne's per-index vectors, keyed by port pair because `pending`
  // is compacted in place. Same episode semantics: close + reopen when the
  // blocking cause changes, close on acquisition.
  struct BlockEpisode {
    Time since = 0;
    obs::BlockReason reason = obs::BlockReason::kInputPortBusy;
    CoflowId blamer = -1;
  };
  std::map<std::pair<PortId, PortId>, BlockEpisode> episodes;
  auto close_episode = [&](const FlowDemand& f) {
    const auto it = episodes.find({f.src, f.dst});
    if (it == episodes.end()) return;
    obs::Emit(sink_, {.type = obs::EventType::kFlowUnblocked,
                      .t = t,
                      .dur = t - it->second.since,
                      .coflow = request.coflow,
                      .in = f.src,
                      .out = f.dst,
                      .value = static_cast<double>(it->second.blamer),
                      .count = static_cast<std::int64_t>(it->second.reason)});
    episodes.erase(it);
  };
  auto note_blocked = [&](const FlowDemand& f, obs::BlockReason reason,
                          CoflowId blamer) {
    const auto it = episodes.find({f.src, f.dst});
    if (it != episodes.end() && it->second.reason == reason &&
        it->second.blamer == blamer) {
      return;  // same cause still in the way: the episode continues
    }
    close_episode(f);
    episodes[{f.src, f.dst}] = {t, reason, blamer};
    obs::Emit(sink_, {.type = obs::EventType::kFlowBlocked,
                      .t = t,
                      .coflow = request.coflow,
                      .in = f.src,
                      .out = f.dst,
                      .value = static_cast<double>(blamer),
                      .count = static_cast<std::int64_t>(reason)});
  };

  // MakeReservation (Algorithm 1 lines 13-23), generalised to the
  // earliest-feasible-plane greedy exactly as in ScheduleOne (the rescan
  // is the differential oracle, so its plane choices and emissions must
  // match branch for branch). Returns remaining demand in processing
  // units at the config bandwidth.
  const auto num_planes = static_cast<PlaneId>(planes_.size());
  auto make_reservation = [&](const FlowDemand& f) -> Time {
    Time best_wake = kTimeInf;
    PlaneId best_plane = 0;
    bool best_gap_limited = false;
    Time best_in_busy = 0;
    Time best_out_busy = 0;
    for (PlaneId p = 0; p < num_planes; ++p) {
      const Time in_busy =
          prt_.BusyUntil(FabricReservationTable::Side::kIn, f.src, t, p);
      const Time out_busy =
          prt_.BusyUntil(FabricReservationTable::Side::kOut, f.dst, t, p);
      if (in_busy > t || out_busy > t) {
        const Time wake = std::max(in_busy, out_busy);
        if (wake < best_wake) {
          best_wake = wake;
          best_plane = p;
          best_gap_limited = false;
          best_in_busy = in_busy;
          best_out_busy = out_busy;
        }
        continue;
      }
      // Setup is free when this pair is already an established circuit on
      // this plane and the reservation begins at the instant the circuit
      // was observed up.
      Time setup = planes_[static_cast<std::size_t>(p)].delta;
      if (TimeEq(t, established_at_)) {
        const EstablishedCircuits& est =
            established_[static_cast<std::size_t>(p)];
        auto it = est.find(f.src);
        if (it != est.end() && it->second == f.dst) setup = 0;
      }
      const auto [tm, tm_release] =
          prt_.NextReservationAfter(f.src, f.dst, t, p);
      const Time lm = tm - t;  // max length before blocking a prior one
      const Time ld =
          setup + f.processing * plane_scale_[static_cast<std::size_t>(p)];
      // A reservation of length <= setup would transmit nothing: skip.
      if (lm <= setup + kTimeEps) {
        if (tm_release < best_wake) {
          best_wake = tm_release;
          best_plane = p;
          best_gap_limited = true;
        }
        continue;
      }
      const Time l = std::min(lm, ld);
      const CircuitReservation reservation{f.src, f.dst,        t, t + l,
                                           setup, request.coflow, p};
      prt_.Reserve(reservation);
      ++reservations_made;
      if (sink_ != nullptr) close_episode(f);
      if (callback_) callback_(reservation);
      obs::Emit(sink_, {.type = obs::EventType::kCircuitSetup,
                        .t = reservation.start,
                        .dur = reservation.length(),
                        .coflow = request.coflow,
                        .in = f.src,
                        .out = f.dst,
                        .value = setup,
                        .plane = p});
      obs::Emit(sink_, {.type = obs::EventType::kCircuitTeardown,
                        .t = reservation.end,
                        .coflow = request.coflow,
                        .in = f.src,
                        .out = f.dst,
                        .plane = p});
      const Time remaining = std::max(0.0, ld - l);
      if (remaining <= kTimeEps) {
        // Flow finished in this reservation.
        const Time flow_finish = t + l;
        out.flow_finish[{request.coflow, f.src, f.dst}] = flow_finish;
        finish = std::max(finish, flow_finish);
        obs::Emit(sink_, {.type = obs::EventType::kFlowFinished,
                          .t = flow_finish,
                          .coflow = request.coflow,
                          .in = f.src,
                          .out = f.dst});
        return 0;
      }
      return remaining / plane_scale_[static_cast<std::size_t>(p)];
    }
    // Every plane blocked at t; demand is unchanged until a release.
    if (sink_ != nullptr) {
      if (best_gap_limited) {
        note_blocked(f, obs::BlockReason::kCircuitConflict,
                     prt_.NextOwnerAfter(f.src, f.dst, t, best_plane));
      } else {
        const bool input = best_in_busy > t &&
                           (best_out_busy <= t || best_in_busy >= best_out_busy);
        note_blocked(f,
                     input ? obs::BlockReason::kInputPortBusy
                           : obs::BlockReason::kOutputPortBusy,
                     input ? prt_.OwnerAt(FabricReservationTable::Side::kIn,
                                          f.src, t, best_plane)
                           : prt_.OwnerAt(FabricReservationTable::Side::kOut,
                                          f.dst, t, best_plane));
      }
    }
    return f.processing;
  };

  while (!pending.empty()) {
    for (FlowDemand& f : pending) f.processing = make_reservation(f);
    std::erase_if(pending,
                  [](const FlowDemand& f) { return f.processing <= kTimeEps; });
    if (pending.empty()) break;
    const Time next = prt_.NextReleaseAfter(t);
    SUNFLOW_CHECK_MSG(next < kTimeInf,
                      "Sunflow stuck: pending demand but no future release "
                      "(coflow "
                          << request.coflow << ")");
    SUNFLOW_CHECK(next > t);
    t = next;
  }

  out.completion_time[request.coflow] = finish - request.start;
  out.reservation_count[request.coflow] += reservations_made;
  return finish;
}

SunflowSchedule SunflowPlanner::ScheduleAll(
    const std::vector<PlanRequest>& requests) {
  std::vector<const PlanRequest*> ptrs;
  ptrs.reserve(requests.size());
  for (const PlanRequest& req : requests) ptrs.push_back(&req);
  return ScheduleAll(ptrs);
}

SunflowSchedule SunflowPlanner::ScheduleAll(
    const std::vector<const PlanRequest*>& requests) {
  // Declared first so its destructor runs last: the flushed deltas cover
  // every nested ScheduleOne scratch frame and the key buffer below.
  const ArenaMetricsScope arena_metrics(runtime::ThisThreadArena());
  SunflowSchedule out;
  // The memo stores per-request deltas against the PRT state left by the
  // requests before them, so reuse needs a fresh PRT; a sink or callback
  // would miss its emissions on a spliced prefix, so their presence turns
  // the memo off (output bytes are identical either way).
  const bool use_memo = config_.plan_reuse && sink_ == nullptr &&
                        !callback_ && prt_.reservations().empty() &&
                        !requests.empty();
  if (!use_memo) {
    for (const PlanRequest* req : requests) ScheduleOne(*req, out);
    out.reservations = prt_.reservations();
    return out;
  }

  static thread_local obs::Counter& cache_hits =
      obs::GlobalMetrics().GetCounter("plan.cache_hits");
  static thread_local obs::Counter& cache_misses =
      obs::GlobalMetrics().GetCounter("plan.cache_misses");

  PlanMemo& memo = GlobalPlanMemo();
  // The rolling prefix-hash buffer is pure per-call scratch: arena-backed,
  // rewound when this call returns.
  runtime::Arena& arena = runtime::ThisThreadArena();
  const runtime::ArenaScope scratch(arena);
  runtime::ArenaVector<PlanMemo::Key> keys{
      runtime::ArenaAllocator<PlanMemo::Key>(arena)};
  std::vector<std::shared_ptr<const PlanMemo::Delta>> prefix;
  {
    SUNFLOW_PROFILE_SCOPE("core.plan.reuse");
    PlanMemo::Key key = PlanMemo::BaseKey(prt_.num_ports(), config_, planes_,
                                          established_, established_at_);
    keys.reserve(requests.size());
    for (const PlanRequest* req : requests) {
      key = PlanMemo::Extend(key, *req);
      keys.push_back(key);
    }
    prefix = memo.TakePrefix(keys.data(), keys.size());
    // Splice the memoized prefix verbatim: the stored doubles are the
    // planner's own prior output, so the PRT ends up byte-identical to
    // re-planning these requests.
    for (const auto& d : prefix) {
      for (const CircuitReservation& r : d->reservations) prt_.Reserve(r);
      for (const auto& [fk, t_fin] : d->flow_finish)
        out.flow_finish[fk] = t_fin;
      out.completion_time[d->coflow] = d->completion_time;
      out.reservation_count[d->coflow] += d->reservation_count;
    }
  }
  cache_hits.Increment(prefix.size());
  cache_misses.Increment(requests.size() - prefix.size());
  out.memo_hits = prefix.size();
  out.memo_lookups = requests.size();

  // Re-plan only the suffix, feeding each fresh delta back into the memo.
  for (std::size_t i = prefix.size(); i < requests.size(); ++i) {
    const PlanRequest& req = *requests[i];
    const std::size_t first_new = prt_.reservations().size();
    const Time finish = ScheduleOne(req, out);
    PlanMemo::Delta d;
    d.coflow = req.coflow;
    d.completion_time = finish - req.start;
    d.reservation_count =
        static_cast<int>(prt_.reservations().size() - first_new);
    d.reservations.assign(prt_.reservations().begin() +
                              static_cast<std::ptrdiff_t>(first_new),
                          prt_.reservations().end());
    for (auto it = out.flow_finish.lower_bound(
             FlowKey{req.coflow, std::numeric_limits<PortId>::min(),
                     std::numeric_limits<PortId>::min()});
         it != out.flow_finish.end() && it->first.coflow == req.coflow; ++it) {
      d.flow_finish.emplace_back(it->first, it->second);
    }
    memo.Insert(keys[i], std::move(d));
  }
  out.reservations = prt_.reservations();
  return out;
}

SunflowSchedule ScheduleSingleCoflow(const Coflow& coflow, PortId num_ports,
                                     const SunflowConfig& config,
                                     obs::TraceSink* sink) {
  SunflowPlanner planner(num_ports, config);
  planner.SetTraceSink(sink);
  SunflowSchedule out;
  PlanRequest req = PlanRequest::FromCoflow(coflow, config.bandwidth,
                                            /*start=*/coflow.arrival());
  planner.ScheduleOne(req, out);
  out.reservations = planner.prt().reservations();
  return out;
}

}  // namespace sunflow
