#include "core/sunflow.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/rng.h"
#include "obs/profiler.h"
#include "obs/trace_sink.h"

namespace sunflow {

const char* ToString(ReservationOrder order) {
  switch (order) {
    case ReservationOrder::kOrderedPort:
      return "OrderedPort";
    case ReservationOrder::kRandom:
      return "Random";
    case ReservationOrder::kSortedDemandDesc:
      return "SortedDemandDesc";
    case ReservationOrder::kSortedDemandAsc:
      return "SortedDemandAsc";
  }
  return "?";
}

Time SunflowSchedule::MaxCompletion() const {
  Time best = 0;
  for (const auto& [id, cct] : completion_time) best = std::max(best, cct);
  return best;
}

PlanRequest PlanRequest::FromCoflow(const Coflow& coflow, Bandwidth bandwidth,
                                    std::optional<Time> start) {
  SUNFLOW_CHECK(bandwidth > 0);
  PlanRequest req;
  req.coflow = coflow.id();
  req.start = start.value_or(coflow.arrival());
  req.demand.reserve(coflow.size());
  for (const Flow& f : coflow.flows()) {
    req.demand.push_back({f.src, f.dst, f.bytes / bandwidth});
  }
  return req;
}

SunflowPlanner::SunflowPlanner(PortId num_ports, SunflowConfig config)
    : prt_(num_ports), config_(config) {
  SUNFLOW_CHECK(config_.bandwidth > 0);
  SUNFLOW_CHECK(config_.delta >= 0);
}

void SunflowPlanner::SetEstablishedCircuits(EstablishedCircuits circuits,
                                            Time at) {
  established_ = std::move(circuits);
  established_at_ = at;
}

void SunflowPlanner::SetReservationCallback(ReservationCallback callback) {
  callback_ = std::move(callback);
}

void SunflowPlanner::ImportReservations(
    const std::vector<CircuitReservation>& reservations) {
  for (const CircuitReservation& r : reservations) {
    prt_.Reserve(r);
    if (callback_) callback_(r);
    obs::Emit(sink_, {.type = obs::EventType::kCircuitSetup,
                      .t = r.start,
                      .dur = r.length(),
                      .coflow = r.coflow,
                      .in = r.in,
                      .out = r.out,
                      .value = r.setup});
    obs::Emit(sink_, {.type = obs::EventType::kCircuitTeardown,
                      .t = r.end,
                      .coflow = r.coflow,
                      .in = r.in,
                      .out = r.out});
  }
}

std::vector<FlowDemand> SunflowPlanner::Ordered(const PlanRequest& request) {
  std::vector<FlowDemand> p = request.demand;
  if (config_.demand_quantum > 0) {
    for (FlowDemand& f : p) {
      f.processing = std::ceil(f.processing / config_.demand_quantum) *
                     config_.demand_quantum;
    }
  }
  switch (config_.order) {
    case ReservationOrder::kOrderedPort:
      std::sort(p.begin(), p.end(), [](const FlowDemand& a, const FlowDemand& b) {
        return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
      });
      break;
    case ReservationOrder::kRandom: {
      // Seed mixes in the coflow id so different coflows get different
      // shuffles while the whole run stays deterministic.
      Rng rng(config_.shuffle_seed * 0x9e3779b97f4a7c15ULL +
              static_cast<std::uint64_t>(request.coflow));
      rng.Shuffle(p);
      break;
    }
    case ReservationOrder::kSortedDemandDesc:
      std::stable_sort(p.begin(), p.end(),
                       [](const FlowDemand& a, const FlowDemand& b) {
                         return a.processing > b.processing;
                       });
      break;
    case ReservationOrder::kSortedDemandAsc:
      std::stable_sort(p.begin(), p.end(),
                       [](const FlowDemand& a, const FlowDemand& b) {
                         return a.processing < b.processing;
                       });
      break;
  }
  return p;
}

Time SunflowPlanner::ScheduleOne(const PlanRequest& request,
                                 SunflowSchedule& out) {
  SUNFLOW_PROFILE_SCOPE("core.plan");
  const Time delta = config_.delta;
  std::vector<FlowDemand> pending = Ordered(request);
  // Drop zero-demand entries up front (Equation 3: t_ij = 0 when p_ij = 0).
  std::erase_if(pending,
                [](const FlowDemand& f) { return f.processing <= kTimeEps; });

  Time finish = request.start;
  Time t = request.start;
  int reservations_made = 0;

  // MakeReservation (Algorithm 1 lines 13-23). Returns remaining demand.
  auto make_reservation = [&](const FlowDemand& f) -> Time {
    if (!prt_.InputFreeAt(f.src, t) || !prt_.OutputFreeAt(f.dst, t)) {
      return f.processing;
    }
    // Setup is free when this pair is already an established circuit and
    // the reservation begins at the instant the circuit was observed up.
    Time setup = delta;
    if (TimeEq(t, established_at_)) {
      auto it = established_.find(f.src);
      if (it != established_.end() && it->second == f.dst) setup = 0;
    }
    const Time tm = prt_.NextReservationStartAfter(f.src, f.dst, t);
    const Time lm = tm - t;  // max length before blocking a prior reservation
    const Time ld = setup + f.processing;  // desired length
    // A reservation of length <= setup would transmit nothing: skip.
    if (lm <= setup + kTimeEps) return f.processing;
    const Time l = std::min(lm, ld);
    const CircuitReservation reservation{f.src, f.dst, t, t + l, setup,
                                         request.coflow};
    prt_.Reserve(reservation);
    ++reservations_made;
    if (callback_) callback_(reservation);
    obs::Emit(sink_, {.type = obs::EventType::kCircuitSetup,
                      .t = reservation.start,
                      .dur = reservation.length(),
                      .coflow = request.coflow,
                      .in = f.src,
                      .out = f.dst,
                      .value = setup});
    obs::Emit(sink_, {.type = obs::EventType::kCircuitTeardown,
                      .t = reservation.end,
                      .coflow = request.coflow,
                      .in = f.src,
                      .out = f.dst});
    const Time remaining = std::max(0.0, ld - l);
    if (remaining <= kTimeEps) {
      // Flow finished in this reservation.
      const Time flow_finish = t + l;
      out.flow_finish[{request.coflow, f.src, f.dst}] = flow_finish;
      finish = std::max(finish, flow_finish);
      obs::Emit(sink_, {.type = obs::EventType::kFlowFinished,
                        .t = flow_finish,
                        .coflow = request.coflow,
                        .in = f.src,
                        .out = f.dst});
      return 0;
    }
    return remaining;
  };

  while (!pending.empty()) {
    for (FlowDemand& f : pending) f.processing = make_reservation(f);
    std::erase_if(pending,
                  [](const FlowDemand& f) { return f.processing <= kTimeEps; });
    if (pending.empty()) break;
    const Time next = prt_.NextReleaseAfter(t);
    SUNFLOW_CHECK_MSG(next < kTimeInf,
                      "Sunflow stuck: pending demand but no future release "
                      "(coflow "
                          << request.coflow << ")");
    SUNFLOW_CHECK(next > t);
    t = next;
  }

  out.completion_time[request.coflow] = finish - request.start;
  out.reservation_count[request.coflow] += reservations_made;
  return finish;
}

SunflowSchedule SunflowPlanner::ScheduleAll(
    const std::vector<PlanRequest>& requests) {
  SunflowSchedule out;
  for (const PlanRequest& req : requests) ScheduleOne(req, out);
  out.reservations = prt_.reservations();
  return out;
}

SunflowSchedule ScheduleSingleCoflow(const Coflow& coflow, PortId num_ports,
                                     const SunflowConfig& config,
                                     obs::TraceSink* sink) {
  SunflowPlanner planner(num_ports, config);
  planner.SetTraceSink(sink);
  SunflowSchedule out;
  PlanRequest req = PlanRequest::FromCoflow(coflow, config.bandwidth,
                                            /*start=*/coflow.arrival());
  planner.ScheduleOne(req, out);
  out.reservations = planner.prt().reservations();
  return out;
}

}  // namespace sunflow
