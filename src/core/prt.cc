#include "core/prt.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sunflow {

std::string CircuitReservation::DebugString() const {
  std::ostringstream os;
  os << "[in." << in << ", out." << out << ") t=[" << start << ", " << end
     << ") setup=" << setup << " coflow=" << coflow;
  return os.str();
}

PortReservationTable::PortReservationTable(PortId num_ports)
    : num_ports_(num_ports),
      in_slots_(static_cast<std::size_t>(num_ports)),
      out_slots_(static_cast<std::size_t>(num_ports)) {
  SUNFLOW_CHECK(num_ports > 0);
}

bool PortReservationTable::FreeAt(const std::set<Slot>& slots, Time t) {
  // Find the last slot with start <= t; the port is busy iff it covers t.
  auto it = slots.upper_bound(Slot{t, 0, 0});
  if (it == slots.begin()) return true;
  --it;
  return it->end <= t + kTimeEps;
}

Time PortReservationTable::NextStartAfter(const std::set<Slot>& slots,
                                          Time t) {
  auto it = slots.upper_bound(Slot{t, 0, 0});
  if (it == slots.end()) return kTimeInf;
  return it->start;
}

void PortReservationTable::CheckNoOverlap(const std::set<Slot>& slots,
                                          const Slot& s) {
  auto it = slots.upper_bound(s);
  if (it != slots.end()) {
    SUNFLOW_CHECK_MSG(s.end <= it->start + kTimeEps,
                      "reservation overlaps successor on port");
  }
  if (it != slots.begin()) {
    --it;
    SUNFLOW_CHECK_MSG(it->end <= s.start + kTimeEps,
                      "reservation overlaps predecessor on port");
  }
}

bool PortReservationTable::InputFreeAt(PortId i, Time t) const {
  SUNFLOW_CHECK(i >= 0 && i < num_ports_);
  return FreeAt(in_slots_[static_cast<std::size_t>(i)], t);
}

bool PortReservationTable::OutputFreeAt(PortId j, Time t) const {
  SUNFLOW_CHECK(j >= 0 && j < num_ports_);
  return FreeAt(out_slots_[static_cast<std::size_t>(j)], t);
}

Time PortReservationTable::NextReservationStartAfter(PortId in, PortId out,
                                                     Time t) const {
  SUNFLOW_CHECK(in >= 0 && in < num_ports_);
  SUNFLOW_CHECK(out >= 0 && out < num_ports_);
  return std::min(NextStartAfter(in_slots_[static_cast<std::size_t>(in)], t),
                  NextStartAfter(out_slots_[static_cast<std::size_t>(out)], t));
}

void PortReservationTable::Reserve(const CircuitReservation& r) {
  SUNFLOW_PROFILE_SCOPE("prt.reserve");
  SUNFLOW_CHECK(r.in >= 0 && r.in < num_ports_);
  SUNFLOW_CHECK(r.out >= 0 && r.out < num_ports_);
  SUNFLOW_CHECK_MSG(r.end > r.start + kTimeEps,
                    "empty reservation " << r.DebugString());
  SUNFLOW_CHECK_MSG(r.setup >= 0 && r.setup <= r.length() + kTimeEps,
                    "bad setup in " << r.DebugString());
  const Slot s{r.start, r.end, all_.size()};
  CheckNoOverlap(in_slots_[static_cast<std::size_t>(r.in)], s);
  CheckNoOverlap(out_slots_[static_cast<std::size_t>(r.out)], s);
  in_slots_[static_cast<std::size_t>(r.in)].insert(s);
  out_slots_[static_cast<std::size_t>(r.out)].insert(s);
  release_times_.insert(r.end);
  all_.push_back(r);
  // Instrument addresses are stable, so the lookup happens exactly once
  // per thread (thread_local: shards are per thread, obs/metrics.h).
  static thread_local obs::Counter& reservations =
      obs::GlobalMetrics().GetCounter("prt.reservations");
  reservations.Increment();
}

Time PortReservationTable::NextReleaseAfter(Time t) const {
  auto it = release_times_.upper_bound(t + kTimeEps);
  if (it == release_times_.end()) return kTimeInf;
  return *it;
}

std::vector<CircuitReservation> PortReservationTable::InputPortTimeline(
    PortId i) const {
  SUNFLOW_CHECK(i >= 0 && i < num_ports_);
  std::vector<CircuitReservation> out;
  for (const Slot& s : in_slots_[static_cast<std::size_t>(i)])
    out.push_back(all_[s.index]);
  return out;
}

std::vector<CircuitReservation> PortReservationTable::OutputPortTimeline(
    PortId j) const {
  SUNFLOW_CHECK(j >= 0 && j < num_ports_);
  std::vector<CircuitReservation> out;
  for (const Slot& s : out_slots_[static_cast<std::size_t>(j)])
    out.push_back(all_[s.index]);
  return out;
}

void PortReservationTable::CheckInvariants() const {
  auto check_side = [&](const std::vector<std::set<Slot>>& sides) {
    for (const auto& slots : sides) {
      Time prev_end = -kTimeInf;
      for (const Slot& s : slots) {
        SUNFLOW_CHECK_MSG(s.start >= prev_end - kTimeEps,
                          "overlapping reservations on a port");
        SUNFLOW_CHECK(s.end > s.start);
        prev_end = s.end;
      }
    }
  };
  check_side(in_slots_);
  check_side(out_slots_);
}

}  // namespace sunflow
