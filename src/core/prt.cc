#include "core/prt.h"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sunflow {

std::string CircuitReservation::DebugString() const {
  std::ostringstream os;
  os << "[in." << in << ", out." << out << ") t=[" << start << ", " << end
     << ") setup=" << setup << " coflow=" << coflow;
  return os.str();
}

PortReservationTable::PortReservationTable(PortId num_ports)
    : num_ports_(num_ports),
      in_slots_(static_cast<std::size_t>(num_ports)),
      out_slots_(static_cast<std::size_t>(num_ports)) {
  SUNFLOW_CHECK(num_ports > 0);
}

std::size_t PortReservationTable::PortTimeline::LowerBound(Time t) const {
  const std::size_t n = slots.size();
  // The cursor is a valid lower bound iff everything before it is fully in
  // the past at t as well. Ends are strictly increasing (slots never
  // overlap and each spans more than ε), so checking the slot just before
  // the cursor suffices.
  if (cursor > n || (cursor > 0 && slots[cursor - 1].end > t + kTimeEps)) {
    // Backward (or stale) probe: binary search and re-seat the cursor so a
    // subsequent forward scan from here is cheap again.
    cursor = static_cast<std::size_t>(
        std::partition_point(slots.begin(), slots.end(),
                             [t](const Slot& s) {
                               return s.end <= t + kTimeEps;
                             }) -
        slots.begin());
    return cursor;
  }
  while (cursor < n && slots[cursor].end <= t + kTimeEps) ++cursor;
  return cursor;
}

bool PortReservationTable::PortTimeline::FreeAt(Time t) const {
  // The covering slot, if any, is the first one whose end is still ahead
  // of t; the port is busy iff that slot has already started.
  const std::size_t i = LowerBound(t);
  return i == slots.size() || slots[i].start > t;
}

Time PortReservationTable::PortTimeline::BusyUntil(Time t) const {
  const std::size_t i = LowerBound(t);
  if (i == slots.size() || slots[i].start > t) return t;
  return slots[i].end;
}

PortReservationTable::NextReservation
PortReservationTable::PortTimeline::NextStartAfter(Time t) const {
  std::size_t i = LowerBound(t);
  // slots[i] may cover t (start <= t); the one after it starts past t
  // because its start is >= this slot's end - ε > t.
  if (i < slots.size() && slots[i].start <= t) ++i;
  if (i == slots.size()) return {};
  return {slots[i].start, slots[i].end};
}

void PortReservationTable::PortTimeline::CheckFits(const Slot& s) const {
  const auto pos = std::upper_bound(
      slots.begin(), slots.end(), s,
      [](const Slot& a, const Slot& b) { return a.start < b.start; });
  if (pos != slots.end()) {
    SUNFLOW_CHECK_MSG(s.end <= pos->start + kTimeEps,
                      "reservation overlaps successor on port");
  }
  if (pos != slots.begin()) {
    SUNFLOW_CHECK_MSG(std::prev(pos)->end <= s.start + kTimeEps,
                      "reservation overlaps predecessor on port");
  }
}

void PortReservationTable::PortTimeline::Insert(const Slot& s) {
  // Append fast path: the planner emits reservations in non-decreasing
  // start order per port, so most inserts land at the back.
  auto pos = slots.end();
  if (!slots.empty() && s.start < slots.back().start) {
    pos = std::upper_bound(slots.begin(), slots.end(), s,
                           [](const Slot& a, const Slot& b) {
                             return a.start < b.start;
                           });
  }
  const auto idx = static_cast<std::size_t>(pos - slots.begin());
  if (idx < cursor) ++cursor;  // keep the cursor on the same slot
  slots.insert(pos, s);
}

std::size_t PortReservationTable::PortTimeline::CoveringIndexAt(
    Time t) const {
  // Same predicate as LowerBound, but without reading or re-seating the
  // cursor: the first slot whose end is still ahead of t covers t iff it
  // has already started.
  const auto it = std::partition_point(
      slots.begin(), slots.end(),
      [t](const Slot& s) { return s.end <= t + kTimeEps; });
  if (it == slots.end() || it->start > t) return SIZE_MAX;
  return it->index;
}

const PortReservationTable::Slot*
PortReservationTable::PortTimeline::FirstStartAfter(Time t) const {
  auto it = std::partition_point(
      slots.begin(), slots.end(),
      [t](const Slot& s) { return s.end <= t + kTimeEps; });
  if (it != slots.end() && it->start <= t) ++it;
  if (it == slots.end()) return nullptr;
  return &*it;
}

CoflowId PortReservationTable::InputOwnerAt(PortId i, Time t) const {
  SUNFLOW_CHECK(i >= 0 && i < num_ports_);
  const std::size_t idx =
      in_slots_[static_cast<std::size_t>(i)].CoveringIndexAt(t);
  return idx == SIZE_MAX ? -1 : all_[idx].coflow;
}

CoflowId PortReservationTable::OutputOwnerAt(PortId j, Time t) const {
  SUNFLOW_CHECK(j >= 0 && j < num_ports_);
  const std::size_t idx =
      out_slots_[static_cast<std::size_t>(j)].CoveringIndexAt(t);
  return idx == SIZE_MAX ? -1 : all_[idx].coflow;
}

CoflowId PortReservationTable::NextOwnerAfter(PortId in, PortId out,
                                              Time t) const {
  SUNFLOW_CHECK(in >= 0 && in < num_ports_);
  SUNFLOW_CHECK(out >= 0 && out < num_ports_);
  const Slot* a = in_slots_[static_cast<std::size_t>(in)].FirstStartAfter(t);
  const Slot* b = out_slots_[static_cast<std::size_t>(out)].FirstStartAfter(t);
  const Slot* first = a;
  if (first == nullptr || (b != nullptr && b->start < first->start)) first = b;
  return first == nullptr ? -1 : all_[first->index].coflow;
}

bool PortReservationTable::InputFreeAt(PortId i, Time t) const {
  SUNFLOW_CHECK(i >= 0 && i < num_ports_);
  return in_slots_[static_cast<std::size_t>(i)].FreeAt(t);
}

bool PortReservationTable::OutputFreeAt(PortId j, Time t) const {
  SUNFLOW_CHECK(j >= 0 && j < num_ports_);
  return out_slots_[static_cast<std::size_t>(j)].FreeAt(t);
}

Time PortReservationTable::InputBusyUntil(PortId i, Time t) const {
  SUNFLOW_CHECK(i >= 0 && i < num_ports_);
  return in_slots_[static_cast<std::size_t>(i)].BusyUntil(t);
}

Time PortReservationTable::OutputBusyUntil(PortId j, Time t) const {
  SUNFLOW_CHECK(j >= 0 && j < num_ports_);
  return out_slots_[static_cast<std::size_t>(j)].BusyUntil(t);
}

Time PortReservationTable::NextReservationStartAfter(PortId in, PortId out,
                                                     Time t) const {
  return NextReservationAfter(in, out, t).start;
}

PortReservationTable::NextReservation
PortReservationTable::NextReservationAfter(PortId in, PortId out,
                                           Time t) const {
  SUNFLOW_CHECK(in >= 0 && in < num_ports_);
  SUNFLOW_CHECK(out >= 0 && out < num_ports_);
  const NextReservation a =
      in_slots_[static_cast<std::size_t>(in)].NextStartAfter(t);
  const NextReservation b =
      out_slots_[static_cast<std::size_t>(out)].NextStartAfter(t);
  if (a.start < b.start) return a;
  if (b.start < a.start) return b;
  // Both ports have a slot starting at the same instant: the constraint at
  // that start only relaxes when the longer of the two releases.
  return {a.start, std::max(a.release, b.release)};
}

void PortReservationTable::Reserve(const CircuitReservation& r) {
  SUNFLOW_PROFILE_SCOPE("prt.reserve");
  SUNFLOW_CHECK(r.in >= 0 && r.in < num_ports_);
  SUNFLOW_CHECK(r.out >= 0 && r.out < num_ports_);
  SUNFLOW_CHECK_MSG(r.end > r.start + kTimeEps,
                    "empty reservation " << r.DebugString());
  SUNFLOW_CHECK_MSG(r.setup >= 0 && r.setup <= r.length() + kTimeEps,
                    "bad setup in " << r.DebugString());
  const Slot s{r.start, r.end, all_.size()};
  PortTimeline& in_tl = in_slots_[static_cast<std::size_t>(r.in)];
  PortTimeline& out_tl = out_slots_[static_cast<std::size_t>(r.out)];
  in_tl.CheckFits(s);
  out_tl.CheckFits(s);
  in_tl.Insert(s);
  out_tl.Insert(s);
  if (release_times_.empty() || r.end >= release_times_.back()) {
    release_times_.push_back(r.end);
  } else {
    release_times_.insert(
        std::upper_bound(release_times_.begin(), release_times_.end(), r.end),
        r.end);
  }
  all_.push_back(r);
  // Instrument addresses are stable, so the lookup happens exactly once
  // per thread (thread_local: shards are per thread, obs/metrics.h).
  static thread_local obs::Counter& reservations =
      obs::GlobalMetrics().GetCounter("prt.reservations");
  reservations.Increment();
}

Time PortReservationTable::NextReleaseAfter(Time t) const {
  const auto it = std::upper_bound(release_times_.begin(),
                                   release_times_.end(), t + kTimeEps);
  if (it == release_times_.end()) return kTimeInf;
  return *it;
}

Time PortReservationTable::FirstReleaseAtOrAfter(Time t) const {
  const auto it =
      std::lower_bound(release_times_.begin(), release_times_.end(), t);
  if (it == release_times_.end()) return kTimeInf;
  return *it;
}

Time PortReservationTable::LastReleaseBefore(Time t) const {
  const auto it =
      std::lower_bound(release_times_.begin(), release_times_.end(), t);
  if (it == release_times_.begin()) return -kTimeInf;
  return *std::prev(it);
}

std::vector<CircuitReservation> PortReservationTable::InputPortTimeline(
    PortId i) const {
  SUNFLOW_CHECK(i >= 0 && i < num_ports_);
  const PortTimeline& tl = in_slots_[static_cast<std::size_t>(i)];
  std::vector<CircuitReservation> out;
  out.reserve(tl.slots.size());
  for (const Slot& s : tl.slots) out.push_back(all_[s.index]);
  return out;
}

std::vector<CircuitReservation> PortReservationTable::OutputPortTimeline(
    PortId j) const {
  SUNFLOW_CHECK(j >= 0 && j < num_ports_);
  const PortTimeline& tl = out_slots_[static_cast<std::size_t>(j)];
  std::vector<CircuitReservation> out;
  out.reserve(tl.slots.size());
  for (const Slot& s : tl.slots) out.push_back(all_[s.index]);
  return out;
}

void PortReservationTable::CheckInvariants() const {
  auto check_side = [&](const std::vector<PortTimeline>& sides) {
    for (const PortTimeline& tl : sides) {
      Time prev_end = -kTimeInf;
      for (const Slot& s : tl.slots) {
        SUNFLOW_CHECK_MSG(s.start >= prev_end - kTimeEps,
                          "overlapping reservations on a port");
        SUNFLOW_CHECK(s.end > s.start);
        prev_end = s.end;
      }
    }
  };
  check_side(in_slots_);
  check_side(out_slots_);
  SUNFLOW_CHECK(std::is_sorted(release_times_.begin(), release_times_.end()));
  SUNFLOW_CHECK(release_times_.size() == all_.size());
}

}  // namespace sunflow
