#include "core/prt.h"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sunflow {

std::string CircuitReservation::DebugString() const {
  std::ostringstream os;
  os << "[in." << in << ", out." << out << ") t=[" << start << ", " << end
     << ") setup=" << setup << " coflow=" << coflow;
  if (plane != 0) os << " plane=" << plane;
  return os.str();
}

FabricReservationTable::FabricReservationTable(PortId num_ports,
                                               int num_planes)
    : num_ports_(num_ports), num_planes_(num_planes) {
  SUNFLOW_CHECK(num_ports > 0);
  SUNFLOW_CHECK(num_planes > 0);
  const std::size_t timelines =
      static_cast<std::size_t>(num_planes) * static_cast<std::size_t>(num_ports);
  slots_[0].resize(timelines);
  slots_[1].resize(timelines);
}

const FabricReservationTable::PortTimeline& FabricReservationTable::Timeline(
    Side side, PortId p, PlaneId plane) const {
  SUNFLOW_CHECK(p >= 0 && p < num_ports_);
  SUNFLOW_CHECK(plane >= 0 && plane < num_planes_);
  return slots_[static_cast<int>(side)]
               [static_cast<std::size_t>(plane) *
                    static_cast<std::size_t>(num_ports_) +
                static_cast<std::size_t>(p)];
}

FabricReservationTable::PortTimeline& FabricReservationTable::Timeline(
    Side side, PortId p, PlaneId plane) {
  return const_cast<PortTimeline&>(
      static_cast<const FabricReservationTable&>(*this).Timeline(side, p,
                                                                 plane));
}

std::size_t FabricReservationTable::PortTimeline::LowerBound(Time t) const {
  const std::size_t n = slots.size();
  // The cursor is a valid lower bound iff everything before it is fully in
  // the past at t as well. Ends are strictly increasing (slots never
  // overlap and each spans more than ε), so checking the slot just before
  // the cursor suffices.
  if (cursor > n || (cursor > 0 && slots[cursor - 1].end > t + kTimeEps)) {
    // Backward (or stale) probe: binary search and re-seat the cursor so a
    // subsequent forward scan from here is cheap again.
    cursor = static_cast<std::size_t>(
        std::partition_point(slots.begin(), slots.end(),
                             [t](const Slot& s) {
                               return s.end <= t + kTimeEps;
                             }) -
        slots.begin());
    return cursor;
  }
  while (cursor < n && slots[cursor].end <= t + kTimeEps) ++cursor;
  return cursor;
}

bool FabricReservationTable::PortTimeline::FreeAt(Time t) const {
  // The covering slot, if any, is the first one whose end is still ahead
  // of t; the port is busy iff that slot has already started.
  const std::size_t i = LowerBound(t);
  return i == slots.size() || slots[i].start > t;
}

Time FabricReservationTable::PortTimeline::BusyUntil(Time t) const {
  const std::size_t i = LowerBound(t);
  if (i == slots.size() || slots[i].start > t) return t;
  return slots[i].end;
}

FabricReservationTable::NextReservation
FabricReservationTable::PortTimeline::NextStartAfter(Time t) const {
  std::size_t i = LowerBound(t);
  // slots[i] may cover t (start <= t); the one after it starts past t
  // because its start is >= this slot's end - ε > t.
  if (i < slots.size() && slots[i].start <= t) ++i;
  if (i == slots.size()) return {};
  return {slots[i].start, slots[i].end};
}

void FabricReservationTable::PortTimeline::CheckFits(const Slot& s) const {
  const auto pos = std::upper_bound(
      slots.begin(), slots.end(), s,
      [](const Slot& a, const Slot& b) { return a.start < b.start; });
  if (pos != slots.end()) {
    SUNFLOW_CHECK_MSG(s.end <= pos->start + kTimeEps,
                      "reservation overlaps successor on port");
  }
  if (pos != slots.begin()) {
    SUNFLOW_CHECK_MSG(std::prev(pos)->end <= s.start + kTimeEps,
                      "reservation overlaps predecessor on port");
  }
}

void FabricReservationTable::PortTimeline::Insert(const Slot& s) {
  // Append fast path: the planner emits reservations in non-decreasing
  // start order per timeline, so most inserts land at the back.
  auto pos = slots.end();
  if (!slots.empty() && s.start < slots.back().start) {
    pos = std::upper_bound(slots.begin(), slots.end(), s,
                           [](const Slot& a, const Slot& b) {
                             return a.start < b.start;
                           });
  }
  const auto idx = static_cast<std::size_t>(pos - slots.begin());
  if (idx < cursor) ++cursor;  // keep the cursor on the same slot
  slots.insert(pos, s);
}

std::size_t FabricReservationTable::PortTimeline::CoveringIndexAt(
    Time t) const {
  // Same predicate as LowerBound, but without reading or re-seating the
  // cursor: the first slot whose end is still ahead of t covers t iff it
  // has already started.
  const auto it = std::partition_point(
      slots.begin(), slots.end(),
      [t](const Slot& s) { return s.end <= t + kTimeEps; });
  if (it == slots.end() || it->start > t) return SIZE_MAX;
  return it->index;
}

const FabricReservationTable::Slot*
FabricReservationTable::PortTimeline::FirstStartAfter(Time t) const {
  auto it = std::partition_point(
      slots.begin(), slots.end(),
      [t](const Slot& s) { return s.end <= t + kTimeEps; });
  if (it != slots.end() && it->start <= t) ++it;
  if (it == slots.end()) return nullptr;
  return &*it;
}

bool FabricReservationTable::FreeAt(Side side, PortId p, Time t,
                                    PlaneId plane) const {
  return Timeline(side, p, plane).FreeAt(t);
}

Time FabricReservationTable::BusyUntil(Side side, PortId p, Time t,
                                       PlaneId plane) const {
  return Timeline(side, p, plane).BusyUntil(t);
}

CoflowId FabricReservationTable::OwnerAt(Side side, PortId p, Time t,
                                         PlaneId plane) const {
  const std::size_t idx = Timeline(side, p, plane).CoveringIndexAt(t);
  return idx == SIZE_MAX ? -1 : all_[idx].coflow;
}

CoflowId FabricReservationTable::NextOwnerAfter(PortId in, PortId out, Time t,
                                                PlaneId plane) const {
  const Slot* a = Timeline(Side::kIn, in, plane).FirstStartAfter(t);
  const Slot* b = Timeline(Side::kOut, out, plane).FirstStartAfter(t);
  const Slot* first = a;
  if (first == nullptr || (b != nullptr && b->start < first->start)) first = b;
  return first == nullptr ? -1 : all_[first->index].coflow;
}

Time FabricReservationTable::BusySeconds(Side side, PortId p, Time t0,
                                         Time t1, PlaneId plane) const {
  // Slots are sorted by start and never overlap, so one pass over the
  // window suffices; plain binary search keeps this cursor-free.
  const PortTimeline& tl = Timeline(side, p, plane);
  Time busy = 0;
  auto it = std::lower_bound(
      tl.slots.begin(), tl.slots.end(), t0,
      [](const Slot& s, Time t) { return s.end <= t; });
  for (; it != tl.slots.end() && it->start < t1; ++it) {
    busy += std::max<Time>(0, std::min(it->end, t1) - std::max(it->start, t0));
  }
  return busy;
}

Time FabricReservationTable::NextReservationStartAfter(PortId in, PortId out,
                                                       Time t,
                                                       PlaneId plane) const {
  return NextReservationAfter(in, out, t, plane).start;
}

FabricReservationTable::NextReservation
FabricReservationTable::NextReservationAfter(PortId in, PortId out, Time t,
                                             PlaneId plane) const {
  const NextReservation a = Timeline(Side::kIn, in, plane).NextStartAfter(t);
  const NextReservation b = Timeline(Side::kOut, out, plane).NextStartAfter(t);
  if (a.start < b.start) return a;
  if (b.start < a.start) return b;
  // Both ports have a slot starting at the same instant: the constraint at
  // that start only relaxes when the longer of the two releases.
  return {a.start, std::max(a.release, b.release)};
}

void FabricReservationTable::Reserve(const CircuitReservation& r) {
  SUNFLOW_PROFILE_SCOPE("prt.reserve");
  SUNFLOW_CHECK(r.in >= 0 && r.in < num_ports_);
  SUNFLOW_CHECK(r.out >= 0 && r.out < num_ports_);
  SUNFLOW_CHECK_MSG(r.plane >= 0 && r.plane < num_planes_,
                    "plane out of range in " << r.DebugString());
  SUNFLOW_CHECK_MSG(r.end > r.start + kTimeEps,
                    "empty reservation " << r.DebugString());
  SUNFLOW_CHECK_MSG(r.setup >= 0 && r.setup <= r.length() + kTimeEps,
                    "bad setup in " << r.DebugString());
  const Slot s{r.start, r.end, all_.size()};
  PortTimeline& in_tl = Timeline(Side::kIn, r.in, r.plane);
  PortTimeline& out_tl = Timeline(Side::kOut, r.out, r.plane);
  in_tl.CheckFits(s);
  out_tl.CheckFits(s);
  in_tl.Insert(s);
  out_tl.Insert(s);
  if (release_times_.empty() || r.end >= release_times_.back()) {
    release_times_.push_back(r.end);
  } else {
    release_times_.insert(
        std::upper_bound(release_times_.begin(), release_times_.end(), r.end),
        r.end);
  }
  all_.push_back(r);
  // Instrument addresses are stable, so the lookup happens exactly once
  // per thread (thread_local: shards are per thread, obs/metrics.h).
  static thread_local obs::Counter& reservations =
      obs::GlobalMetrics().GetCounter("prt.reservations");
  reservations.Increment();
}

Time FabricReservationTable::NextReleaseAfter(Time t) const {
  const auto it = std::upper_bound(release_times_.begin(),
                                   release_times_.end(), t + kTimeEps);
  if (it == release_times_.end()) return kTimeInf;
  return *it;
}

Time FabricReservationTable::FirstReleaseAtOrAfter(Time t) const {
  const auto it =
      std::lower_bound(release_times_.begin(), release_times_.end(), t);
  if (it == release_times_.end()) return kTimeInf;
  return *it;
}

Time FabricReservationTable::LastReleaseBefore(Time t) const {
  const auto it =
      std::lower_bound(release_times_.begin(), release_times_.end(), t);
  if (it == release_times_.begin()) return -kTimeInf;
  return *std::prev(it);
}

std::vector<CircuitReservation> FabricReservationTable::TimelineOf(
    Side side, PortId p, PlaneId plane) const {
  const PortTimeline& tl = Timeline(side, p, plane);
  std::vector<CircuitReservation> out;
  out.reserve(tl.slots.size());
  for (const Slot& s : tl.slots) out.push_back(all_[s.index]);
  return out;
}

void FabricReservationTable::CheckInvariants() const {
  for (const auto& side : slots_) {
    for (const PortTimeline& tl : side) {
      Time prev_end = -kTimeInf;
      for (const Slot& s : tl.slots) {
        SUNFLOW_CHECK_MSG(s.start >= prev_end - kTimeEps,
                          "overlapping reservations on a port");
        SUNFLOW_CHECK(s.end > s.start);
        prev_end = s.end;
      }
    }
  }
  SUNFLOW_CHECK(std::is_sorted(release_times_.begin(), release_times_.end()));
  SUNFLOW_CHECK(release_times_.size() == all_.size());
}

}  // namespace sunflow
