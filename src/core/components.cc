#include "core/components.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "common/assert.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"

namespace sunflow {

namespace {

// Union-find over a small dense id space.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<PlanRequest> SplitByPortComponents(const PlanRequest& request) {
  if (request.demand.empty()) return {};
  // Map ports to union-find ids: inputs then outputs.
  std::map<PortId, std::size_t> in_id, out_id;
  for (const FlowDemand& f : request.demand) {
    in_id.emplace(f.src, 0);
    out_id.emplace(f.dst, 0);
  }
  std::size_t next = 0;
  for (auto& [port, id] : in_id) id = next++;
  for (auto& [port, id] : out_id) id = next++;

  UnionFind uf(next);
  for (const FlowDemand& f : request.demand)
    uf.Union(in_id[f.src], out_id[f.dst]);

  std::map<std::size_t, PlanRequest> components;
  for (const FlowDemand& f : request.demand) {
    const std::size_t root = uf.Find(in_id[f.src]);
    PlanRequest& part = components[root];
    part.coflow = request.coflow;
    part.start = request.start;
    part.demand.push_back(f);
  }
  std::vector<PlanRequest> out;
  out.reserve(components.size());
  for (auto& [root, part] : components) out.push_back(std::move(part));
  return out;
}

Time ScheduleComponentsParallel(SunflowPlanner& planner,
                                const PlanRequest& request,
                                SunflowSchedule& out,
                                runtime::ThreadPool* pool) {
  const auto parts = SplitByPortComponents(request);
  if (parts.empty()) {
    out.completion_time[request.coflow] = 0;
    return request.start;
  }

  struct ComponentPlan {
    Time finish = 0;
    SunflowSchedule schedule;
    std::vector<CircuitReservation> new_reservations;
  };

  const std::size_t base = planner.prt().reservations().size();
  auto plan_one = [&](const PlanRequest& part) {
    // A copy carries every existing reservation, so this component is
    // constrained exactly as it would be on the shared table; it cannot
    // see (or collide with) sibling components, which share no ports.
    SunflowPlanner worker = planner;
    // Callbacks must not fire from worker threads; the merge below streams
    // the final reservations through the target planner's callback.
    worker.SetReservationCallback(nullptr);
    ComponentPlan result;
    result.finish = worker.ScheduleOne(part, result.schedule);
    const auto& all = worker.prt().reservations();
    result.new_reservations.assign(
        all.begin() + static_cast<std::ptrdiff_t>(base), all.end());
    return result;
  };

  // One task per component on the shared pool (replacing the old bounded
  // std::async fan-out); task i always plans component i, so the plans
  // vector is identical at any pool size. A null/serial pool runs the
  // components in index order on the caller.
  std::vector<ComponentPlan> plans(parts.size());
  if (pool != nullptr && pool->size() > 1 && parts.size() > 1) {
    pool->ParallelFor(0, parts.size(),
                      [&](std::size_t i) { plans[i] = plan_one(parts[i]); });
  } else {
    for (std::size_t i = 0; i < parts.size(); ++i)
      plans[i] = plan_one(parts[i]);
  }

  // Deterministic merge: global start order, ties broken by (component id,
  // creation index). The old start-only sort left tie order to the sort
  // implementation; keying on the component id pins the merged stream so
  // reservations() is byte-identical run to run and pool size to pool
  // size.
  struct Tagged {
    const CircuitReservation* r;
    std::size_t component;
    std::size_t index;
  };
  std::vector<Tagged> tagged;
  for (std::size_t c = 0; c < plans.size(); ++c) {
    for (std::size_t k = 0; k < plans[c].new_reservations.size(); ++k)
      tagged.push_back({&plans[c].new_reservations[k], c, k});
  }
  std::sort(tagged.begin(), tagged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.r->start != b.r->start) return a.r->start < b.r->start;
    if (a.component != b.component) return a.component < b.component;
    return a.index < b.index;
  });
  std::vector<CircuitReservation> merged;
  merged.reserve(tagged.size());
  for (const Tagged& tr : tagged) merged.push_back(*tr.r);
  planner.ImportReservations(merged);

  Time finish = request.start;
  int reservations_made = 0;
  for (const auto& p : plans) {
    finish = std::max(finish, p.finish);
    for (const auto& [key, t] : p.schedule.flow_finish)
      out.flow_finish[key] = t;
    auto it = p.schedule.reservation_count.find(request.coflow);
    if (it != p.schedule.reservation_count.end())
      reservations_made += it->second;
  }
  out.completion_time[request.coflow] = finish - request.start;
  out.reservation_count[request.coflow] += reservations_made;
  return finish;
}

Time SchedulePerComponent(SunflowPlanner& planner, const PlanRequest& request,
                          SunflowSchedule& out) {
  const auto parts = SplitByPortComponents(request);
  Time finish = request.start;
  // Components touch disjoint ports, so they compose on the PRT without
  // interaction; per-component completion_time entries would overwrite
  // each other, so track the true maximum explicitly.
  for (const PlanRequest& part : parts) {
    finish = std::max(finish, planner.ScheduleOne(part, out));
  }
  out.completion_time[request.coflow] = finish - request.start;
  return finish;
}

SunflowSchedule ScheduleRequestsParallel(
    SunflowPlanner& planner, const std::vector<const PlanRequest*>& requests,
    runtime::ThreadPool* pool) {
  static thread_local obs::Counter& parallel_replans =
      obs::GlobalMetrics().GetCounter("plan.parallel_replans");
  static thread_local obs::Counter& parallel_groups =
      obs::GlobalMetrics().GetCounter("plan.parallel_groups");
  static thread_local obs::Counter& serial_fallbacks =
      obs::GlobalMetrics().GetCounter("plan.parallel_fallbacks");

  // The parallel path re-derives ScheduleAll's outputs from per-group
  // planners, which requires: a real pool to win anything, a fresh PRT
  // (group planners each start from the established circuits alone), no
  // mid-plan observers (the merged import would replay the stream out of
  // planning order), and unique coflow ids (the merge is keyed on them).
  bool eligible = pool != nullptr && pool->size() > 1 &&
                  requests.size() >= 2 && planner.trace_sink() == nullptr &&
                  !planner.has_reservation_callback() &&
                  planner.prt().reservations().empty();
  if (eligible) {
    std::set<CoflowId> ids;
    for (const PlanRequest* req : requests) {
      if (!ids.insert(req->coflow).second) {
        eligible = false;
        break;
      }
    }
  }
  if (!eligible) {
    serial_fallbacks.Increment();
    return planner.ScheduleAll(requests);
  }

  // Union-find over the joint port space: input port p -> p, output port
  // p -> num_ports + p. Every request welds its own ports together, so a
  // root identifies a set of requests whose footprints transitively
  // overlap — exactly the coflows that can constrain each other on the
  // PRT. Requests with no demand get singleton groups.
  const PortId num_ports = planner.prt().num_ports();
  UnionFind uf(2 * static_cast<std::size_t>(num_ports));
  const auto in_id = [](PortId p) { return static_cast<std::size_t>(p); };
  const auto out_id = [num_ports](PortId p) {
    return static_cast<std::size_t>(num_ports) + static_cast<std::size_t>(p);
  };
  for (const PlanRequest* req : requests) {
    if (req->demand.empty()) continue;
    const std::size_t anchor = in_id(req->demand.front().src);
    for (const FlowDemand& f : req->demand) {
      uf.Union(anchor, in_id(f.src));
      uf.Union(anchor, out_id(f.dst));
    }
  }

  // Group ids in order of first appearance over the priority-ordered
  // request list, so group g's lowest-priority-index request has the
  // smallest index among groups >= g — the merge below only depends on
  // the per-request order, but stable ids keep logs and tests readable.
  std::vector<std::vector<const PlanRequest*>> groups;
  std::vector<std::size_t> group_of(requests.size());
  std::map<std::size_t, std::size_t> root_to_group;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const PlanRequest* req = requests[i];
    std::size_t g;
    if (req->demand.empty()) {
      g = groups.size();
      groups.emplace_back();
    } else {
      const std::size_t root = uf.Find(in_id(req->demand.front().src));
      auto [it, inserted] = root_to_group.emplace(root, groups.size());
      if (inserted) groups.emplace_back();
      g = it->second;
    }
    group_of[i] = g;
    groups[g].push_back(req);
  }
  if (groups.size() < 2) {
    serial_fallbacks.Increment();
    return planner.ScheduleAll(requests);
  }

  parallel_replans.Increment();
  parallel_groups.Increment(groups.size());

  // Plan each group on its own fresh planner. A group's requests keep
  // their global priority order, and its planner sees the full
  // established-circuit set (extraneous entries are inert: setup zeroing
  // only consults a flow's own port pair). Cross-group isolation is the
  // §6 argument: disjoint ports mean no constraint can cross a group
  // boundary, so each group plans exactly as it would on the shared PRT.
  std::vector<SunflowSchedule> results(groups.size());
  const auto plan_group = [&](std::size_t g) {
    SunflowPlanner worker(num_ports, planner.config());
    if (planner.has_established()) {
      // The full per-plane carry-over set: worker planners must see every
      // plane's established circuits, not just plane 0's.
      worker.SetEstablishedCircuitsByPlane(planner.established_by_plane(),
                                           planner.established_at());
    }
    results[g] = worker.ScheduleAll(groups[g]);
  };
  pool->ParallelFor(0, groups.size(), plan_group);

  // Deterministic merge, replaying the serial creation order: walk the
  // requests in global priority order and splice each one's reservations
  // (contiguous in its group's stream, counted by reservation_count) in
  // turn. The per-port timelines are identical either way — only the
  // insertion-order reservations() vector needs this reconstruction.
  SunflowSchedule out;
  std::vector<std::size_t> cursor(groups.size(), 0);
  std::vector<CircuitReservation> merged;
  for (const SunflowSchedule& r : results) merged.reserve(merged.size() + r.reservations.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::size_t g = group_of[i];
    const SunflowSchedule& sched = results[g];
    const CoflowId coflow = requests[i]->coflow;
    const auto count_it = sched.reservation_count.find(coflow);
    SUNFLOW_CHECK(count_it != sched.reservation_count.end());
    const auto count = static_cast<std::size_t>(count_it->second);
    SUNFLOW_CHECK(cursor[g] + count <= sched.reservations.size());
    for (std::size_t k = 0; k < count; ++k)
      merged.push_back(sched.reservations[cursor[g] + k]);
    cursor[g] += count;

    out.completion_time[coflow] = sched.completion_time.at(coflow);
    out.reservation_count[coflow] = count_it->second;
    for (auto it = sched.flow_finish.lower_bound(
             FlowKey{coflow, std::numeric_limits<PortId>::min(),
                     std::numeric_limits<PortId>::min()});
         it != sched.flow_finish.end() && it->first.coflow == coflow; ++it) {
      out.flow_finish.emplace(it->first, it->second);
    }
  }
  planner.ImportReservations(merged);
  out.reservations = planner.prt().reservations();
  // Memo accounting sums over the per-group planners. Unlike the
  // reservation stream this is not serial-order-equivalent — the serial
  // path hashes one global prefix while each group hashes its own — so
  // consumers must treat it as host/thread-dependent telemetry (the
  // timeline sampler export-gates it accordingly).
  for (const SunflowSchedule& r : results) {
    out.memo_hits += r.memo_hits;
    out.memo_lookups += r.memo_lookups;
  }
  out.parallel_groups = groups.size();
  return out;
}

}  // namespace sunflow
