#include "core/components.h"

#include <algorithm>
#include <future>
#include <map>
#include <numeric>

#include "common/assert.h"

namespace sunflow {

namespace {

// Union-find over a small dense id space.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<PlanRequest> SplitByPortComponents(const PlanRequest& request) {
  if (request.demand.empty()) return {};
  // Map ports to union-find ids: inputs then outputs.
  std::map<PortId, std::size_t> in_id, out_id;
  for (const FlowDemand& f : request.demand) {
    in_id.emplace(f.src, 0);
    out_id.emplace(f.dst, 0);
  }
  std::size_t next = 0;
  for (auto& [port, id] : in_id) id = next++;
  for (auto& [port, id] : out_id) id = next++;

  UnionFind uf(next);
  for (const FlowDemand& f : request.demand)
    uf.Union(in_id[f.src], out_id[f.dst]);

  std::map<std::size_t, PlanRequest> components;
  for (const FlowDemand& f : request.demand) {
    const std::size_t root = uf.Find(in_id[f.src]);
    PlanRequest& part = components[root];
    part.coflow = request.coflow;
    part.start = request.start;
    part.demand.push_back(f);
  }
  std::vector<PlanRequest> out;
  out.reserve(components.size());
  for (auto& [root, part] : components) out.push_back(std::move(part));
  return out;
}

Time ScheduleComponentsParallel(SunflowPlanner& planner,
                                const PlanRequest& request,
                                SunflowSchedule& out, int max_threads) {
  SUNFLOW_CHECK(max_threads > 0);
  const auto parts = SplitByPortComponents(request);
  if (parts.empty()) {
    out.completion_time[request.coflow] = 0;
    return request.start;
  }

  struct ComponentPlan {
    Time finish = 0;
    SunflowSchedule schedule;
    std::vector<CircuitReservation> new_reservations;
  };

  const std::size_t base = planner.prt().reservations().size();
  auto plan_one = [&](const PlanRequest& part) {
    // A copy carries every existing reservation, so this component is
    // constrained exactly as it would be on the shared table; it cannot
    // see (or collide with) sibling components, which share no ports.
    SunflowPlanner worker = planner;
    // Callbacks must not fire from worker threads; the merge below streams
    // the final reservations through the target planner's callback.
    worker.SetReservationCallback(nullptr);
    ComponentPlan result;
    result.finish = worker.ScheduleOne(part, result.schedule);
    const auto& all = worker.prt().reservations();
    result.new_reservations.assign(all.begin() + static_cast<std::ptrdiff_t>(base),
                                   all.end());
    return result;
  };

  // Bounded fan-out: launch up to max_threads components at a time.
  std::vector<ComponentPlan> plans(parts.size());
  for (std::size_t i = 0; i < parts.size();
       i += static_cast<std::size_t>(max_threads)) {
    std::vector<std::future<ComponentPlan>> batch;
    const std::size_t end =
        std::min(parts.size(), i + static_cast<std::size_t>(max_threads));
    for (std::size_t j = i; j < end; ++j) {
      batch.push_back(std::async(std::launch::async, plan_one,
                                 std::cref(parts[j])));
    }
    for (std::size_t j = i; j < end; ++j) plans[j] = batch[j - i].get();
  }

  // Merge: reservations in global start order (streaming guarantee), then
  // the per-component bookkeeping.
  std::vector<CircuitReservation> merged;
  for (const auto& p : plans)
    merged.insert(merged.end(), p.new_reservations.begin(),
                  p.new_reservations.end());
  std::sort(merged.begin(), merged.end(),
            [](const CircuitReservation& a, const CircuitReservation& b) {
              return a.start < b.start;
            });
  planner.ImportReservations(merged);

  Time finish = request.start;
  int reservations_made = 0;
  for (const auto& p : plans) {
    finish = std::max(finish, p.finish);
    for (const auto& [key, t] : p.schedule.flow_finish)
      out.flow_finish[key] = t;
    auto it = p.schedule.reservation_count.find(request.coflow);
    if (it != p.schedule.reservation_count.end())
      reservations_made += it->second;
  }
  out.completion_time[request.coflow] = finish - request.start;
  out.reservation_count[request.coflow] += reservations_made;
  return finish;
}

Time SchedulePerComponent(SunflowPlanner& planner, const PlanRequest& request,
                          SunflowSchedule& out) {
  const auto parts = SplitByPortComponents(request);
  Time finish = request.start;
  // Components touch disjoint ports, so they compose on the PRT without
  // interaction; per-component completion_time entries would overwrite
  // each other, so track the true maximum explicitly.
  for (const PlanRequest& part : parts) {
    finish = std::max(finish, planner.ScheduleOne(part, out));
  }
  out.completion_time[request.coflow] = finish - request.start;
  return finish;
}

}  // namespace sunflow
