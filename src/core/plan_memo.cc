#include "core/plan_memo.h"

#include <bit>

#include "common/assert.h"
#include "core/sunflow.h"

namespace sunflow {

namespace {

// 128-bit rolling mix built from two decorrelated 64-bit splitmix-style
// lanes. Each absorbed word perturbs both lanes with different constants,
// so a single-word difference anywhere in the sequence flips both halves.
void Absorb(PlanMemo::Key& k, std::uint64_t x) {
  k.hi ^= x + 0x9e3779b97f4a7c15ULL + (k.hi << 6) + (k.hi >> 2);
  k.hi *= 0xbf58476d1ce4e5b9ULL;
  k.hi ^= k.hi >> 27;
  k.lo ^= x + 0xc2b2ae3d27d4eb4fULL + (k.lo << 5) + (k.lo >> 3);
  k.lo *= 0x94d049bb133111ebULL;
  k.lo ^= k.lo >> 31;
}

void AbsorbTime(PlanMemo::Key& k, Time t) {
  Absorb(k, std::bit_cast<std::uint64_t>(t));
}

}  // namespace

PlanMemo::Key PlanMemo::BaseKey(
    PortId num_ports, const SunflowConfig& config,
    const std::vector<PlaneSpec>& planes,
    const std::vector<std::map<PortId, PortId>>& established,
    Time established_at) {
  Key k{0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL};
  Absorb(k, static_cast<std::uint64_t>(num_ports));
  AbsorbTime(k, config.bandwidth);
  AbsorbTime(k, config.delta);
  Absorb(k, static_cast<std::uint64_t>(config.order));
  Absorb(k, config.shuffle_seed);
  AbsorbTime(k, config.demand_quantum);
  // The resolved plane list, not the raw FabricSpec: the empty spec and
  // Uniform(1, delta, bandwidth) resolve identically and produce identical
  // plans, so they deliberately share memo entries.
  Absorb(k, planes.size());
  for (const PlaneSpec& p : planes) {
    AbsorbTime(k, p.delta);
    AbsorbTime(k, p.rate);
  }
  bool any_established = false;
  for (const auto& plane_circuits : established) {
    Absorb(k, plane_circuits.size());
    for (const auto& [in, out] : plane_circuits) {
      Absorb(k, static_cast<std::uint64_t>(in) << 32 |
                    static_cast<std::uint32_t>(out));
    }
    if (!plane_circuits.empty()) any_established = true;
  }
  if (any_established) AbsorbTime(k, established_at);
  return k;
}

PlanMemo::Key PlanMemo::Extend(const Key& prefix, const PlanRequest& request) {
  Key k = prefix;
  Absorb(k, static_cast<std::uint64_t>(request.coflow));
  AbsorbTime(k, request.start);
  Absorb(k, request.demand.size());
  for (const FlowDemand& f : request.demand) {
    Absorb(k, static_cast<std::uint64_t>(f.src) << 32 |
                  static_cast<std::uint32_t>(f.dst));
    AbsorbTime(k, f.processing);
  }
  return k;
}

std::vector<std::shared_ptr<const PlanMemo::Delta>> PlanMemo::TakePrefix(
    const Key* keys, std::size_t n) {
  std::vector<std::shared_ptr<const Delta>> out;
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = map_.find(keys[i]);
    if (it == map_.end()) break;
    TouchLocked(it->second);
    out.push_back(it->second.delta);
  }
  return out;
}

void PlanMemo::Insert(const Key& key, Delta delta) {
  auto payload = std::make_shared<const Delta>(std::move(delta));
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Same key ⇒ same plan; just refresh recency.
    TouchLocked(it->second);
    return;
  }
  stored_reservations_ += payload->reservations.size();
  lru_.push_front(key);
  map_.emplace(key, Node{std::move(payload), lru_.begin()});
  EvictLocked();
}

void PlanMemo::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  stored_reservations_ = 0;
}

std::size_t PlanMemo::entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void PlanMemo::TouchLocked(Node& node) {
  lru_.splice(lru_.begin(), lru_, node.lru);
}

void PlanMemo::EvictLocked() {
  while (stored_reservations_ > max_reservations_ && lru_.size() > 1) {
    const Key victim = lru_.back();
    const auto it = map_.find(victim);
    SUNFLOW_CHECK(it != map_.end());
    stored_reservations_ -= it->second.delta->reservations.size();
    map_.erase(it);
    lru_.pop_back();
  }
}

PlanMemo& GlobalPlanMemo() {
  static PlanMemo* memo = new PlanMemo();  // leaked: outlives static dtors
  return *memo;
}

}  // namespace sunflow
