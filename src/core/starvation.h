// Starvation avoidance (§4.2).
//
// Priority scheduling can starve low-priority coflows. Sunflow's guard
// divides time into recurring (T + τ) intervals: during T, InterCoflow runs
// as usual; during τ, one fixed assignment A_k from Φ = {A_1 … A_N} is
// installed (round-robin over intervals) and all coflows with demand on an
// A_k circuit share its bandwidth. Φ covers all N² circuits, so every
// coflow receives non-zero service within every N(T + τ) window.
#pragma once

#include <vector>

#include "common/units.h"

namespace sunflow {

struct StarvationGuardConfig {
  bool enabled = false;
  Time big_interval = 1.0;     ///< T — priority-scheduled span
  Time small_interval = 0.05;  ///< τ — fixed-assignment span (τ > δ required)
};

/// The fixed assignment family Φ: A_k connects in.i -> out.((i + k) mod N).
/// The N shifts cover every (i, j) pair exactly once.
class PhiAssignments {
 public:
  explicit PhiAssignments(PortId num_ports);

  PortId num_ports() const { return num_ports_; }

  /// Output port that input `i` connects to in assignment A_k (k in [0,N)).
  PortId OutputOf(int k, PortId i) const;

  /// The whole assignment A_k as (in -> out) pairs.
  std::vector<std::pair<PortId, PortId>> Assignment(int k) const;

 private:
  PortId num_ports_;
};

/// Interval bookkeeping for the (T+τ) cadence starting at time 0.
class StarvationGuardTimeline {
 public:
  StarvationGuardTimeline(const StarvationGuardConfig& config,
                          PortId num_ports);

  /// Is `t` inside a τ (fixed-assignment) interval?
  bool InTauInterval(Time t) const;

  /// Index k of the Φ assignment active for the τ-interval containing or
  /// next-following `t` (round-robin, wraps modulo N).
  int AssignmentIndexAt(Time t) const;

  /// Start of the next interval boundary strictly after t (either a τ start
  /// or a T start).
  Time NextBoundaryAfter(Time t) const;

  /// Bound on the service gap: any coflow gets service within N(T+τ).
  Time MaxServiceGap() const;

 private:
  Time period_;  // T + τ
  StarvationGuardConfig config_;
  PortId num_ports_;
};

}  // namespace sunflow
