// Circuit reservation types shared by the Sunflow scheduler and executors.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace sunflow {

/// One scheduled circuit [in, out] occupying both ports during
/// [start, end). The first `setup` seconds are the reconfiguration delay δ
/// (no data moves); the remainder transmits at the plane's link rate. A
/// reservation with setup == 0 continues an already-established circuit.
/// `plane` is the switch plane (core) carrying the circuit; 0 on the
/// classic single-plane fabric (core/fabric.h).
struct CircuitReservation {
  PortId in = 0;
  PortId out = 0;
  Time start = 0;
  Time end = 0;
  Time setup = 0;
  CoflowId coflow = -1;
  PlaneId plane = 0;

  Time length() const { return end - start; }
  Time transmit_begin() const { return start + setup; }
  Time transmit_length() const { return end - start - setup; }

  std::string DebugString() const;
};

/// Identifies a subflow by its coflow and port pair.
struct FlowKey {
  CoflowId coflow = -1;
  PortId src = 0;
  PortId dst = 0;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

}  // namespace sunflow
