// Schedule serialization: dump/load reservations as CSV.
//
// A deployment's controller (§6) consumes the reservation stream; this
// format is the integration surface — also handy for diffing schedules in
// tests and for plotting timelines outside the library.
//
// Format (header line, then one row per reservation, times in seconds):
//   coflow,in,out,start,end,setup
#pragma once

#include <iosfwd>
#include <vector>

#include "core/reservation.h"

namespace sunflow {

void WriteReservationsCsv(std::ostream& out,
                          const std::vector<CircuitReservation>& reservations);

/// Parses the CSV written above. Throws std::runtime_error on malformed
/// input (with the line number).
std::vector<CircuitReservation> ReadReservationsCsv(std::istream& in);

}  // namespace sunflow
