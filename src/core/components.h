// Port-connected-component decomposition of a demand set (§6's
// parallelization note).
//
// §6 suggests reducing scheduler latency "by computing circuit schedules
// on partitioned demands in parallel" at some cost in optimality. One
// partitioning is *free*: flows whose port sets are disjoint can never
// constrain each other on the PRT, so the connected components of the
// coflow's bipartite port graph can be planned independently (and in
// parallel) with exactly the same resulting schedule. The same argument
// lifts to whole *request sets*: coflows whose port footprints are
// disjoint form groups that an InterCoflow replan can plan concurrently
// (ScheduleRequestsParallel below) with a deterministic merge.
#pragma once

#include <vector>

#include "core/sunflow.h"

namespace sunflow::runtime {
class ThreadPool;
}  // namespace sunflow::runtime

namespace sunflow {

/// Splits the request's demand into connected components of the bipartite
/// (input-port, output-port) graph. The union of the returned requests is
/// the input; components share no ports.
std::vector<PlanRequest> SplitByPortComponents(const PlanRequest& request);

/// Plans each component on `planner` (sequentially; components are
/// independent so any order — or a thread pool — yields the same PRT).
/// Equivalent to planner.ScheduleOne(request, out) when the PRT has no
/// prior reservations touching the request's ports.
Time SchedulePerComponent(SunflowPlanner& planner, const PlanRequest& request,
                          SunflowSchedule& out);

/// The actually-parallel version (§6): each component is planned on
/// `pool` (runtime/thread_pool.h) against a *copy* of the planner's
/// current state (so existing higher-priority reservations constrain
/// every component identically), then the new reservations merge back in
/// deterministic (start, component id, creation index) order. Components
/// never share ports, so the merge cannot conflict and the resulting PRT
/// is identical to sequential planning regardless of pool size. A null
/// pool (or size <= 1) plans serially — the reference schedule.
Time ScheduleComponentsParallel(SunflowPlanner& planner,
                                const PlanRequest& request,
                                SunflowSchedule& out,
                                runtime::ThreadPool* pool = nullptr);

/// Intra-replan parallel InterCoflow: partitions `requests` (already in
/// priority order) into port-disjoint groups via union-find over their
/// joint port footprints and plans each group concurrently on `pool`,
/// then merges deterministically — group ids follow the smallest request
/// index they contain, and the merged reservation stream replays the
/// serial creation order (per request in global priority order, each
/// request's reservations contiguous). Output-equivalent to
/// planner.ScheduleAll(requests); falls back to exactly that call when
/// the pool is null/serial, the PRT is non-empty, a sink/callback would
/// observe the stream mid-plan, requests share a coflow id, or the
/// partition is a single group. The planner's PRT holds the merged
/// reservations on return, as after ScheduleAll.
SunflowSchedule ScheduleRequestsParallel(
    SunflowPlanner& planner, const std::vector<const PlanRequest*>& requests,
    runtime::ThreadPool* pool);

}  // namespace sunflow
