// Port-connected-component decomposition of a demand set (§6's
// parallelization note).
//
// §6 suggests reducing scheduler latency "by computing circuit schedules
// on partitioned demands in parallel" at some cost in optimality. One
// partitioning is *free*: flows whose port sets are disjoint can never
// constrain each other on the PRT, so the connected components of the
// coflow's bipartite port graph can be planned independently (and in
// parallel) with exactly the same resulting schedule.
#pragma once

#include <vector>

#include "core/sunflow.h"

namespace sunflow {

/// Splits the request's demand into connected components of the bipartite
/// (input-port, output-port) graph. The union of the returned requests is
/// the input; components share no ports.
std::vector<PlanRequest> SplitByPortComponents(const PlanRequest& request);

/// Plans each component on `planner` (sequentially; components are
/// independent so any order — or a thread pool — yields the same PRT).
/// Equivalent to planner.ScheduleOne(request, out) when the PRT has no
/// prior reservations touching the request's ports.
Time SchedulePerComponent(SunflowPlanner& planner, const PlanRequest& request,
                          SunflowSchedule& out);

/// The actually-parallel version (§6): each component is planned with
/// std::async on a *copy* of the planner's current state (so existing
/// higher-priority reservations constrain every component identically),
/// then the new reservations merge back in start-time order. Components
/// never share ports, so the merge cannot conflict and the resulting PRT
/// is identical to sequential planning. `max_threads` caps concurrency.
Time ScheduleComponentsParallel(SunflowPlanner& planner,
                                const PlanRequest& request,
                                SunflowSchedule& out, int max_threads = 4);

}  // namespace sunflow
