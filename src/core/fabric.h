// Fabric model: K parallel optical switch planes (K-core OCS).
//
// Modern optical fabrics ship several switch planes ("cores") between the
// same port pairs, each with its own reconfiguration delay δ and link
// rate. A FabricSpec describes those planes; the planner assigns every
// circuit to one plane (earliest-feasible-plane greedy, core/sunflow.cc)
// and the reservation table keeps one timeline per (side, plane, port).
//
// K=1 equivalence contract: an empty FabricSpec means the classic
// single-plane fabric, where plane 0 inherits (delta, bandwidth) from
// SunflowConfig. FabricSpec::Uniform(1, delta, bandwidth) must produce
// bit-identical schedules to the empty spec — plane-0 arithmetic uses the
// IEEE identities x * 1.0 == x and x / 1.0 == x, so no float path changes
// (docs/engine.md "Fabric model").
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace sunflow {

/// One optical switch plane: its reconfiguration delay and link rate.
struct PlaneSpec {
  Time delta = 0;        ///< per-circuit setup cost δ on this plane
  Bandwidth rate = 0;    ///< bytes/second a circuit on this plane carries

  friend bool operator==(const PlaneSpec&, const PlaneSpec&) = default;
};

/// An ordered list of switch planes. Plane ids are indices into `planes`.
struct FabricSpec {
  std::vector<PlaneSpec> planes;

  /// K identical planes. Uniform(1, delta, rate) is the explicit spelling
  /// of the default single-plane fabric.
  static FabricSpec Uniform(int k, Time delta, Bandwidth rate) {
    FabricSpec f;
    f.planes.assign(static_cast<std::size_t>(k), PlaneSpec{delta, rate});
    return f;
  }

  /// Empty = classic single-plane fabric (plane 0 inherits SunflowConfig's
  /// delta and bandwidth).
  bool is_default() const { return planes.empty(); }

  int num_planes() const {
    return planes.empty() ? 1 : static_cast<int>(planes.size());
  }

  friend bool operator==(const FabricSpec&, const FabricSpec&) = default;
};

}  // namespace sunflow
