#include "core/policy.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/assert.h"

namespace sunflow {

namespace {

using KeyFn = double (*)(const CoflowView&);

std::vector<std::size_t> SortBy(
    const std::vector<CoflowView>& views,
    const std::function<bool(const CoflowView&, const CoflowView&)>& less) {
  std::vector<std::size_t> order(views.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return less(views[a], views[b]);
                   });
  return order;
}

bool TieBreak(const CoflowView& a, const CoflowView& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.id < b.id;
}

class ShortestFirstPolicy : public PriorityPolicy {
 public:
  std::string name() const override { return "shortest-coflow-first"; }
  std::vector<std::size_t> Order(
      const std::vector<CoflowView>& views) const override {
    return SortBy(views, [](const CoflowView& a, const CoflowView& b) {
      if (a.remaining_tpl != b.remaining_tpl)
        return a.remaining_tpl < b.remaining_tpl;
      return TieBreak(a, b);
    });
  }
};

class StaticShortestFirstPolicy : public PriorityPolicy {
 public:
  std::string name() const override { return "static-shortest-first"; }
  std::vector<std::size_t> Order(
      const std::vector<CoflowView>& views) const override {
    return SortBy(views, [](const CoflowView& a, const CoflowView& b) {
      if (a.static_tpl != b.static_tpl) return a.static_tpl < b.static_tpl;
      return TieBreak(a, b);
    });
  }
};

class FifoPolicy : public PriorityPolicy {
 public:
  std::string name() const override { return "fifo"; }
  std::vector<std::size_t> Order(
      const std::vector<CoflowView>& views) const override {
    return SortBy(views, TieBreak);
  }
};

class ClassPolicy : public PriorityPolicy {
 public:
  ClassPolicy(std::map<CoflowId, int> classes, int default_class)
      : classes_(std::move(classes)), default_class_(default_class) {}

  std::string name() const override { return "class-based"; }

  std::vector<std::size_t> Order(
      const std::vector<CoflowView>& views) const override {
    return SortBy(views, [this](const CoflowView& a, const CoflowView& b) {
      const int ca = ClassOf(a.id);
      const int cb = ClassOf(b.id);
      if (ca != cb) return ca < cb;
      if (a.remaining_tpl != b.remaining_tpl)
        return a.remaining_tpl < b.remaining_tpl;
      return TieBreak(a, b);
    });
  }

 private:
  int ClassOf(CoflowId id) const {
    auto it = classes_.find(id);
    return it == classes_.end() ? default_class_ : it->second;
  }

  std::map<CoflowId, int> classes_;
  int default_class_;
};

class LeastAttainedServicePolicy : public PriorityPolicy {
 public:
  LeastAttainedServicePolicy(Bytes first_queue_limit, double queue_spacing)
      : first_limit_(first_queue_limit), spacing_(queue_spacing) {
    SUNFLOW_CHECK(first_queue_limit > 0 && queue_spacing > 1);
  }

  std::string name() const override { return "least-attained-service"; }

  std::vector<std::size_t> Order(
      const std::vector<CoflowView>& views) const override {
    return SortBy(views, [this](const CoflowView& a, const CoflowView& b) {
      const int qa = QueueOf(a.attained_bytes);
      const int qb = QueueOf(b.attained_bytes);
      if (qa != qb) return qa < qb;
      return TieBreak(a, b);  // FIFO within a queue, as in Aalo
    });
  }

 private:
  int QueueOf(Bytes attained) const {
    int q = 0;
    Bytes limit = first_limit_;
    while (attained >= limit && q < 63) {
      limit *= spacing_;
      ++q;
    }
    return q;
  }

  Bytes first_limit_;
  double spacing_;
};

class WeightedShortestFirstPolicy : public PriorityPolicy {
 public:
  explicit WeightedShortestFirstPolicy(std::map<CoflowId, double> weights)
      : weights_(std::move(weights)) {
    for (const auto& [id, w] : weights_) SUNFLOW_CHECK(w > 0);
  }

  std::string name() const override { return "weighted-shortest-first"; }

  std::vector<std::size_t> Order(
      const std::vector<CoflowView>& views) const override {
    return SortBy(views, [this](const CoflowView& a, const CoflowView& b) {
      const double ka = a.remaining_tpl / WeightOf(a.id);
      const double kb = b.remaining_tpl / WeightOf(b.id);
      if (ka != kb) return ka < kb;
      return TieBreak(a, b);
    });
  }

 private:
  double WeightOf(CoflowId id) const {
    auto it = weights_.find(id);
    return it == weights_.end() ? 1.0 : it->second;
  }

  std::map<CoflowId, double> weights_;
};

}  // namespace

std::unique_ptr<PriorityPolicy> MakeLeastAttainedServicePolicy(
    Bytes first_queue_limit, double queue_spacing) {
  return std::make_unique<LeastAttainedServicePolicy>(first_queue_limit,
                                                      queue_spacing);
}

std::unique_ptr<PriorityPolicy> MakeWeightedShortestFirstPolicy(
    std::map<CoflowId, double> weight_of_coflow) {
  return std::make_unique<WeightedShortestFirstPolicy>(
      std::move(weight_of_coflow));
}

std::unique_ptr<PriorityPolicy> MakeShortestFirstPolicy() {
  return std::make_unique<ShortestFirstPolicy>();
}

std::unique_ptr<PriorityPolicy> MakeStaticShortestFirstPolicy() {
  return std::make_unique<StaticShortestFirstPolicy>();
}

std::unique_ptr<PriorityPolicy> MakeFifoPolicy() {
  return std::make_unique<FifoPolicy>();
}

std::unique_ptr<PriorityPolicy> MakeClassPolicy(
    std::map<CoflowId, int> class_of_coflow, int default_class) {
  return std::make_unique<ClassPolicy>(std::move(class_of_coflow),
                                       default_class);
}

Coflow CombineCoflows(const std::vector<const Coflow*>& coflows,
                      CoflowId combined_id) {
  SUNFLOW_CHECK(!coflows.empty());
  std::map<std::pair<PortId, PortId>, Bytes> demand;
  Time arrival = kTimeInf;
  for (const Coflow* c : coflows) {
    SUNFLOW_CHECK(c != nullptr);
    arrival = std::min(arrival, c->arrival());
    for (const Flow& f : c->flows()) demand[{f.src, f.dst}] += f.bytes;
  }
  std::vector<Flow> flows;
  flows.reserve(demand.size());
  for (const auto& [pair, bytes] : demand)
    flows.push_back({pair.first, pair.second, bytes});
  return Coflow(combined_id, arrival, std::move(flows));
}

CombinedTrace CombineTraceByClass(const Trace& trace,
                                  const std::map<CoflowId, int>& class_of) {
  CombinedTrace out;
  out.trace.num_ports = trace.num_ports;
  std::map<int, std::vector<const Coflow*>> groups;
  for (const Coflow& c : trace.coflows) {
    auto it = class_of.find(c.id());
    if (it == class_of.end()) {
      out.trace.coflows.push_back(c);
    } else {
      groups[it->second].push_back(&c);
    }
  }
  for (const auto& [cls, members] : groups) {
    const CoflowId id = kCombinedIdBase + cls;
    out.trace.coflows.push_back(CombineCoflows(members, id));
    auto& ids = out.members[id];
    for (const Coflow* c : members) ids.push_back(c->id());
  }
  std::sort(out.trace.coflows.begin(), out.trace.coflows.end(),
            [](const Coflow& a, const Coflow& b) {
              return a.arrival() < b.arrival() ||
                     (a.arrival() == b.arrival() && a.id() < b.id());
            });
  out.trace.Validate();
  return out;
}

}  // namespace sunflow
