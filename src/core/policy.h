// Inter-Coflow priority policies (§4.2).
//
// Sunflow's inter-Coflow framework only asks the operator to translate a
// high-level resource-management policy into a priority ordering of the
// active coflows; the planner then serves them in that order so that more
// prioritized coflows are never blocked by less prioritized ones.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/sunflow.h"

namespace sunflow {

/// What a policy sees about each active coflow at a scheduling instant.
struct CoflowView {
  CoflowId id = -1;
  Time arrival = 0;
  /// Remaining packet-switched lower bound TpL (busiest-port time) of the
  /// *unfinished* demand.
  Time remaining_tpl = 0;
  /// TpL of the original (full) demand.
  Time static_tpl = 0;
  Bytes remaining_bytes = 0;
  std::size_t remaining_flows = 0;
  /// Bytes already delivered (attained service). Unlike the fields above
  /// it requires no knowledge of future demand, so non-clairvoyant
  /// policies may use it even when sizes are unknown.
  Bytes attained_bytes = 0;
};

/// Orders active coflows, highest priority first.
class PriorityPolicy {
 public:
  virtual ~PriorityPolicy() = default;
  virtual std::string name() const = 0;

  /// Returns indices into `views`, highest priority first. Implementations
  /// must return a permutation of [0, views.size()).
  virtual std::vector<std::size_t> Order(
      const std::vector<CoflowView>& views) const = 0;
};

/// Shortest-Coflow-first (§4.2, §5.2): order by remaining TpL — the circuit
/// analogue of Varys' SEBF. Ties break by arrival then id.
std::unique_ptr<PriorityPolicy> MakeShortestFirstPolicy();

/// Shortest-Coflow-first on the *static* TpL ("the Coflows may be ordered
/// by their TpL"), insensitive to progress.
std::unique_ptr<PriorityPolicy> MakeStaticShortestFirstPolicy();

/// First-come-first-served by arrival time.
std::unique_ptr<PriorityPolicy> MakeFifoPolicy();

/// Class-based priorities (privileged vs regular users, stage ordering …):
/// lower class value = higher priority; within a class, shortest-first.
/// Coflows not in the map get `default_class`.
std::unique_ptr<PriorityPolicy> MakeClassPolicy(
    std::map<CoflowId, int> class_of_coflow, int default_class = 0);

/// Non-clairvoyant least-attained-service: orders by bytes already sent
/// (fewest first), with exponentially spaced queues so tiny progress
/// differences do not reorder coflows (the D-CLAS idea of Aalo applied to
/// circuit scheduling). Uses no size information at all — the policy to
/// reach for when Coflow sizes are unknown (cf. §3.2's discussion of
/// Aalo's traffic assumptions).
std::unique_ptr<PriorityPolicy> MakeLeastAttainedServicePolicy(
    Bytes first_queue_limit = 10e6, double queue_spacing = 10.0);

/// Weighted shortest-first: orders by remaining TpL / weight (higher
/// weight = more important), the circuit-side analogue of minimizing total
/// *weighted* CCT (the objective of the paper's reference [31], Qiu, Stein
/// & Zhong). Coflows not in the map get weight 1.
std::unique_ptr<PriorityPolicy> MakeWeightedShortestFirstPolicy(
    std::map<CoflowId, double> weight_of_coflow);

/// Combines several coflows of equal priority into one logical coflow so
/// each constituent gets an equal chance of service (§4.2; may increase the
/// average CCT of those involved). Flows on the same (src,dst) pair are
/// merged by summing bytes. The combined coflow takes `combined_id` and the
/// earliest arrival.
Coflow CombineCoflows(const std::vector<const Coflow*>& coflows,
                      CoflowId combined_id);

/// Rewrites a trace so that coflows mapped to the same class are combined
/// into one logical coflow (the §4.2 "equal chance of service" option).
/// Combined coflows get id = kCombinedIdBase + class and the earliest
/// arrival of their constituents; unmapped coflows pass through untouched.
/// Returns the rewritten trace plus, for CCT accounting, the constituent
/// ids of each combined coflow.
inline constexpr CoflowId kCombinedIdBase = 1'000'000'000;

struct CombinedTrace {
  Trace trace;
  std::map<CoflowId, std::vector<CoflowId>> members;  ///< combined -> parts
};

CombinedTrace CombineTraceByClass(const Trace& trace,
                                  const std::map<CoflowId, int>& class_of);

}  // namespace sunflow
