// Sunflow — the paper's scheduling algorithm (Algorithm 1).
//
// Intra-Coflow: non-preemptive circuit reservations on a Port Reservation
// Table; a circuit with non-zero demand is set up once and stays active
// until the demand is finished (Lemma 1: CCT ≤ 2·TcL for any δ, any coflow,
// any reservation ordering). Inter-Coflow: IntraCoflow applied to coflows
// in priority order on a shared PRT, so higher-priority coflows are never
// blocked by lower-priority ones.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/units.h"
#include "core/fabric.h"
#include "core/prt.h"
#include "core/reservation.h"
#include "trace/coflow.h"

namespace sunflow::obs {
class TraceSink;
}  // namespace sunflow::obs

namespace sunflow {

/// "Shuffle P if desired" (Algorithm 1 line 3): the order in which demand
/// entries are considered. Lemma 1 holds for every ordering; §5.3.1 measures
/// the (small) performance differences.
enum class ReservationOrder {
  kOrderedPort,       ///< sort by (src, dst) — the paper's default
  kRandom,            ///< uniformly shuffled
  kSortedDemandDesc,  ///< biggest demand first
  kSortedDemandAsc,   ///< smallest demand first
};

const char* ToString(ReservationOrder order);

struct SunflowConfig {
  Bandwidth bandwidth = Gbps(1);
  Time delta = Millis(10);  ///< circuit reconfiguration delay δ
  ReservationOrder order = ReservationOrder::kOrderedPort;
  std::uint64_t shuffle_seed = 1;  ///< used only for kRandom
  /// §6's approximation scheme: processing times are rounded *up* to a
  /// multiple of this quantum before planning, pruning circuit-release
  /// events (more flows release simultaneously) at the cost of slightly
  /// longer reservations. 0 disables. Lemma 1 holds against the quantized
  /// demand's bounds (≤ true TcL + quantum·|C|); note the effect on a
  /// specific coflow's CCT is not monotone — greedy scheduling anomalies
  /// can shift it either way.
  Time demand_quantum = 0;
  /// Reuse memoized plans across identical replans (core/plan_memo.h):
  /// when a ScheduleAll call's priority-ordered request prefix hashes
  /// equal to one already planned under the same config and established
  /// circuits, the stored reservations are spliced verbatim instead of
  /// re-derived. Output is byte-identical either way; disable to force
  /// every replan through the planner (e.g. when benchmarking it).
  bool plan_reuse = true;
  /// The switch planes the planner may assign circuits to (core/fabric.h).
  /// Empty (the default) means one plane inheriting (delta, bandwidth)
  /// from this config — the classic single-switch fabric, byte-identical
  /// to FabricSpec::Uniform(1, delta, bandwidth).
  FabricSpec fabric;
};

/// A circuit (in → out) that is already established (set up and
/// transmitting) at the instant planning starts; reservations for this pair
/// beginning exactly at plan start need no setup δ. Used by the replay
/// engine to carry circuits across replans.
using EstablishedCircuits = std::map<PortId, PortId>;

/// Established circuits per plane, indexed by PlaneId. The single-plane
/// fabric uses a one-element vector (everything on plane 0).
using FabricEstablished = std::vector<EstablishedCircuits>;

/// Result of planning one or more coflows.
struct SunflowSchedule {
  /// Planned CCT per coflow id: max flow finish − coflow start time.
  std::map<CoflowId, Time> completion_time;
  /// Absolute finish time of each flow.
  std::map<FlowKey, Time> flow_finish;
  /// Number of reservations (== circuit setups when no carry-over) per
  /// coflow — Fig 5's switching count.
  std::map<CoflowId, int> reservation_count;

  /// All reservations, in the order they were created.
  std::vector<CircuitReservation> reservations;

  /// Plan-memo accounting for this call: how many of the requests were
  /// answered by splicing a memoized prefix (`memo_hits`) out of how many
  /// the memo was consulted for (`memo_lookups`, == the request count on
  /// the memo path, 0 when the memo was ineligible). Mirrors the
  /// plan.cache_hits/misses counters, but per-plan so the timeline
  /// sampler can chart the hit rate over sim time.
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_lookups = 0;

  /// Independent planning groups this call handed to the thread pool
  /// (ScheduleRequestsParallel) — the pool occupancy the replan offered.
  /// 0 on the serial path, so like the memo fields it is thread-count-
  /// dependent telemetry, not part of the deterministic plan.
  std::uint64_t parallel_groups = 0;

  Time MaxCompletion() const;
};

/// Remaining demand of one flow, in processing-time units.
struct FlowDemand {
  PortId src = 0;
  PortId dst = 0;
  Time processing = 0;  ///< p_ij = remaining bytes / B
};

/// A unit of work for the planner: a coflow id, its start time (arrival or
/// replan instant), and its remaining per-flow processing times.
struct PlanRequest {
  CoflowId coflow = -1;
  Time start = 0;
  std::vector<FlowDemand> demand;

  /// Builds a request from a whole coflow (all bytes remaining).
  static PlanRequest FromCoflow(const Coflow& coflow, Bandwidth bandwidth,
                                std::optional<Time> start = std::nullopt);

  // Memoized Ordered() view (quantized + permuted demand), filled lazily
  // by the planner and keyed by a hash of (config, coflow, demand), so a
  // coflow replanned with unchanged demand skips the per-replan copy and
  // sort. The key covers the demand bytes, so mutating `demand` in place
  // invalidates the cache automatically. The cache is per-object shared
  // state: do not hand one PlanRequest to concurrent planners.
  mutable std::vector<FlowDemand> ordered_cache;
  mutable std::uint64_t ordered_cache_key = 0;
};

class SunflowPlanner {
 public:
  SunflowPlanner(PortId num_ports, SunflowConfig config);

  /// Algorithm 1, IntraCoflow: reserves circuits for one request on the
  /// shared PRT, never disturbing existing reservations. Returns the
  /// absolute finish time of the request (kTimeInf never — always finite).
  Time ScheduleOne(const PlanRequest& request, SunflowSchedule& out);

  /// Reference implementation of ScheduleOne: the paper-literal loop that
  /// rescans every pending flow at every release instant. ScheduleOne
  /// produces byte-identical output via an event-indexed wakeup queue
  /// (see docs/engine.md, "Planner complexity"); this path is retained as
  /// the oracle the differential tests compare against, and as the
  /// fallback for established circuits declared after the request start
  /// (where a mid-plan instant could zero a setup).
  Time ScheduleOneRescan(const PlanRequest& request, SunflowSchedule& out);

  /// Algorithm 1, InterCoflow: schedules requests in the given order
  /// (callers sort by priority policy first). Earlier requests are planned
  /// first and therefore never blocked by later ones.
  SunflowSchedule ScheduleAll(const std::vector<PlanRequest>& requests);

  /// As above, via pointers: lets a caller keep long-lived PlanRequest
  /// objects (with warm Ordered() caches) and hand them to a fresh planner
  /// on every replan without copying demand vectors.
  SunflowSchedule ScheduleAll(const std::vector<const PlanRequest*>& requests);

  /// Declares circuits already up at plan start (replay carry-over).
  /// SetEstablishedCircuits places everything on plane 0; the ByPlane
  /// variant declares per-plane carry-over and must pass exactly
  /// num_planes() maps. (Distinct names, not overloads: a braced list of
  /// pairs would be ambiguous between the map and the vector of maps.)
  void SetEstablishedCircuits(EstablishedCircuits circuits, Time at);
  void SetEstablishedCircuitsByPlane(FabricEstablished by_plane, Time at);

  /// §6 latency hiding: "Sunflow may schedule each computed circuit
  /// individually, thus hiding the scheduling latency by overlapping
  /// circuit setup with data transmissions." The callback fires the moment
  /// each reservation is decided; within a single ScheduleOne call the
  /// emissions are non-decreasing in start time, so a controller can
  /// dispatch setup commands while later circuits are still being planned.
  using ReservationCallback = std::function<void(const CircuitReservation&)>;
  void SetReservationCallback(ReservationCallback callback);

  /// Merges reservations planned elsewhere (e.g. per-component planners on
  /// copies of this planner's state — see core/components.h) into this
  /// PRT. Every reservation is re-validated against the port constraints;
  /// the callback fires for each. Call with reservations sorted by start
  /// time to preserve the streaming guarantee.
  void ImportReservations(const std::vector<CircuitReservation>& reservations);

  /// Attaches a structured event tracer (obs/trace_sink.h). The planner
  /// emits kCircuitSetup / kCircuitTeardown for every reservation and
  /// kFlowFinished when a flow's demand drains; null (the default)
  /// disables tracing at the cost of one branch per reservation.
  void SetTraceSink(obs::TraceSink* sink) { sink_ = sink; }
  obs::TraceSink* trace_sink() const { return sink_; }

  const PortReservationTable& prt() const { return prt_; }
  const SunflowConfig& config() const { return config_; }

  /// The effective plane list: config().fabric.planes, or the implicit
  /// single plane {delta, bandwidth} when the fabric spec is empty.
  const std::vector<PlaneSpec>& planes() const { return planes_; }
  int num_planes() const { return static_cast<int>(planes_.size()); }

  // Introspection for the parallel group planner (core/components.cc):
  // worker planners must replicate the established-circuit state, and the
  // parallel path is only output-equivalent when no callback observes the
  // per-reservation stream mid-plan.
  const EstablishedCircuits& established_circuits() const {
    return established_[0];
  }
  const FabricEstablished& established_by_plane() const {
    return established_;
  }
  /// True iff any plane has established circuits.
  bool has_established() const;
  Time established_at() const { return established_at_; }
  bool has_reservation_callback() const {
    return static_cast<bool>(callback_);
  }

 private:
  const std::vector<FlowDemand>& Ordered(const PlanRequest& request) const;
  /// Maps the earliest pending wakeup onto the exact instant the legacy
  /// release-chain walk would visit next (see docs/engine.md).
  Time NextWakeInstant(Time t, Time wake, CoflowId coflow) const;

  PortReservationTable prt_;
  SunflowConfig config_;
  std::vector<PlaneSpec> planes_;
  /// Canonical-demand scale per plane: bandwidth / planes_[p].rate. A
  /// flow's remaining demand is kept in processing units at the config
  /// bandwidth; plane p transmits it in remaining * plane_scale_[p]
  /// seconds. Exactly 1.0 on the default fabric (x*1.0 == x bitwise).
  std::vector<double> plane_scale_;
  FabricEstablished established_;
  Time established_at_ = -1;
  ReservationCallback callback_;
  obs::TraceSink* sink_ = nullptr;
};

/// Convenience wrapper: schedules a single coflow from an empty PRT and
/// returns its schedule (the paper's intra-Coflow evaluation mode).
/// `sink` optionally receives the planner's trace events.
SunflowSchedule ScheduleSingleCoflow(const Coflow& coflow, PortId num_ports,
                                     const SunflowConfig& config,
                                     obs::TraceSink* sink = nullptr);

}  // namespace sunflow
