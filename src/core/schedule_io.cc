#include "core/schedule_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sunflow {

namespace {
constexpr char kHeader[] = "coflow,in,out,start,end,setup";

[[noreturn]] void Fail(int line_no, const std::string& why) {
  throw std::runtime_error("reservation CSV parse error at line " +
                           std::to_string(line_no) + ": " + why);
}
}  // namespace

void WriteReservationsCsv(
    std::ostream& out, const std::vector<CircuitReservation>& reservations) {
  out << kHeader << "\n";
  out.precision(17);  // round-trip exact doubles
  for (const auto& r : reservations) {
    out << r.coflow << "," << r.in << "," << r.out << "," << r.start << ","
        << r.end << "," << r.setup << "\n";
  }
}

std::vector<CircuitReservation> ReadReservationsCsv(std::istream& in) {
  std::string line;
  int line_no = 0;
  if (!std::getline(in, line)) Fail(1, "empty input");
  ++line_no;
  if (line != kHeader) Fail(1, "bad header '" + line + "'");

  std::vector<CircuitReservation> out;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    CircuitReservation r;
    char comma = 0;
    long long coflow = 0, in_port = 0, out_port = 0;
    if (!(ls >> coflow >> comma) || comma != ',') Fail(line_no, "coflow");
    if (!(ls >> in_port >> comma) || comma != ',') Fail(line_no, "in");
    if (!(ls >> out_port >> comma) || comma != ',') Fail(line_no, "out");
    if (!(ls >> r.start >> comma) || comma != ',') Fail(line_no, "start");
    if (!(ls >> r.end >> comma) || comma != ',') Fail(line_no, "end");
    if (!(ls >> r.setup)) Fail(line_no, "setup");
    r.coflow = coflow;
    r.in = static_cast<PortId>(in_port);
    r.out = static_cast<PortId>(out_port);
    if (r.end <= r.start) Fail(line_no, "end <= start");
    if (r.setup < 0 || r.setup > r.end - r.start)
      Fail(line_no, "setup out of range");
    out.push_back(r);
  }
  return out;
}

}  // namespace sunflow
