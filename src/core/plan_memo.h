// Cross-replan plan memoization.
//
// The inter-coflow replay replans the whole active set on every arrival
// and completion, always from a fresh PRT. Two replans whose
// priority-ordered request prefixes are identical — same planner config,
// same established circuits, same (coflow, start, remaining demand)
// sequence — produce identical reservation prefixes, because Algorithm 1
// is deterministic and each request sees only the PRT state left by the
// requests before it. The memo exploits that: every ScheduleAll keyed a
// rolling hash over its request sequence, and each per-request *delta*
// (the reservations, flow finishes, completion time and reservation count
// that request contributed) is stored under the hash of the prefix ending
// at it. A later replan with an equal prefix splices the stored deltas
// verbatim — byte-identical to re-planning, since the stored doubles are
// the planner's own output — and re-runs the planner only for the suffix.
//
// Invalidation is purely structural: an arrival, completion, priority
// reorder, changed remaining demand, different replan instant or changed
// established-circuit set alters the rolling hash at the point of
// divergence, so everything from there on misses. Entries are evicted LRU
// by total stored reservations. The memo is process-global and
// mutex-guarded; concurrent replays (e.g. the parallel sweep engine)
// share it safely because a hit and a miss produce the same bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "core/fabric.h"
#include "core/reservation.h"

namespace sunflow {

struct PlanRequest;
struct SunflowConfig;

class PlanMemo {
 public:
  /// 128-bit rolling key: wide enough that accidental collisions are out
  /// of practical reach (a collision would splice a wrong plan).
  struct Key {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    bool operator==(const Key&) const = default;
  };

  /// Everything one request contributed to its ScheduleAll call, in the
  /// order it was produced.
  struct Delta {
    CoflowId coflow = -1;
    Time completion_time = 0;  ///< finish - request.start
    int reservation_count = 0;
    std::vector<CircuitReservation> reservations;
    std::vector<std::pair<FlowKey, Time>> flow_finish;
  };

  /// Hash of everything that shapes a plan besides the requests: port
  /// count, planner config, the resolved fabric plane list (per-plane
  /// δ/rate — two fabrics with the same config bandwidth/delta but
  /// different planes must never share plans) and the per-plane
  /// established-circuit carry-over.
  static Key BaseKey(PortId num_ports, const SunflowConfig& config,
                     const std::vector<PlaneSpec>& planes,
                     const std::vector<std::map<PortId, PortId>>& established,
                     Time established_at);

  /// Extends a prefix key by one request (coflow, start, demand bytes).
  static Key Extend(const Key& prefix, const PlanRequest& request);

  /// Returns the stored deltas for the longest memoized prefix of
  /// keys[0..n) (keys[i] = hash of the prefix ending at request i); the
  /// result holds deltas for requests 0 .. result.size()-1. Takes a raw
  /// span so callers can hand in arena-backed key buffers. Shared
  /// ownership: the payloads stay valid (and immutable) even if the
  /// entries are evicted concurrently.
  std::vector<std::shared_ptr<const Delta>> TakePrefix(const Key* keys,
                                                       std::size_t n);

  /// Stores the delta for the prefix ending at `key`. Overwrites an
  /// existing entry (same key ⇒ same content by construction).
  void Insert(const Key& key, Delta delta);

  /// Drops every entry (tests; also frees memory deterministically).
  void Clear();

  std::size_t entries() const;

 private:
  struct KeyHasher {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct Node {
    std::shared_ptr<const Delta> delta;
    std::list<Key>::iterator lru;
  };

  void TouchLocked(Node& node);
  void EvictLocked();

  mutable std::mutex mu_;
  std::unordered_map<Key, Node, KeyHasher> map_;
  std::list<Key> lru_;  ///< front = most recently used
  std::size_t stored_reservations_ = 0;
  /// Eviction cap on the total reservations held (~48 bytes each, so the
  /// default bounds the memo near 100 MB even on pathological workloads).
  std::size_t max_reservations_ = std::size_t{1} << 21;
};

/// The process-global memo used by SunflowPlanner::ScheduleAll when
/// SunflowConfig::plan_reuse is on.
PlanMemo& GlobalPlanMemo();

}  // namespace sunflow
