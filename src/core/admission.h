// Deadline-aware admission control on top of the inter-Coflow framework.
//
// §1 faults classic circuit schedulers for lacking "the ability to …
// meet individual Coflow's performance requirement". Sunflow's
// non-preemptive PRT makes admission control natural (the same mechanism
// Varys uses on the packet side): plan the candidate *behind* everything
// already admitted — Sunflow guarantees admitted coflows are untouched —
// and admit only if the candidate still meets its own deadline. Rejected
// coflows leave no trace on the table.
#pragma once

#include "core/sunflow.h"

namespace sunflow {

struct AdmissionResult {
  bool admitted = false;
  /// CCT the plan achieves for the candidate (valid whether admitted or
  /// not; for rejections this is the best Sunflow could have offered at
  /// the lowest priority).
  Time planned_cct = 0;
};

/// Probes the candidate on a copy of the planner state; if its planned CCT
/// (relative to request.start) is within `deadline`, commits the
/// reservations to `planner` and records them in `out`. Otherwise the
/// planner is left untouched.
AdmissionResult TryAdmitWithDeadline(SunflowPlanner& planner,
                                     const PlanRequest& request,
                                     Time deadline, SunflowSchedule& out);

}  // namespace sunflow
