// Fabric Reservation Table (§4.1.1, generalised to K switch planes).
//
// The table records, for every (plane, port) pair on both the input and
// output side, when the port is taken and released and by which circuit.
// Sunflow schedules by making reservations that always respect the port
// constraint (an optical port carries at most one circuit per plane at a
// time), so existing reservations are never preempted — the data structure
// *is* the non-preemption guarantee. On the classic single-plane fabric
// everything lives on plane 0 and the legacy PortReservationTable name is
// an alias for this class.
//
// Storage is a flat sorted vector per (side, plane, port) timeline (slots
// are non-overlapping, so sorting by start also sorts the release ends)
// plus a per-timeline probe cursor. The planner probes forward in time
// almost always, so the cursor makes FreeAt / NextStartAfter / BusyUntil
// O(1) amortized on that access pattern; a probe that jumps backwards
// (ImportReservations, executors, a new coflow restarting at its arrival
// time) falls back to binary search and re-seats the cursor there.
// Release times live in one flat sorted vector shared by all ports and
// planes: a wakeup instant is a release somewhere in the fabric, and the
// planner's wakeup-index contract (core/sunflow.cc) only needs the global
// chain, not per-plane ones.
#pragma once

#include <vector>

#include "common/units.h"
#include "core/reservation.h"

namespace sunflow {

class FabricReservationTable {
 public:
  /// Which side of the switch a probe addresses. The input and output
  /// timelines are structurally identical; every probe below takes the
  /// side as a value instead of duplicating Input*/Output* method bodies.
  enum class Side { kIn = 0, kOut = 1 };

  explicit FabricReservationTable(PortId num_ports, int num_planes = 1);

  PortId num_ports() const { return num_ports_; }
  int num_planes() const { return num_planes_; }

  /// True iff no reservation on the (side, plane, port) timeline covers
  /// time t (half-open intervals: a reservation ending exactly at t leaves
  /// the port free).
  bool FreeAt(Side side, PortId p, Time t, PlaneId plane = 0) const;

  /// End of the reservation covering t on the timeline, or t itself when
  /// the port is free at t (same tolerance as FreeAt). The planner's
  /// wakeup index buckets a blocked flow under this instant: retrying any
  /// earlier provably fails because the covering reservation is never
  /// preempted.
  Time BusyUntil(Side side, PortId p, Time t, PlaneId plane = 0) const;

  // Legacy single-plane spellings; thin wrappers over the side-indexed
  // probes above, kept because most call sites only ever touch plane 0.
  bool InputFreeAt(PortId i, Time t) const { return FreeAt(Side::kIn, i, t); }
  bool OutputFreeAt(PortId j, Time t) const {
    return FreeAt(Side::kOut, j, t);
  }
  Time InputBusyUntil(PortId i, Time t) const {
    return BusyUntil(Side::kIn, i, t);
  }
  Time OutputBusyUntil(PortId j, Time t) const {
    return BusyUntil(Side::kOut, j, t);
  }

  /// Start time of the earliest reservation beginning strictly after t on
  /// the given port pair of one plane; kTimeInf if none. This is the t_m
  /// of Algorithm 1 line 16 ("earliest next-reserv-time"), needed only at
  /// the inter-Coflow level: a lower-priority coflow must release the port
  /// before a higher-priority reservation begins.
  Time NextReservationStartAfter(PortId in, PortId out, Time t,
                                 PlaneId plane = 0) const;

  /// The earliest reservation beginning strictly after t on either port of
  /// one plane, as (start, release): `start` equals
  /// NextReservationStartAfter(in, out, t, plane) and `release` is the
  /// latest end among the slots (on these two timelines) that begin
  /// exactly at that start. When the gap [t, start) is too short for a
  /// circuit, `release` is the first instant the blocking constraint can
  /// change — the planner's wakeup for the gap-limited case. Returns
  /// (kTimeInf, kTimeInf) when neither timeline has a later start.
  struct NextReservation {
    Time start = kTimeInf;
    Time release = kTimeInf;
  };
  NextReservation NextReservationAfter(PortId in, PortId out, Time t,
                                       PlaneId plane = 0) const;

  /// Records a circuit [in, out] on r.plane during [start, end) with the
  /// given setup prefix. Checks the port constraint on both timelines.
  void Reserve(const CircuitReservation& r);

  /// Earliest reservation end strictly after t across all ports and
  /// planes (the next "circuit release time", Algorithm 1 line 10);
  /// kTimeInf if none.
  Time NextReleaseAfter(Time t) const;

  /// Earliest reservation end >= t (no epsilon), kTimeInf if none; and the
  /// latest reservation end < t (no epsilon), -kTimeInf if none. Together
  /// they let the planner decide whether a wakeup instant can be jumped to
  /// directly or sits inside a sub-epsilon cluster of release times that
  /// must be walked through NextReleaseAfter step by step.
  Time FirstReleaseAtOrAfter(Time t) const;
  Time LastReleaseBefore(Time t) const;

  /// Coflow id owning the reservation that covers time t on the timeline
  /// (same half-open tolerance as FreeAt), or -1 when the port is free at
  /// t. Pure probes for trace emission: they binary-search without
  /// touching the timeline's probe cursor, so calling them cannot perturb
  /// the planner's amortized forward-scan pattern.
  CoflowId OwnerAt(Side side, PortId p, Time t, PlaneId plane = 0) const;
  CoflowId InputOwnerAt(PortId i, Time t) const {
    return OwnerAt(Side::kIn, i, t);
  }
  CoflowId OutputOwnerAt(PortId j, Time t) const {
    return OwnerAt(Side::kOut, j, t);
  }

  /// Coflow id of the earliest reservation beginning strictly after t on
  /// either port of one plane — the blocker in the gap-too-short case of
  /// Algorithm 1 — or -1 if neither timeline has a later start.
  /// Cursor-free like the owner probes above.
  CoflowId NextOwnerAfter(PortId in, PortId out, Time t,
                          PlaneId plane = 0) const;

  /// Total reserved seconds on one (side, plane, port) timeline clipped
  /// to [t0, t1) — the telemetry sampler's utilization numerator,
  /// cross-checked in tests against its incremental accounting.
  /// Cursor-free like the owner probes above: a pure read that never
  /// perturbs the planner's amortized forward-scan cursor.
  Time BusySeconds(Side side, PortId p, Time t0, Time t1,
                   PlaneId plane = 0) const;

  /// All reservations in insertion order.
  const std::vector<CircuitReservation>& reservations() const {
    return all_;
  }

  /// Reservations on one timeline, sorted by start time.
  std::vector<CircuitReservation> TimelineOf(Side side, PortId p,
                                             PlaneId plane = 0) const;
  std::vector<CircuitReservation> InputPortTimeline(PortId i) const {
    return TimelineOf(Side::kIn, i);
  }
  std::vector<CircuitReservation> OutputPortTimeline(PortId j) const {
    return TimelineOf(Side::kOut, j);
  }

  /// Validates the full table (no overlap on any timeline; sane windows).
  void CheckInvariants() const;

 private:
  struct Slot {
    Time start;
    Time end;
    std::size_t index;  ///< into all_
  };

  // One (side, plane, port) timeline, sorted by start (equivalently by
  // end: slots on a timeline never overlap). `cursor` caches the last
  // probe position — the index of the first slot whose end may still
  // matter (end > t + ε for the last probed t). It is advanced linearly on
  // forward probes and re-seated by binary search when a probe jumps
  // backwards, so it is always exact, never a heuristic.
  struct PortTimeline {
    std::vector<Slot> slots;
    mutable std::size_t cursor = 0;

    /// Index of the first slot with end > t + ε (every earlier slot is
    /// fully in the past at t). O(1) amortized for non-decreasing t.
    std::size_t LowerBound(Time t) const;
    bool FreeAt(Time t) const;
    Time BusyUntil(Time t) const;
    /// (start, end) of the first slot starting strictly after t, or
    /// (kTimeInf, kTimeInf).
    NextReservation NextStartAfter(Time t) const;
    /// Throws CheckFailure if s overlaps an existing slot. Reserve calls
    /// this on both ports before inserting on either, so a rejected
    /// reservation never half-applies.
    void CheckFits(const Slot& s) const;
    void Insert(const Slot& s);  ///< keeps sorted order; caller validated
    /// Index into all_ of the slot covering t, or SIZE_MAX when free at t.
    /// Cursor-free (plain binary search) — see the owner probes above.
    std::size_t CoveringIndexAt(Time t) const;
    /// The first slot starting strictly after t, or nullptr. Cursor-free.
    const Slot* FirstStartAfter(Time t) const;
  };

  const PortTimeline& Timeline(Side side, PortId p, PlaneId plane) const;
  PortTimeline& Timeline(Side side, PortId p, PlaneId plane);

  PortId num_ports_;
  int num_planes_;
  /// Indexed [side][plane * num_ports_ + port]. Keeping one flat vector
  /// per side preserves plane-0 locality for the K=1 fast path.
  std::vector<PortTimeline> slots_[2];
  std::vector<Time> release_times_;  ///< sorted ascending, duplicates kept
  std::vector<CircuitReservation> all_;
};

/// The paper-era name: on the single-plane fabric the two are the same
/// structure, so existing call sites keep compiling unchanged.
using PortReservationTable = FabricReservationTable;

}  // namespace sunflow
