// Port Reservation Table (§4.1.1).
//
// The PRT records, for every input and output port, when the port is taken
// and released and by which circuit. Sunflow schedules by making
// reservations that always respect the port constraint (an optical port
// carries at most one circuit at a time), so existing reservations are
// never preempted — the data structure *is* the non-preemption guarantee.
#pragma once

#include <set>
#include <vector>

#include "common/units.h"
#include "core/reservation.h"

namespace sunflow {

class PortReservationTable {
 public:
  explicit PortReservationTable(PortId num_ports);

  PortId num_ports() const { return num_ports_; }

  /// True iff no reservation on input port i covers time t (half-open
  /// intervals: a reservation ending exactly at t leaves the port free).
  bool InputFreeAt(PortId i, Time t) const;
  bool OutputFreeAt(PortId j, Time t) const;

  /// Start time of the earliest reservation beginning strictly after t on
  /// the given port; kTimeInf if none. This is the t_m of Algorithm 1
  /// line 16 ("earliest next-reserv-time"), needed only at the inter-Coflow
  /// level: a lower-priority coflow must release the port before a
  /// higher-priority reservation begins.
  Time NextReservationStartAfter(PortId in, PortId out, Time t) const;

  /// Records a circuit [in, out] during [start, end) with the given setup
  /// prefix. Checks the port constraint on both ports.
  void Reserve(const CircuitReservation& r);

  /// Earliest reservation end strictly after t across all ports (the next
  /// "circuit release time", Algorithm 1 line 10); kTimeInf if none.
  Time NextReleaseAfter(Time t) const;

  /// All reservations in insertion order.
  const std::vector<CircuitReservation>& reservations() const {
    return all_;
  }

  /// Reservations on one input/output port, sorted by start time.
  std::vector<CircuitReservation> InputPortTimeline(PortId i) const;
  std::vector<CircuitReservation> OutputPortTimeline(PortId j) const;

  /// Validates the full table (no overlap on any port; sane windows).
  void CheckInvariants() const;

 private:
  struct Slot {
    Time start;
    Time end;
    std::size_t index;  ///< into all_

    bool operator<(const Slot& other) const { return start < other.start; }
  };

  static bool FreeAt(const std::set<Slot>& slots, Time t);
  static Time NextStartAfter(const std::set<Slot>& slots, Time t);
  static void CheckNoOverlap(const std::set<Slot>& slots, const Slot& s);

  PortId num_ports_;
  std::vector<std::set<Slot>> in_slots_;
  std::vector<std::set<Slot>> out_slots_;
  std::multiset<Time> release_times_;
  std::vector<CircuitReservation> all_;
};

}  // namespace sunflow
