#include "core/starvation.h"

#include <cmath>

#include "common/assert.h"
#include "obs/metrics.h"

namespace sunflow {

PhiAssignments::PhiAssignments(PortId num_ports) : num_ports_(num_ports) {
  SUNFLOW_CHECK(num_ports > 0);
}

PortId PhiAssignments::OutputOf(int k, PortId i) const {
  SUNFLOW_CHECK(k >= 0 && k < num_ports_);
  SUNFLOW_CHECK(i >= 0 && i < num_ports_);
  return static_cast<PortId>((i + k) % num_ports_);
}

std::vector<std::pair<PortId, PortId>> PhiAssignments::Assignment(
    int k) const {
  // thread_local: GlobalMetrics() shards per thread (see obs/metrics.h).
  static thread_local obs::Counter& materialized =
      obs::GlobalMetrics().GetCounter("starvation.phi_assignments");
  materialized.Increment();
  std::vector<std::pair<PortId, PortId>> pairs;
  pairs.reserve(static_cast<std::size_t>(num_ports_));
  for (PortId i = 0; i < num_ports_; ++i) pairs.emplace_back(i, OutputOf(k, i));
  return pairs;
}

StarvationGuardTimeline::StarvationGuardTimeline(
    const StarvationGuardConfig& config, PortId num_ports)
    : period_(config.big_interval + config.small_interval),
      config_(config),
      num_ports_(num_ports) {
  SUNFLOW_CHECK(config.big_interval > 0);
  SUNFLOW_CHECK(config.small_interval > 0);
  SUNFLOW_CHECK_MSG(config.big_interval >= config.small_interval,
                    "expected T >= tau");
}

namespace {
// Index of the (T+τ) period containing t, snapped so that a t lying within
// kTimeEps of a period boundary counts as the *next* period (floor of an
// exact multiple can land one ulp short).
long long PeriodIndex(Time t, Time period) {
  return static_cast<long long>(std::floor((t + kTimeEps) / period));
}
}  // namespace

bool StarvationGuardTimeline::InTauInterval(Time t) const {
  SUNFLOW_CHECK(t >= 0);
  const Time phase =
      t - static_cast<Time>(PeriodIndex(t, period_)) * period_;
  // Layout within each period: [0, T) priority-scheduled, [T, T+tau) fixed.
  return phase >= config_.big_interval - kTimeEps;
}

int StarvationGuardTimeline::AssignmentIndexAt(Time t) const {
  SUNFLOW_CHECK(t >= 0);
  return static_cast<int>(PeriodIndex(t, period_) % num_ports_);
}

Time StarvationGuardTimeline::NextBoundaryAfter(Time t) const {
  SUNFLOW_CHECK(t >= 0);
  const auto interval = static_cast<Time>(PeriodIndex(t, period_));
  const Time tau_start = interval * period_ + config_.big_interval;
  if (tau_start > t + kTimeEps) return tau_start;
  const Time next_period = (interval + 1) * period_;
  if (next_period > t + kTimeEps) return next_period;
  return next_period + config_.big_interval;
}

Time StarvationGuardTimeline::MaxServiceGap() const {
  return static_cast<Time>(num_ports_) * period_;
}

}  // namespace sunflow
