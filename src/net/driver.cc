#include "net/driver.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/assert.h"

namespace sunflow::net {

namespace {

// Reservations on one input port, sorted by start time.
std::map<PortId, std::vector<const CircuitReservation*>> ByInputPort(
    const std::vector<CircuitReservation>& reservations) {
  std::map<PortId, std::vector<const CircuitReservation*>> by_port;
  for (const auto& r : reservations) by_port[r.in].push_back(&r);
  for (auto& [port, list] : by_port) {
    std::sort(list.begin(), list.end(),
              [](const CircuitReservation* a, const CircuitReservation* b) {
                return a->start < b->start;
              });
  }
  return by_port;
}

}  // namespace

std::vector<SwitchCommand> CompileCommands(
    const std::vector<CircuitReservation>& reservations, Time delta) {
  std::vector<SwitchCommand> commands;
  const auto by_port = ByInputPort(reservations);
  for (const auto& [port, list] : by_port) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      const CircuitReservation* r = list[i];
      commands.push_back({r->start, r->in, r->out,
                          /*expect_established=*/delta > 0 && r->setup == 0});
      // Teardown unless the next reservation continues the same circuit
      // seamlessly (back-to-back, same peer, no setup).
      const bool continued =
          i + 1 < list.size() && list[i + 1]->out == r->out &&
          TimeEq(list[i + 1]->start, r->end) &&
          (delta == 0 || list[i + 1]->setup == 0);
      if (!continued) commands.push_back({r->end, r->in, -1, false});
    }
  }
  // Teardowns strictly before connects at the same instant so an output
  // port released at t can be claimed by another input at t.
  std::stable_sort(commands.begin(), commands.end(),
                   [](const SwitchCommand& a, const SwitchCommand& b) {
                     if (!TimeEq(a.at, b.at)) return a.at < b.at;
                     return (a.out < 0) > (b.out < 0);
                   });
  return commands;
}

void DriverResult::VerifyAgainst(const SunflowSchedule& schedule,
                                 Bandwidth bandwidth, Time eps) const {
  // Expected bytes per flow: the transmit time the plan reserved for it.
  std::map<FlowKey, Bytes> expected;
  for (const auto& r : schedule.reservations) {
    expected[{r.coflow, r.in, r.out}] += r.transmit_length() * bandwidth;
  }
  SUNFLOW_CHECK_MSG(expected.size() == delivered.size(),
                    "driver saw " << delivered.size() << " flows, plan has "
                                  << expected.size());
  for (const auto& [key, bytes] : expected) {
    auto it = delivered.find(key);
    SUNFLOW_CHECK_MSG(it != delivered.end(),
                      "flow never transmitted on the switch");
    SUNFLOW_CHECK_MSG(std::abs(it->second - bytes) <= eps * bandwidth + 1.0,
                      "delivered " << it->second << " bytes, plan promised "
                                   << bytes);
  }
  for (const auto& [key, promised_finish] : schedule.flow_finish) {
    auto it = finish.find(key);
    SUNFLOW_CHECK_MSG(it != finish.end(), "flow finish not observed");
    SUNFLOW_CHECK_MSG(std::abs(it->second - promised_finish) <= eps,
                      "flow finished at " << it->second << ", plan promised "
                                          << promised_finish);
  }
}

DriverResult ExecuteOnSwitch(const SunflowSchedule& schedule,
                             PortId num_ports, const SunflowConfig& config,
                             const EstablishedCircuits& established) {
  OpticalCircuitSwitch device(num_ports, config.delta);
  for (const auto& [in, out] : established) device.PreEstablish(in, out);

  const auto commands = CompileCommands(schedule.reservations, config.delta);
  const auto by_port = ByInputPort(schedule.reservations);

  // Breakpoints: every instant the connectivity can change.
  std::set<Time> breakpoints;
  for (const auto& r : schedule.reservations) {
    breakpoints.insert(r.start);
    breakpoints.insert(r.transmit_begin());
    breakpoints.insert(r.end);
  }

  DriverResult result;
  std::size_t next_command = 0;
  // Per-port cursor into its reservation list (they are time-sorted).
  std::map<PortId, std::size_t> cursor;

  Time prev = breakpoints.empty() ? 0 : *breakpoints.begin();
  for (Time t : breakpoints) {
    // Meter the interval [prev, t) with the device state as of prev.
    if (t > prev + kTimeEps) {
      for (const auto& [port, list] : by_port) {
        auto& idx = cursor[port];
        while (idx < list.size() && list[idx]->end <= prev + kTimeEps) ++idx;
        if (idx >= list.size()) continue;
        const CircuitReservation* r = list[idx];
        if (r->start > prev + kTimeEps) continue;  // gap on this port
        if (!device.IsConnected(r->in, r->out)) continue;  // still dark
        const Bytes bytes = (t - prev) * config.bandwidth;
        const FlowKey key{r->coflow, r->in, r->out};
        result.delivered[key] += bytes;
        if (bytes > 0) {
          auto& f = result.finish[key];
          f = std::max(f, t);
        }
      }
    }
    // Apply the commands due at t so the next interval sees fresh state.
    while (next_command < commands.size() &&
           commands[next_command].at <= t + kTimeEps) {
      device.Apply(commands[next_command]);
      ++next_command;
    }
    device.AdvanceTo(t);
    prev = t;
  }
  SUNFLOW_CHECK(next_command == commands.size());

  result.reconfigurations = device.reconfigurations();
  result.end_time = prev;
  return result;
}

}  // namespace sunflow::net
