#include "net/ocs.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace sunflow::net {

const char* ToString(PortState s) {
  switch (s) {
    case PortState::kDark:
      return "dark";
    case PortState::kConfiguring:
      return "configuring";
    case PortState::kConnected:
      return "connected";
  }
  return "?";
}

OpticalCircuitSwitch::OpticalCircuitSwitch(PortId num_ports,
                                           Time reconfiguration_delay)
    : num_ports_(num_ports),
      delta_(reconfiguration_delay),
      inputs_(static_cast<std::size_t>(num_ports)),
      output_owner_(static_cast<std::size_t>(num_ports), -1),
      light_time_(static_cast<std::size_t>(num_ports), 0) {
  SUNFLOW_CHECK(num_ports > 0);
  SUNFLOW_CHECK(reconfiguration_delay >= 0);
}

void OpticalCircuitSwitch::CompleteReconfigurations() {
  for (PortId i = 0; i < num_ports_; ++i) {
    auto& port = inputs_[static_cast<std::size_t>(i)];
    if (port.state == PortState::kConfiguring &&
        port.ready_at <= now_ + kTimeEps) {
      port.state = PortState::kConnected;
      port.state_since = port.ready_at;
    }
  }
}

void OpticalCircuitSwitch::PreEstablish(PortId in, PortId out) {
  SUNFLOW_CHECK(in >= 0 && in < num_ports_);
  SUNFLOW_CHECK(out >= 0 && out < num_ports_);
  auto& port = inputs_[static_cast<std::size_t>(in)];
  SUNFLOW_CHECK_MSG(port.state == PortState::kDark,
                    "PreEstablish on non-dark input " << in);
  SUNFLOW_CHECK_MSG(output_owner_[static_cast<std::size_t>(out)] < 0,
                    "PreEstablish on owned output " << out);
  port.state = PortState::kConnected;
  port.peer = out;
  port.state_since = now_;
  output_owner_[static_cast<std::size_t>(out)] = in;
}

void OpticalCircuitSwitch::AdvanceTo(Time t) {
  SUNFLOW_CHECK_MSG(t >= now_ - kTimeEps,
                    "switch time moved backwards: " << now_ << " -> " << t);
  now_ = std::max(now_, t);
  CompleteReconfigurations();
}

void OpticalCircuitSwitch::RecordTeardown(PortId in, Time at) {
  auto& port = inputs_[static_cast<std::size_t>(in)];
  if (port.state == PortState::kConnected) {
    const Time light_from = port.state_since;
    history_.push_back({in, port.peer, light_from, at});
    light_time_[static_cast<std::size_t>(in)] += at - light_from;
  }
  if (port.peer >= 0) {
    output_owner_[static_cast<std::size_t>(port.peer)] = -1;
  }
  port.state = PortState::kDark;
  port.peer = -1;
  port.state_since = at;
}

void OpticalCircuitSwitch::Apply(const SwitchCommand& command) {
  AdvanceTo(command.at);
  SUNFLOW_CHECK(command.in >= 0 && command.in < num_ports_);
  auto& port = inputs_[static_cast<std::size_t>(command.in)];
  SUNFLOW_CHECK_MSG(port.state != PortState::kConfiguring,
                    "command to in." << command.in
                                     << " while mirrors are in motion");

  if (command.out < 0) {  // teardown
    RecordTeardown(command.in, now_);
    return;
  }
  SUNFLOW_CHECK(command.out < num_ports_);

  if (command.expect_established) {
    SUNFLOW_CHECK_MSG(port.state == PortState::kConnected &&
                          port.peer == command.out,
                      "carry-over claimed for [in." << command.in << ", out."
                                                    << command.out
                                                    << "] but circuit is "
                                                    << ToString(port.state));
    return;  // already connected; nothing to do
  }

  // Tear down whatever this input carried, then claim the output.
  RecordTeardown(command.in, now_);
  const PortId owner = output_owner_[static_cast<std::size_t>(command.out)];
  SUNFLOW_CHECK_MSG(owner < 0,
                    "output port " << command.out << " already owned by in."
                                   << owner << " (port constraint)");
  output_owner_[static_cast<std::size_t>(command.out)] = command.in;
  port.peer = command.out;
  port.state_since = now_;
  if (delta_ > 0) {
    port.state = PortState::kConfiguring;
    port.ready_at = now_ + delta_;
  } else {
    port.state = PortState::kConnected;
    port.ready_at = now_;
  }
  ++reconfigurations_;
  CompleteReconfigurations();
}

bool OpticalCircuitSwitch::IsConnected(PortId in, PortId out) const {
  SUNFLOW_CHECK(in >= 0 && in < num_ports_);
  const auto& port = inputs_[static_cast<std::size_t>(in)];
  return port.state == PortState::kConnected && port.peer == out;
}

PortState OpticalCircuitSwitch::InputState(PortId in) const {
  SUNFLOW_CHECK(in >= 0 && in < num_ports_);
  return inputs_[static_cast<std::size_t>(in)].state;
}

std::optional<PortId> OpticalCircuitSwitch::PeerOf(PortId in) const {
  SUNFLOW_CHECK(in >= 0 && in < num_ports_);
  const auto& port = inputs_[static_cast<std::size_t>(in)];
  if (port.state == PortState::kDark) return std::nullopt;
  return port.peer;
}

Time OpticalCircuitSwitch::LightTime(PortId in) const {
  SUNFLOW_CHECK(in >= 0 && in < num_ports_);
  Time total = light_time_[static_cast<std::size_t>(in)];
  const auto& port = inputs_[static_cast<std::size_t>(in)];
  if (port.state == PortState::kConnected) total += now_ - port.state_since;
  return total;
}

std::string OpticalCircuitSwitch::DebugString() const {
  std::ostringstream os;
  os << "OCS{t=" << now_ << " ports=" << num_ports_;
  for (PortId i = 0; i < num_ports_; ++i) {
    const auto& port = inputs_[static_cast<std::size_t>(i)];
    if (port.state == PortState::kDark) continue;
    os << " in." << i << "->" << port.peer << "(" << ToString(port.state)
       << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace sunflow::net
