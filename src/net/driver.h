// Schedule driver: executes a planned SunflowSchedule on the stateful
// OpticalCircuitSwitch with simulated host agents (§6 deployment model).
//
// Each sending machine runs an agent that knows its input port's rows of
// the Port Reservation Table; when the switch signals that a circuit for
// its next reservation is up (REACToR-style setup signals), the agent
// transmits the owning flow at full line rate until the reservation ends.
// The driver compiles reservations into timed switch commands, replays
// them, meters delivered bytes per flow, and reports finish times — an
// end-to-end check, independent of the planner's own bookkeeping, that the
// schedule is physically executable and serves every byte it promised.
#pragma once

#include <map>
#include <vector>

#include "core/reservation.h"
#include "core/sunflow.h"
#include "net/ocs.h"

namespace sunflow::net {

struct DriverResult {
  std::map<FlowKey, Bytes> delivered;
  std::map<FlowKey, Time> finish;  ///< when the last byte landed
  int reconfigurations = 0;
  Time end_time = 0;

  /// Cross-checks against the planner's own records: every flow the plan
  /// finished is delivered in full, at (within eps) the promised time.
  /// Throws CheckFailure on mismatch.
  void VerifyAgainst(const SunflowSchedule& schedule, Bandwidth bandwidth,
                     Time eps = 1e-6) const;
};

/// Compiles the reservations into switch commands (setup at start, with
/// carry-over honoured; teardown at end) in time order. `delta` is the
/// switch's reconfiguration delay: a reservation with setup == 0 denotes a
/// carried-over circuit only when delta > 0 (at delta == 0 every fresh
/// setup is instantaneous and setup is legitimately zero).
std::vector<SwitchCommand> CompileCommands(
    const std::vector<CircuitReservation>& reservations, Time delta);

/// Replays the schedule on a fresh switch. `established` pre-connects
/// circuits that are already up at the schedule's start (replay
/// carry-over).
DriverResult ExecuteOnSwitch(const SunflowSchedule& schedule,
                             PortId num_ports, const SunflowConfig& config,
                             const EstablishedCircuits& established = {});

}  // namespace sunflow::net
