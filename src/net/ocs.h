// Stateful optical circuit switch model (§2.1, §6).
//
// The planner (core/sunflow.h) produces reservations against an idealized
// Port Reservation Table. This module models the *device*: a 3D-MEMS-style
// N-port optical space switch whose cross-connects are changed by timed
// commands, with the not-all-stop semantics of §2.1 — reconfiguring a
// circuit takes δ during which only the two ports involved are dark, while
// untouched circuits keep carrying light.
//
// It exists so schedules can be validated against an independent
// implementation of the switch semantics: the ScheduleDriver (driver.h)
// compiles a schedule into commands, replays them here, and checks that
// every byte the planner promised actually gets through.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace sunflow::net {

/// State of one input port's cross-connect.
enum class PortState {
  kDark,         ///< no circuit configured
  kConfiguring,  ///< mirrors in motion (δ in progress); no light passes
  kConnected,    ///< circuit established, carrying light
};

const char* ToString(PortState s);

/// A timed command to the switch control plane.
struct SwitchCommand {
  Time at = 0;
  PortId in = 0;
  /// Target output port, or -1 to tear the circuit down.
  PortId out = -1;
  /// Skip the reconfiguration delay because the circuit is already
  /// physically established on this exact pair (used only by carry-over
  /// re-installs; the device verifies the claim).
  bool expect_established = false;
};

/// Record of a completed connectivity interval (for audits).
struct ConnectivityRecord {
  PortId in = 0;
  PortId out = 0;
  Time light_from = 0;  ///< when the circuit began carrying light
  Time light_to = 0;    ///< when it went dark
};

/// Discrete-event optical circuit switch. Time is advanced explicitly by
/// the caller (AdvanceTo); commands must be applied in time order.
class OpticalCircuitSwitch {
 public:
  OpticalCircuitSwitch(PortId num_ports, Time reconfiguration_delay);

  PortId num_ports() const { return num_ports_; }
  Time reconfiguration_delay() const { return delta_; }
  Time now() const { return now_; }

  /// Declares a circuit as already up at the current time without paying δ
  /// (initial condition for replays that carry circuits across plans).
  /// Valid only while the ports involved are dark/free.
  void PreEstablish(PortId in, PortId out);

  /// Advances internal time, completing any reconfigurations that finish
  /// by `t`. Monotonic; throws on time travel.
  void AdvanceTo(Time t);

  /// Applies a command at its timestamp (advances time there first).
  /// Throws CheckFailure on port-constraint violations: connecting an
  /// input to an output that is carrying another circuit, or commanding a
  /// port that is mid-reconfiguration.
  void Apply(const SwitchCommand& command);

  /// True iff light currently passes from in to out.
  bool IsConnected(PortId in, PortId out) const;

  PortState InputState(PortId in) const;

  /// The output port the input is connected (or connecting) to, if any.
  std::optional<PortId> PeerOf(PortId in) const;

  /// Completed connectivity intervals, in teardown order.
  const std::vector<ConnectivityRecord>& history() const { return history_; }

  /// Total time the given input port carried light so far.
  Time LightTime(PortId in) const;

  /// Number of reconfigurations (δ paid) so far.
  int reconfigurations() const { return reconfigurations_; }

  std::string DebugString() const;

 private:
  struct InputPort {
    PortState state = PortState::kDark;
    PortId peer = -1;        ///< target / current output
    Time state_since = 0;    ///< when the current state began
    Time ready_at = 0;       ///< for kConfiguring: when light resumes
  };

  void CompleteReconfigurations();
  void RecordTeardown(PortId in, Time at);

  PortId num_ports_;
  Time delta_;
  Time now_ = 0;
  std::vector<InputPort> inputs_;
  /// Which input currently owns each output (-1 = free). An output is
  /// owned from the moment a connect command targets it.
  std::vector<PortId> output_owner_;
  std::vector<ConnectivityRecord> history_;
  std::vector<Time> light_time_;
  int reconfigurations_ = 0;
};

}  // namespace sunflow::net
