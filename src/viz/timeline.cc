#include "viz/timeline.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace sunflow::viz {

namespace {

Time Horizon(const std::vector<CircuitReservation>& reservations,
             const TimelineOptions& options) {
  if (options.horizon > 0) return options.horizon;
  Time h = 0;
  for (const auto& r : reservations) h = std::max(h, r.end);
  return h > 0 ? h : 1.0;
}

std::map<PortId, std::vector<const CircuitReservation*>> Lanes(
    const std::vector<CircuitReservation>& reservations) {
  std::map<PortId, std::vector<const CircuitReservation*>> lanes;
  for (const auto& r : reservations) lanes[r.in].push_back(&r);
  for (auto& [port, list] : lanes) {
    std::sort(list.begin(), list.end(),
              [](const CircuitReservation* a, const CircuitReservation* b) {
                return a->start < b->start;
              });
  }
  return lanes;
}

// A small qualitative palette, cycled by coflow id.
const char* ColorFor(CoflowId id) {
  static const char* kPalette[] = {"#4e79a7", "#f28e2b", "#59a14f",
                                   "#e15759", "#b07aa1", "#76b7b2",
                                   "#edc948", "#ff9da7"};
  const auto idx = static_cast<std::size_t>(
      (id < 0 ? -id : id) % static_cast<CoflowId>(std::size(kPalette)));
  return kPalette[idx];
}

}  // namespace

void WriteTimelineSvg(std::ostream& out,
                      const std::vector<CircuitReservation>& reservations,
                      const TimelineOptions& options) {
  const Time horizon = Horizon(reservations, options);
  const auto lanes = Lanes(reservations);
  const int label_width = 60;
  const int plot_width = options.width_px - label_width - 10;
  const int height =
      static_cast<int>(lanes.size()) * options.lane_height_px + 40;

  auto x_of = [&](Time t) {
    return label_width +
           plot_width * std::clamp(t / horizon, 0.0, 1.0);
  };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.width_px << "\" height=\"" << height
      << "\" font-family=\"monospace\" font-size=\"11\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  int lane_index = 0;
  for (const auto& [port, list] : lanes) {
    const int y = 10 + lane_index * options.lane_height_px;
    out << "<text x=\"4\" y=\"" << y + options.lane_height_px * 2 / 3
        << "\">in." << port << "</text>\n";
    for (const CircuitReservation* r : list) {
      const double x0 = x_of(r->start);
      const double xs = x_of(r->transmit_begin());
      const double x1 = x_of(r->end);
      // δ span: dark gray.
      if (xs > x0 + 0.01) {
        out << "<rect x=\"" << x0 << "\" y=\"" << y << "\" width=\""
            << xs - x0 << "\" height=\"" << options.lane_height_px - 4
            << "\" fill=\"#555\"/>\n";
      }
      // Transmit span: coflow color, labelled with the output port.
      out << "<rect x=\"" << xs << "\" y=\"" << y << "\" width=\""
          << std::max(0.5, x1 - xs) << "\" height=\""
          << options.lane_height_px - 4 << "\" fill=\"" << ColorFor(r->coflow)
          << "\" stroke=\"#333\" stroke-width=\"0.4\"/>\n";
      if (options.label_coflows && x1 - xs > 24) {
        out << "<text x=\"" << xs + 3 << "\" y=\""
            << y + options.lane_height_px * 2 / 3
            << "\" fill=\"white\">o" << r->out << "/c" << r->coflow
            << "</text>\n";
      }
    }
    ++lane_index;
  }
  // Time axis.
  const int axis_y = height - 18;
  out << "<line x1=\"" << label_width << "\" y1=\"" << axis_y << "\" x2=\""
      << label_width + plot_width << "\" y2=\"" << axis_y
      << "\" stroke=\"#333\"/>\n";
  for (int tick = 0; tick <= 4; ++tick) {
    const Time t = horizon * tick / 4;
    out << "<text x=\"" << x_of(t) << "\" y=\"" << axis_y + 14 << "\">"
        << t << "s</text>\n";
  }
  out << "</svg>\n";
}

std::string RenderTimelineAscii(
    const std::vector<CircuitReservation>& reservations,
    const TimelineOptions& options) {
  const Time horizon = Horizon(reservations, options);
  const auto lanes = Lanes(reservations);
  const int width = std::max(8, options.ascii_width);

  std::ostringstream os;
  for (const auto& [port, list] : lanes) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const CircuitReservation* r : list) {
      const int a =
          static_cast<int>(r->start / horizon * width);
      const int setup_end = std::max(
          a, static_cast<int>(r->transmit_begin() / horizon * width));
      const int b = std::max(
          a + 1,
          static_cast<int>(std::min(r->end / horizon, 1.0) * width));
      const long long label =
          options.label_coflows ? r->coflow : static_cast<long long>(r->out);
      for (int x = a; x < b && x < width; ++x) {
        row[static_cast<std::size_t>(x)] =
            x < setup_end ? '#'
                          : static_cast<char>('0' + (label % 10 + 10) % 10);
      }
    }
    os << "  in." << port << (port < 10 ? "  |" : " |") << row << "|\n";
  }
  return os.str();
}

}  // namespace sunflow::viz
