// Schedule timeline rendering (Fig 1 / Fig 2 style).
//
// Renders a reservation list as a per-input-port Gantt chart — the visual
// language of the paper's Figures 1c and 2 — either as standalone SVG (for
// docs and debugging) or as ASCII (for terminals). Reconfiguration δ spans
// are hatched/darkened; transmit spans are colored per coflow.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/reservation.h"

namespace sunflow::viz {

struct TimelineOptions {
  int width_px = 900;        ///< SVG drawing width
  int lane_height_px = 22;   ///< per input port
  int ascii_width = 72;      ///< ASCII columns for the time axis
  bool label_coflows = true;
  /// Horizon; 0 = max reservation end.
  Time horizon = 0;
};

/// Writes a standalone SVG document.
void WriteTimelineSvg(std::ostream& out,
                      const std::vector<CircuitReservation>& reservations,
                      const TimelineOptions& options = {});

/// Renders an ASCII Gantt (one lane per input port with any reservation).
/// '#' marks reconfiguration; the transmit span shows the output port's
/// last digit (label_coflows=false) or the coflow id's last digit.
std::string RenderTimelineAscii(
    const std::vector<CircuitReservation>& reservations,
    const TimelineOptions& options = {});

}  // namespace sunflow::viz
