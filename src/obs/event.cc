#include "obs/event.h"

namespace sunflow::obs {

const char* ToString(EventType type) {
  switch (type) {
    case EventType::kCircuitSetup:
      return "CircuitSetup";
    case EventType::kCircuitTeardown:
      return "CircuitTeardown";
    case EventType::kCoflowAdmitted:
      return "CoflowAdmitted";
    case EventType::kCoflowCompleted:
      return "CoflowCompleted";
    case EventType::kAssignmentComputed:
      return "AssignmentComputed";
    case EventType::kStarvationRound:
      return "StarvationRound";
    case EventType::kFlowFinished:
      return "FlowFinished";
    case EventType::kFlowBlocked:
      return "FlowBlocked";
    case EventType::kFlowUnblocked:
      return "FlowUnblocked";
  }
  return "?";
}

const char* ToString(BlockReason reason) {
  switch (reason) {
    case BlockReason::kInputPortBusy:
      return "input-port-busy";
    case BlockReason::kOutputPortBusy:
      return "output-port-busy";
    case BlockReason::kCircuitConflict:
      return "circuit-conflict";
    case BlockReason::kStarvationHold:
      return "starvation-hold";
  }
  return "?";
}

bool EventTypeFromString(std::string_view name, EventType& out) {
  for (int i = 0; i < kNumEventTypes; ++i) {
    const auto type = static_cast<EventType>(i);
    if (name == ToString(type)) {
      out = type;
      return true;
    }
  }
  return false;
}

}  // namespace sunflow::obs
