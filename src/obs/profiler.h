// Scoped phase profiler — where the scheduler's own cost becomes data.
//
// The metrics registry (obs/metrics.h) answers "how often / how large";
// this profiler answers "where did the wall time go". Instrumented code
// opens an RAII ProfileScope naming the phase (dotted hierarchy:
// engine.execute, sched.solstice.stuff, prt.reserve, ...); nested scopes
// attribute time to both the enclosing phase (total_ns, inclusive) and to
// the phase itself net of profiled children (self_ns, exclusive), so a
// phase tree sums without double counting.
//
// Threading follows the sharded-merge contract of obs/metrics.h verbatim:
// GlobalProfiler() resolves to the calling thread's private shard (no
// locks or atomics on the hot path; the nesting stack is thread_local),
// and Rows()/Merged()/WriteText() fold all shards commutatively — counts
// and durations sum, so the merged view has the same phase counts at any
// thread count (durations are wall clock and therefore vary run to run).
// Collect only after workers have quiesced.
//
// Cost: an enabled scope is two steady_clock reads plus one transparent
// map lookup in the thread's shard — ~100 ns, negligible against the
// µs-to-ms phases instrumented here; run manifests (obs/manifest.h)
// carry a calibrated estimate of the total so every run reports its own
// observation overhead. SetProfilingEnabled(false) reduces a scope to one
// relaxed atomic load; compiling with -DSUNFLOW_NO_PROFILER removes the
// scopes entirely (SUNFLOW_PROFILE_SCOPE expands to nothing).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sunflow::obs {

struct PhaseStats {
  std::uint64_t count = 0;
  double total_ns = 0;  ///< inclusive wall time (children counted)
  double self_ns = 0;   ///< exclusive wall time (profiled children deducted)
  double max_ns = 0;    ///< longest single scope (inclusive)

  double mean_ns() const {
    return count > 0 ? total_ns / static_cast<double>(count) : 0;
  }
  /// Commutative fold: counts and durations sum, max takes the larger.
  void MergeFrom(const PhaseStats& other);
};

/// Flat dump row (one per phase), sorted by name.
struct ProfileRow {
  std::string name;
  PhaseStats stats;
};

/// A single-threaded profiler shard (the analogue of MetricsRegistry).
/// Phase entries are created on first use and never move, so scopes may
/// hold references for their lifetime.
class Profiler {
 public:
  PhaseStats& GetPhase(std::string_view name);
  const PhaseStats* FindPhase(std::string_view name) const;

  /// Records an externally measured duration (count +1, total and self
  /// both grow by ns) — for costs timed by other means, e.g. the planner
  /// pass a scenario already clocks for kAssignmentComputed.
  void RecordNs(std::string_view name, double ns);

  std::vector<ProfileRow> Rows() const;
  void WriteText(std::ostream& out) const;
  void MergeFrom(const Profiler& other);
  void Reset();

  /// Scope entries across all phases (the manifest's overhead estimate).
  std::uint64_t TotalCount() const;

 private:
  std::map<std::string, PhaseStats, std::less<>> phases_;
};

/// Thread-safe façade over per-thread Profiler shards; same contract as
/// ShardedMetricsRegistry — record into Shard() lock-free, read merged
/// views only after concurrent writers have quiesced.
class ShardedProfiler {
 public:
  ShardedProfiler();
  ShardedProfiler(const ShardedProfiler&) = delete;
  ShardedProfiler& operator=(const ShardedProfiler&) = delete;

  /// The calling thread's shard (created on first use). References are
  /// stable but thread-bound: cache them `thread_local`, never `static`.
  Profiler& Shard();

  void RecordNs(std::string_view name, double ns) { Shard().RecordNs(name, ns); }

  /// Merged snapshot of every shard. Quiesce writers first.
  Profiler Merged() const;
  std::vector<ProfileRow> Rows() const;
  void WriteText(std::ostream& out) const;

  /// Zeroes every shard (phase registrations survive).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Profiler>> shards_;
  std::uint64_t id_ = 0;  ///< distinguishes reincarnations at one address
};

/// The process-wide profiler used by the built-in instrumentation.
ShardedProfiler& GlobalProfiler();

/// Runtime switch (default on). Scopes opened while disabled record
/// nothing and cost one relaxed atomic load. Flipping the switch does not
/// affect scopes already open.
bool ProfilingEnabled();
void SetProfilingEnabled(bool enabled);

/// Measures the per-scope recording cost on this host (median of a short
/// calibration loop against a throwaway shard) — the manifest multiplies
/// this by the merged TotalCount() to bound profiler overhead.
double CalibrateScopeCostNs();

/// RAII phase scope. Prefer the SUNFLOW_PROFILE_SCOPE macro, which
/// compiles out under -DSUNFLOW_NO_PROFILER.
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view name);
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope();

 private:
  PhaseStats* stats_ = nullptr;  ///< null = profiling disabled at entry
  ProfileScope* parent_ = nullptr;
  double child_ns_ = 0;  ///< inclusive time of directly nested scopes
  std::chrono::steady_clock::time_point start_;
};

#if defined(SUNFLOW_NO_PROFILER)
#define SUNFLOW_PROFILE_SCOPE(name) ((void)0)
#else
#define SUNFLOW_PROFILE_CONCAT_INNER(a, b) a##b
#define SUNFLOW_PROFILE_CONCAT(a, b) SUNFLOW_PROFILE_CONCAT_INNER(a, b)
#define SUNFLOW_PROFILE_SCOPE(name)            \
  ::sunflow::obs::ProfileScope SUNFLOW_PROFILE_CONCAT( \
      sunflow_profile_scope_, __COUNTER__)(name)
#endif

}  // namespace sunflow::obs
