// Compact JSONL trace format — one event per line, round-trippable.
//
// This is the storage format for large runs (the Chrome JSON of
// obs/chrome_trace.h is a view, not a store): append-only, greppable, and
// readable back by tools/trace_inspect. Numbers are written with enough
// digits to round-trip doubles exactly.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"

namespace sunflow::obs {

/// JSON string-escapes `s` (quotes, backslash, control characters).
std::string EscapeJson(std::string_view s);

/// Writes one event as a single JSONL line (with trailing newline).
void WriteJsonlEvent(std::ostream& out, const Event& event);

/// Writes all events, one line each.
void WriteJsonl(std::ostream& out, std::span<const Event> events);

/// Parses a JSONL stream written by WriteJsonl. Blank lines are skipped;
/// malformed lines throw std::runtime_error naming the line number.
std::vector<Event> ReadJsonl(std::istream& in);

/// Convenience: parse a whole file. Throws std::runtime_error if the file
/// cannot be opened.
std::vector<Event> ReadJsonlFile(const std::string& path);

}  // namespace sunflow::obs
