#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <ostream>
#include <unordered_map>

namespace sunflow::obs {

void PhaseStats::MergeFrom(const PhaseStats& other) {
  count += other.count;
  total_ns += other.total_ns;
  self_ns += other.self_ns;
  max_ns = std::max(max_ns, other.max_ns);
}

PhaseStats& Profiler::GetPhase(std::string_view name) {
  auto it = phases_.find(name);
  if (it == phases_.end()) it = phases_.try_emplace(std::string(name)).first;
  return it->second;
}

const PhaseStats* Profiler::FindPhase(std::string_view name) const {
  const auto it = phases_.find(name);
  return it != phases_.end() ? &it->second : nullptr;
}

void Profiler::RecordNs(std::string_view name, double ns) {
  PhaseStats& s = GetPhase(name);
  ++s.count;
  s.total_ns += ns;
  s.self_ns += ns;
  s.max_ns = std::max(s.max_ns, ns);
}

std::vector<ProfileRow> Profiler::Rows() const {
  std::vector<ProfileRow> rows;
  rows.reserve(phases_.size());
  for (const auto& [name, stats] : phases_) rows.push_back({name, stats});
  return rows;  // map order == sorted by name
}

void Profiler::WriteText(std::ostream& out) const {
  for (const ProfileRow& row : Rows()) {
    out << row.name << " count=" << row.stats.count
        << " total_ms=" << row.stats.total_ns / 1e6
        << " self_ms=" << row.stats.self_ns / 1e6
        << " mean_us=" << row.stats.mean_ns() / 1e3
        << " max_us=" << row.stats.max_ns / 1e3 << "\n";
  }
}

void Profiler::MergeFrom(const Profiler& other) {
  for (const auto& [name, stats] : other.phases_)
    GetPhase(name).MergeFrom(stats);
}

void Profiler::Reset() {
  for (auto& [name, stats] : phases_) stats = PhaseStats{};
}

std::uint64_t Profiler::TotalCount() const {
  std::uint64_t n = 0;
  for (const auto& [name, stats] : phases_) n += stats.count;
  return n;
}

namespace {

// Same shard-cache shape as ShardedMetricsRegistry: keyed by (pointer,
// incarnation id) so a profiler destroyed and reallocated at one address
// misses instead of resolving to a dangling shard.
struct ShardSlot {
  std::uint64_t id = 0;
  Profiler* shard = nullptr;
};

std::uint64_t NextProfilerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

}  // namespace

ShardedProfiler::ShardedProfiler() : id_(NextProfilerId()) {}

Profiler& ShardedProfiler::Shard() {
  thread_local std::unordered_map<const ShardedProfiler*, ShardSlot> cache;
  ShardSlot& slot = cache[this];
  if (slot.shard != nullptr && slot.id == id_) return *slot.shard;
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Profiler>());
  slot = {id_, shards_.back().get()};
  return *slot.shard;
}

Profiler ShardedProfiler::Merged() const {
  Profiler merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) merged.MergeFrom(*shard);
  return merged;
}

std::vector<ProfileRow> ShardedProfiler::Rows() const {
  return Merged().Rows();
}

void ShardedProfiler::WriteText(std::ostream& out) const {
  Merged().WriteText(out);
}

void ShardedProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) shard->Reset();
}

ShardedProfiler& GlobalProfiler() {
  static ShardedProfiler& profiler =
      *new ShardedProfiler();  // leaked: outlives worker threads
  return profiler;
}

bool ProfilingEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetProfilingEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

double CalibrateScopeCostNs() {
  // Replays the exact work an enabled scope does (lookup + two clock
  // reads + accumulation) against a throwaway shard, best-of-3 batches so
  // a scheduler hiccup cannot inflate the estimate.
  Profiler scratch;
  constexpr int kBatch = 2000;
  double best = 1e300;
  for (int round = 0; round < 3; ++round) {
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) {
      PhaseStats& s = scratch.GetPhase("profiler.calibration");
      const auto t0 = std::chrono::steady_clock::now();
      const auto t1 = std::chrono::steady_clock::now();
      const double ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count();
      ++s.count;
      s.total_ns += ns;
      s.self_ns += ns;
      s.max_ns = std::max(s.max_ns, ns);
    }
    const double batch_ns = std::chrono::duration<double, std::nano>(
                                std::chrono::steady_clock::now() - begin)
                                .count();
    best = std::min(best, batch_ns / kBatch);
  }
  return best;
}

namespace {
// Innermost open scope on this thread — the parent for nested attribution.
thread_local ProfileScope* g_current_scope = nullptr;
}  // namespace

ProfileScope::ProfileScope(std::string_view name) {
  if (!ProfilingEnabled()) return;
  stats_ = &GlobalProfiler().Shard().GetPhase(name);
  parent_ = g_current_scope;
  g_current_scope = this;
  start_ = std::chrono::steady_clock::now();
}

ProfileScope::~ProfileScope() {
  if (stats_ == nullptr) return;
  const double dur_ns = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
  ++stats_->count;
  stats_->total_ns += dur_ns;
  stats_->self_ns += dur_ns - child_ns_;
  stats_->max_ns = std::max(stats_->max_ns, dur_ns);
  if (parent_ != nullptr) parent_->child_ns_ += dur_ns;
  g_current_scope = parent_;
}

}  // namespace sunflow::obs
