// Trace auditor — prove a structured event trace is physically consistent.
//
// Every replay engine and the planner itself emit the same event schema
// (obs/event.h); the auditor re-derives the physical invariants those
// events must satisfy and reports every violation with enough detail to
// locate it. tools/trace_inspect --audit runs it with a nonzero exit on
// any violation, and CI replays the golden configs through it, so a new
// scenario that double-books a port or drops a δ is caught by the trace it
// writes, not by a figure looking wrong later.
//
// Invariants checked (each names its id in violations):
//   port-exclusivity   no two circuit spans overlap on an input or output
//                      port *of the same switch plane* (beyond the ε slop
//                      every comparison allows) — a K-core fabric has K
//                      physical ports behind each logical port id, so
//                      spans on distinct planes never conflict; negative
//                      port ids — the dummy rows/columns square matchings
//                      are padded with — are exempt
//   delta-bounds       0 ≤ setup ≤ span length for every circuit span
//   delta-carryover    a zero-setup span in a δ-paying trace must continue
//                      a prior span on the same (plane, in, out) — δ is
//                      paid exactly once per reconfiguration, never
//                      skipped, and a circuit up on plane p says nothing
//                      about plane q's switch state
//   flow-in-circuit    a FlowFinished instant lies inside a circuit span
//                      of its own (coflow, in, out) — or a starvation τ
//                      span, where fluid drains finish off-plan
//   completion         CoflowCompleted is unique per coflow, not before
//                      its admission, equals the last FlowFinished when
//                      per-flow finishes are traced, and its CCT payload
//                      equals completed − admitted + queueing wait
//   admission          exactly one CoflowAdmitted per coflow
//   blocked-pairing    FlowBlocked/FlowUnblocked strictly alternate per
//                      flow, and each Unblocked mirrors its opener's
//                      reason/blamer with dur spanning back to it
//   teardown           every CircuitTeardown coincides with the end of a
//                      circuit span on the same (plane, in, out)
//   setup-count        (optional) the number of δ-paying spans matches the
//                      producer's executor.circuit_setups metric
//
// Scope: an inter (engine) trace is one shared-fabric timeline, so the
// fabric-wide invariants hold globally — that is AuditScope::kSharedFabric,
// the default and the strict mode CI gates on. The intra benches instead
// replay every coflow standalone on its own clock (and may run several
// algorithms through one sink), so "two spans overlap on a port" across
// coflows is meaningless there; AuditScope::kPerCoflow keys the fabric
// checks by coflow lifecycle (a re-admission after completion starts a new
// lifecycle instead of violating `admission`) and skips the setup-count
// cross-check, whose producer metric only counts one executor's work.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/event.h"

namespace sunflow::obs {

struct AuditViolation {
  std::string invariant;  ///< id from the table above
  std::string detail;     ///< human-readable locator (times, ids, ports)
};

struct AuditReport {
  std::size_t events = 0;       ///< events examined
  std::size_t checks = 0;       ///< individual assertions evaluated
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
};

/// How the trace maps onto fabric time (see the header comment).
enum class AuditScope {
  kSharedFabric,  ///< one timeline; fabric invariants hold globally
  kPerCoflow,     ///< concatenated standalone replays; checks per lifecycle
};

/// Audits a trace. `expected_setups` cross-checks the number of δ-paying
/// circuit spans against an external counter (executor.circuit_setups from
/// a run manifest); pass -1 to skip that check (it is also skipped under
/// kPerCoflow). Violations are capped at 100 per invariant so a corrupted
/// trace stays readable.
AuditReport AuditTrace(std::span<const Event> events,
                       long long expected_setups = -1,
                       AuditScope scope = AuditScope::kSharedFabric);

}  // namespace sunflow::obs
