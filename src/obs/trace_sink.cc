#include "obs/trace_sink.h"

#include <algorithm>

namespace sunflow::obs {

std::size_t MemorySink::CountOf(EventType type) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [type](const Event& e) { return e.type == type; }));
}

}  // namespace sunflow::obs
