// TraceSink — where instrumented code sends its events.
//
// Emission sites hold a `TraceSink*` that is null by default; `Emit` is an
// inlined null check, so a disabled tracer costs one predictable branch and
// no allocation, formatting or I/O (the "zero-cost when disabled"
// contract, verified in tests/obs_test.cc).
//
// Threading follows the sharded-merge contract of src/runtime's sweep
// engine: an individual sink is single-threaded — one sink per simulation
// task, like the planner itself — and parallel sweeps give every task a
// private MemorySink whose buffer is folded into the final sink *in task
// order* after the fan-out completes (runtime::MergeEvents), so exported
// traces are byte-identical at any thread count. Debug builds assert on
// cross-thread misuse: emitting into the same buffering sink from two
// threads trips a SUNFLOW_DCHECK instead of silently corrupting the
// buffer.
#pragma once

#include <iosfwd>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "obs/event.h"

namespace sunflow::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const Event& event) = 0;
};

/// The only sanctioned emission path: instrumented code never calls
/// OnEvent directly, so a null sink short-circuits before any argument
/// formatting happens.
inline void Emit(TraceSink* sink, const Event& event) {
  if (sink != nullptr) sink->OnEvent(event);
}

namespace detail {

/// Debug-only detector for cross-thread misuse of a non-sharded sink: the
/// first emission pins the owning thread, later emissions must come from
/// it. Compiles to nothing in NDEBUG builds.
class SingleThreadGuard {
 public:
#ifndef NDEBUG
  bool CheckCurrentThread() {
    const std::thread::id self = std::this_thread::get_id();
    if (owner_ == std::thread::id()) owner_ = self;
    return owner_ == self;
  }
  void Release() { owner_ = std::thread::id(); }

 private:
  std::thread::id owner_;
#else
  bool CheckCurrentThread() { return true; }
  void Release() {}
#endif
};

}  // namespace detail

/// Buffers events in memory, in emission order. The default sink for
/// benches and tests; export afterwards with WriteChromeTrace/WriteJsonl.
/// Single-threaded: parallel sweeps use one MemorySink per task and merge
/// the buffers in task order (runtime::MergeEvents).
class MemorySink : public TraceSink {
 public:
  void OnEvent(const Event& event) override {
    SUNFLOW_DCHECK(guard_.CheckCurrentThread());
    events_.push_back(event);
  }

  const std::vector<Event>& events() const { return events_; }
  void Clear() {
    events_.clear();
    guard_.Release();
  }

  /// Moves the buffer out (used by the sweep engine's task-order merge);
  /// the sink is empty and re-owned by the next emitting thread after.
  std::vector<Event> TakeEvents() && {
    guard_.Release();
    return std::move(events_);
  }

  /// Number of buffered events of one type.
  std::size_t CountOf(EventType type) const;

 private:
  std::vector<Event> events_;
  detail::SingleThreadGuard guard_;
};

/// Streams each event as one JSONL line the moment it is emitted — bounded
/// memory for large runs. The stream must outlive the sink. Single-
/// threaded like MemorySink (debug builds assert on cross-thread use).
class JsonlStreamSink : public TraceSink {
 public:
  explicit JsonlStreamSink(std::ostream& out) : out_(out) {}
  /// Flushes on destruction so lines written before an early exit or an
  /// exception unwind reach the stream (the referenced stream's own
  /// destructor does not run here).
  ~JsonlStreamSink() override;
  void OnEvent(const Event& event) override;
  /// Flushes the underlying stream; throws std::runtime_error if the
  /// stream has failed (e.g. disk full), so truncation is loud.
  void Flush();

 private:
  std::ostream& out_;
  detail::SingleThreadGuard guard_;
};

/// Shifts every event by a fixed time offset before forwarding — used by
/// the intra runner, which evaluates coflows back-to-back ("a Coflow
/// arrives only after the previous one is finished", §5.3) but plans each
/// one at t = 0.
class OffsetSink : public TraceSink {
 public:
  explicit OffsetSink(TraceSink* inner) : inner_(inner) {}

  void set_offset(Time offset) { offset_ = offset; }
  Time offset() const { return offset_; }

  void OnEvent(const Event& event) override {
    Event shifted = event;
    shifted.t += offset_;
    Emit(inner_, shifted);
  }

 private:
  TraceSink* inner_ = nullptr;
  Time offset_ = 0;
};

}  // namespace sunflow::obs
