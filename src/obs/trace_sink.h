// TraceSink — where instrumented code sends its events.
//
// Emission sites hold a `TraceSink*` that is null by default; `Emit` is an
// inlined null check, so a disabled tracer costs one predictable branch and
// no allocation, formatting or I/O (the "zero-cost when disabled"
// contract, verified in tests/obs_test.cc). Sinks are not thread-safe —
// one sink per simulation, like the planner itself.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/event.h"

namespace sunflow::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const Event& event) = 0;
};

/// The only sanctioned emission path: instrumented code never calls
/// OnEvent directly, so a null sink short-circuits before any argument
/// formatting happens.
inline void Emit(TraceSink* sink, const Event& event) {
  if (sink != nullptr) sink->OnEvent(event);
}

/// Buffers events in memory, in emission order. The default sink for
/// benches and tests; export afterwards with WriteChromeTrace/WriteJsonl.
class MemorySink : public TraceSink {
 public:
  void OnEvent(const Event& event) override { events_.push_back(event); }

  const std::vector<Event>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Number of buffered events of one type.
  std::size_t CountOf(EventType type) const;

 private:
  std::vector<Event> events_;
};

/// Streams each event as one JSONL line the moment it is emitted — bounded
/// memory for large runs. The stream must outlive the sink.
class JsonlStreamSink : public TraceSink {
 public:
  explicit JsonlStreamSink(std::ostream& out) : out_(out) {}
  void OnEvent(const Event& event) override;

 private:
  std::ostream& out_;
};

/// Shifts every event by a fixed time offset before forwarding — used by
/// the intra runner, which evaluates coflows back-to-back ("a Coflow
/// arrives only after the previous one is finished", §5.3) but plans each
/// one at t = 0.
class OffsetSink : public TraceSink {
 public:
  explicit OffsetSink(TraceSink* inner) : inner_(inner) {}

  void set_offset(Time offset) { offset_ = offset; }
  Time offset() const { return offset_; }

  void OnEvent(const Event& event) override {
    Event shifted = event;
    shifted.t += offset_;
    Emit(inner_, shifted);
  }

 private:
  TraceSink* inner_ = nullptr;
  Time offset_ = 0;
};

}  // namespace sunflow::obs
