// Metrics registry — counters, gauges and log-bucketed latency histograms.
//
// One process-wide registry (GlobalMetrics) replaces the ad-hoc
// `circuit_setups`-style tallies that used to be recomputed inside each
// bench binary. Instrument names follow a dotted hierarchy:
//   scheduler.compute_ns     histogram, wall-clock ns per scheduling pass
//   executor.circuit_setups  counter, setups that paid δ
//   executor.slots           counter, assignment slots executed
//   prt.reservations         counter, PRT reservations committed
//   admission.admits/rejects counters, deadline admission outcomes
//   replay.replans           counter, replan passes in trace replay
//   starvation.rounds        counter, τ spans executed
//
// Instruments are created on first use and never move (node-based map), so
// hot paths may cache references. Threading follows the sharded-merge
// contract of src/runtime's sweep engine: a plain MetricsRegistry is a
// single-threaded shard, and the process-wide GlobalMetrics() is a
// ShardedMetricsRegistry whose Get* calls resolve to the *calling
// thread's* private shard (so recording is lock- and race-free) and whose
// Rows()/WriteText()/Merged() fold all shards together commutatively —
// counters and histogram buckets sum, so the merged view is identical at
// any thread count. Collect only after workers have quiesced (e.g. after
// ParallelFor returned). Hot paths that cache an instrument reference must
// cache it `thread_local`, never plain `static`, or every thread would
// write the first caller's shard. Reset() zeroes values but keeps
// registrations (cached references stay valid).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sunflow::obs {

class Counter {
 public:
  void Increment(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  double value_ = 0;
};

/// HDR-style histogram: positive values land in logarithmic buckets with
/// 64 sub-buckets per power of two, bounding the relative quantile error
/// by 2^(1/128) − 1 ≈ 0.55% (cross-checked against stats::Percentile in
/// tests/obs_test.cc). Non-positive values share one underflow bucket.
/// Recording is O(log #distinct-buckets) and allocation-free after warmup.
class Histogram {
 public:
  void Record(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }

  /// Value at percentile `pct` in [0, 100], clamped into [min, max]. The
  /// same "nearest-rank on bucket midpoints" definition HDR histograms
  /// use; 0 for an empty histogram.
  double ValueAtPercentile(double pct) const;

  /// Folds another histogram in (bucket-wise sum). Merging per-shard
  /// histograms that recorded the same multiset of values yields the same
  /// state as one histogram recording them all — the sharded-merge
  /// equivalence tests/runtime_test.cc locks in.
  void MergeFrom(const Histogram& other);

  void Reset();

 private:
  static constexpr int kSubBucketsPerOctave = 64;

  static int BucketIndex(double v);
  static double BucketMid(int index);

  std::map<int, std::uint64_t> buckets_;  // positive values, by log2 bucket
  std::uint64_t underflow_ = 0;           // v <= 0
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Flat dump row (one per instrument) for text and CSV export.
struct MetricRow {
  std::string name;
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  std::uint64_t count = 0;
  double value = 0;  ///< counter/gauge value; histogram sum
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double max = 0;
};

class MetricsRegistry {
 public:
  /// Creates on first use; returned references are stable for the life of
  /// the registry (Reset does not invalidate them).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Read-only lookups; null when the instrument was never created.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// All instruments, sorted by name.
  std::vector<MetricRow> Rows() const;

  /// Human-readable dump, one instrument per line.
  void WriteText(std::ostream& out) const;

  /// Zeroes every instrument, keeping registrations and addresses.
  void Reset();

  /// Folds another registry in: counters and histograms sum, gauges add
  /// their values (shards track deltas under fan-out).
  void MergeFrom(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Thread-safe façade over per-thread MetricsRegistry shards. Recording
/// (Get*) touches only the calling thread's shard — no locks, no atomics,
/// no false sharing on the hot path; the one-time shard creation takes a
/// mutex. Reading (Rows/WriteText/Merged/Find*) folds all shards together
/// and must only run once concurrent writers have quiesced (after the
/// pool's ParallelFor returned / the pool was destroyed).
class ShardedMetricsRegistry {
 public:
  ShardedMetricsRegistry();
  ShardedMetricsRegistry(const ShardedMetricsRegistry&) = delete;
  ShardedMetricsRegistry& operator=(const ShardedMetricsRegistry&) = delete;

  /// The calling thread's shard (created on first use). Instrument
  /// references obtained from it are stable but thread-bound: cache them
  /// `thread_local`, never plain `static`.
  MetricsRegistry& Shard();

  Counter& GetCounter(std::string_view name) {
    return Shard().GetCounter(name);
  }
  Gauge& GetGauge(std::string_view name) { return Shard().GetGauge(name); }
  Histogram& GetHistogram(std::string_view name) {
    return Shard().GetHistogram(name);
  }

  /// Merged snapshot of every shard. Quiesce writers first.
  MetricsRegistry Merged() const;

  /// Merged read-only views (same contract as Merged). The returned rows
  /// are identical at any thread count for the same recorded values.
  std::vector<MetricRow> Rows() const;
  void WriteText(std::ostream& out) const;

  /// Merged lookups: null when no shard ever created the instrument. The
  /// pointee is a snapshot owned by an internal buffer that is replaced on
  /// the next Find* call from the same thread — read it immediately.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Zeroes every instrument in every shard (registrations survive).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MetricsRegistry>> shards_;
  std::uint64_t id_ = 0;  ///< distinguishes reincarnations at one address
};

/// The process-wide registry used by the built-in instrumentation.
ShardedMetricsRegistry& GlobalMetrics();

/// Records the scope's wall-clock duration (nanoseconds) into a histogram
/// on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    hist_.Record(static_cast<double>(ns));
  }

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sunflow::obs
