// Sim-time telemetry timelines: a sim-clock-driven sampler that turns one
// engine replay into a bounded-memory time series — per-plane fabric
// utilization, idle fraction, coflow/queue gauges, plan-memo hit rate and
// replan wall latency with a rolling SLO check — plus CSV/JSONL export and
// end-of-run aggregates for the run manifest.
//
// Determinism contract (docs/observability.md "Telemetry timelines"):
// every *default* column is derived from sim physics (reservations, the
// sim clock, queue/coflow counts), so the exported file is byte-identical
// at any --threads value — CI diffs it at 1 vs 8. Wall-clock and memo
// columns (replan latency, rolling percentiles, cache hits) are
// host-dependent AND thread-count-dependent (the parallel planner memoizes
// per group), so they are export-gated behind `include_wall` and otherwise
// surface only through Summarize() / the run manifest, which is never
// byte-diffed.
//
// Memory contract: the sample buffer never exceeds `cap`. When a push
// would reach the cap the buffer is decimated — adjacent samples merge
// pairwise (sums stay sums, gauges take the max, "latest" fields take the
// later sample's) and the width of *future* windows doubles — so a
// million-coflow run costs O(cap) retained samples at progressively
// coarser Δt, never an unbounded series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace sunflow::obs {

struct TimelineConfig {
  /// Base sample window in sim seconds. Decimation doubles the effective
  /// width each time the buffer hits `cap`.
  Time dt = 0.1;
  /// Hard ceiling on retained samples (>= 2). The buffer is decimated
  /// before it would reach this, so size() <= cap always holds.
  std::size_t cap = 4096;
  /// Replan wall-latency SLO budget in microseconds; a replan slower than
  /// this burns the budget (ReplanSloStats::burn). 0 disables the check.
  double slo_budget_us = 0;
  /// Number of most-recent replans in the rolling p50/p99 window.
  std::size_t rolling_window = 64;
  /// Export the host-dependent columns (wall latency, rolling
  /// percentiles, memo hits) in WriteCsv/WriteJsonl. Off by default so
  /// the exported file honours the byte-determinism contract above.
  bool include_wall = false;
};

/// One clipped circuit interval as the driver executed it: `plane` busy on
/// one input and one output port for [begin, end). The sampler is
/// deliberately blind to which ports — it aggregates per (plane, side).
struct TimelineCircuitUse {
  PlaneId plane = 0;
  Time begin = 0;
  Time end = 0;
};

/// One retained sample window [begin, end). Interval fields are exact
/// (contributions are split across window boundaries); gauge fields carry
/// the maximum observed in the window; `admitted` is the cumulative
/// admission count when the window closed.
struct TimelineSample {
  Time begin = 0;
  Time end = 0;
  /// Busy port-seconds per plane, input / output side. Utilization of a
  /// plane-side over the window is busy / (ports * width). Indexed by
  /// plane; shorter than the fabric's K when higher planes never carried
  /// a circuit in this window.
  std::vector<double> busy_in;
  std::vector<double> busy_out;
  /// Seconds of the window in which the engine was executing a span
  /// (complement: idle gaps between bursts).
  double engine_active_s = 0;
  int active = 0;           ///< max concurrently active coflows
  std::size_t pending = 0;  ///< max pending releases (event-queue depth)
  std::uint64_t admitted = 0;
  int blocked = 0;  ///< max coflows with zero circuit time in a span
  int replans = 0;
  // --- host-dependent (export-gated; see the determinism contract) -----
  double replan_ns_max = 0;
  double replan_ns_sum = 0;
  double rolling_p50_ns = 0;  ///< rolling percentiles as of the window
  double rolling_p99_ns = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_lookups = 0;
  /// Max planning groups a replan in this window offered the thread pool
  /// (SunflowSchedule::parallel_groups; 0 = every replan took the serial
  /// path).
  std::uint64_t pool_groups_max = 0;

  Time width() const { return end - begin; }
};

/// Run-level replan wall-latency aggregates against the SLO budget.
struct ReplanSloStats {
  std::uint64_t replans = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;
  /// Replans that exceeded the budget (0 when no budget configured).
  std::uint64_t burn = 0;
  /// Sim time of the first over-budget replan, -1 if none.
  Time first_breach_t = -1;
};

/// End-of-run aggregates. Utilization and idleness come from exact
/// accumulators (not the decimated samples), so decimation never changes
/// them; util_p99 is the only field computed over the retained windows.
struct TimelineSummary {
  std::size_t samples = 0;
  int planes = 0;
  PortId ports = 0;
  Time horizon_begin = 0;
  Time horizon_end = 0;
  /// Mean fabric utilization over the engine-active horizon: busy
  /// port-seconds / (2 sides * planes * ports * horizon).
  double util_mean = 0;
  /// p99 of per-window fabric utilization across retained samples.
  double util_p99 = 0;
  /// §5.4 network idleness, computed online with NetworkIdleness()'s
  /// exact formula: 1 - |union of [arrival, arrival + TpL)| / horizon
  /// over [first arrival, last demand end].
  double idle_fraction = 0;
  /// Fraction of [first span begin, last span end] the engine spent
  /// executing spans (vs fast-forwarding over idle gaps).
  double engine_active_fraction = 0;
  std::size_t decimations = 0;
  double memo_hit_rate = 0;  ///< memo hits / lookups over the run
  /// Peak pool occupancy: the largest group fan-out any replan offered
  /// the planning pool (0 when every replan planned serially).
  std::uint64_t pool_peak_groups = 0;
  ReplanSloStats slo;
};

/// The sampler. Ingestion calls come from ReplayDriver (the sole caller
/// in-tree); export/summary calls come from the bench session after the
/// run. Not thread-safe — one sampler observes one replay, exactly like a
/// TraceSink.
class TimelineSampler {
 public:
  explicit TimelineSampler(const TimelineConfig& config = {});

  // --- ingestion (driver-facing) -------------------------------------

  /// Starts (or restarts) a run: clears all samples and accumulators.
  void BeginRun(PortId num_ports);
  /// A coflow admitted with demand interval [arrival, arrival + tpl).
  /// Admissions must arrive in non-decreasing `arrival` order (the event
  /// queue's (time, seq) pop order guarantees this), which makes the
  /// online idleness union exact.
  void NoteAdmitted(Time arrival, Time tpl);
  /// Pending-release queue depth observed at the top of a loop iteration.
  void NoteQueueDepth(Time t, std::size_t depth);
  /// One replan at sim time `t` that took `wall_ns` of host time, hit
  /// the plan memo `memo_hits` times out of `memo_lookups` requests, and
  /// offered `pool_groups` independent planning groups to the pool (0 =
  /// serial path).
  void NoteReplan(Time t, double wall_ns, std::uint64_t memo_hits,
                  std::uint64_t memo_lookups, std::uint64_t pool_groups = 0);
  /// The engine executed a span covering [begin, end).
  void NoteEngineSpan(Time begin, Time end);
  /// Clipped circuit occupancy plus coflow gauges for the span
  /// [t, t_next): `active` coflows were admitted, `blocked` of them got
  /// zero circuit time in the span.
  void IngestCircuits(Time t, Time t_next,
                      const std::vector<TimelineCircuitUse>& uses, int active,
                      int blocked);
  /// Finalizes every window ending at or before `t` with the current
  /// gauges. The driver calls this after each harvested span and after an
  /// idle-gap fast-forward.
  void Advance(Time t, int active, std::size_t pending,
               std::uint64_t admitted);
  /// Finalizes the trailing partial window at the run end `t`.
  void EndRun(Time t);

  // --- inspection / export -------------------------------------------

  const std::vector<TimelineSample>& samples() const { return samples_; }
  const TimelineConfig& config() const { return config_; }
  std::size_t decimations() const { return decimations_; }
  /// Current effective window width (config.dt * 2^decimations).
  Time effective_dt() const { return cur_dt_; }
  int planes() const { return planes_; }
  PortId ports() const { return ports_; }
  bool empty() const { return samples_.empty() && open_.empty(); }

  TimelineSummary Summarize() const;
  /// `# sunflow.timeline/v1` header comment + CSV rows. Deterministic
  /// bytes unless config.include_wall.
  void WriteCsv(std::ostream& os) const;
  /// One meta object then one object per sample.
  void WriteJsonl(std::ostream& os) const;

 private:
  TimelineSample& WindowAt(Time t);
  void EnsureOpenThrough(Time t);
  void AddBusy(PlaneId plane, bool input, Time begin, Time end);
  void FinalizeThrough(Time t);
  void EmitWindow(TimelineSample s);
  void Decimate();
  static TimelineSample MergePair(TimelineSample a, const TimelineSample& b);

  TimelineConfig config_;
  PortId ports_ = 0;
  int planes_ = 0;

  // Open (not yet finalized) windows, oldest first; contiguous in time
  // starting at next_open_begin_ - k * widths. Interval contributions land
  // here; Advance() moves closed windows into samples_.
  std::vector<TimelineSample> open_;
  Time next_open_begin_ = 0;
  Time cur_dt_ = 0.1;

  std::vector<TimelineSample> samples_;
  std::size_t decimations_ = 0;

  // Close-time gauges (set by Advance, stamped into finalized windows).
  int cur_active_ = 0;
  std::size_t cur_pending_ = 0;
  std::uint64_t cur_admitted_ = 0;

  // Online §5.4 idleness union: admissions arrive sorted by arrival, so
  // the union of [arrival, arrival + tpl) is a closed prefix (covered_)
  // plus one growing segment [seg_begin_, cover_end_).
  bool any_demand_ = false;
  Time first_arrival_ = 0;
  Time seg_begin_ = 0;
  Time cover_end_ = 0;
  Time last_demand_end_ = 0;
  double covered_ = 0;

  // Exact run-level accumulators (decimation-independent).
  double total_busy_s_ = 0;
  double total_engine_active_s_ = 0;
  bool any_span_ = false;
  Time first_span_begin_ = 0;
  Time last_span_end_ = 0;

  // Replan latency: run-level HDR histogram + rolling ring buffer.
  Histogram replan_ns_;
  std::vector<double> rolling_;  ///< ring buffer, rolling_window entries
  std::size_t rolling_next_ = 0;
  std::uint64_t slo_burn_ = 0;
  Time slo_first_breach_ = -1;
  std::uint64_t memo_hits_total_ = 0;
  std::uint64_t memo_lookups_total_ = 0;
  std::uint64_t pool_peak_groups_ = 0;
};

}  // namespace sunflow::obs
