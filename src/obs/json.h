// Minimal JSON document model — build, serialize, parse.
//
// The run-manifest and bench-regression tooling need real (nested) JSON,
// unlike the flat single-line events obs/jsonl.h scans with a field
// finder. This is a deliberately small tagged-variant value: enough to
// write a manifest, read it back byte-faithfully, and diff two bench
// result files — not a general-purpose JSON library (no streaming, no
// comments, UTF-8 passes through unvalidated).
//
// Numbers are doubles; serialization uses the shortest representation
// that round-trips exactly (FormatJsonNumber, shared with the JSONL
// writer), so Parse(value.ToString()) == value for any tree built here.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace sunflow::obs {

/// Shortest decimal representation of `v` that strtod parses back to the
/// same double (%.17g fallback).
std::string FormatJsonNumber(double v);

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Sorted keys: serialization is deterministic regardless of insertion
  /// order, which keeps manifests diffable.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}  // NOLINT(google-explicit-constructor)
  JsonValue(bool b) : value_(b) {}                // NOLINT(google-explicit-constructor)
  JsonValue(double d) : value_(d) {}              // NOLINT(google-explicit-constructor)
  JsonValue(int i) : value_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::uint64_t i) : value_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::string s) : value_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::string_view s) : value_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(const char* s) : value_(std::string(s)) {}  // NOLINT(google-explicit-constructor)

  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kNumber; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// Object field access. operator[] inserts a null on a missing key (and
  /// converts a null value into an object, so building nests naturally);
  /// Find returns null on a missing key; at() throws naming the key.
  JsonValue& operator[](const std::string& key);
  const JsonValue* Find(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;

  /// Array append (converts a null value into an array first).
  void Append(JsonValue v);

  std::size_t size() const;

  /// Serialization. indent < 0 writes compact one-line JSON; indent >= 0
  /// pretty-prints with that many spaces per level.
  void Write(std::ostream& out, int indent = -1) const;
  std::string ToString(int indent = -1) const;

  /// Parses one JSON document (surrounding whitespace allowed, trailing
  /// garbage rejected). Throws std::runtime_error with a byte offset.
  static JsonValue Parse(std::string_view text);
  /// Parses a whole file; throws std::runtime_error naming the path on
  /// open failure or parse error.
  static JsonValue ParseFile(const std::string& path);

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.value_ == b.value_;
  }

 private:
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  void WriteIndented(std::ostream& out, int indent, int depth) const;

  // Alternative order must match Kind's enumerator order.
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace sunflow::obs
