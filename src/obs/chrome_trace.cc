#include "obs/chrome_trace.h"

#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/jsonl.h"

namespace sunflow::obs {

namespace {

// Process ids of the three track groups.
constexpr int kPortsPid = 1;
constexpr int kCoflowsPid = 2;
constexpr int kSchedulerPid = 3;

// Scheduler-process tids.
constexpr int kComputeTid = 0;
constexpr int kStarvationTid = 1;

double Micros(Time t) { return t * 1e6; }

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) { out_ << "{\"traceEvents\":["; }

  void Close() { out_ << "\n]}\n"; }

  // One trace-event record. `extra` is raw JSON appended inside the object
  // (e.g. ",\"dur\":12.5" or args) — already escaped by the caller.
  void Record(const std::string& name, char phase, double ts, int pid,
              long long tid, const std::string& extra) {
    out_ << (first_ ? "\n" : ",\n");
    first_ = false;
    out_ << "{\"name\":\"" << EscapeJson(name) << "\",\"ph\":\"" << phase
         << "\",\"ts\":" << ts << ",\"pid\":" << pid << ",\"tid\":" << tid
         << extra << "}";
  }

  void Meta(const std::string& what, const std::string& value, int pid,
            long long tid) {
    Record(what, 'M', 0, pid, tid,
           ",\"args\":{\"name\":\"" + EscapeJson(value) + "\"}");
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

std::string DurArgs(double dur_us, const std::string& args_json) {
  std::ostringstream os;
  os << ",\"dur\":" << dur_us;
  if (!args_json.empty()) os << ",\"args\":{" << args_json << "}";
  return os.str();
}

std::string Args(const std::string& args_json) {
  return args_json.empty() ? std::string()
                           : ",\"args\":{" + args_json + "}";
}

}  // namespace

void WriteChromeTrace(std::ostream& out, std::span<const Event> events,
                      const ChromeTraceOptions& options) {
  Writer w(out);

  std::set<PortId> ports;
  std::set<CoflowId> coflows;

  for (const Event& e : events) {
    std::ostringstream name;
    std::ostringstream args;
    switch (e.type) {
      case EventType::kCircuitSetup: {
        if (!options.port_tracks) break;
        ports.insert(e.in);
        name << "circuit " << e.in << "->" << e.out;
        args << "\"coflow\":" << e.coflow << ",\"setup_s\":" << e.value;
        w.Record(name.str(), 'X', Micros(e.t), kPortsPid, e.in,
                 DurArgs(Micros(e.dur), args.str()));
        // The δ prefix as a nested slice, so reconfiguration time is
        // visually distinct from transmission (Fig 1's hatched spans).
        if (e.value > 0) {
          w.Record("delta", 'X', Micros(e.t), kPortsPid, e.in,
                   DurArgs(Micros(e.value), ""));
        }
        break;
      }
      case EventType::kCircuitTeardown:
        if (!options.port_tracks) break;
        ports.insert(e.in);
        name << "teardown " << e.in << "->" << e.out;
        w.Record(name.str(), 'i', Micros(e.t), kPortsPid, e.in,
                 ",\"s\":\"t\"");
        break;
      case EventType::kCoflowAdmitted:
        if (!options.coflow_tracks) break;
        coflows.insert(e.coflow);
        name << "admitted";
        args << "\"planned_cct_s\":" << e.value;
        w.Record(name.str(), 'i', Micros(e.t), kCoflowsPid, e.coflow,
                 ",\"s\":\"t\"" + Args(args.str()));
        break;
      case EventType::kCoflowCompleted:
        if (!options.coflow_tracks) break;
        coflows.insert(e.coflow);
        name << "coflow " << e.coflow;
        args << "\"cct_s\":" << e.value;
        // value carries the CCT, so the lifetime span is [t − cct, t].
        w.Record(name.str(), 'X', Micros(e.t - e.value), kCoflowsPid,
                 e.coflow, DurArgs(Micros(e.value), args.str()));
        break;
      case EventType::kFlowFinished:
        if (!options.coflow_tracks) break;
        coflows.insert(e.coflow);
        name << "flow " << e.in << "->" << e.out << " done";
        w.Record(name.str(), 'i', Micros(e.t), kCoflowsPid, e.coflow,
                 ",\"s\":\"t\"");
        break;
      case EventType::kAssignmentComputed:
        if (!options.scheduler_track) break;
        name << "plan (" << e.count << " coflows)";
        args << "\"compute_ns\":" << e.value << ",\"coflows\":" << e.count;
        w.Record(name.str(), 'i', Micros(e.t), kSchedulerPid, kComputeTid,
                 ",\"s\":\"t\"" + Args(args.str()));
        break;
      case EventType::kStarvationRound:
        if (!options.scheduler_track) break;
        name << "phi " << e.count;
        args << "\"k\":" << e.count;
        w.Record(name.str(), 'X', Micros(e.t), kSchedulerPid, kStarvationTid,
                 DurArgs(Micros(e.dur), args.str()));
        break;
      case EventType::kFlowBlocked:
        // Only the closing kFlowUnblocked knows the span length; the open
        // marker renders as an instant so half-open episodes (truncated
        // traces) still show up.
        if (!options.coflow_tracks) break;
        coflows.insert(e.coflow);
        name << "blocked " << e.in << "->" << e.out << " ("
             << ToString(static_cast<BlockReason>(e.count)) << ")";
        args << "\"blamer\":" << static_cast<long long>(e.value)
             << ",\"reason\":\""
             << ToString(static_cast<BlockReason>(e.count)) << "\"";
        w.Record(name.str(), 'i', Micros(e.t), kCoflowsPid, e.coflow,
                 ",\"s\":\"t\"" + Args(args.str()));
        break;
      case EventType::kFlowUnblocked:
        if (!options.coflow_tracks) break;
        coflows.insert(e.coflow);
        name << "wait " << e.in << "->" << e.out << " ("
             << ToString(static_cast<BlockReason>(e.count)) << ")";
        args << "\"blamer\":" << static_cast<long long>(e.value)
             << ",\"reason\":\""
             << ToString(static_cast<BlockReason>(e.count)) << "\"";
        // The episode as a span: [t − dur, t] on the coflow's track.
        w.Record(name.str(), 'X', Micros(e.t - e.dur), kCoflowsPid, e.coflow,
                 DurArgs(Micros(e.dur), args.str()));
        break;
    }
  }

  // Track naming metadata so Perfetto shows "port 3" / "coflow 12" instead
  // of bare tids.
  if (options.port_tracks && !ports.empty()) {
    w.Meta("process_name", "switch ports", kPortsPid, 0);
    for (const PortId p : ports) {
      w.Meta("thread_name", "port " + std::to_string(p), kPortsPid, p);
    }
  }
  if (options.coflow_tracks && !coflows.empty()) {
    w.Meta("process_name", "coflows", kCoflowsPid, 0);
    for (const CoflowId c : coflows) {
      w.Meta("thread_name", "coflow " + std::to_string(c), kCoflowsPid, c);
    }
  }
  if (options.scheduler_track) {
    w.Meta("process_name", "scheduler", kSchedulerPid, 0);
    w.Meta("thread_name", "compute", kSchedulerPid, kComputeTid);
    w.Meta("thread_name", "starvation guard", kSchedulerPid, kStarvationTid);
  }

  w.Close();
}

void WriteChromeTraceFile(const std::string& path,
                          std::span<const Event> events,
                          const ChromeTraceOptions& options) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open trace output " + path);
  WriteChromeTrace(f, events, options);
  // Flush before checking so a full disk surfaces here, not in the
  // silent ofstream destructor.
  f.flush();
  if (!f.good()) throw std::runtime_error("error writing trace to " + path);
}

}  // namespace sunflow::obs
