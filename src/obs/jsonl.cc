#include "obs/jsonl.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/trace_sink.h"

namespace sunflow::obs {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

namespace {

// %.17g round-trips any double; shorter representations are kept short.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

}  // namespace

void WriteJsonlEvent(std::ostream& out, const Event& e) {
  out << "{\"type\":\"" << ToString(e.type) << "\",\"t\":" << Num(e.t);
  if (e.dur != 0) out << ",\"dur\":" << Num(e.dur);
  if (e.coflow >= 0) out << ",\"coflow\":" << e.coflow;
  if (e.in >= 0) out << ",\"in\":" << e.in;
  if (e.out >= 0) out << ",\"out\":" << e.out;
  if (e.value != 0) out << ",\"value\":" << Num(e.value);
  if (e.count != 0) out << ",\"count\":" << e.count;
  if (e.plane != 0) out << ",\"plane\":" << e.plane;
  out << "}\n";
}

void WriteJsonl(std::ostream& out, std::span<const Event> events) {
  for (const Event& e : events) WriteJsonlEvent(out, e);
}

void JsonlStreamSink::OnEvent(const Event& event) {
  SUNFLOW_DCHECK(guard_.CheckCurrentThread());
  WriteJsonlEvent(out_, event);
}

JsonlStreamSink::~JsonlStreamSink() {
  // Best-effort: destructors must not throw, but the flush still makes
  // the already-written lines durable on early exit / unwind.
  out_.flush();
}

void JsonlStreamSink::Flush() {
  out_.flush();
  if (!out_.good()) {
    throw std::runtime_error("jsonl sink: stream failed during flush");
  }
}

namespace {

// Minimal field scanner for the exact shape WriteJsonlEvent produces (and
// any whitespace-insensitive reordering of it). Finds `"key":` and parses
// the value that follows; good enough for our own format without pulling
// in a JSON dependency.
bool FindValue(const std::string& line, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\"";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == ':')) ++pos;
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    const std::size_t end = line.find('"', pos + 1);
    if (end == std::string::npos) return false;
    out = line.substr(pos + 1, end - pos - 1);
  } else {
    std::size_t end = pos;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    out = line.substr(pos, end - pos);
  }
  return true;
}

double ParseNum(const std::string& s, int line_no, const char* key) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) {
    throw std::runtime_error("jsonl line " + std::to_string(line_no) +
                             ": bad number for \"" + key + "\"");
  }
  return v;
}

}  // namespace

std::vector<Event> ReadJsonl(std::istream& in) {
  std::vector<Event> events;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string field;
    if (!FindValue(line, "type", field)) {
      throw std::runtime_error("jsonl line " + std::to_string(line_no) +
                               ": missing \"type\"");
    }
    Event e;
    if (!EventTypeFromString(field, e.type)) {
      throw std::runtime_error("jsonl line " + std::to_string(line_no) +
                               ": unknown event type '" + field + "'");
    }
    if (!FindValue(line, "t", field)) {
      throw std::runtime_error("jsonl line " + std::to_string(line_no) +
                               ": missing \"t\"");
    }
    e.t = ParseNum(field, line_no, "t");
    if (FindValue(line, "dur", field)) e.dur = ParseNum(field, line_no, "dur");
    if (FindValue(line, "coflow", field))
      e.coflow = static_cast<CoflowId>(ParseNum(field, line_no, "coflow"));
    if (FindValue(line, "in", field))
      e.in = static_cast<PortId>(ParseNum(field, line_no, "in"));
    if (FindValue(line, "out", field))
      e.out = static_cast<PortId>(ParseNum(field, line_no, "out"));
    if (FindValue(line, "value", field))
      e.value = ParseNum(field, line_no, "value");
    if (FindValue(line, "count", field))
      e.count = static_cast<std::int64_t>(ParseNum(field, line_no, "count"));
    if (FindValue(line, "plane", field))
      e.plane = static_cast<PlaneId>(ParseNum(field, line_no, "plane"));
    events.push_back(e);
  }
  return events;
}

std::vector<Event> ReadJsonlFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file " + path);
  return ReadJsonl(f);
}

}  // namespace sunflow::obs
