// Chrome trace-event JSON exporter.
//
// Renders a buffered event stream as the Trace Event Format that Perfetto
// and chrome://tracing load natively: one track ("thread") per switch
// input port under the "switch ports" process, one track per coflow under
// the "coflows" process, and a "scheduler" process carrying compute passes
// and starvation-guard rounds. Simulation seconds map to trace
// microseconds, so a δ = 10 ms setup renders as a 10000 µs slice.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/event.h"

namespace sunflow::obs {

struct ChromeTraceOptions {
  bool port_tracks = true;    ///< per-input-port circuit Gantt
  bool coflow_tracks = true;  ///< per-coflow lifetime spans
  bool scheduler_track = true;
};

/// Writes a complete JSON object ({"traceEvents":[...]}) to `out`.
void WriteChromeTrace(std::ostream& out, std::span<const Event> events,
                      const ChromeTraceOptions& options = {});

/// Convenience: writes to a file; throws std::runtime_error on I/O errors.
void WriteChromeTraceFile(const std::string& path,
                          std::span<const Event> events,
                          const ChromeTraceOptions& options = {});

}  // namespace sunflow::obs
