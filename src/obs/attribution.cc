#include "obs/attribution.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace sunflow::obs {

namespace {

// Interval classes, in label priority order (lower wins a segment).
enum Class : int { kTransmit = 0, kDelta = 1, kContention = 2, kHold = 3 };

struct Boundary {
  Time t = 0;
  Class cls = kTransmit;
  int delta = 0;  ///< +1 open, -1 close
  CoflowId blamer = -1;
};

// Everything the sweep needs about one coflow, gathered in one pass.
struct CoflowEvents {
  bool admitted_seen = false;
  bool completed_seen = false;
  Time admitted = 0;
  Time pre_admission = 0;
  Time completed = 0;
  Time cct_value = 0;
  double planner_compute_ns = 0;
  std::vector<Boundary> boundaries;
  // For the critical-path walk.
  std::vector<Event> setups;    ///< kCircuitSetup
  std::vector<Event> episodes;  ///< kFlowUnblocked (closed blocked spans)
  // Open kFlowBlocked episodes awaiting their kFlowUnblocked, keyed by
  // flow; whatever is still open at completion is treated as blocked to
  // the end (truncated traces should still attribute what they can).
  std::map<std::pair<PortId, PortId>, Event> open_blocked;
};

void AddInterval(CoflowEvents& ce, Time begin, Time end, Class cls,
                 CoflowId blamer) {
  if (end <= begin) return;
  ce.boundaries.push_back({begin, cls, +1, blamer});
  ce.boundaries.push_back({end, cls, -1, blamer});
}

// Labels every elementary segment of [admitted, completed) and accumulates
// the component seconds. Priority: transmit > δ > contention > hold.
void Sweep(const CoflowEvents& ce, CoflowAttribution& out) {
  std::vector<Boundary> bs;
  bs.reserve(ce.boundaries.size());
  // Clip to the attribution window; intervals fully outside vanish.
  for (Boundary b : ce.boundaries) {
    b.t = std::clamp(b.t, ce.admitted, ce.completed);
    bs.push_back(b);
  }
  std::sort(bs.begin(), bs.end(),
            [](const Boundary& a, const Boundary& b) { return a.t < b.t; });

  std::map<CoflowId, int> blamers;  // open contention intervals per blamer
  int active[4] = {0, 0, 0, 0};
  std::map<CoflowId, Time> share;
  Time prev = ce.admitted;
  std::size_t i = 0;
  while (prev < ce.completed) {
    const Time cur =
        i < bs.size() ? std::min(bs[i].t, ce.completed) : ce.completed;
    if (cur > prev) {
      const Time len = cur - prev;
      if (active[kTransmit] > 0) {
        out.transmit += len;
      } else if (active[kDelta] > 0) {
        out.delta += len;
      } else if (active[kContention] > 0) {
        out.contention += len;
        std::size_t distinct = 0;
        for (const auto& [id, n] : blamers)
          if (n > 0) ++distinct;
        if (distinct > 0) {
          const Time each = len / static_cast<double>(distinct);
          for (const auto& [id, n] : blamers)
            if (n > 0) share[id] += each;
        } else {
          share[-1] += len;
        }
      } else if (active[kHold] > 0) {
        out.starvation_hold += len;
      } else {
        out.unattributed += len;
      }
      prev = cur;
    }
    // Apply every boundary at this instant before labeling the next
    // segment (zero-length segments contribute nothing either way).
    while (i < bs.size() && bs[i].t <= prev) {
      active[bs[i].cls] += bs[i].delta;
      if (bs[i].cls == kContention) blamers[bs[i].blamer] += bs[i].delta;
      ++i;
    }
    if (i >= bs.size() && prev >= ce.completed) break;
  }

  out.by_blamer.reserve(share.size());
  for (const auto& [id, s] : share) out.by_blamer.push_back({id, s});
  std::sort(out.by_blamer.begin(), out.by_blamer.end(),
            [](const ContentionShare& a, const ContentionShare& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.blamer < b.blamer;
            });
}

// Backward walk from the coflow's completion through the spans that
// explain it: the finishing transmit, its δ prefix, the blocked episode
// that delayed the circuit, the circuit before that — until the admission
// instant (or a gap the trace cannot explain). The walk stays on the
// last-finishing flow: the coflow completes when that flow does, so its
// history of circuits, blocked waits, and unscheduled gaps IS the causal
// chain behind the CCT. (Rewinding through whichever parallel flow's span
// happens to cover each instant would instead produce hundreds of
// δ-prefix micro-steps with no causal meaning.)
std::vector<CriticalPathStep> WalkCriticalPath(const CoflowEvents& ce) {
  std::vector<CriticalPathStep> path;
  Time c = ce.completed;
  PortId cur_in = -1, cur_out = -1;
  for (int iter = 0; iter < 256 && c > ce.admitted + kTimeEps; ++iter) {
    const bool flow_known = cur_in >= 0;
    // 1. A circuit span of the flow ending (or still up) at c. It must
    // START strictly before c — a span beginning at c explains nothing of
    // the time before it, and accepting one would stall the walk. The
    // first iteration (flow not yet known) identifies the finishing flow
    // as the owner of the latest-starting span covering the completion.
    const Event* span = nullptr;
    for (const Event& e : ce.setups) {
      if (e.t >= c - kTimeEps || e.t + e.dur < c - kTimeEps) continue;
      if (flow_known && (e.in != cur_in || e.out != cur_out)) continue;
      if (span == nullptr || e.t > span->t) span = &e;
    }
    if (span != nullptr) {
      const Time begin = std::max(span->t + span->value, ce.admitted);
      if (c > begin + kTimeEps) {
        path.push_back({CriticalPathStep::Kind::kTransmit, begin, c, span->in,
                        span->out});
      }
      if (span->value > 0 && begin > span->t + kTimeEps) {
        path.push_back({CriticalPathStep::Kind::kDelta, span->t, begin,
                        span->in, span->out});
      }
      cur_in = span->in;
      cur_out = span->out;
      c = span->t;
      continue;
    }
    // 2. A blocked episode of the flow ending at c.
    const Event* ep = nullptr;
    for (const Event& e : ce.episodes) {
      if (std::abs(e.t - c) > kTimeEps) continue;
      if (flow_known && (e.in != cur_in || e.out != cur_out)) continue;
      if (ep == nullptr || e.dur > ep->dur) ep = &e;
    }
    if (ep != nullptr && ep->dur > kTimeEps) {
      path.push_back({CriticalPathStep::Kind::kBlocked, ep->t - ep->dur,
                      ep->t, ep->in, ep->out,
                      static_cast<CoflowId>(ep->value),
                      static_cast<BlockReason>(ep->count)});
      cur_in = ep->in;
      cur_out = ep->out;
      c = ep->t - ep->dur;
      continue;
    }
    // 3. Nothing of this flow ends here: jump the gap back to the latest
    // prior span or episode end of the flow (or to the admission if none)
    // — time the planner simply did not schedule this flow.
    Time prev_end = ce.admitted;
    for (const Event& e : ce.setups) {
      if (flow_known && (e.in != cur_in || e.out != cur_out)) continue;
      if (e.t + e.dur < c - kTimeEps)
        prev_end = std::max(prev_end, e.t + e.dur);
    }
    for (const Event& e : ce.episodes) {
      if (flow_known && (e.in != cur_in || e.out != cur_out)) continue;
      if (e.t < c - kTimeEps) prev_end = std::max(prev_end, e.t);
    }
    path.push_back({CriticalPathStep::Kind::kGap, prev_end, c});
    if (prev_end <= ce.admitted + kTimeEps) break;
    c = prev_end;
  }
  return path;
}

}  // namespace

const char* ToString(CriticalPathStep::Kind kind) {
  switch (kind) {
    case CriticalPathStep::Kind::kTransmit:
      return "transmit";
    case CriticalPathStep::Kind::kDelta:
      return "delta";
    case CriticalPathStep::Kind::kBlocked:
      return "blocked";
    case CriticalPathStep::Kind::kGap:
      return "gap";
  }
  return "?";
}

AttributionReport Attribute(std::span<const Event> events) {
  std::map<CoflowId, CoflowEvents> per_coflow;
  std::vector<const Event*> plans;
  std::map<PlaneId, Time> delta_by_plane;

  for (const Event& e : events) {
    if (e.type == EventType::kAssignmentComputed) {
      plans.push_back(&e);
      continue;
    }
    if (e.coflow < 0) continue;
    CoflowEvents& ce = per_coflow[e.coflow];
    switch (e.type) {
      case EventType::kCoflowAdmitted:
        ce.admitted_seen = true;
        ce.admitted = e.t;
        ce.pre_admission = std::max(0.0, e.dur);
        break;
      case EventType::kCoflowCompleted:
        ce.completed_seen = true;
        ce.completed = e.t;
        ce.cct_value = e.value;
        break;
      case EventType::kCircuitSetup: {
        const Time setup = std::clamp(e.value, 0.0, e.dur);
        AddInterval(ce, e.t, e.t + setup, kDelta, -1);
        AddInterval(ce, e.t + setup, e.t + e.dur, kTransmit, -1);
        if (setup > 0) delta_by_plane[e.plane] += setup;
        ce.setups.push_back(e);
        break;
      }
      case EventType::kFlowBlocked:
        ce.open_blocked[{e.in, e.out}] = e;
        break;
      case EventType::kFlowUnblocked: {
        ce.open_blocked.erase({e.in, e.out});
        const auto reason = static_cast<BlockReason>(e.count);
        const Class cls = reason == BlockReason::kStarvationHold
                              ? kHold
                              : kContention;
        AddInterval(ce, e.t - e.dur, e.t, cls,
                    static_cast<CoflowId>(e.value));
        ce.episodes.push_back(e);
        break;
      }
      case EventType::kCircuitTeardown:
      case EventType::kFlowFinished:
      case EventType::kAssignmentComputed:
      case EventType::kStarvationRound:
        break;
    }
  }

  AttributionReport report;
  Time sums[6] = {0, 0, 0, 0, 0, 0};
  for (auto& [id, ce] : per_coflow) {
    if (!ce.completed_seen || !ce.admitted_seen) continue;
    // Episodes never closed: blocked until completion.
    for (const auto& [pair, b] : ce.open_blocked) {
      const auto reason = static_cast<BlockReason>(b.count);
      AddInterval(ce, b.t, ce.completed,
                  reason == BlockReason::kStarvationHold ? kHold
                                                         : kContention,
                  static_cast<CoflowId>(b.value));
      Event closed = b;
      closed.dur = ce.completed - b.t;
      closed.t = ce.completed;
      ce.episodes.push_back(closed);
    }

    CoflowAttribution row;
    row.coflow = id;
    row.admitted = ce.admitted;
    row.completed = ce.completed;
    row.pre_admission = ce.pre_admission;
    row.cct = ce.cct_value > 0
                  ? ce.cct_value
                  : ce.pre_admission + (ce.completed - ce.admitted);
    Sweep(ce, row);
    // Planner compute while this coflow was in flight, its per-coflow
    // share of each pass (value = wall ns, count = coflows planned).
    for (const Event* p : plans) {
      if (p->t >= ce.admitted - kTimeEps && p->t <= ce.completed + kTimeEps) {
        row.planner_compute_ns +=
            p->value / static_cast<double>(std::max<std::int64_t>(1, p->count));
      }
    }

    sums[0] += row.pre_admission;
    sums[1] += row.delta;
    sums[2] += row.contention;
    sums[3] += row.starvation_hold;
    sums[4] += row.transmit;
    sums[5] += row.unattributed;
    report.total_cct += row.cct;
    report.coflows.push_back(std::move(row));
  }

  std::sort(report.coflows.begin(), report.coflows.end(),
            [](const CoflowAttribution& a, const CoflowAttribution& b) {
              if (a.cct != b.cct) return a.cct > b.cct;
              return a.coflow < b.coflow;
            });

  if (report.total_cct > 0) {
    report.pre_admission_fraction = sums[0] / report.total_cct;
    report.delta_fraction = sums[1] / report.total_cct;
    report.contention_fraction = sums[2] / report.total_cct;
    report.starvation_fraction = sums[3] / report.total_cct;
    report.transmit_fraction = sums[4] / report.total_cct;
    report.unattributed_fraction = sums[5] / report.total_cct;
  }

  if (!report.coflows.empty()) {
    report.critical_coflow = report.coflows.front().coflow;
    report.critical_path =
        WalkCriticalPath(per_coflow.at(report.critical_coflow));
  }
  report.delta_seconds_by_plane = std::move(delta_by_plane);
  return report;
}

}  // namespace sunflow::obs
