// Structured trace events (the observability substrate of every figure).
//
// Core, sched and sim emit typed events into a TraceSink as they make
// decisions: circuit setups paying δ, coflow admissions, starvation-guard Φ
// rounds, per-flow completions. One flat Event struct (type tag + generic
// payload fields) keeps emission allocation-free and lets exporters
// (obs/chrome_trace.h, obs/jsonl.h) stay table-driven. Field meaning per
// type is documented below and in docs/observability.md.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.h"

namespace sunflow::obs {

enum class EventType : std::uint8_t {
  /// A circuit [in, out] is established for `coflow`. t = start of the
  /// reservation/slot, dur = total circuit hold time (setup + transmit),
  /// value = the setup prefix δ actually paid (0 for carried-over circuits).
  kCircuitSetup,
  /// The circuit [in, out] is released at t.
  kCircuitTeardown,
  /// `coflow` enters the scheduler's active set at t. value = planned CCT
  /// when known (deadline admission), else 0.
  kCoflowAdmitted,
  /// `coflow` finished its last byte at t. value = achieved CCT.
  kCoflowCompleted,
  /// A scheduling pass finished at sim-time t. value = wall-clock compute
  /// time in nanoseconds, count = number of coflows planned.
  kAssignmentComputed,
  /// A starvation-guard τ span ran the fixed assignment A_k. t = span
  /// start, dur = span length, count = k (the Φ index).
  kStarvationRound,
  /// The flow (coflow, in, out) finished its last byte at t.
  kFlowFinished,
  /// The flow (coflow, in, out) wanted a circuit at t but could not get
  /// one. value = the blaming coflow id (the owner of the reservation in
  /// the way; -1 when no single owner, e.g. a starvation-guard hold),
  /// count = the BlockReason.
  kFlowBlocked,
  /// The flow (coflow, in, out) blocked since t - dur acquired its circuit
  /// at t. dur = length of the blocked episode, value/count mirror the
  /// matching kFlowBlocked so either end of the pair is self-contained.
  kFlowUnblocked,
};

inline constexpr int kNumEventTypes = 9;

/// Why a flow could not reserve a circuit (kFlowBlocked/kFlowUnblocked
/// `count` payload). Values are stable — they appear in JSONL traces.
enum class BlockReason : std::int64_t {
  kInputPortBusy = 0,    ///< another reservation holds the input port
  kOutputPortBusy = 1,   ///< another reservation holds the output port
  kCircuitConflict = 2,  ///< gap before the next reservation is < δ + ε
  kStarvationHold = 3,   ///< a starvation-guard τ span has the fabric
};

/// One trace record. Unused fields keep their defaults; which fields are
/// meaningful depends on `type` (see EventType comments).
struct Event {
  EventType type = EventType::kCircuitSetup;
  Time t = 0;             ///< simulation time, seconds
  Time dur = 0;           ///< span length, seconds (span-like events)
  CoflowId coflow = -1;   ///< -1 when not coflow-scoped
  PortId in = -1;         ///< input port, -1 when not port-scoped
  PortId out = -1;        ///< output port
  double value = 0;       ///< type-specific payload (δ, CCT, compute ns)
  std::int64_t count = 0; ///< type-specific integer payload (k, set size)
  /// Switch plane carrying the circuit (kCircuitSetup/kCircuitTeardown on
  /// a K-core fabric, core/fabric.h). 0 — the only plane — on the classic
  /// single-switch fabric, and omitted from JSONL when 0, so single-plane
  /// traces are byte-identical to the pre-fabric format.
  PlaneId plane = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

const char* ToString(EventType type);
const char* ToString(BlockReason reason);

/// Parses the ToString spelling; returns false on unknown names.
bool EventTypeFromString(std::string_view name, EventType& out);

}  // namespace sunflow::obs
