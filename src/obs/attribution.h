// Causal CCT attribution — decompose each coflow's completion time into
// additive components from a structured event trace.
//
// The analyzer partitions every coflow's [admitted, completed) interval
// into elementary segments and labels each by priority: transmit (a
// circuit of this coflow was up and past its setup prefix) > δ stall (a
// setup prefix was in progress) > contention (every pending flow blocked
// behind other reservations, attributed per blaming coflow) > starvation
// hold (the §4.2 guard owned the fabric) > unattributed (nothing in the
// trace explains the gap). Segment lengths telescope, so the components
// plus the pre-admission wait sum to the measured CCT up to floating-point
// rounding — the "explain every coflow's completion time" contract that
// tools/trace_inspect --attribution surfaces and tests pin down.
//
// Inputs are the events of obs/event.h, typically read back with
// obs/jsonl.h; the analysis is offline and allocation-heavy by design
// (nothing here runs inside a replay loop).
#pragma once

#include <map>
#include <span>
#include <vector>

#include "common/units.h"
#include "obs/event.h"

namespace sunflow::obs {

/// Contention seconds a coflow spent blocked behind one blaming coflow
/// (-1 when the trace names no single owner).
struct ContentionShare {
  CoflowId blamer = -1;
  Time seconds = 0;
};

/// One step of the critical path walked backwards from a coflow's
/// completion: the span [begin, end) and what the coflow was doing in it.
struct CriticalPathStep {
  enum class Kind { kTransmit, kDelta, kBlocked, kGap };
  Kind kind = Kind::kTransmit;
  Time begin = 0;
  Time end = 0;
  PortId in = -1;   ///< the flow the step rides on (-1 for kGap)
  PortId out = -1;
  /// kBlocked only: who was in the way and why.
  CoflowId blamer = -1;
  BlockReason reason = BlockReason::kInputPortBusy;
};

/// Additive decomposition of one coflow's CCT. All components are
/// simulation seconds except planner_compute_ns (wall-clock nanoseconds,
/// informational: planning is instantaneous in simulation time, so it can
/// never be part of the sim-time sum).
struct CoflowAttribution {
  CoflowId coflow = -1;
  Time admitted = 0;
  Time completed = 0;
  Time cct = 0;  ///< measured CCT (CoflowCompleted value, else derived)

  Time pre_admission = 0;    ///< release → admission queueing wait
  Time delta = 0;            ///< δ reconfiguration stalls
  Time contention = 0;       ///< blocked behind other reservations
  Time starvation_hold = 0;  ///< held by the starvation guard's τ spans
  Time transmit = 0;         ///< a circuit was up and transmitting
  Time unattributed = 0;     ///< residual the trace does not explain

  /// Contention split per blaming coflow, largest share first. Sums to
  /// `contention` (simultaneously blocked flows with different blamers
  /// split their segment equally).
  std::vector<ContentionShare> by_blamer;

  double planner_compute_ns = 0;  ///< informational, out of the sum

  /// The additive components; equals `cct` up to rounding on any trace
  /// that passes the audit.
  Time Sum() const {
    return pre_admission + delta + contention + starvation_hold + transmit +
           unattributed;
  }
};

/// Whole-trace attribution: per-coflow rows plus the aggregate fractions
/// the run manifest records (attr.delta_fraction etc. — each component's
/// share of the summed CCT seconds across all completed coflows).
struct AttributionReport {
  std::vector<CoflowAttribution> coflows;  ///< sorted by cct, largest first

  Time total_cct = 0;  ///< denominator of the fractions below
  double pre_admission_fraction = 0;
  double delta_fraction = 0;
  double contention_fraction = 0;
  double starvation_fraction = 0;
  double transmit_fraction = 0;
  double unattributed_fraction = 0;

  /// Critical path of the largest-CCT coflow, completion first.
  CoflowId critical_coflow = -1;
  std::vector<CriticalPathStep> critical_path;

  /// Physical δ seconds paid per switch plane: the setup prefixes of every
  /// circuit span, summed over the whole trace and keyed by the span's
  /// plane. Single-plane traces carry one entry under plane 0; on a K-core
  /// fabric this shows which planes absorb the reconfiguration cost.
  std::map<PlaneId, Time> delta_seconds_by_plane;
};

/// Runs the decomposition over a trace. Coflows without a CoflowCompleted
/// event are skipped (they never finished; there is no CCT to explain).
AttributionReport Attribute(std::span<const Event> events);

const char* ToString(CriticalPathStep::Kind kind);

}  // namespace sunflow::obs
