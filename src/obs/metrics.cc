#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <ostream>
#include <unordered_map>

namespace sunflow::obs {

int Histogram::BucketIndex(double v) {
  // v > 0 here. floor(log2(v) * 64) gives ~1.1% wide buckets.
  return static_cast<int>(
      std::floor(std::log2(v) * static_cast<double>(kSubBucketsPerOctave)));
}

double Histogram::BucketMid(int index) {
  // Geometric midpoint of [2^(i/64), 2^((i+1)/64)).
  return std::exp2((static_cast<double>(index) + 0.5) /
                   static_cast<double>(kSubBucketsPerOctave));
}

void Histogram::Record(double v) {
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  if (v > 0) {
    ++buckets_[BucketIndex(v)];
  } else {
    ++underflow_;
  }
}

double Histogram::ValueAtPercentile(double pct) const {
  if (count_ == 0) return 0;
  pct = std::clamp(pct, 0.0, 100.0);
  // Nearest-rank: the smallest bucket whose cumulative count covers
  // ceil(pct/100 * count), at least 1.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(pct / 100.0 * static_cast<double>(count_))));
  std::uint64_t cum = underflow_;
  if (cum >= target) return min_;  // underflow bucket holds all v <= 0
  for (const auto& [index, n] : buckets_) {
    cum += n;
    if (cum >= target) return std::clamp(BucketMid(index), min_, max_);
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) return;
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  underflow_ += other.underflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  buckets_.clear();
  underflow_ = 0;
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.try_emplace(std::string(name)).first;
  return it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.try_emplace(std::string(name)).first;
  return it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.try_emplace(std::string(name)).first;
  return it->second;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

std::vector<MetricRow> MetricsRegistry::Rows() const {
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricRow row;
    row.name = name;
    row.kind = "counter";
    row.count = c.value();
    row.value = static_cast<double>(c.value());
    rows.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_) {
    MetricRow row;
    row.name = name;
    row.kind = "gauge";
    row.value = g.value();
    rows.push_back(std::move(row));
  }
  for (const auto& [name, h] : histograms_) {
    MetricRow row;
    row.name = name;
    row.kind = "histogram";
    row.count = h.count();
    row.value = h.sum();
    row.mean = h.mean();
    row.p50 = h.ValueAtPercentile(50);
    row.p95 = h.ValueAtPercentile(95);
    row.max = h.max();
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return rows;
}

void MetricsRegistry::WriteText(std::ostream& out) const {
  for (const MetricRow& row : Rows()) {
    out << row.name << " (" << row.kind << ")";
    if (row.kind == "counter") {
      out << " value=" << row.count;
    } else if (row.kind == "gauge") {
      out << " value=" << row.value;
    } else {
      out << " count=" << row.count << " mean=" << row.mean
          << " p50=" << row.p50 << " p95=" << row.p95 << " max=" << row.max;
    }
    out << "\n";
  }
}

void MetricsRegistry::Reset() {
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_)
    GetCounter(name).Increment(c.value());
  for (const auto& [name, g] : other.gauges_) GetGauge(name).Add(g.value());
  for (const auto& [name, h] : other.histograms_)
    GetHistogram(name).MergeFrom(h);
}

namespace {

/// The calling thread's shard cache. Keyed by registry identity (pointer
/// + incarnation id) so a registry destroyed and reallocated at the same
/// address misses instead of resolving to a dangling shard.
struct ShardSlot {
  std::uint64_t id = 0;
  MetricsRegistry* shard = nullptr;
};

std::uint64_t NextRegistryId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ShardedMetricsRegistry::ShardedMetricsRegistry() : id_(NextRegistryId()) {}

MetricsRegistry& ShardedMetricsRegistry::Shard() {
  thread_local std::unordered_map<const ShardedMetricsRegistry*, ShardSlot>
      cache;
  ShardSlot& slot = cache[this];
  if (slot.shard != nullptr && slot.id == id_) return *slot.shard;
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<MetricsRegistry>());
  slot = {id_, shards_.back().get()};
  return *slot.shard;
}

MetricsRegistry ShardedMetricsRegistry::Merged() const {
  MetricsRegistry merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) merged.MergeFrom(*shard);
  return merged;
}

std::vector<MetricRow> ShardedMetricsRegistry::Rows() const {
  return Merged().Rows();
}

void ShardedMetricsRegistry::WriteText(std::ostream& out) const {
  Merged().WriteText(out);
}

namespace {
/// Backing store for ShardedMetricsRegistry::Find* — a merged snapshot
/// that stays alive until the same thread's next Find* call.
MetricsRegistry& FindSnapshot() {
  thread_local MetricsRegistry snapshot;
  return snapshot;
}
}  // namespace

const Counter* ShardedMetricsRegistry::FindCounter(
    std::string_view name) const {
  FindSnapshot() = Merged();
  return FindSnapshot().FindCounter(name);
}

const Gauge* ShardedMetricsRegistry::FindGauge(std::string_view name) const {
  FindSnapshot() = Merged();
  return FindSnapshot().FindGauge(name);
}

const Histogram* ShardedMetricsRegistry::FindHistogram(
    std::string_view name) const {
  FindSnapshot() = Merged();
  return FindSnapshot().FindHistogram(name);
}

void ShardedMetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) shard->Reset();
}

ShardedMetricsRegistry& GlobalMetrics() {
  static ShardedMetricsRegistry& registry =
      *new ShardedMetricsRegistry();  // leaked: outlives worker threads
  return registry;
}

}  // namespace sunflow::obs
