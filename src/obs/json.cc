#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/jsonl.h"  // EscapeJson

namespace sunflow::obs {

std::string FormatJsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

namespace {

[[noreturn]] void KindError(const char* wanted, JsonValue::Kind got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::runtime_error(std::string("json: expected ") + wanted +
                           ", found " + kNames[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::AsBool() const {
  if (!is_bool()) KindError("bool", kind());
  return std::get<bool>(value_);
}

double JsonValue::AsNumber() const {
  if (!is_number()) KindError("number", kind());
  return std::get<double>(value_);
}

const std::string& JsonValue::AsString() const {
  if (!is_string()) KindError("string", kind());
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::AsArray() const {
  if (!is_array()) KindError("array", kind());
  return std::get<Array>(value_);
}

JsonValue::Array& JsonValue::AsArray() {
  if (!is_array()) KindError("array", kind());
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::AsObject() const {
  if (!is_object()) KindError("object", kind());
  return std::get<Object>(value_);
}

JsonValue::Object& JsonValue::AsObject() {
  if (!is_object()) KindError("object", kind());
  return std::get<Object>(value_);
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  return AsObject()[key];
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(value_);
  const auto it = obj.find(std::string(key));
  return it != obj.end() ? &it->second : nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr)
    throw std::runtime_error("json: missing key \"" + std::string(key) + "\"");
  return *v;
}

void JsonValue::Append(JsonValue v) {
  if (is_null()) value_ = Array{};
  AsArray().push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

void JsonValue::Write(std::ostream& out, int indent) const {
  WriteIndented(out, indent, 0);
}

std::string JsonValue::ToString(int indent) const {
  std::ostringstream out;
  Write(out, indent);
  return out.str();
}

void JsonValue::WriteIndented(std::ostream& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    out << '\n';
    for (int i = 0; i < indent * d; ++i) out << ' ';
  };
  switch (kind()) {
    case Kind::kNull:
      out << "null";
      break;
    case Kind::kBool:
      out << (std::get<bool>(value_) ? "true" : "false");
      break;
    case Kind::kNumber:
      out << FormatJsonNumber(std::get<double>(value_));
      break;
    case Kind::kString:
      out << '"' << EscapeJson(std::get<std::string>(value_)) << '"';
      break;
    case Kind::kArray: {
      const Array& a = std::get<Array>(value_);
      if (a.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      bool first = true;
      for (const JsonValue& v : a) {
        if (!first) out << ',';
        first = false;
        newline_pad(depth + 1);
        v.WriteIndented(out, indent, depth + 1);
      }
      newline_pad(depth);
      out << ']';
      break;
    }
    case Kind::kObject: {
      const Object& o = std::get<Object>(value_);
      if (o.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      bool first = true;
      for (const auto& [key, v] : o) {
        if (!first) out << ',';
        first = false;
        newline_pad(depth + 1);
        out << '"' << EscapeJson(key) << "\":";
        if (indent >= 0) out << ' ';
        v.WriteIndented(out, indent, depth + 1);
      }
      newline_pad(depth);
      out << '}';
      break;
    }
  }
}

namespace {

// Recursive-descent parser over a string_view. Keeps a byte offset for
// error messages; a depth cap guards against stack exhaustion on
// adversarial input.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue(0);
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue ParseValue(int depth) {
    if (depth > kMaxDepth) Fail("nesting too deep");
    SkipWhitespace();
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return JsonValue(ParseString());
      case 't':
        if (!Consume("true")) Fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!Consume("false")) Fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!Consume("null")) Fail("bad literal");
        return JsonValue(nullptr);
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject(int depth) {
    Expect('{');
    JsonValue obj = JsonValue::MakeObject();
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      obj[key] = ParseValue(depth + 1);
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') Fail("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray(int depth) {
    Expect('[');
    JsonValue arr = JsonValue::MakeArray();
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.Append(ParseValue(depth + 1));
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') Fail("expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = ParseHex4();
          // Surrogate pair → one code point.
          if (code >= 0xD800 && code <= 0xDBFF && Consume("\\u")) {
            const unsigned low = ParseHex4();
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              Fail("invalid low surrogate");
            }
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          Fail("bad escape character");
      }
    }
  }

  unsigned ParseHex4() {
    if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else Fail("bad hex digit in \\u escape");
    }
    return code;
  }

  static void AppendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue ParseNumber() {
    const std::size_t begin = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      pos_ = begin;
      Fail("bad number");
    }
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

JsonValue JsonValue::ParseFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open json file " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  try {
    return Parse(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace sunflow::obs
