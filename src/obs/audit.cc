#include "obs/audit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "common/units.h"

namespace sunflow::obs {

namespace {

// Absolute-plus-relative time tolerance: traces store raw doubles, so two
// instants produced by different summation orders can differ by a few ulp
// even when they are "the same" event.
bool SameInstant(Time a, Time b) {
  return std::abs(a - b) <= kTimeEps + 1e-12 * std::max(std::abs(a),
                                                        std::abs(b));
}

struct Span {
  Time begin = 0;
  Time end = 0;
  Time setup = 0;
  CoflowId coflow = -1;
  PortId in = -1;
  PortId out = -1;
  PlaneId plane = 0;
};

class Auditor {
 public:
  explicit Auditor(AuditReport& report) : report_(report) {}

  // One assertion: bumps the check counter, records a violation when the
  // condition fails (capped per invariant so corrupted traces stay
  // readable).
  template <typename F>
  void Check(const char* invariant, bool ok, F&& detail) {
    ++report_.checks;
    if (ok) return;
    if (++per_invariant_[invariant] > 100) return;
    report_.violations.push_back({invariant, detail()});
  }

 private:
  AuditReport& report_;
  std::map<std::string, int> per_invariant_;
};

std::string FmtSpan(const Span& s) {
  std::ostringstream os;
  os << "coflow " << s.coflow << " [" << s.in << "->" << s.out << ") t=["
     << s.begin << ", " << s.end << ") setup=" << s.setup;
  if (s.plane != 0) os << " plane=" << s.plane;
  return os.str();
}

// Fabric-check context: the timeline a span/teardown/finish belongs to.
// Shared-fabric scope collapses everything onto one context; per-coflow
// scope keys by (coflow, lifecycle) so concatenated standalone replays do
// not cross-contaminate each other's port timelines.
using Ctx = std::pair<CoflowId, int>;

}  // namespace

AuditReport AuditTrace(std::span<const Event> events,
                       long long expected_setups, AuditScope scope) {
  const bool shared = scope == AuditScope::kSharedFabric;
  AuditReport report;
  report.events = events.size();
  Auditor audit(report);

  struct CoflowLifecycle {
    int admitted = 0;
    int completed = 0;
    Time admitted_t = 0;
    Time admitted_wait = 0;
    Time completed_t = 0;
    double cct = 0;
  };
  // One entry per coflow; under kPerCoflow a re-admission after a completed
  // lifecycle opens a new one instead of violating `admission`.
  std::map<CoflowId, std::vector<CoflowLifecycle>> coflows;
  auto life_of = [&](CoflowId id) {
    const auto it = coflows.find(id);
    return it == coflows.end() || it->second.empty()
               ? 0
               : static_cast<int>(it->second.size()) - 1;
  };
  auto ctx_of = [&](CoflowId id) {
    return shared ? Ctx{-1, 0} : Ctx{id, life_of(id)};
  };

  // Port exclusivity is per switch plane: a K-core fabric has K physical
  // ports behind every logical port id, so the timelines are keyed by
  // (ctx, plane, port). Pair-level checks stay keyed by the logical pair
  // (flow finishes carry no plane) with the plane recorded on each span.
  std::map<std::tuple<Ctx, PlaneId, PortId>, std::vector<Span>> by_in, by_out;
  std::map<std::tuple<Ctx, PortId, PortId>, std::vector<Span>> by_pair;
  std::map<std::tuple<Ctx, PlaneId, PortId, PortId>, std::vector<Time>>
      teardowns;
  struct FlowKeyT {
    Ctx ctx;
    CoflowId coflow;
    PortId in, out;
    bool operator<(const FlowKeyT& o) const {
      return std::tie(ctx, coflow, in, out) <
             std::tie(o.ctx, o.coflow, o.in, o.out);
    }
  };
  std::map<FlowKeyT, std::vector<Time>> finishes;
  struct OpenBlock {
    bool open = false;
    Time t = 0;
    double blamer = 0;
    std::int64_t reason = 0;
  };
  std::map<FlowKeyT, OpenBlock> blocks;
  std::vector<Span> tau_spans;  // starvation-guard rounds
  long long paying_setups = 0;
  bool any_delta = false;

  for (const Event& e : events) {
    switch (e.type) {
      case EventType::kCircuitSetup: {
        const Span s{e.t, e.t + e.dur, e.value, e.coflow, e.in, e.out,
                     e.plane};
        const Ctx ctx = ctx_of(e.coflow);
        // Negative ports are the dummy rows/columns square matchings are
        // padded with — no physical port, so no exclusivity to audit.
        if (e.in >= 0) by_in[{ctx, e.plane, e.in}].push_back(s);
        if (e.out >= 0) by_out[{ctx, e.plane, e.out}].push_back(s);
        by_pair[{ctx, e.in, e.out}].push_back(s);
        if (e.value > kTimeEps) {
          ++paying_setups;
          any_delta = true;
        }
        break;
      }
      case EventType::kCircuitTeardown:
        teardowns[{ctx_of(e.coflow), e.plane, e.in, e.out}].push_back(e.t);
        break;
      case EventType::kCoflowAdmitted: {
        auto& lives = coflows[e.coflow];
        if (lives.empty() ||
            (!shared && lives.back().admitted > 0 &&
             lives.back().completed > 0)) {
          lives.emplace_back();
        }
        auto& lc = lives.back();
        ++lc.admitted;
        lc.admitted_t = e.t;
        lc.admitted_wait = e.dur;
        break;
      }
      case EventType::kCoflowCompleted: {
        auto& lives = coflows[e.coflow];
        if (lives.empty()) lives.emplace_back();
        auto& lc = lives.back();
        ++lc.completed;
        lc.completed_t = e.t;
        lc.cct = e.value;
        break;
      }
      case EventType::kFlowFinished:
        finishes[{ctx_of(e.coflow), e.coflow, e.in, e.out}].push_back(e.t);
        break;
      case EventType::kFlowBlocked: {
        OpenBlock& b = blocks[{ctx_of(e.coflow), e.coflow, e.in, e.out}];
        audit.Check("blocked-pairing", !b.open, [&] {
          std::ostringstream os;
          os << "coflow " << e.coflow << " flow " << e.in << "->" << e.out
             << " blocked again at t=" << e.t
             << " while the episode opened at t=" << b.t << " is still open";
          return os.str();
        });
        b.open = true;
        b.t = e.t;
        b.blamer = e.value;
        b.reason = e.count;
        break;
      }
      case EventType::kFlowUnblocked: {
        OpenBlock& b = blocks[{ctx_of(e.coflow), e.coflow, e.in, e.out}];
        audit.Check("blocked-pairing", b.open, [&] {
          std::ostringstream os;
          os << "coflow " << e.coflow << " flow " << e.in << "->" << e.out
             << " unblocked at t=" << e.t << " with no open episode";
          return os.str();
        });
        if (b.open) {
          audit.Check("blocked-pairing",
                      SameInstant(e.t - e.dur, b.t) && e.value == b.blamer &&
                          e.count == b.reason,
                      [&] {
                        std::ostringstream os;
                        os << "coflow " << e.coflow << " flow " << e.in
                           << "->" << e.out << " unblocked at t=" << e.t
                           << " (dur=" << e.dur
                           << ") does not mirror the episode opened at t="
                           << b.t;
                        return os.str();
                      });
        }
        b.open = false;
        break;
      }
      case EventType::kAssignmentComputed:
        break;
      case EventType::kStarvationRound:
        tau_spans.push_back({e.t, e.t + e.dur});
        break;
    }
  }

  // port-exclusivity: sort each (plane, port) timeline's spans and look
  // for overlap. Distinct planes own distinct physical ports, so spans on
  // different planes never conflict.
  auto check_port = [&](const char* side, PlaneId plane, PortId port,
                        std::vector<Span>& spans) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.begin < b.begin; });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      const Span& prev = spans[i - 1];
      const Span& cur = spans[i];
      audit.Check("port-exclusivity", cur.begin >= prev.end - kTimeEps, [&] {
        std::ostringstream os;
        os << side << " port " << port;
        if (plane != 0) os << " (plane " << plane << ")";
        os << " double-booked: " << FmtSpan(prev) << " overlaps "
           << FmtSpan(cur);
        return os.str();
      });
    }
  };
  for (auto& [key, spans] : by_in)
    check_port("input", std::get<1>(key), std::get<2>(key), spans);
  for (auto& [key, spans] : by_out)
    check_port("output", std::get<1>(key), std::get<2>(key), spans);

  // delta-bounds + delta-carryover.
  std::map<PlaneId, Time> last_end_by_plane;
  for (auto& [key, spans] : by_pair) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.begin < b.begin; });
    last_end_by_plane.clear();
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const Span& s = spans[i];
      audit.Check("delta-bounds",
                  s.setup >= -kTimeEps &&
                      s.setup <= (s.end - s.begin) + kTimeEps,
                  [&] { return "setup outside span: " + FmtSpan(s); });
      if (any_delta && s.setup <= kTimeEps) {
        // δ is paid exactly once per reconfiguration: a free setup must
        // continue a circuit that was already up on this pair — on the
        // same plane (a circuit carried over on plane p says nothing
        // about plane q's switch state).
        const auto prev = last_end_by_plane.find(s.plane);
        const bool continues =
            prev != last_end_by_plane.end() && SameInstant(prev->second,
                                                           s.begin);
        audit.Check("delta-carryover", continues, [&] {
          return "zero-setup span does not continue a prior circuit: " +
                 FmtSpan(s);
        });
      }
      Time& last_end = last_end_by_plane[s.plane];
      last_end = std::max(last_end, s.end);
    }
  }

  // flow-in-circuit: each per-flow finish sits inside a circuit span of
  // its own flow, or inside a starvation τ span (fluid drains).
  for (const auto& [key, ts] : finishes) {
    const auto it = by_pair.find({key.ctx, key.in, key.out});
    for (const Time t : ts) {
      bool inside = false;
      if (it != by_pair.end()) {
        for (const Span& s : it->second) {
          if (s.coflow == key.coflow && t >= s.begin - kTimeEps &&
              t <= s.end + kTimeEps) {
            inside = true;
            break;
          }
        }
      }
      if (!inside) {
        for (const Span& s : tau_spans) {
          if (t >= s.begin - kTimeEps && t <= s.end + kTimeEps) {
            inside = true;
            break;
          }
        }
      }
      audit.Check("flow-in-circuit", inside, [&] {
        std::ostringstream os;
        os << "coflow " << key.coflow << " flow " << key.in << "->"
           << key.out << " finished at t=" << t
           << " outside every circuit span of that flow";
        return os.str();
      });
    }
  }

  // admission + completion lifecycle.
  for (const auto& [id, lives] : coflows) {
    for (std::size_t li = 0; li < lives.size(); ++li) {
      const CoflowLifecycle& lc = lives[li];
      audit.Check("admission", lc.admitted <= 1, [&] {
        std::ostringstream os;
        os << "coflow " << id << " admitted " << lc.admitted << " times";
        return os.str();
      });
      audit.Check("completion", lc.completed <= 1, [&] {
        std::ostringstream os;
        os << "coflow " << id << " completed " << lc.completed << " times";
        return os.str();
      });
      if (lc.completed == 0) continue;
      audit.Check("completion", lc.admitted >= 1, [&] {
        std::ostringstream os;
        os << "coflow " << id << " completed without being admitted";
        return os.str();
      });
      if (lc.admitted == 0) continue;
      audit.Check("completion", lc.completed_t >= lc.admitted_t - kTimeEps,
                  [&] {
                    std::ostringstream os;
                    os << "coflow " << id << " completed at t="
                       << lc.completed_t << " before its admission at t="
                       << lc.admitted_t;
                    return os.str();
                  });
      if (lc.cct > 0) {
        const Time derived =
            (lc.completed_t - lc.admitted_t) + lc.admitted_wait;
        audit.Check("completion", SameInstant(lc.cct, derived), [&] {
          std::ostringstream os;
          os << "coflow " << id << " CCT payload " << lc.cct
             << " != completed - admitted + wait = " << derived;
          return os.str();
        });
      }
      // CoflowCompleted equals the last FlowFinished when flows are traced
      // (within this lifecycle's timeline).
      const Ctx ctx = shared ? Ctx{-1, 0} : Ctx{id, static_cast<int>(li)};
      Time last_finish = -kTimeInf;
      for (const auto& [key, ts] : finishes) {
        if (key.coflow != id || key.ctx != ctx) continue;
        for (const Time t : ts) last_finish = std::max(last_finish, t);
      }
      if (last_finish > -kTimeInf) {
        audit.Check("completion", SameInstant(lc.completed_t, last_finish),
                    [&] {
                      std::ostringstream os;
                      os << "coflow " << id << " completed at t="
                         << lc.completed_t
                         << " but its last flow finished at t=" << last_finish;
                      return os.str();
                    });
      }
    }
  }

  // blocked-pairing: every episode must be closed by trace end.
  for (const auto& [key, b] : blocks) {
    audit.Check("blocked-pairing", !b.open, [&] {
      std::ostringstream os;
      os << "coflow " << key.coflow << " flow " << key.in << "->" << key.out
         << " episode opened at t=" << b.t << " never closed";
      return os.str();
    });
  }

  // teardown: each teardown coincides with the end of a span on its pair,
  // on the same plane.
  for (auto& [key, ts] : teardowns) {
    const auto& [ctx, plane, in, out] = key;
    std::vector<Time> ends;
    const auto it = by_pair.find({ctx, in, out});
    if (it != by_pair.end()) {
      ends.reserve(it->second.size());
      for (const Span& s : it->second)
        if (s.plane == plane) ends.push_back(s.end);
      std::sort(ends.begin(), ends.end());
    }
    for (const Time t : ts) {
      const auto lo = std::lower_bound(ends.begin(), ends.end(), t - 1e-6);
      bool matched = false;
      for (auto e = lo; e != ends.end() && *e <= t + 1e-6; ++e) {
        if (SameInstant(*e, t)) {
          matched = true;
          break;
        }
      }
      audit.Check("teardown", matched, [&] {
        std::ostringstream os;
        os << "teardown of " << in << "->" << out << " at t=" << t;
        if (plane != 0) os << " on plane " << plane;
        os << " matches no circuit span end";
        return os.str();
      });
    }
  }

  // setup-count: cross-check against the producer's metric when given.
  // Only meaningful on a shared timeline — a concatenated multi-replay
  // trace mixes executors the metric never counted.
  if (shared && expected_setups >= 0) {
    audit.Check("setup-count", paying_setups == expected_setups, [&] {
      std::ostringstream os;
      os << "trace has " << paying_setups
         << " delta-paying circuit spans but the producer counted "
         << expected_setups;
      return os.str();
    });
  }

  return report;
}

}  // namespace sunflow::obs
