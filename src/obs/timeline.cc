#include "obs/timeline.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/assert.h"
#include "common/stats.h"
#include "obs/json.h"

namespace sunflow::obs {

namespace {

// Per-window fabric utilization: busy port-seconds over the window's
// total port-time across both sides of every plane seen so far.
double WindowUtil(const TimelineSample& s, int planes, PortId ports) {
  if (planes <= 0 || ports <= 0 || s.width() <= kTimeEps) return 0;
  double busy = 0;
  for (double b : s.busy_in) busy += b;
  for (double b : s.busy_out) busy += b;
  return busy / (2.0 * planes * static_cast<double>(ports) * s.width());
}

double SideUtil(const std::vector<double>& busy, std::size_t plane,
                PortId ports, Time width) {
  if (ports <= 0 || width <= kTimeEps) return 0;
  const double b = plane < busy.size() ? busy[plane] : 0;
  return b / (static_cast<double>(ports) * width);
}

}  // namespace

TimelineSampler::TimelineSampler(const TimelineConfig& config)
    : config_(config) {
  SUNFLOW_CHECK_MSG(config_.dt > 0, "timeline dt must be positive");
  config_.cap = std::max<std::size_t>(config_.cap, 2);
  config_.rolling_window = std::max<std::size_t>(config_.rolling_window, 1);
  cur_dt_ = config_.dt;
}

void TimelineSampler::BeginRun(PortId num_ports) {
  ports_ = num_ports;
  planes_ = 0;
  open_.clear();
  next_open_begin_ = 0;
  cur_dt_ = config_.dt;
  samples_.clear();
  decimations_ = 0;
  cur_active_ = 0;
  cur_pending_ = 0;
  cur_admitted_ = 0;
  any_demand_ = false;
  first_arrival_ = seg_begin_ = cover_end_ = last_demand_end_ = 0;
  covered_ = 0;
  total_busy_s_ = 0;
  total_engine_active_s_ = 0;
  any_span_ = false;
  first_span_begin_ = last_span_end_ = 0;
  replan_ns_.Reset();
  rolling_.clear();
  rolling_next_ = 0;
  slo_burn_ = 0;
  slo_first_breach_ = -1;
  memo_hits_total_ = 0;
  memo_lookups_total_ = 0;
  pool_peak_groups_ = 0;
}

void TimelineSampler::EnsureOpenThrough(Time t) {
  while (next_open_begin_ < t - kTimeEps) {
    TimelineSample s;
    s.begin = next_open_begin_;
    s.end = next_open_begin_ + cur_dt_;
    next_open_begin_ = s.end;
    open_.push_back(std::move(s));
  }
}

TimelineSample& TimelineSampler::WindowAt(Time t) {
  // Guarantee a window covering t (EnsureOpenThrough alone stops short
  // when t sits exactly on next_open_begin_ — e.g. the very first
  // NoteQueueDepth of a run at t = 0 with no windows open yet).
  while (open_.empty() || next_open_begin_ <= t + kTimeEps) {
    TimelineSample s;
    s.begin = next_open_begin_;
    s.end = next_open_begin_ + cur_dt_;
    next_open_begin_ = s.end;
    open_.push_back(std::move(s));
  }
  // Windows are contiguous; scan from the back (recent instants land in
  // the most recent windows).
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (open_[i].begin <= t + kTimeEps) return open_[i];
  }
  return open_.front();
}

void TimelineSampler::AddBusy(PlaneId plane, bool input, Time begin,
                              Time end) {
  if (end - begin <= kTimeEps) return;
  planes_ = std::max(planes_, static_cast<int>(plane) + 1);
  total_busy_s_ += end - begin;
  EnsureOpenThrough(end);
  for (auto& w : open_) {
    const Time lo = std::max(begin, w.begin);
    const Time hi = std::min(end, w.end);
    if (hi - lo <= 0) continue;
    auto& busy = input ? w.busy_in : w.busy_out;
    if (busy.size() <= static_cast<std::size_t>(plane))
      busy.resize(static_cast<std::size_t>(plane) + 1, 0.0);
    busy[static_cast<std::size_t>(plane)] += hi - lo;
  }
}

void TimelineSampler::NoteAdmitted(Time arrival, Time tpl) {
  const Time demand_end = arrival + std::max<Time>(tpl, 0);
  if (!any_demand_) {
    any_demand_ = true;
    first_arrival_ = arrival;
    seg_begin_ = arrival;
    cover_end_ = demand_end;
  } else if (arrival > cover_end_) {
    // Gap: close the current union segment, start a new one.
    covered_ += cover_end_ - seg_begin_;
    seg_begin_ = arrival;
    cover_end_ = demand_end;
  } else {
    cover_end_ = std::max(cover_end_, demand_end);
  }
  last_demand_end_ = std::max(last_demand_end_, demand_end);
}

void TimelineSampler::NoteQueueDepth(Time t, std::size_t depth) {
  TimelineSample& w = WindowAt(t);
  w.pending = std::max(w.pending, depth);
}

void TimelineSampler::NoteReplan(Time t, double wall_ns,
                                 std::uint64_t memo_hits,
                                 std::uint64_t memo_lookups,
                                 std::uint64_t pool_groups) {
  replan_ns_.Record(wall_ns);
  memo_hits_total_ += memo_hits;
  memo_lookups_total_ += memo_lookups;
  pool_peak_groups_ = std::max(pool_peak_groups_, pool_groups);
  const double budget_ns = config_.slo_budget_us * 1e3;
  if (budget_ns > 0 && wall_ns > budget_ns) {
    ++slo_burn_;
    if (slo_first_breach_ < 0) slo_first_breach_ = t;
  }
  if (rolling_.size() < config_.rolling_window) {
    rolling_.push_back(wall_ns);
  } else {
    rolling_[rolling_next_] = wall_ns;
    rolling_next_ = (rolling_next_ + 1) % config_.rolling_window;
  }
  std::vector<double> sorted = rolling_;
  std::sort(sorted.begin(), sorted.end());

  TimelineSample& w = WindowAt(t);
  ++w.replans;
  w.replan_ns_max = std::max(w.replan_ns_max, wall_ns);
  w.replan_ns_sum += wall_ns;
  w.rolling_p50_ns = stats::Percentile(sorted, 50);
  w.rolling_p99_ns = stats::Percentile(sorted, 99);
  w.memo_hits += memo_hits;
  w.memo_lookups += memo_lookups;
  w.pool_groups_max = std::max(w.pool_groups_max, pool_groups);
}

void TimelineSampler::NoteEngineSpan(Time begin, Time end) {
  if (end - begin <= kTimeEps) return;
  if (!any_span_) {
    any_span_ = true;
    first_span_begin_ = begin;
    last_span_end_ = end;
  } else {
    first_span_begin_ = std::min(first_span_begin_, begin);
    last_span_end_ = std::max(last_span_end_, end);
  }
  total_engine_active_s_ += end - begin;
  EnsureOpenThrough(end);
  for (auto& w : open_) {
    const Time lo = std::max(begin, w.begin);
    const Time hi = std::min(end, w.end);
    if (hi - lo > 0) w.engine_active_s += hi - lo;
  }
}

void TimelineSampler::IngestCircuits(
    Time t, Time t_next, const std::vector<TimelineCircuitUse>& uses,
    int active, int blocked) {
  for (const auto& u : uses) {
    AddBusy(u.plane, /*input=*/true, u.begin, u.end);
    AddBusy(u.plane, /*input=*/false, u.begin, u.end);
  }
  if (t_next - t <= kTimeEps) return;
  EnsureOpenThrough(t_next);
  for (auto& w : open_) {
    if (w.end <= t + kTimeEps || w.begin >= t_next - kTimeEps) continue;
    w.active = std::max(w.active, active);
    w.blocked = std::max(w.blocked, blocked);
  }
}

void TimelineSampler::FinalizeThrough(Time t) {
  // Interleave creation and emission so a long idle gap never piles up
  // open windows: at most one empty window exists at a time while the
  // gap drains into the (decimating) sample buffer.
  for (;;) {
    if (open_.empty()) {
      if (next_open_begin_ >= t - kTimeEps) break;
      TimelineSample s;
      s.begin = next_open_begin_;
      s.end = next_open_begin_ + cur_dt_;
      next_open_begin_ = s.end;
      open_.push_back(std::move(s));
    }
    if (open_.front().end > t + kTimeEps) break;
    TimelineSample s = std::move(open_.front());
    open_.erase(open_.begin());
    s.active = std::max(s.active, cur_active_);
    s.pending = std::max(s.pending, cur_pending_);
    s.admitted = cur_admitted_;
    EmitWindow(std::move(s));
  }
}

void TimelineSampler::Advance(Time t, int active, std::size_t pending,
                              std::uint64_t admitted) {
  cur_active_ = active;
  cur_pending_ = pending;
  cur_admitted_ = admitted;
  FinalizeThrough(t);
}

void TimelineSampler::EndRun(Time t) {
  FinalizeThrough(t);
  while (!open_.empty()) {
    TimelineSample s = std::move(open_.front());
    open_.erase(open_.begin());
    s.end = std::min(s.end, std::max(t, s.begin));
    s.active = std::max(s.active, cur_active_);
    s.pending = std::max(s.pending, cur_pending_);
    s.admitted = cur_admitted_;
    if (s.width() > kTimeEps) EmitWindow(std::move(s));
  }
}

void TimelineSampler::EmitWindow(TimelineSample s) {
  samples_.push_back(std::move(s));
  if (samples_.size() >= config_.cap) Decimate();
}

TimelineSample TimelineSampler::MergePair(TimelineSample a,
                                          const TimelineSample& b) {
  a.end = b.end;
  if (a.busy_in.size() < b.busy_in.size()) a.busy_in.resize(b.busy_in.size(), 0.0);
  for (std::size_t i = 0; i < b.busy_in.size(); ++i) a.busy_in[i] += b.busy_in[i];
  if (a.busy_out.size() < b.busy_out.size())
    a.busy_out.resize(b.busy_out.size(), 0.0);
  for (std::size_t i = 0; i < b.busy_out.size(); ++i)
    a.busy_out[i] += b.busy_out[i];
  a.engine_active_s += b.engine_active_s;
  a.active = std::max(a.active, b.active);
  a.pending = std::max(a.pending, b.pending);
  a.admitted = b.admitted;  // cumulative: the later window's count wins
  a.blocked = std::max(a.blocked, b.blocked);
  a.replans += b.replans;
  a.replan_ns_max = std::max(a.replan_ns_max, b.replan_ns_max);
  a.replan_ns_sum += b.replan_ns_sum;
  if (b.replans > 0) {
    a.rolling_p50_ns = b.rolling_p50_ns;
    a.rolling_p99_ns = b.rolling_p99_ns;
  }
  a.memo_hits += b.memo_hits;
  a.memo_lookups += b.memo_lookups;
  a.pool_groups_max = std::max(a.pool_groups_max, b.pool_groups_max);
  return a;
}

void TimelineSampler::Decimate() {
  ++decimations_;
  cur_dt_ *= 2;
  std::size_t w = 0;
  std::size_t i = 0;
  for (; i + 1 < samples_.size(); i += 2)
    samples_[w++] = MergePair(std::move(samples_[i]), samples_[i + 1]);
  if (i < samples_.size()) samples_[w++] = std::move(samples_[i]);
  samples_.resize(w);
}

TimelineSummary TimelineSampler::Summarize() const {
  TimelineSummary out;
  out.samples = samples_.size();
  out.planes = planes_;
  out.ports = ports_;
  out.decimations = decimations_;
  if (any_span_) {
    out.horizon_begin = first_span_begin_;
    out.horizon_end = last_span_end_;
    const Time horizon = last_span_end_ - first_span_begin_;
    if (horizon > kTimeEps) {
      if (planes_ > 0 && ports_ > 0) {
        out.util_mean = total_busy_s_ /
                        (2.0 * planes_ * static_cast<double>(ports_) * horizon);
      }
      out.engine_active_fraction =
          std::clamp(total_engine_active_s_ / horizon, 0.0, 1.0);
    }
  }
  if (!samples_.empty()) {
    std::vector<double> utils;
    utils.reserve(samples_.size());
    for (const auto& s : samples_)
      utils.push_back(WindowUtil(s, planes_, ports_));
    out.util_p99 = stats::Percentile(utils, 99);
  }
  if (any_demand_) {
    const double covered = covered_ + (cover_end_ - seg_begin_);
    const Time horizon = last_demand_end_ - first_arrival_;
    if (horizon > kTimeEps)
      out.idle_fraction = std::clamp(1.0 - covered / horizon, 0.0, 1.0);
  }
  if (memo_lookups_total_ > 0) {
    out.memo_hit_rate = static_cast<double>(memo_hits_total_) /
                        static_cast<double>(memo_lookups_total_);
  }
  out.pool_peak_groups = pool_peak_groups_;
  out.slo.replans = replan_ns_.count();
  out.slo.p50_ns = replan_ns_.ValueAtPercentile(50);
  out.slo.p99_ns = replan_ns_.ValueAtPercentile(99);
  out.slo.max_ns = replan_ns_.max();
  out.slo.burn = slo_burn_;
  out.slo.first_breach_t = slo_first_breach_;
  return out;
}

void TimelineSampler::WriteCsv(std::ostream& os) const {
  os << "# sunflow.timeline/v1\n";
  os << "# dt=" << FormatJsonNumber(config_.dt)
     << " effective_dt=" << FormatJsonNumber(cur_dt_)
     << " cap=" << config_.cap << " planes=" << planes_
     << " ports=" << ports_ << " decimations=" << decimations_ << "\n";
  os << "t_begin,t_end";
  const int planes = std::max(planes_, 1);
  for (int p = 0; p < planes; ++p)
    os << ",util_in_p" << p << ",util_out_p" << p;
  os << ",engine_active_frac,active,queue_depth,admitted,blocked,replans";
  if (config_.include_wall) {
    os << ",replan_ns_max,replan_ns_sum,rolling_p50_ns,rolling_p99_ns,"
          "memo_hits,memo_lookups,pool_groups_max";
  }
  os << "\n";
  for (const auto& s : samples_) {
    os << FormatJsonNumber(s.begin) << ',' << FormatJsonNumber(s.end);
    for (int p = 0; p < planes; ++p) {
      os << ','
         << FormatJsonNumber(SideUtil(s.busy_in, static_cast<std::size_t>(p),
                                      ports_, s.width()))
         << ','
         << FormatJsonNumber(SideUtil(s.busy_out, static_cast<std::size_t>(p),
                                      ports_, s.width()));
    }
    const double active_frac =
        s.width() > kTimeEps
            ? std::clamp(s.engine_active_s / s.width(), 0.0, 1.0)
            : 0.0;
    os << ',' << FormatJsonNumber(active_frac) << ',' << s.active << ','
       << s.pending << ',' << s.admitted << ',' << s.blocked << ','
       << s.replans;
    if (config_.include_wall) {
      os << ',' << FormatJsonNumber(s.replan_ns_max) << ','
         << FormatJsonNumber(s.replan_ns_sum) << ','
         << FormatJsonNumber(s.rolling_p50_ns) << ','
         << FormatJsonNumber(s.rolling_p99_ns) << ',' << s.memo_hits << ','
         << s.memo_lookups << ',' << s.pool_groups_max;
    }
    os << "\n";
  }
}

void TimelineSampler::WriteJsonl(std::ostream& os) const {
  os << "{\"schema\":\"sunflow.timeline/v1\",\"dt\":"
     << FormatJsonNumber(config_.dt)
     << ",\"effective_dt\":" << FormatJsonNumber(cur_dt_)
     << ",\"cap\":" << config_.cap << ",\"planes\":" << planes_
     << ",\"ports\":" << ports_ << ",\"decimations\":" << decimations_
     << ",\"include_wall\":" << (config_.include_wall ? "true" : "false")
     << "}\n";
  const int planes = std::max(planes_, 1);
  for (const auto& s : samples_) {
    os << "{\"t0\":" << FormatJsonNumber(s.begin)
       << ",\"t1\":" << FormatJsonNumber(s.end) << ",\"util_in\":[";
    for (int p = 0; p < planes; ++p) {
      if (p > 0) os << ',';
      os << FormatJsonNumber(
          SideUtil(s.busy_in, static_cast<std::size_t>(p), ports_, s.width()));
    }
    os << "],\"util_out\":[";
    for (int p = 0; p < planes; ++p) {
      if (p > 0) os << ',';
      os << FormatJsonNumber(SideUtil(s.busy_out, static_cast<std::size_t>(p),
                                      ports_, s.width()));
    }
    const double active_frac =
        s.width() > kTimeEps
            ? std::clamp(s.engine_active_s / s.width(), 0.0, 1.0)
            : 0.0;
    os << "],\"engine_active_frac\":" << FormatJsonNumber(active_frac)
       << ",\"active\":" << s.active << ",\"queue_depth\":" << s.pending
       << ",\"admitted\":" << s.admitted << ",\"blocked\":" << s.blocked
       << ",\"replans\":" << s.replans;
    if (config_.include_wall) {
      os << ",\"replan_ns_max\":" << FormatJsonNumber(s.replan_ns_max)
         << ",\"replan_ns_sum\":" << FormatJsonNumber(s.replan_ns_sum)
         << ",\"rolling_p50_ns\":" << FormatJsonNumber(s.rolling_p50_ns)
         << ",\"rolling_p99_ns\":" << FormatJsonNumber(s.rolling_p99_ns)
         << ",\"memo_hits\":" << s.memo_hits
         << ",\"memo_lookups\":" << s.memo_lookups
         << ",\"pool_groups_max\":" << s.pool_groups_max;
    }
    os << "}\n";
  }
}

}  // namespace sunflow::obs
