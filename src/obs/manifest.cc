#include "obs/manifest.h"

#include <ctime>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/utsname.h>
#endif

#if __has_include("sunflow_version.h")
#include "sunflow_version.h"
#else  // building without the CMake-generated header (e.g. bare tooling)
#define SUNFLOW_GIT_SHA "unknown"
#define SUNFLOW_GIT_DIRTY 0
#define SUNFLOW_CMAKE_BUILD_TYPE "unknown"
#endif

namespace sunflow::obs {

namespace {

std::string HostDescription() {
#if defined(__unix__) || defined(__APPLE__)
  utsname u{};
  if (uname(&u) == 0) {
    return std::string(u.sysname) + " " + u.release + " " + u.machine;
  }
#endif
  return "unknown";
}

std::int64_t PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // bytes on macOS
#else
    return usage.ru_maxrss;  // kilobytes on Linux
#endif
  }
#endif
  return 0;
}

std::string CompilerDescription() {
#if defined(__VERSION__)
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#else
  return std::string("gcc ") + __VERSION__;
#endif
#else
  return "unknown";
#endif
}

}  // namespace

RunManifest RunManifest::Begin(std::string tool, int argc,
                               const char* const* argv) {
  RunManifest m;
  m.tool = std::move(tool);
  for (int i = 0; i < argc; ++i) m.argv.emplace_back(argv[i]);
  m.git_sha = SUNFLOW_GIT_SHA;
  m.git_dirty = SUNFLOW_GIT_DIRTY != 0;
  m.build_type = SUNFLOW_CMAKE_BUILD_TYPE;
  m.compiler = CompilerDescription();
  m.host = HostDescription();
  m.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  m.created_unix = static_cast<std::int64_t>(std::time(nullptr));
  m.start_ = std::chrono::steady_clock::now();
  return m;
}

void RunManifest::Finalize() {
  wall_ns = std::chrono::duration<double, std::nano>(
                std::chrono::steady_clock::now() - start_)
                .count();
  peak_rss_kb = PeakRssKb();
  metrics = GlobalMetrics().Rows();
  const Profiler merged = GlobalProfiler().Merged();
  profile = merged.Rows();
  profile_scopes = merged.TotalCount();
  profile_ns_per_scope = CalibrateScopeCostNs();
  profile_overhead_fraction =
      wall_ns > 0
          ? static_cast<double>(profile_scopes) * profile_ns_per_scope / wall_ns
          : 0;
}

JsonValue RunManifest::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j["schema"] = kRunManifestSchema;
  j["tool"] = tool;
  JsonValue args = JsonValue::MakeArray();
  for (const std::string& a : argv) args.Append(a);
  j["argv"] = std::move(args);
  j["git_sha"] = git_sha;
  j["git_dirty"] = git_dirty;
  j["build_type"] = build_type;
  j["compiler"] = compiler;
  j["host"] = host;
  j["hardware_threads"] = hardware_threads;
  j["created_unix"] = created_unix;

  JsonValue run = JsonValue::MakeObject();
  run["seed"] = seed;
  run["threads"] = threads;
  run["wall_ns"] = wall_ns;
  run["peak_rss_kb"] = peak_rss_kb;
  for (const auto& [key, value] : extra) run[key] = value;
  j["run"] = std::move(run);

  JsonValue prof = JsonValue::MakeObject();
  JsonValue phases = JsonValue::MakeObject();
  for (const ProfileRow& row : profile) {
    JsonValue p = JsonValue::MakeObject();
    p["count"] = row.stats.count;
    p["total_ns"] = row.stats.total_ns;
    p["self_ns"] = row.stats.self_ns;
    p["max_ns"] = row.stats.max_ns;
    phases[row.name] = std::move(p);
  }
  prof["phases"] = std::move(phases);
  JsonValue overhead = JsonValue::MakeObject();
  overhead["scopes"] = profile_scopes;
  overhead["ns_per_scope"] = profile_ns_per_scope;
  overhead["fraction"] = profile_overhead_fraction;
  prof["overhead"] = std::move(overhead);
  j["profile"] = std::move(prof);

  JsonValue mets = JsonValue::MakeObject();
  for (const MetricRow& row : metrics) {
    JsonValue m = JsonValue::MakeObject();
    m["kind"] = row.kind;
    m["count"] = row.count;
    m["value"] = row.value;
    if (row.kind == "histogram") {
      m["mean"] = row.mean;
      m["p50"] = row.p50;
      m["p95"] = row.p95;
      m["max"] = row.max;
    }
    mets[row.name] = std::move(m);
  }
  j["metrics"] = std::move(mets);
  return j;
}

void RunManifest::WriteJson(std::ostream& out, int indent) const {
  ToJson().Write(out, indent);
  out << "\n";
}

void RunManifest::WriteFile(const std::string& path, int indent) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open manifest output " + path);
  WriteJson(f, indent);
  f.flush();
  if (!f) throw std::runtime_error("failed writing manifest " + path);
}

RunManifest RunManifest::FromJson(const JsonValue& json) {
  if (json.at("schema").AsString() != kRunManifestSchema) {
    throw std::runtime_error("unexpected manifest schema \"" +
                             json.at("schema").AsString() + "\"");
  }
  RunManifest m;
  m.tool = json.at("tool").AsString();
  for (const JsonValue& a : json.at("argv").AsArray())
    m.argv.push_back(a.AsString());
  m.git_sha = json.at("git_sha").AsString();
  m.git_dirty = json.at("git_dirty").AsBool();
  m.build_type = json.at("build_type").AsString();
  m.compiler = json.at("compiler").AsString();
  m.host = json.at("host").AsString();
  m.hardware_threads = static_cast<int>(json.at("hardware_threads").AsNumber());
  m.created_unix =
      static_cast<std::int64_t>(json.at("created_unix").AsNumber());

  const JsonValue& run = json.at("run");
  m.seed = static_cast<std::uint64_t>(run.at("seed").AsNumber());
  m.threads = static_cast<int>(run.at("threads").AsNumber());
  m.wall_ns = run.at("wall_ns").AsNumber();
  m.peak_rss_kb = static_cast<std::int64_t>(run.at("peak_rss_kb").AsNumber());
  for (const auto& [key, value] : run.AsObject()) {
    if (key == "seed" || key == "threads" || key == "wall_ns" ||
        key == "peak_rss_kb")
      continue;
    m.extra[key] = value.AsNumber();
  }

  // The profile and metrics blocks are optional on read: manifests written
  // by stripped-down producers (or hand-built fixtures) may omit them, and
  // a reader that throws here can surface nothing at all. Consumers see
  // empty profile/metrics and degrade on their own terms.
  if (const JsonValue* prof = json.Find("profile")) {
    if (const JsonValue* phases = prof->Find("phases")) {
      for (const auto& [name, p] : phases->AsObject()) {
        ProfileRow row;
        row.name = name;
        row.stats.count = static_cast<std::uint64_t>(p.at("count").AsNumber());
        row.stats.total_ns = p.at("total_ns").AsNumber();
        row.stats.self_ns = p.at("self_ns").AsNumber();
        row.stats.max_ns = p.at("max_ns").AsNumber();
        m.profile.push_back(std::move(row));
      }
    }
    if (const JsonValue* overhead = prof->Find("overhead")) {
      m.profile_scopes =
          static_cast<std::uint64_t>(overhead->at("scopes").AsNumber());
      m.profile_ns_per_scope = overhead->at("ns_per_scope").AsNumber();
      m.profile_overhead_fraction = overhead->at("fraction").AsNumber();
    }
  }

  const JsonValue* metrics_block = json.Find("metrics");
  if (metrics_block == nullptr) return m;
  for (const auto& [name, v] : metrics_block->AsObject()) {
    MetricRow row;
    row.name = name;
    row.kind = v.at("kind").AsString();
    row.count = static_cast<std::uint64_t>(v.at("count").AsNumber());
    row.value = v.at("value").AsNumber();
    if (row.kind == "histogram") {
      row.mean = v.at("mean").AsNumber();
      row.p50 = v.at("p50").AsNumber();
      row.p95 = v.at("p95").AsNumber();
      row.max = v.at("max").AsNumber();
    }
    m.metrics.push_back(std::move(row));
  }
  return m;
}

}  // namespace sunflow::obs
