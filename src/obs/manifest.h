// Run manifest — one self-describing JSON artifact per run.
//
// Every bench and runner invocation records what ran (tool, argv, git
// SHA, build type, compiler), where (host kernel + architecture +
// hardware threads), with what inputs (seed, worker threads), and what it
// cost (wall time, peak RSS) — plus a merged snapshot of the metrics
// registry and the phase profiler, and a calibrated estimate of the
// profiler's own overhead. A manifest is the unit the bench regression
// harness (bench/harness.py) aggregates and tools/bench_compare diffs,
// so a number in a BENCH_*.json trajectory can always be traced back to
// the exact configuration that produced it.
//
// Usage (BenchSession in bench/bench_util.h wires this up for benches):
//   auto manifest = obs::RunManifest::Begin("fig5_switching", argc, argv);
//   ... run ...
//   manifest.Finalize();             // wall time, RSS, obs snapshots
//   manifest.WriteFile("fig5_switching.manifest.json");
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sunflow::obs {

inline constexpr const char* kRunManifestSchema = "sunflow.run_manifest/v1";

struct RunManifest {
  /// Captures start time and the static environment (git, build,
  /// compiler, host). argv may be null (argc 0) for in-process runs.
  static RunManifest Begin(std::string tool, int argc = 0,
                           const char* const* argv = nullptr);

  // --- Identity and environment (filled by Begin) -----------------------
  std::string tool;
  std::vector<std::string> argv;
  std::string git_sha;
  bool git_dirty = false;
  std::string build_type;
  std::string compiler;
  std::string host;          ///< "<sysname> <release> <machine>"
  int hardware_threads = 0;
  std::int64_t created_unix = 0;

  // --- Run parameters (filled by the caller before Finalize) ------------
  std::uint64_t seed = 0;
  int threads = 0;
  /// Bench-specific scalars (e.g. coflows, ports) surfaced at top level.
  std::map<std::string, double> extra;

  // --- Measured outcome (filled by Finalize) ----------------------------
  double wall_ns = 0;
  std::int64_t peak_rss_kb = 0;  ///< getrusage ru_maxrss; 0 where unsupported
  std::vector<MetricRow> metrics;
  std::vector<ProfileRow> profile;
  std::uint64_t profile_scopes = 0;   ///< total scope entries recorded
  double profile_ns_per_scope = 0;    ///< calibrated per-scope cost
  double profile_overhead_fraction = 0;  ///< scopes * cost / wall_ns

  /// Stamps wall time and peak RSS and snapshots GlobalMetrics() /
  /// GlobalProfiler() (call only after workers have quiesced). Safe to
  /// call more than once; later calls refresh the snapshots.
  void Finalize();

  /// Serializes to the sunflow.run_manifest/v1 JSON schema.
  JsonValue ToJson() const;
  void WriteJson(std::ostream& out, int indent = 2) const;
  /// Writes the file, fsync-free but flush-checked: throws
  /// std::runtime_error if the file cannot be opened or written.
  void WriteFile(const std::string& path, int indent = 2) const;

  /// Rebuilds a manifest from ToJson() output (round-trip for tests and
  /// the compare tooling). Throws std::runtime_error on schema mismatch.
  static RunManifest FromJson(const JsonValue& json);

 private:
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace sunflow::obs
