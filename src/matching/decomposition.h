// Matrix stuffing and Birkhoff–von-Neumann (BvN) decomposition.
//
// Both TMS and Solstice reduce circuit scheduling to decomposing a demand
// matrix into permutation matrices. A matrix is "perfect" when every row
// and column sums to the same value T; Hall's theorem then guarantees the
// positive-entry bipartite graph admits a perfect matching, so BvN always
// terminates.
#pragma once

#include <vector>

#include "common/units.h"
#include "trace/demand_matrix.h"

namespace sunflow {

/// One decomposition step: a permutation (assignment of each row to a
/// distinct column) active for `duration`.
struct WeightedAssignment {
  std::vector<int> col_of_row;  ///< size n, a permutation (or -1 = unmatched)
  Time duration = 0;
};

/// Solstice's QuickStuff (Liu et al., CoNEXT'15 §4.1): raises entries so
/// that every row and column sums to T = max line sum, preferring existing
/// non-zero entries (preserves sparsity), then falling back to zero entries.
/// Input must be square; modifies in place and returns T.
Time QuickStuff(DemandMatrix& m);

/// Exact BvN decomposition of a perfect matrix (all line sums == T within
/// tolerance): repeatedly extract a perfect matching on positive entries
/// with weight = min matched entry. At most n²−2n+2 assignments.
/// `reference_scale` sets the magnitude against which numeric dust and
/// droppable residue are judged; 0 means the matrix's own max line sum
/// (callers decomposing a residual of a larger matrix should pass the
/// original scale).
std::vector<WeightedAssignment> BvnDecompose(DemandMatrix m,
                                             Time eps = kTimeEps,
                                             Time reference_scale = 0);

/// Solstice's BigSlice loop: thresholded decomposition that prefers long
/// slots. Picks the largest r = T/2^k admitting a perfect matching among
/// entries >= r, schedules it for r, subtracts, and repeats; falls back to
/// exact BvN steps for the residue. Input must be perfect (post-stuffing).
std::vector<WeightedAssignment> BigSliceDecompose(DemandMatrix m,
                                                  Time eps = kTimeEps);

/// Sinkhorn row/column normalization towards a doubly stochastic matrix
/// scaled to T (used by TMS pre-processing). Zero rows/columns receive
/// uniform fill-in first. Returns the scaled matrix.
DemandMatrix SinkhornScale(const DemandMatrix& m, Time target_line_sum,
                           int iterations = 50);

}  // namespace sunflow
