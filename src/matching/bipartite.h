// Bipartite matching primitives shared by the circuit schedulers.
//
// Ports of a circuit switch form a bipartite graph (inputs vs outputs); a
// valid circuit assignment is a matching. Solstice needs maximum-cardinality
// matchings on thresholded demand graphs (Hopcroft–Karp), Edmonds/TMS need
// maximum-weight assignments (Hungarian).
#pragma once

#include <cstdint>
#include <vector>

namespace sunflow {

/// A matching over a bipartite graph with `n_left` and `n_right` vertices:
/// match_of_left[i] is the matched right vertex or -1.
struct BipartiteMatching {
  std::vector<int> match_of_left;
  std::vector<int> match_of_right;

  int size() const {
    int n = 0;
    for (int m : match_of_left)
      if (m >= 0) ++n;
    return n;
  }
};

/// Adjacency-list bipartite graph (left -> list of right neighbours).
class BipartiteGraph {
 public:
  BipartiteGraph(int n_left, int n_right);

  void AddEdge(int left, int right);

  int n_left() const { return n_left_; }
  int n_right() const { return n_right_; }
  const std::vector<int>& Neighbors(int left) const {
    return adj_[static_cast<std::size_t>(left)];
  }

 private:
  int n_left_;
  int n_right_;
  std::vector<std::vector<int>> adj_;
};

/// Maximum-cardinality matching in O(E·sqrt(V)) (Hopcroft–Karp).
BipartiteMatching MaxCardinalityMatching(const BipartiteGraph& graph);

/// True iff the graph admits a matching saturating every left vertex.
bool HasPerfectMatching(const BipartiteGraph& graph);

/// Maximum-weight assignment on an n×n weight matrix (weights may be 0 for
/// absent edges; entries must be finite). Returns a *perfect* matching that
/// maximizes total weight — the Hungarian algorithm, O(n³).
/// weight[i][j] is the benefit of assigning left i to right j.
std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weight);

}  // namespace sunflow
