#include "matching/bipartite.h"

#include <limits>
#include <queue>

#include "common/assert.h"

namespace sunflow {

BipartiteGraph::BipartiteGraph(int n_left, int n_right)
    : n_left_(n_left), n_right_(n_right),
      adj_(static_cast<std::size_t>(n_left)) {
  SUNFLOW_CHECK(n_left >= 0 && n_right >= 0);
}

void BipartiteGraph::AddEdge(int left, int right) {
  SUNFLOW_CHECK(left >= 0 && left < n_left_);
  SUNFLOW_CHECK(right >= 0 && right < n_right_);
  adj_[static_cast<std::size_t>(left)].push_back(right);
}

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

// Hopcroft–Karp working state.
struct HkState {
  const BipartiteGraph& g;
  std::vector<int> match_l, match_r, dist;

  explicit HkState(const BipartiteGraph& graph)
      : g(graph),
        match_l(static_cast<std::size_t>(graph.n_left()), -1),
        match_r(static_cast<std::size_t>(graph.n_right()), -1),
        dist(static_cast<std::size_t>(graph.n_left()), 0) {}

  bool Bfs() {
    std::queue<int> q;
    bool found_free = false;
    for (int u = 0; u < g.n_left(); ++u) {
      if (match_l[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] = 0;
        q.push(u);
      } else {
        dist[static_cast<std::size_t>(u)] = kInf;
      }
    }
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int v : g.Neighbors(u)) {
        const int w = match_r[static_cast<std::size_t>(v)];
        if (w < 0) {
          found_free = true;
        } else if (dist[static_cast<std::size_t>(w)] == kInf) {
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(u)] + 1;
          q.push(w);
        }
      }
    }
    return found_free;
  }

  bool Dfs(int u) {
    for (int v : g.Neighbors(u)) {
      const int w = match_r[static_cast<std::size_t>(v)];
      if (w < 0 || (dist[static_cast<std::size_t>(w)] ==
                        dist[static_cast<std::size_t>(u)] + 1 &&
                    Dfs(w))) {
        match_l[static_cast<std::size_t>(u)] = v;
        match_r[static_cast<std::size_t>(v)] = u;
        return true;
      }
    }
    dist[static_cast<std::size_t>(u)] = kInf;
    return false;
  }
};

}  // namespace

BipartiteMatching MaxCardinalityMatching(const BipartiteGraph& graph) {
  HkState st(graph);
  while (st.Bfs()) {
    for (int u = 0; u < graph.n_left(); ++u) {
      if (st.match_l[static_cast<std::size_t>(u)] < 0) st.Dfs(u);
    }
  }
  return {std::move(st.match_l), std::move(st.match_r)};
}

bool HasPerfectMatching(const BipartiteGraph& graph) {
  if (graph.n_left() > graph.n_right()) return false;
  return MaxCardinalityMatching(graph).size() == graph.n_left();
}

std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weight) {
  const int n = static_cast<int>(weight.size());
  SUNFLOW_CHECK(n > 0);
  for (const auto& row : weight)
    SUNFLOW_CHECK(static_cast<int>(row.size()) == n);

  // Hungarian algorithm (potentials formulation) on the *cost* matrix
  // cost = -weight, computing a min-cost perfect assignment. 1-based
  // internal arrays per the classic formulation.
  const double INF = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<std::size_t>(n) + 1, 0);
  std::vector<double> v(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> p(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> way(static_cast<std::size_t>(n) + 1, 0);

  auto cost = [&](int i, int j) {
    return -weight[static_cast<std::size_t>(i - 1)]
                  [static_cast<std::size_t>(j - 1)];
  };

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(n) + 1, INF);
    std::vector<char> used(static_cast<std::size_t>(n) + 1, false);
    do {
      used[static_cast<std::size_t>(j0)] = true;
      const int i0 = p[static_cast<std::size_t>(j0)];
      double delta = INF;
      int j1 = -1;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double cur = cost(i0, j) - u[static_cast<std::size_t>(i0)] -
                           v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      SUNFLOW_CHECK(j1 >= 0);
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= n; ++j) {
    assignment[static_cast<std::size_t>(p[static_cast<std::size_t>(j)]) - 1] =
        j - 1;
  }
  return assignment;
}

}  // namespace sunflow
