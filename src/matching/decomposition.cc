#include "matching/decomposition.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "matching/bipartite.h"

namespace sunflow {

namespace {

// Builds the bipartite graph of entries >= threshold.
BipartiteGraph ThresholdGraph(const DemandMatrix& m, Time threshold) {
  BipartiteGraph g(m.rows(), m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      if (m.at(i, j) >= threshold) g.AddEdge(i, j);
    }
  }
  return g;
}

// Extracts a perfect matching among entries >= threshold, or empty if none.
std::vector<int> PerfectMatchingAtLeast(const DemandMatrix& m,
                                        Time threshold) {
  const auto matching = MaxCardinalityMatching(ThresholdGraph(m, threshold));
  if (matching.size() != m.rows()) return {};
  return matching.match_of_left;
}

// Subtracts `amount` from each matched entry, clamping tiny negatives.
void SubtractMatching(DemandMatrix& m, const std::vector<int>& col_of_row,
                      Time amount) {
  for (int i = 0; i < m.rows(); ++i) {
    const int j = col_of_row[static_cast<std::size_t>(i)];
    SUNFLOW_CHECK(j >= 0);
    Time& cell = m.at(i, j);
    cell -= amount;
    if (cell < 0) {
      SUNFLOW_CHECK_MSG(cell > -1e-6, "matching subtracted below zero");
      cell = 0;
    }
  }
}

}  // namespace

Time QuickStuff(DemandMatrix& m) {
  SUNFLOW_CHECK_MSG(m.rows() == m.cols(), "QuickStuff requires square input");
  const int n = m.rows();
  const Time target = m.MaxLineSum();
  if (target <= kTimeEps) return 0;

  std::vector<Time> row_sum(static_cast<std::size_t>(n), 0);
  std::vector<Time> col_sum(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) row_sum[static_cast<std::size_t>(i)] = m.RowSum(i);
  for (int j = 0; j < n; ++j) col_sum[static_cast<std::size_t>(j)] = m.ColSum(j);

  auto stuff_cell = [&](int i, int j) {
    const Time slack =
        std::min(target - row_sum[static_cast<std::size_t>(i)],
                 target - col_sum[static_cast<std::size_t>(j)]);
    if (slack > kTimeEps) {
      m.at(i, j) += slack;
      row_sum[static_cast<std::size_t>(i)] += slack;
      col_sum[static_cast<std::size_t>(j)] += slack;
    }
  };

  // Pass 1: grow existing demand (preserves sparsity — fewer circuits).
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (m.at(i, j) > kTimeEps) stuff_cell(i, j);
  // Pass 2: fill zero entries. One full pass suffices: total remaining row
  // slack always equals total remaining column slack, so a cell with both
  // slacks positive exists until all are zero, and we visit every cell.
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) stuff_cell(i, j);

  for (int i = 0; i < n; ++i) {
    SUNFLOW_CHECK_MSG(std::fabs(m.RowSum(i) - target) < 1e-6,
                      "row " << i << " not stuffed to target");
    SUNFLOW_CHECK_MSG(std::fabs(m.ColSum(i) - target) < 1e-6,
                      "col " << i << " not stuffed to target");
  }
  return target;
}

std::vector<WeightedAssignment> BvnDecompose(DemandMatrix m, Time eps,
                                             Time reference_scale) {
  SUNFLOW_CHECK(m.rows() == m.cols());
  const Time scale =
      reference_scale > 0 ? reference_scale : std::max(m.MaxLineSum(), 1.0);
  // Entries below `dust` are floating-point residue from repeated slice
  // subtraction; relative to the matrix scale they are far under the
  // executors' coverage tolerance and are dropped rather than decomposed.
  const Time dust = std::max(eps, scale * 1e-10);
  std::vector<WeightedAssignment> out;
  // Each step extracts a maximum-cardinality matching on the entries above
  // dust and subtracts the minimum matched value, zeroing at least one
  // cell. On a perfect matrix the maximum matching is perfect, so this *is*
  // BvN; on the slightly unbalanced residue that upstream clamping leaves
  // behind, it still drains everything without needing Hall's condition.
  const int cell_budget = m.rows() * m.cols() + 2 * m.rows() + 2;
  int steps = 0;
  while (!m.IsZero(dust)) {
    SUNFLOW_CHECK_MSG(++steps <= cell_budget,
                      "BvN failed to converge (residual total = "
                          << m.Total() << ")");
    const auto matching = MaxCardinalityMatching(ThresholdGraph(m, dust));
    WeightedAssignment slot;
    slot.col_of_row = matching.match_of_left;
    Time w = kTimeInf;
    bool any = false;
    for (int i = 0; i < m.rows(); ++i) {
      const int j = slot.col_of_row[static_cast<std::size_t>(i)];
      if (j < 0) continue;
      // Matched along an edge of the dust-threshold graph: entry >= dust.
      w = std::min(w, m.at(i, j));
      any = true;
    }
    SUNFLOW_CHECK_MSG(any, "BvN: positive residue but empty matching");
    SUNFLOW_CHECK(w >= dust && w < kTimeInf);
    for (int i = 0; i < m.rows(); ++i) {
      const int j = slot.col_of_row[static_cast<std::size_t>(i)];
      if (j < 0) continue;
      Time& cell = m.at(i, j);
      cell = std::max(0.0, cell - w);
    }
    slot.duration = w;
    out.push_back(std::move(slot));
  }
  return out;
}

std::vector<WeightedAssignment> BigSliceDecompose(DemandMatrix m, Time eps) {
  SUNFLOW_CHECK(m.rows() == m.cols());
  std::vector<WeightedAssignment> out;
  const Time total_target = m.MaxLineSum();
  if (total_target <= eps) return out;

  // The halving ladder stops at a floor relative to T: slices thinner than
  // one millionth of the makespan are noise next to δ, and grinding the
  // ladder further multiplies Hopcroft–Karp calls for no scheduling value.
  // The exact mop-up below drains whatever remains.
  const Time floor = std::max(eps, total_target * 1e-6);
  int k = 0;
  constexpr int kMaxHalvings = 48;
  while (!m.IsZero(eps) && k <= kMaxHalvings) {
    const Time r = total_target / std::pow(2.0, k);
    if (r <= floor) break;
    const auto matching = PerfectMatchingAtLeast(m, r);
    if (matching.empty()) {
      ++k;
      continue;
    }
    SubtractMatching(m, matching, r);
    out.push_back({matching, r});
  }
  // Exact BvN steps mop up the long tail (the residual is still perfect:
  // every subtracted slice reduced all line sums by exactly r). Dust
  // thresholds are judged against the original matrix's scale.
  auto tail = BvnDecompose(std::move(m), eps, total_target);
  out.insert(out.end(), std::make_move_iterator(tail.begin()),
             std::make_move_iterator(tail.end()));
  return out;
}

DemandMatrix SinkhornScale(const DemandMatrix& m, Time target_line_sum,
                           int iterations) {
  SUNFLOW_CHECK(m.rows() == m.cols());
  SUNFLOW_CHECK(target_line_sum > 0);
  const int n = m.rows();
  std::vector<std::vector<Time>> e(static_cast<std::size_t>(n),
                                   std::vector<Time>(static_cast<std::size_t>(n), 0));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = m.at(i, j);

  // Give empty rows/columns uniform mass so normalization is well defined.
  for (int i = 0; i < n; ++i) {
    Time s = 0;
    for (int j = 0; j < n; ++j) s += e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    if (s <= kTimeEps)
      for (int j = 0; j < n; ++j)
        e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            target_line_sum / n;
  }
  for (int j = 0; j < n; ++j) {
    Time s = 0;
    for (int i = 0; i < n; ++i) s += e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    if (s <= kTimeEps)
      for (int i = 0; i < n; ++i)
        e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            target_line_sum / n;
  }

  for (int it = 0; it < iterations; ++it) {
    for (int i = 0; i < n; ++i) {
      Time s = 0;
      for (int j = 0; j < n; ++j) s += e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (s > kTimeEps) {
        const Time f = target_line_sum / s;
        for (int j = 0; j < n; ++j) e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *= f;
      }
    }
    for (int j = 0; j < n; ++j) {
      Time s = 0;
      for (int i = 0; i < n; ++i) s += e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (s > kTimeEps) {
        const Time f = target_line_sum / s;
        for (int i = 0; i < n; ++i) e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *= f;
      }
    }
  }
  return DemandMatrix(std::move(e));
}

}  // namespace sunflow
