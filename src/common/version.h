// One-line build identification for the CLI tools' --version flags,
// assembled from the configure-time constants in sunflow_version.h
// (generated from src/obs/version.h.in; on the include path via the
// build tree's generated/ directory).
#pragma once

#include <string>

#include "sunflow_version.h"

namespace sunflow {

/// "sunflow_trace_inspect (sunflow) git 079ca30-dirty, build Release".
/// The SHA is captured at CMake configure time, so it can lag the working
/// tree (the .in header says as much); "unknown" when built outside git.
inline std::string VersionString(const std::string& tool) {
  std::string out = tool + " (sunflow) git ";
  const char* sha = SUNFLOW_GIT_SHA;
  out += (sha[0] != '\0') ? sha : "unknown";
#if SUNFLOW_GIT_DIRTY
  out += "-dirty";
#endif
  const char* build = SUNFLOW_CMAKE_BUILD_TYPE;
  out += ", build ";
  out += (build[0] != '\0') ? build : "unspecified";
  return out;
}

}  // namespace sunflow
