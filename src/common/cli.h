// Minimal command-line flag parsing for examples and bench binaries.
//
// Flags are "--name=value" or "--name value"; "--help" prints registered
// flags. This is intentionally tiny — just enough for reproducible
// experiment parameterization without an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sunflow {

class CliFlags {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed flags.
  CliFlags(int argc, const char* const* argv);

  /// Typed getters with defaults; records the flag for --help output.
  double GetDouble(const std::string& name, double def,
                   const std::string& help = "");
  std::int64_t GetInt(const std::string& name, std::int64_t def,
                      const std::string& help = "");
  bool GetBool(const std::string& name, bool def,
               const std::string& help = "");
  std::string GetString(const std::string& name, const std::string& def,
                        const std::string& help = "");

  bool help_requested() const { return help_; }
  /// Prints registered flags and their defaults.
  void PrintHelp(const std::string& program_description) const;

  /// Positional (non-flag) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::optional<std::string> Raw(const std::string& name) const;
  void Register(const std::string& name, const std::string& def,
                const std::string& help);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  bool help_ = false;

  struct FlagDoc {
    std::string name, def, help;
  };
  mutable std::vector<FlagDoc> docs_;
};

}  // namespace sunflow
