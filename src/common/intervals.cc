#include "common/intervals.h"

#include <algorithm>

#include "common/assert.h"

namespace sunflow {

void IntervalSet::Add(Time begin, Time end) {
  if (end <= begin) return;
  intervals_.push_back({begin, end});
}

std::vector<Interval> IntervalSet::Merged() const {
  std::vector<Interval> sorted = intervals_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  std::vector<Interval> merged;
  for (const auto& iv : sorted) {
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

Time IntervalSet::UnionLength() const {
  Time total = 0;
  for (const auto& iv : Merged()) total += iv.length();
  return total;
}

Time IntervalSet::UnionLengthWithin(Time lo, Time hi) const {
  SUNFLOW_CHECK(lo <= hi);
  Time total = 0;
  for (const auto& iv : Merged()) {
    const Time b = std::max(iv.begin, lo);
    const Time e = std::min(iv.end, hi);
    if (e > b) total += e - b;
  }
  return total;
}

bool IntervalSet::Covers(Time t) const {
  for (const auto& iv : Merged()) {
    if (t >= iv.begin - kTimeEps && t < iv.end + kTimeEps) return true;
  }
  return false;
}

}  // namespace sunflow
