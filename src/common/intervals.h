// Interval-union accounting over the time axis.
//
// Used by the network-idleness metric (§5.4): idleness is the fraction of
// the horizon not covered by the union of [arrival, arrival + TpL)
// intervals, and by schedule validators that need per-port busy coverage.
#pragma once

#include <vector>

#include "common/units.h"

namespace sunflow {

struct Interval {
  Time begin = 0;
  Time end = 0;

  Time length() const { return end - begin; }
  bool empty() const { return end <= begin + kTimeEps; }
  bool Contains(Time t) const { return t >= begin - kTimeEps && t < end + kTimeEps; }
};

/// A set of half-open time intervals with union/length queries.
class IntervalSet {
 public:
  /// Adds [begin, end); ignored if empty.
  void Add(Time begin, Time end);
  void Add(const Interval& iv) { Add(iv.begin, iv.end); }

  /// Total measure of the union of all added intervals.
  Time UnionLength() const;

  /// Union restricted to [lo, hi).
  Time UnionLengthWithin(Time lo, Time hi) const;

  /// The merged, sorted, disjoint intervals.
  std::vector<Interval> Merged() const;

  bool Covers(Time t) const;

  bool empty() const { return intervals_.empty(); }
  std::size_t raw_count() const { return intervals_.size(); }

 private:
  std::vector<Interval> intervals_;
};

}  // namespace sunflow
