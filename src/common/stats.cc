#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/assert.h"

namespace sunflow::stats {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Min(std::span<const double> xs) {
  SUNFLOW_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  SUNFLOW_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double StdDev(std::span<const double> xs) {
  if (xs.size() < 2) return 0;
  const double m = Mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double Percentile(std::span<const double> xs, double pct) {
  SUNFLOW_CHECK(!xs.empty());
  SUNFLOW_CHECK(pct >= 0 && pct <= 100);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  SUNFLOW_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
// Mid-ranks (average rank for ties), 1-based.
std::vector<double> MidRanks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double SpearmanCorrelation(std::span<const double> xs,
                           std::span<const double> ys) {
  SUNFLOW_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0;
  const auto rx = MidRanks(xs);
  const auto ry = MidRanks(ys);
  return PearsonCorrelation(rx, ry);
}

std::vector<CdfPoint> EmpiricalCdf(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse runs of equal values into the last (highest-fraction) point.
    if (!cdf.empty() && cdf.back().value == sorted[i]) {
      cdf.back().fraction = static_cast<double>(i + 1) / n;
    } else {
      cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
    }
  }
  return cdf;
}

std::vector<CdfPoint> CdfAt(std::span<const double> xs,
                            std::span<const double> values) {
  std::vector<CdfPoint> out;
  out.reserve(values.size());
  for (double v : values) out.push_back({v, FractionAtMost(xs, v)});
  return out;
}

double FractionAtMost(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0;
  std::size_t count = 0;
  for (double x : xs)
    if (x <= threshold) ++count;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

Summary Summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = Mean(xs);
  s.p50 = Percentile(xs, 50);
  s.p95 = Percentile(xs, 95);
  s.min = Min(xs);
  s.max = Max(xs);
  return s;
}

std::string ToString(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " mean=" << s.mean << " p50=" << s.p50
     << " p95=" << s.p95 << " min=" << s.min << " max=" << s.max;
  return os.str();
}

}  // namespace sunflow::stats
