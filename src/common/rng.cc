#include "common/rng.h"

#include <numeric>

namespace sunflow {

std::vector<std::int32_t> Rng::SampleWithoutReplacement(std::int32_t n,
                                                        std::int32_t k) {
  SUNFLOW_CHECK(k >= 0 && k <= n);
  // Partial Fisher–Yates: only the first k slots are needed.
  std::vector<std::int32_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  for (std::int32_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(UniformInt(i, n - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

}  // namespace sunflow
