#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace sunflow {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) {
    SUNFLOW_CHECK_MSG(row.size() == header_.size(),
                      "row width " << row.size() << " != header width "
                                   << header_.size());
  }
  rows_.push_back(std::move(row));
}

void TextTable::AddFootnote(std::string note) {
  footnotes_.push_back(std::move(note));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto account = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) account(header_);
  for (const auto& r : rows_) account(r);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
  for (const auto& n : footnotes_) os << "  * " << n << '\n';
  os << '\n';
}

std::string TextTable::Fmt(double v, int precision) {
  std::ostringstream o;
  o << std::fixed << std::setprecision(precision) << v;
  return o.str();
}

std::string TextTable::FmtSci(double v, int precision) {
  std::ostringstream o;
  o << std::scientific << std::setprecision(precision) << v;
  return o.str();
}

std::string TextTable::FmtPct(double fraction, int precision) {
  std::ostringstream o;
  o << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return o.str();
}

void PrintCdf(std::ostream& os, const std::string& name,
              std::span<const double> samples, std::size_t max_rows) {
  const auto cdf = stats::EmpiricalCdf(samples);
  os << "-- CDF: " << name << " (n=" << samples.size() << ") --\n";
  if (cdf.empty()) {
    os << "  (no samples)\n";
    return;
  }
  const std::size_t step = std::max<std::size_t>(1, cdf.size() / max_rows);
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    os << "  " << std::setw(12) << TextTable::Fmt(cdf[i].value, 4) << "  "
       << TextTable::Fmt(cdf[i].fraction, 4) << '\n';
  }
  if ((cdf.size() - 1) % step != 0) {
    os << "  " << std::setw(12) << TextTable::Fmt(cdf.back().value, 4) << "  "
       << TextTable::Fmt(cdf.back().fraction, 4) << '\n';
  }
}

void PrintCdfAscii(std::ostream& os, const std::string& name,
                   std::span<const double> samples, double min_value,
                   double max_value, int width, int height) {
  SUNFLOW_CHECK(width > 1 && height > 1 && max_value > min_value);
  os << "-- " << name << " (CDF, x in [" << TextTable::Fmt(min_value, 2)
     << ", " << TextTable::Fmt(max_value, 2) << "]) --\n";
  if (samples.empty()) {
    os << "  (no samples)\n";
    return;
  }
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (int c = 0; c < width; ++c) {
    const double x = min_value + (max_value - min_value) *
                                     static_cast<double>(c) /
                                     static_cast<double>(width - 1);
    const double f = stats::FractionAtMost(samples, x);
    int r = static_cast<int>(std::lround(f * (height - 1)));
    r = std::clamp(r, 0, height - 1);
    grid[static_cast<std::size_t>(height - 1 - r)]
        [static_cast<std::size_t>(c)] = '*';
  }
  for (int r = 0; r < height; ++r) {
    const double frac =
        1.0 - static_cast<double>(r) / static_cast<double>(height - 1);
    os << "  " << std::setw(5) << TextTable::Fmt(frac, 2) << " |"
       << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << "        +" << std::string(static_cast<std::size_t>(width), '-')
     << '\n';
}

}  // namespace sunflow
