// Deterministic random number generation.
//
// Every stochastic component of the library (trace synthesis, flow-size
// perturbation, shuffled reservation orderings) takes an explicit Rng so
// experiments are reproducible from a single seed. The generator is
// xoshiro256**, seeded via splitmix64 — fast, high quality, and identical
// across platforms (unlike std::mt19937 distributions, the sampling code
// below is fully specified here).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace sunflow {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    SUNFLOW_CHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    SUNFLOW_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection sampling for an unbiased result.
    const std::uint64_t limit = span * (UINT64_MAX / span);
    std::uint64_t v;
    do {
      v = NextU64();
    } while (v >= limit && limit != 0);
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Exponential with the given mean (inverse-CDF method).
  double Exponential(double mean) {
    SUNFLOW_CHECK(mean > 0);
    double u;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed sizes).
  double Pareto(double xm, double alpha) {
    SUNFLOW_CHECK(xm > 0 && alpha > 0);
    double u;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Samples an index according to non-negative weights (sum > 0).
  std::size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) {
      SUNFLOW_CHECK(w >= 0);
      total += w;
    }
    SUNFLOW_CHECK(total > 0);
    double r = NextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Draws k distinct values from [0, n) in random order.
  std::vector<std::int32_t> SampleWithoutReplacement(std::int32_t n,
                                                     std::int32_t k);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace sunflow
