#include "common/cli.h"

#include <cstdio>
#include <stdexcept>

namespace sunflow {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[body] = argv[++i];
      } else {
        values_[body] = "true";  // bare flag => boolean true
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::optional<std::string> CliFlags::Raw(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

void CliFlags::Register(const std::string& name, const std::string& def,
                        const std::string& help) {
  docs_.push_back({name, def, help});
}

double CliFlags::GetDouble(const std::string& name, double def,
                           const std::string& help) {
  Register(name, std::to_string(def), help);
  if (auto raw = Raw(name)) {
    try {
      return std::stod(*raw);
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                  *raw + "'");
    }
  }
  return def;
}

std::int64_t CliFlags::GetInt(const std::string& name, std::int64_t def,
                              const std::string& help) {
  Register(name, std::to_string(def), help);
  if (auto raw = Raw(name)) {
    try {
      return std::stoll(*raw);
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + name +
                                  " expects an integer, got '" + *raw + "'");
    }
  }
  return def;
}

bool CliFlags::GetBool(const std::string& name, bool def,
                       const std::string& help) {
  Register(name, def ? "true" : "false", help);
  if (auto raw = Raw(name)) {
    if (*raw == "true" || *raw == "1" || *raw == "yes") return true;
    if (*raw == "false" || *raw == "0" || *raw == "no") return false;
    throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                                *raw + "'");
  }
  return def;
}

std::string CliFlags::GetString(const std::string& name,
                                const std::string& def,
                                const std::string& help) {
  Register(name, def, help);
  if (auto raw = Raw(name)) return *raw;
  return def;
}

void CliFlags::PrintHelp(const std::string& program_description) const {
  std::printf("%s\n\nFlags:\n", program_description.c_str());
  for (const auto& d : docs_) {
    std::printf("  --%-24s (default: %s) %s\n", d.name.c_str(), d.def.c_str(),
                d.help.c_str());
  }
}

}  // namespace sunflow
