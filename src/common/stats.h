// Descriptive statistics used by the experiment harness: means, percentiles,
// empirical CDFs, Pearson and Spearman correlations.
//
// The paper reports averages, 95th percentiles, CDFs (Figs 4, 5), a linear
// correlation coefficient (Fig 5 discussion: 0.84) and a rank correlation
// (Fig 7 discussion: −0.96); all of those live here.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sunflow::stats {

double Mean(std::span<const double> xs);
double Min(std::span<const double> xs);
double Max(std::span<const double> xs);
double StdDev(std::span<const double> xs);

/// Percentile in [0, 100] with linear interpolation between order
/// statistics (the "linear"/type-7 definition used by numpy).
double Percentile(std::span<const double> xs, double pct);

/// Median shorthand.
inline double Median(std::span<const double> xs) { return Percentile(xs, 50); }

/// Pearson (linear) correlation coefficient. Returns 0 for degenerate input.
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/// Spearman rank correlation (Pearson over mid-ranks, handles ties).
double SpearmanCorrelation(std::span<const double> xs,
                           std::span<const double> ys);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0;     ///< sample value
  double fraction = 0;  ///< P[X <= value]
};

/// Full empirical CDF (one point per distinct sample value).
std::vector<CdfPoint> EmpiricalCdf(std::span<const double> xs);

/// CDF evaluated at the given values: fraction of samples <= v.
std::vector<CdfPoint> CdfAt(std::span<const double> xs,
                            std::span<const double> values);

/// Fraction of samples strictly below / at-or-below a threshold.
double FractionAtMost(std::span<const double> xs, double threshold);

/// Aggregate summary used in most report tables.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double min = 0;
  double max = 0;
};

Summary Summarize(std::span<const double> xs);

/// Renders a summary as "mean=… p95=… max=…" for log lines.
std::string ToString(const Summary& s);

}  // namespace sunflow::stats
