// Assertion and invariant-checking macros for the sunflow library.
//
// SUNFLOW_CHECK is always on (release included): it guards invariants whose
// violation would silently corrupt a simulation result. SUNFLOW_DCHECK
// compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sunflow {

/// Thrown when a checked invariant fails. Tests rely on this being an
/// exception (not abort) so failure paths can be exercised.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void CheckFail(const char* expr, const char* file,
                                   int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace sunflow

#define SUNFLOW_CHECK(cond)                                            \
  do {                                                                 \
    if (!(cond))                                                       \
      ::sunflow::detail::CheckFail(#cond, __FILE__, __LINE__, "");     \
  } while (0)

#define SUNFLOW_CHECK_MSG(cond, msg)                                   \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream sunflow_os_;                                  \
      sunflow_os_ << msg;                                              \
      ::sunflow::detail::CheckFail(#cond, __FILE__, __LINE__,          \
                                   sunflow_os_.str());                 \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define SUNFLOW_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define SUNFLOW_DCHECK(cond) SUNFLOW_CHECK(cond)
#endif
