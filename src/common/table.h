// Plain-text table and CDF rendering for bench binaries.
//
// Every bench prints the rows/series of one paper table or figure; this
// keeps the formatting consistent and aligned.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/stats.h"

namespace sunflow {

/// Column-aligned text table with a title and optional footnotes.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  void AddFootnote(std::string note);

  /// Renders with column alignment and a rule under the header.
  void Print(std::ostream& os) const;

  // Convenience formatters.
  static std::string Fmt(double v, int precision = 2);
  static std::string FmtSci(double v, int precision = 2);
  static std::string FmtPct(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footnotes_;
};

/// Prints an empirical CDF as rows "value  fraction" downsampled to at most
/// `max_rows` points (always keeping the first and last).
void PrintCdf(std::ostream& os, const std::string& name,
              std::span<const double> samples, std::size_t max_rows = 20);

/// Prints an ASCII line rendering of a CDF (value axis horizontal).
void PrintCdfAscii(std::ostream& os, const std::string& name,
                   std::span<const double> samples, double min_value,
                   double max_value, int width = 60, int height = 10);

}  // namespace sunflow
