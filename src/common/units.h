// Physical units and time arithmetic used throughout the library.
//
// Time is represented as double seconds; bytes and bandwidth as doubles
// (fluid flow model, matching the paper's flow-level simulator). All
// tolerance-sensitive comparisons go through the helpers below so the
// epsilon policy lives in exactly one place.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace sunflow {

using PortId = std::int32_t;  ///< 0-based switch port index.
using CoflowId = std::int64_t;
/// 0-based switch plane (core) index in a K-core fabric. The classic
/// single-switch fabric is plane 0 everywhere.
using PlaneId = std::int32_t;

/// Seconds. Simulations span microseconds (δ = 10 µs) to hours (trace
/// length), comfortably inside double precision.
using Time = double;
/// Bytes, fractional under the fluid model.
using Bytes = double;
/// Bytes per second.
using Bandwidth = double;

inline constexpr Time kTimeEps = 1e-9;   ///< 1 ns — far below any δ we model.
inline constexpr Time kTimeInf = std::numeric_limits<Time>::infinity();
inline constexpr Bytes kBytesEps = 1.0;  ///< Demands below one byte are done.

// --- Unit constructors -----------------------------------------------------

inline constexpr Bytes MB(double v) { return v * 1e6; }
inline constexpr Bytes GB(double v) { return v * 1e9; }
inline constexpr Bandwidth Gbps(double v) { return v * 1e9 / 8.0; }
inline constexpr Time Seconds(double v) { return v; }
inline constexpr Time Millis(double v) { return v * 1e-3; }
inline constexpr Time Micros(double v) { return v * 1e-6; }

// --- Tolerant comparisons --------------------------------------------------

inline bool TimeEq(Time a, Time b, Time eps = kTimeEps) {
  return std::fabs(a - b) <= eps;
}
inline bool TimeLess(Time a, Time b, Time eps = kTimeEps) {
  return a < b - eps;
}
inline bool TimeLessEq(Time a, Time b, Time eps = kTimeEps) {
  return a <= b + eps;
}
inline bool BytesDone(Bytes remaining) { return remaining < kBytesEps; }

}  // namespace sunflow
