// Bump-pointer arena for per-request planner scratch.
//
// The planning hot path (core/sunflow.cc) allocates a handful of small
// vectors and a wakeup heap on every ScheduleOne call — tens of thousands
// of malloc/free round trips per replayed trace that the phase profiler
// attributes to core.plan.*. An Arena turns each of those into a pointer
// bump: allocation is monotone within a frame, and a frame (ArenaScope)
// rewinds wholesale when the request finishes. Blocks are retained across
// frames, so steady-state planning allocates nothing from the system.
//
// Threading: an Arena is single-threaded by design. Parallel planning
// (core/components.cc) runs one request per pool worker; each worker uses
// its own thread-local arena via ThisThreadArena(), so no arena is ever
// shared across threads.
//
// ASan: freed regions (scope rewinds and Reset) are poisoned and
// allocations unpoison exactly their extent, so a stale pointer into a
// finished frame faults under AddressSanitizer just like a heap
// use-after-free would. All sizes/alignments are rounded to 8 bytes so
// the poison boundaries are exact, never approximate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SUNFLOW_ARENA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define SUNFLOW_ARENA_ASAN 1
#endif

#ifdef SUNFLOW_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define SUNFLOW_ARENA_POISON(addr, size) \
  ASAN_POISON_MEMORY_REGION((addr), (size))
#define SUNFLOW_ARENA_UNPOISON(addr, size) \
  ASAN_UNPOISON_MEMORY_REGION((addr), (size))
#else
#define SUNFLOW_ARENA_POISON(addr, size) ((void)0)
#define SUNFLOW_ARENA_UNPOISON(addr, size) ((void)0)
#endif

namespace sunflow::runtime {

/// Allocation traffic of one arena, surfaced as `arena.*` metrics by the
/// planner (once per ScheduleAll, so the counters stay off the per-flow
/// hot path).
struct ArenaStats {
  std::uint64_t allocations = 0;   ///< Allocate() calls
  std::uint64_t bytes = 0;         ///< bytes handed out (rounded to 8)
  std::uint64_t block_allocs = 0;  ///< blocks fetched from the system
  std::uint64_t frames = 0;        ///< ArenaScope rewinds
};

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    // Unpoison before handing blocks back so the allocator's own metadata
    // writes don't trip ASan.
    for (auto& b : blocks_) SUNFLOW_ARENA_UNPOISON(b.data.get(), b.capacity);
  }

  /// Bump-allocates `size` bytes aligned to `align` (both rounded up to 8
  /// so ASan poison boundaries stay exact). Never returns null; falls back
  /// to a dedicated block for oversized requests.
  void* Allocate(std::size_t size, std::size_t align = 8) {
    size = RoundUp8(size == 0 ? 1 : size);
    if (align < 8) align = 8;
    ++stats_.allocations;
    stats_.bytes += size;
    if (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      const std::size_t at = RoundUpTo(b.used, align);
      if (at + size <= b.capacity) {
        b.used = at + size;
        SUNFLOW_ARENA_UNPOISON(b.data.get() + at, size);
        return b.data.get() + at;
      }
      // Try the already-retained successor blocks before growing.
      for (std::size_t next = current_ + 1; next < blocks_.size(); ++next) {
        if (size <= blocks_[next].capacity) {
          current_ = next;
          Block& nb = blocks_[next];
          nb.used = size;
          SUNFLOW_ARENA_UNPOISON(nb.data.get(), size);
          return nb.data.get();
        }
      }
    }
    return AllocateSlow(size);
  }

  /// Rewinds everything, retaining the blocks. Outstanding pointers become
  /// poisoned (under ASan) dangling references.
  void Reset() {
    for (auto& b : blocks_) {
      SUNFLOW_ARENA_POISON(b.data.get(), b.capacity);
      b.used = 0;
    }
    current_ = 0;
  }

  const ArenaStats& stats() const { return stats_; }

  /// Bytes currently live (sum of block `used` up to the cursor).
  std::size_t bytes_in_use() const {
    std::size_t sum = 0;
    for (std::size_t i = 0; i < blocks_.size() && i <= current_; ++i)
      sum += blocks_[i].used;
    return sum;
  }

 private:
  friend class ArenaScope;

  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  static std::size_t RoundUp8(std::size_t v) { return (v + 7) & ~std::size_t{7}; }
  static std::size_t RoundUpTo(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  void* AllocateSlow(std::size_t size) {
    ++stats_.block_allocs;
    Block b;
    b.capacity = size > block_bytes_ ? size : block_bytes_;
    b.data = std::make_unique<char[]>(b.capacity);
    SUNFLOW_ARENA_POISON(b.data.get(), b.capacity);
    b.used = size;
    SUNFLOW_ARENA_UNPOISON(b.data.get(), size);
    current_ = blocks_.size();
    blocks_.push_back(std::move(b));
    return blocks_.back().data.get();
  }

  Mark Here() const {
    Mark m;
    m.block = current_;
    m.used = current_ < blocks_.size() ? blocks_[current_].used : 0;
    return m;
  }

  void RewindTo(const Mark& m) {
    ++stats_.frames;
    for (std::size_t i = blocks_.size(); i-- > m.block + 1;) {
      SUNFLOW_ARENA_POISON(blocks_[i].data.get(), blocks_[i].capacity);
      blocks_[i].used = 0;
    }
    if (m.block < blocks_.size()) {
      Block& b = blocks_[m.block];
      SUNFLOW_ARENA_POISON(b.data.get() + m.used, b.capacity - m.used);
      b.used = m.used;
    }
    current_ = m.block;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;
  ArenaStats stats_;
};

/// RAII frame: everything allocated after construction is freed (and
/// poisoned) on destruction. Scopes nest LIFO on one thread; do not
/// interleave scopes of the same arena across threads.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.Here()) {}
  ~ArenaScope() { arena_.RewindTo(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Minimal std-allocator adapter. Deallocation is a no-op — memory is
/// reclaimed by the enclosing ArenaScope — so only use inside a scope
/// whose lifetime covers the container's.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return !(*this == other);
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// The per-thread scratch arena. Pool workers and the caller thread each
/// get their own, so parallel component planning never shares one.
Arena& ThisThreadArena();

}  // namespace sunflow::runtime
