#include "runtime/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace sunflow::runtime {

int HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

ThreadPool::ThreadPool(int threads)
    : size_(threads <= 0 ? HardwareConcurrency() : threads) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 1; i < size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::TryRunOneQueuedTask() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain-before-join: queued work still runs after stop_ is set.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor call. Tasks are claimed with an atomic
/// counter; the first failure (by lowest index) wins and unclaimed tasks
/// are skipped from then on.
struct ForState {
  std::atomic<std::size_t> next;
  std::size_t end = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex mu;
  std::condition_variable done_cv;
  int active_helpers = 0;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
  std::atomic<bool> failed{false};

  void RunLoop() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      if (failed.load(std::memory_order_relaxed)) continue;
      try {
        (*fn)(i);
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (workers_.empty() || end - begin == 1) {
    // Serial reference schedule: strictly ascending order, fail fast.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->fn = &fn;

  // One helper per worker, capped by the number of tasks (the caller
  // claims tasks too, so even zero helpers would make progress).
  const std::size_t helpers =
      std::min(workers_.size(), end - begin - 1);
  state->active_helpers = static_cast<int>(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([state] {
      state->RunLoop();
      std::unique_lock<std::mutex> lock(state->mu);
      if (--state->active_helpers == 0) state->done_cv.notify_all();
    });
  }

  state->RunLoop();
  // Work-stealing wait: while our helpers are still out, run other queued
  // pool tasks on this thread instead of blocking. With every waiter (at
  // any nesting depth) draining the queue, a helper closure queued behind
  // a nested ParallelFor always finds a thread, so nested calls on the
  // same pool cannot deadlock. The short timed wait re-polls the queue for
  // tasks submitted after the last empty check.
  std::uint64_t steals = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->active_helpers == 0) break;
    }
    if (TryRunOneQueuedTask()) {
      ++steals;
      continue;
    }
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait_for(lock, std::chrono::milliseconds(1),
                            [&] { return state->active_helpers == 0; });
    if (state->active_helpers == 0) break;
  }
  if (steals > 0) {
    obs::GlobalMetrics().GetCounter("pool.waiter_steals").Increment(steals);
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace sunflow::runtime
