#include "runtime/sweep.h"

namespace sunflow::runtime {

std::uint64_t TaskSeed(std::uint64_t base_seed, std::uint64_t task_index) {
  // splitmix64 over base_seed advanced by task_index + 1 steps' worth of
  // the golden-ratio increment; one finalization round is enough to
  // decorrelate adjacent indices.
  std::uint64_t z = base_seed + (task_index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void MergeEvents(obs::TraceSink* sink,
                 const std::vector<std::vector<obs::Event>>& events) {
  if (sink == nullptr) return;
  for (const auto& buffer : events) {
    for (const obs::Event& e : buffer) sink->OnEvent(e);
  }
}

}  // namespace sunflow::runtime
