#include "runtime/arena.h"

namespace sunflow::runtime {

Arena& ThisThreadArena() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace sunflow::runtime
