// SweepRunner — deterministic fan-out of independent simulation runs.
//
// Every evaluation figure in the paper is an embarrassingly parallel sweep
// (per-coflow intra CCTs, per-δ points, per-policy replays). SweepRunner
// shards such a sweep over a ThreadPool while keeping the *results*
// bit-identical at any thread count:
//
//  - task i always performs the same work, writes only its own result
//    slot, and sees an Rng seed derived from (base_seed, i) — never from
//    execution order (TaskSeed below);
//  - trace events are buffered per task (each task gets a private
//    MemorySink) and handed back in task order, so exported JSONL /
//    Chrome-trace output is byte-identical to a serial run;
//  - metrics recorded through obs::GlobalMetrics() land in per-thread
//    shards and merge commutatively on collect (obs/metrics.h).
//
// The determinism contract and how to add a new sweep are documented in
// docs/parallelism.md and locked in by tests/runtime_test.cc.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/profiler.h"
#include "obs/trace_sink.h"
#include "runtime/thread_pool.h"

namespace sunflow::runtime {

/// Mixes (base_seed, task_index) into an independent per-task seed with
/// splitmix64 — the same expansion common/rng.h uses internally, so task
/// streams are decorrelated even for adjacent indices.
std::uint64_t TaskSeed(std::uint64_t base_seed, std::uint64_t task_index);

struct SweepConfig {
  /// Worker threads; <= 0 means HardwareConcurrency(), 1 runs inline on
  /// the caller (the serial reference schedule).
  int threads = 1;
  /// Base seed mixed into every TaskContext::seed.
  std::uint64_t base_seed = 0;
};

/// Handed to each task. `sink` is a private per-task buffer when the sweep
/// was started with capture_events = true, else null — emission sites
/// keep their usual null-check contract.
struct TaskContext {
  std::size_t index = 0;
  std::uint64_t seed = 0;       ///< TaskSeed(config.base_seed, index)
  obs::TraceSink* sink = nullptr;
};

/// Results plus per-task event buffers, both in task order.
template <typename Result>
struct Sweep {
  std::vector<Result> results;
  /// One buffer per task when events were captured; empty otherwise.
  std::vector<std::vector<obs::Event>> events;
};

/// Forwards every buffered event to `sink`, buffers in task order (the
/// deterministic merge). A null sink is a no-op.
void MergeEvents(obs::TraceSink* sink,
                 const std::vector<std::vector<obs::Event>>& events);

class SweepRunner {
 public:
  explicit SweepRunner(const SweepConfig& config)
      : config_(config), pool_(config.threads) {}

  int threads() const { return pool_.size(); }

  /// Runs fn(TaskContext&) -> Result for n tasks and returns results (and
  /// event buffers, when capture_events) in task order. Exceptions follow
  /// ThreadPool::ParallelFor: the lowest failing index wins.
  template <typename Result, typename Fn>
  Sweep<Result> Run(std::size_t n, bool capture_events, Fn&& fn) {
    Sweep<Result> sweep;
    sweep.results.resize(n);
    std::vector<obs::MemorySink> sinks(capture_events ? n : 0);
    pool_.ParallelFor(0, n, [&](std::size_t i) {
      // One phase entry per dispatched task: total_ns sums the pool's busy
      // time across workers; self_ns nets out profiled work inside the
      // task, leaving the dispatch + result-write overhead.
      SUNFLOW_PROFILE_SCOPE("runtime.task");
      TaskContext ctx;
      ctx.index = i;
      ctx.seed = TaskSeed(config_.base_seed, i);
      ctx.sink = capture_events ? &sinks[i] : nullptr;
      sweep.results[i] = fn(ctx);
    });
    if (capture_events) {
      sweep.events.reserve(n);
      for (obs::MemorySink& s : sinks) {
        sweep.events.push_back(std::move(s).TakeEvents());
      }
    }
    return sweep;
  }

 private:
  SweepConfig config_;
  ThreadPool pool_;
};

}  // namespace sunflow::runtime
