// Fixed-size worker pool and the ParallelFor primitive behind every
// parallel sweep in this repository.
//
// The pool is deliberately small in scope: Submit() enqueues opaque
// closures, ParallelFor() shards an index range over the workers with an
// atomic claim counter (dynamic load balancing — which *thread* runs task
// i is unspecified, but task i itself is always the same work, so results
// written to slot i are identical at any thread count). A pool of size
// <= 1 executes ParallelFor inline on the caller with zero threading
// overhead, which is also the reference serial schedule for determinism
// tests.
//
// Exception contract: if tasks throw, ParallelFor rethrows exactly one
// exception — the one raised by the *lowest* task index — after all
// workers have quiesced, so failure behaviour is deterministic too.
// Remaining unclaimed tasks are skipped once a failure is recorded.
//
// Nesting: ParallelFor may be called from inside a task already running on
// the same pool (the intra-replan planner does this when a sweep task
// replans in parallel). A thread waiting for its helpers to finish steals
// and runs queued pool tasks instead of blocking, so the inner call's
// helper closures always find a thread to run them and nested waits can
// never deadlock — at any depth, some waiter drains the queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sunflow::runtime {

/// std::thread::hardware_concurrency with a floor of 1 (the standard
/// allows it to return 0 on exotic platforms).
int HardwareConcurrency();

class ThreadPool {
 public:
  /// threads <= 0 means HardwareConcurrency(). A pool of size 1 spawns no
  /// worker thread at all: everything runs inline on the caller.
  explicit ThreadPool(int threads = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Enqueues a closure for execution on some worker. Fire-and-forget:
  /// exceptions escaping a submitted task terminate the process (use
  /// ParallelFor for checked work). On a size-1 pool the task runs inline.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for every i in [begin, end), sharded over the workers,
  /// and blocks until all of them finished. Rethrows the exception of the
  /// lowest failing index, if any. The caller thread participates in the
  /// work, so a ParallelFor on an otherwise idle pool of size N uses N
  /// threads in total (N - 1 workers + the caller). Safe to call from a
  /// task already running on this pool (see the nesting note above).
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  /// Pops and runs one queued task on the calling thread if any is
  /// pending. Used by ParallelFor waiters to keep the pool making
  /// progress instead of blocking (nested-submission deadlock freedom).
  bool TryRunOneQueuedTask();

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace sunflow::runtime
