#include "sched/optimal.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/assert.h"

namespace sunflow {

namespace {

struct Job {
  PortId src = 0;
  PortId dst = 0;
  Time length = 0;  // δ + p
};

// Busy intervals per port, kept sorted and disjoint.
using PortBusy = std::map<PortId, std::vector<std::pair<Time, Time>>>;

// Earliest t >= 0 such that [t, t+len) is free on both ports.
Time EarliestGap(const PortBusy& busy, const Job& job) {
  // Merge the two ports' busy lists into one sorted list.
  std::vector<std::pair<Time, Time>> merged;
  for (PortId port : {job.src, job.dst}) {
    auto it = busy.find(port);
    if (it != busy.end())
      merged.insert(merged.end(), it->second.begin(), it->second.end());
  }
  std::sort(merged.begin(), merged.end());
  Time t = 0;
  for (const auto& [begin, end] : merged) {
    if (begin - t >= job.length - kTimeEps) return t;  // gap fits
    t = std::max(t, end);
  }
  return t;
}

void Insert(std::vector<std::pair<Time, Time>>& list, Time begin, Time end) {
  auto it = std::lower_bound(list.begin(), list.end(),
                             std::make_pair(begin, end));
  list.insert(it, {begin, end});
}

struct SearchState {
  std::vector<Job> jobs;
  std::vector<char> used;
  PortBusy busy;
  Time makespan = 0;
  Time best = kTimeInf;
  std::size_t explored = 0;

  void Dfs(std::size_t placed) {
    ++explored;
    if (makespan >= best - kTimeEps) return;  // bound
    if (placed == jobs.size()) {
      best = makespan;
      return;
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (used[j]) continue;
      const Job& job = jobs[j];
      const Time start = EarliestGap(busy, job);
      const Time end = start + job.length;

      used[j] = 1;
      // src and dst never alias: outputs are keyed with an offset (see
      // OptimalNonPreemptiveCct), since in.i and out.i are distinct ports.
      auto& src_list = busy[job.src];
      auto& dst_list = busy[job.dst];
      Insert(src_list, start, end);
      Insert(dst_list, start, end);
      const Time saved = makespan;
      makespan = std::max(makespan, end);

      Dfs(placed + 1);

      makespan = saved;
      // Remove the two inserted intervals (they are unique values).
      auto rm = [&](std::vector<std::pair<Time, Time>>& list) {
        auto it = std::find(list.begin(), list.end(),
                            std::make_pair(start, end));
        SUNFLOW_CHECK(it != list.end());
        list.erase(it);
      };
      rm(src_list);
      rm(dst_list);
      used[j] = 0;
    }
  }
};

}  // namespace

OptimalResult OptimalNonPreemptiveCct(const Coflow& coflow,
                                      Bandwidth bandwidth, Time delta,
                                      std::size_t max_flows) {
  SUNFLOW_CHECK(bandwidth > 0);
  SUNFLOW_CHECK_MSG(coflow.size() <= max_flows,
                    "optimal search is factorial; coflow has "
                        << coflow.size() << " flows, cap is " << max_flows);
  SearchState state;
  state.jobs.reserve(coflow.size());
  for (const Flow& f : coflow.flows()) {
    // Inputs and outputs live in different port spaces: key outputs at
    // (dst + kOutOffset) so in.i and out.i never collide.
    constexpr PortId kOutOffset = 1 << 20;
    state.jobs.push_back(
        {f.src, static_cast<PortId>(f.dst + kOutOffset),
         delta + f.bytes / bandwidth});
  }
  state.used.assign(state.jobs.size(), 0);
  state.Dfs(0);
  SUNFLOW_CHECK(state.best < kTimeInf);
  return {state.best, state.explored};
}

}  // namespace sunflow
