// Sunflow-per-core scheduling for K-core OCS fabrics.
//
// The K-core scheduling literature ("An O(K)-Approximation Algorithm for
// Scheduling Coflows in K-Core OCS Networks", PAPERS.md) keeps each coflow
// on a single core: order the coflows by effective bottleneck size, then
// assign each one wholly to the least-loaded core, and run the single-core
// scheduler (here: Sunflow's Algorithm 1) independently per core. This
// module implements that ordering + assignment step; the "kcore" engine
// scenario (sim/engine/scenarios.cc) and the fig_kcore bench use it as the
// baseline the joint plane-aware planner (core/sunflow.cc) is compared
// against.
//
// Header-only by design: the engine consumes sched only through headers
// (sunflow_sched links sunflow_engine back, so the engine library must not
// need sched symbols at link time — see src/sim/engine/CMakeLists.txt).
#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "common/assert.h"
#include "common/units.h"
#include "core/fabric.h"
#include "core/sunflow.h"

namespace sunflow {

/// Result of assigning a batch of plan requests to cores.
struct KCoreAssignment {
  /// Chosen core per request, parallel to the input vector.
  std::vector<PlaneId> plane_of;
  /// Final accumulated load per core, in seconds on that core (bottleneck
  /// processing scaled by the core's rate).
  std::vector<Time> plane_load;
  /// The processing order used (indices into the input vector): ascending
  /// effective bottleneck, ties broken by coflow id then input position.
  std::vector<std::size_t> order;
};

/// Bottleneck processing time of a request at the reference bandwidth: the
/// max over ports of the total demand entering or leaving it (Σ-row /
/// Σ-column of the demand matrix) — the lower bound TcL any single core
/// needs to drain the coflow.
inline Time BottleneckProcessing(const PlanRequest& request) {
  std::map<PortId, Time> in_sum;
  std::map<PortId, Time> out_sum;
  for (const FlowDemand& f : request.demand) {
    in_sum[f.src] += f.processing;
    out_sum[f.dst] += f.processing;
  }
  Time bottleneck = 0;
  for (const auto& [port, sum] : in_sum) bottleneck = std::max(bottleneck, sum);
  for (const auto& [port, sum] : out_sum)
    bottleneck = std::max(bottleneck, sum);
  return bottleneck;
}

/// The papers' per-core greedy: shortest-effective-bottleneck-first
/// ordering, each coflow placed on the core whose load after absorbing it
/// is smallest (a coflow drains at the core's own rate, so a faster core
/// keeps winning until it has genuinely absorbed more work).
/// Deterministic: all ties break toward the lower plane id / coflow id.
/// `planes` must be non-empty; rates must be positive.
inline KCoreAssignment AssignCoflowsToCores(
    const std::vector<const PlanRequest*>& requests,
    const std::vector<PlaneSpec>& planes, Bandwidth bandwidth) {
  SUNFLOW_CHECK(!planes.empty());
  SUNFLOW_CHECK(bandwidth > 0);
  const std::size_t k = planes.size();

  KCoreAssignment out;
  out.plane_of.assign(requests.size(), 0);
  out.plane_load.assign(k, 0);

  // Shortest-effective-bottleneck-first: the K-core approximation results
  // all process coflows in a non-decreasing size permutation; ties break
  // by coflow id then input position so the assignment is a pure function
  // of the request list.
  struct Ranked {
    Time bottleneck;
    CoflowId coflow;
    std::size_t index;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ranked.push_back(
        {BottleneckProcessing(*requests[i]), requests[i]->coflow, i});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.bottleneck != b.bottleneck)
                return a.bottleneck < b.bottleneck;
              if (a.coflow != b.coflow) return a.coflow < b.coflow;
              return a.index < b.index;
            });

  out.order.reserve(ranked.size());
  for (const Ranked& r : ranked) {
    out.order.push_back(r.index);
    PlaneId best = 0;
    Time best_load = kTimeInf;
    for (std::size_t p = 0; p < k; ++p) {
      SUNFLOW_CHECK(planes[p].rate > 0);
      const Time load =
          out.plane_load[p] + r.bottleneck * (bandwidth / planes[p].rate);
      if (load < best_load) {
        best_load = load;
        best = static_cast<PlaneId>(p);
      }
    }
    out.plane_of[r.index] = best;
    out.plane_load[static_cast<std::size_t>(best)] = best_load;
  }
  return out;
}

}  // namespace sunflow
