// Circuit-schedule executors for the two switch models of §2.1.
//
// Not-all-stop (the accurate optical-switch model): reconfiguring one
// circuit costs δ on the two ports involved; unchanged circuits keep
// transmitting, and ports progress independently (Fig 1b's staggering).
//
// All-stop (the conventional TSA model): every assignment change stops all
// circuits for δ. Kept for the ablation of §3.1.2 — it shows why classic
// algorithms need preemption to avoid idle circuits.
//
// Executors replay an assignment schedule against the *original* (real)
// demand; stuffed dummy demand occupies circuit time but moves no bytes.
// They are also validators: leftover demand after the last slot is a bug in
// the scheduler and throws.
#pragma once

#include <vector>

#include "common/units.h"
#include "sched/schedule.h"
#include "trace/demand_matrix.h"

namespace sunflow::obs {
class TraceSink;
}  // namespace sunflow::obs

namespace sunflow {

struct FlowCompletion {
  PortId src = 0;
  PortId dst = 0;
  Time finish = 0;  ///< absolute time the flow's last byte lands
};

struct ExecutionResult {
  Time cct = 0;  ///< max flow finish − start time
  std::vector<FlowCompletion> completions;
  /// Number of circuit setup events that paid δ (Fig 5's switching count).
  /// Also accumulated into the `executor.circuit_setups` metric, so traces,
  /// metrics and this field report from one count.
  int circuit_setups = 0;
  std::size_t num_slots = 0;
  /// When the last circuit of the schedule is released (≥ cct + start).
  Time schedule_end = 0;
};

/// Executes under the not-all-stop model. `demand` is the real (unstuffed)
/// square demand matrix the schedule was computed for. `sink` optionally
/// receives one kCircuitSetup event per δ paid (labelled `coflow`), and
/// the `executor.circuit_setups` / `executor.slots` metrics are bumped by
/// the run's totals.
ExecutionResult ExecuteNotAllStop(const DemandMatrix& demand,
                                  const AssignmentSchedule& schedule,
                                  Time delta, Time start = 0,
                                  obs::TraceSink* sink = nullptr,
                                  CoflowId coflow = -1);

/// Executes under the all-stop model (global δ whenever the assignment
/// changes).
ExecutionResult ExecuteAllStop(const DemandMatrix& demand,
                               const AssignmentSchedule& schedule, Time delta,
                               Time start = 0,
                               obs::TraceSink* sink = nullptr,
                               CoflowId coflow = -1);

}  // namespace sunflow
