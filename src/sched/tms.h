// TMS — Traffic Matrix Scheduling (Porter et al., "Integrating Microsecond
// Circuit Switching into the Data Center", SIGCOMM 2013), baseline of
// §3.1.1.
//
// TMS pre-processes the demand matrix towards a doubly-stochastic matrix
// (Sinkhorn row/column normalization, here followed by QuickStuff so the
// matrix is exactly perfect) and BvN-decomposes it into permutations whose
// durations are proportional to their BvN weights. Because pre-processing
// "may heavily modify the original demand matrix" (§3.1.1), one round
// typically under-serves some flows; ScheduleTms iterates rounds on the
// remaining real demand until everything is covered.
#pragma once

#include "sched/schedule.h"
#include "trace/demand_matrix.h"

namespace sunflow {

struct TmsConfig {
  int sinkhorn_iterations = 10;
  int max_rounds = 32;  ///< Sinkhorn rounds before the exact cleanup round
};

AssignmentSchedule ScheduleTms(const DemandMatrix& demand,
                               const TmsConfig& config = {});

}  // namespace sunflow
