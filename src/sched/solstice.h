// Solstice (Liu et al., "Scheduling Techniques for Hybrid Circuit/Packet
// Networks", CoNEXT 2015) — the strongest preemptive baseline in §5.2.
//
// Pipeline: (1) QuickStuff pads the demand matrix into a perfect matrix
// (equal row/column sums), preferring existing non-zero entries; the padding
// is *dummy demand* that occupies circuits without moving coflow bytes.
// (2) BigSlice repeatedly extracts the longest slice r = T/2^k that admits a
// perfect matching among entries ≥ r. The result is an assignment sequence
// executed under either circuit model.
#pragma once

#include "sched/schedule.h"
#include "trace/demand_matrix.h"

namespace sunflow {

struct SolsticeConfig {
  /// Slice-threshold floor relative to T: slices below T·rel_floor are left
  /// to the exact BvN tail. 0 keeps halving down to numeric zero.
  double rel_floor = 0.0;
};

/// Schedules one coflow demand matrix. `demand` must be square (call
/// MakeSquare()); entries are processing times.
AssignmentSchedule ScheduleSolstice(const DemandMatrix& demand,
                                    const SolsticeConfig& config = {});

}  // namespace sunflow
