#include "sched/tms.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sunflow {

namespace {

// Subtracts the time served by `slots` from the remaining real demand.
void SubtractServed(DemandMatrix& remaining,
                    const std::vector<WeightedAssignment>& slots) {
  for (const auto& slot : slots) {
    for (int r = 0; r < remaining.rows(); ++r) {
      const int c = slot.col_of_row[static_cast<std::size_t>(r)];
      if (c < 0) continue;
      Time& cell = remaining.at(r, c);
      cell = std::max(0.0, cell - slot.duration);
    }
  }
}

}  // namespace

AssignmentSchedule ScheduleTms(const DemandMatrix& demand,
                               const TmsConfig& config) {
  // thread_local: GlobalMetrics() shards per thread (see obs/metrics.h).
  static thread_local obs::Histogram& compute_ns =
      obs::GlobalMetrics().GetHistogram("scheduler.tms.compute_ns");
  obs::ScopedTimer timer(compute_ns);
  SUNFLOW_PROFILE_SCOPE("sched.tms");
  SUNFLOW_CHECK_MSG(demand.rows() == demand.cols(),
                    "TMS needs a square matrix; call MakeSquare()");
  AssignmentSchedule schedule;
  schedule.algorithm = "TMS";
  if (demand.IsZero()) return schedule;

  DemandMatrix remaining = demand;
  for (int round = 0; round < config.max_rounds && !remaining.IsZero();
       ++round) {
    const Time target = remaining.MaxLineSum();
    // Sinkhorn towards doubly stochastic (scaled to the line-sum target),
    // then QuickStuff to make the matrix exactly perfect for BvN.
    DemandMatrix scaled = [&] {
      SUNFLOW_PROFILE_SCOPE("sched.tms.sinkhorn");
      return SinkhornScale(remaining, target, config.sinkhorn_iterations);
    }();
    QuickStuff(scaled);
    auto slots = [&] {
      SUNFLOW_PROFILE_SCOPE("sched.tms.bvn");
      return BvnDecompose(std::move(scaled));
    }();
    SubtractServed(remaining, slots);
    schedule.slots.insert(schedule.slots.end(),
                          std::make_move_iterator(slots.begin()),
                          std::make_move_iterator(slots.end()));
  }
  if (!remaining.IsZero()) {
    // Exact cleanup: stuff and BvN the true residual so coverage is total.
    DemandMatrix residual = remaining;
    QuickStuff(residual);
    auto slots = [&] {
      SUNFLOW_PROFILE_SCOPE("sched.tms.bvn");
      return BvnDecompose(std::move(residual));
    }();
    schedule.slots.insert(schedule.slots.end(),
                          std::make_move_iterator(slots.begin()),
                          std::make_move_iterator(slots.end()));
  }
  return schedule;
}

}  // namespace sunflow
