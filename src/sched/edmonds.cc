#include "sched/edmonds.h"

#include <algorithm>

#include "common/assert.h"
#include "matching/bipartite.h"
#include "obs/profiler.h"

namespace sunflow {

AssignmentSchedule ScheduleEdmonds(const DemandMatrix& demand,
                                   const EdmondsConfig& config) {
  SUNFLOW_PROFILE_SCOPE("sched.edmonds");
  SUNFLOW_CHECK_MSG(demand.rows() == demand.cols(),
                    "Edmonds needs a square matrix; call MakeSquare()");
  SUNFLOW_CHECK(config.slot_duration > 0);
  AssignmentSchedule schedule;
  schedule.algorithm = "Edmonds";

  const int n = demand.rows();
  DemandMatrix remaining = demand;
  for (int round = 0; round < config.max_rounds && !remaining.IsZero();
       ++round) {
    // Weight = full remaining demand, as in the classic c-Through/Helios
    // formulation: the matching chases heavy pairs, so light flows languish
    // for many rounds — one of the inefficiencies §3.1.1 attributes to this
    // approach. (Clamping weights to the slot length would turn this into a
    // per-slot-throughput optimizer the historical systems did not have.)
    std::vector<std::vector<double>> weight(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n), 0));
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c)
        weight[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            remaining.at(r, c);

    std::vector<int> assignment = [&] {
      SUNFLOW_PROFILE_SCOPE("sched.edmonds.matching");
      return MaxWeightAssignment(weight);
    }();
    // Circuits matched to zero-demand pairs carry nothing: drop them so the
    // executor does not pay setup for them.
    WeightedAssignment slot;
    slot.col_of_row.assign(static_cast<std::size_t>(n), -1);
    slot.duration = config.slot_duration;
    bool any = false;
    for (int r = 0; r < n; ++r) {
      const int c = assignment[static_cast<std::size_t>(r)];
      if (c >= 0 && remaining.at(r, c) > kTimeEps) {
        slot.col_of_row[static_cast<std::size_t>(r)] = c;
        Time& cell = remaining.at(r, c);
        cell = std::max(0.0, cell - config.slot_duration);
        any = true;
      }
    }
    SUNFLOW_CHECK_MSG(any,
                      "Edmonds made no progress on a non-zero matrix — "
                      "max-weight matching failed");
    schedule.slots.push_back(std::move(slot));
  }
  SUNFLOW_CHECK_MSG(remaining.IsZero(),
                    "Edmonds hit max_rounds with demand left");
  return schedule;
}

}  // namespace sunflow
