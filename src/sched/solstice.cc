#include "sched/solstice.h"

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sunflow {

AssignmentSchedule ScheduleSolstice(const DemandMatrix& demand,
                                    const SolsticeConfig& config) {
  // thread_local, not static: GlobalMetrics() shards per thread, so a
  // plain static would pin every thread to the first caller's shard.
  static thread_local obs::Histogram& compute_ns =
      obs::GlobalMetrics().GetHistogram("scheduler.solstice.compute_ns");
  obs::ScopedTimer timer(compute_ns);
  SUNFLOW_PROFILE_SCOPE("sched.solstice");
  SUNFLOW_CHECK_MSG(demand.rows() == demand.cols(),
                    "Solstice needs a square matrix; call MakeSquare()");
  AssignmentSchedule schedule;
  schedule.algorithm = "Solstice";
  if (demand.IsZero()) return schedule;

  // §5.3.1 of the Sunflow paper: demand that occupies a single row or
  // column (one-to-one, one-to-many, many-to-one coflows) "happens to be
  // handled by Solstice in a one flow per assignment manner", which is
  // optimal. Stuffing such a matrix would be almost entirely dummy demand,
  // so serve it directly: one exact-length assignment per flow.
  int nonzero_rows = 0, nonzero_cols = 0;
  for (int r = 0; r < demand.rows(); ++r)
    if (demand.RowSum(r) > kTimeEps) ++nonzero_rows;
  for (int c = 0; c < demand.cols(); ++c)
    if (demand.ColSum(c) > kTimeEps) ++nonzero_cols;
  if (nonzero_rows <= 1 || nonzero_cols <= 1) {
    for (int r = 0; r < demand.rows(); ++r) {
      for (int c = 0; c < demand.cols(); ++c) {
        if (demand.at(r, c) <= kTimeEps) continue;
        WeightedAssignment slot;
        slot.col_of_row.assign(static_cast<std::size_t>(demand.rows()), -1);
        slot.col_of_row[static_cast<std::size_t>(r)] = c;
        slot.duration = demand.at(r, c);
        schedule.slots.push_back(std::move(slot));
      }
    }
    return schedule;
  }

  DemandMatrix stuffed = demand;
  Time target = 0;
  {
    SUNFLOW_PROFILE_SCOPE("sched.solstice.stuff");
    target = QuickStuff(stuffed);
  }
  const Time eps = std::max(kTimeEps, target * config.rel_floor);
  {
    SUNFLOW_PROFILE_SCOPE("sched.solstice.slice");
    schedule.slots = BigSliceDecompose(std::move(stuffed), eps);
  }
  return schedule;
}

}  // namespace sunflow
