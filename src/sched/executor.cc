// Thin adapters: the slot-execution loops live in the kernel
// (sim/engine/slot_executor.h); these entry points keep the historical
// sched-level API.
#include "sched/executor.h"

#include "sim/engine/slot_executor.h"

namespace sunflow {

ExecutionResult ExecuteNotAllStop(const DemandMatrix& demand,
                                  const AssignmentSchedule& schedule,
                                  Time delta, Time start,
                                  obs::TraceSink* sink, CoflowId coflow) {
  return engine::ExecuteAssignmentSchedule(demand, schedule, delta, start,
                                           engine::SwitchModel::kNotAllStop,
                                           sink, coflow);
}

ExecutionResult ExecuteAllStop(const DemandMatrix& demand,
                               const AssignmentSchedule& schedule, Time delta,
                               Time start,
                               obs::TraceSink* sink, CoflowId coflow) {
  return engine::ExecuteAssignmentSchedule(demand, schedule, delta, start,
                                           engine::SwitchModel::kAllStop,
                                           sink, coflow);
}

}  // namespace sunflow
