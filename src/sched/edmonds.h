// Edmonds — maximum-weight-matching circuit scheduling (used by c-Through,
// Helios and others; §3.1.1 baseline).
//
// Each round computes a maximum-weight matching of the remaining demand
// matrix (weight = time servable within one slot) and installs it for a
// fixed, externally-chosen slot duration — "typically fixed and on the
// order of hundreds of milliseconds". Assignments rarely cover all of a
// coflow's demand, so coflows pay many slots and much idle circuit time.
#pragma once

#include "sched/schedule.h"
#include "trace/demand_matrix.h"

namespace sunflow {

struct EdmondsConfig {
  Time slot_duration = Millis(300);  ///< externally fixed assignment length
  int max_rounds = 100000;           ///< safety valve; never hit in practice
};

AssignmentSchedule ScheduleEdmonds(const DemandMatrix& demand,
                                   const EdmondsConfig& config = {});

}  // namespace sunflow
