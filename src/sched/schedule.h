// Assignment-sequence schedules (§3.1.1).
//
// Every pre-Sunflow circuit scheduler — Edmonds, TMS, Solstice — produces a
// sequence of circuit assignments {A_1, …, A_m}, each a (partial) matching
// between input and output ports with an associated duration. Indices are in
// the demand-matrix space of the coflow being scheduled; the port maps in
// the originating DemandMatrix translate back to fabric ports.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "matching/decomposition.h"

namespace sunflow {

/// A full schedule: ordered assignments with durations.
struct AssignmentSchedule {
  std::string algorithm;                  ///< producer name for reports
  std::vector<WeightedAssignment> slots;  ///< col_of_row may contain -1

  std::size_t num_slots() const { return slots.size(); }
  /// Sum of slot durations (excludes reconfiguration penalties).
  Time TotalDuration() const {
    Time t = 0;
    for (const auto& s : slots) t += s.duration;
    return t;
  }
};

}  // namespace sunflow
