#include "trace/coflow.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace sunflow {

const char* ToString(CoflowCategory c) {
  switch (c) {
    case CoflowCategory::kOneToOne:
      return "O2O";
    case CoflowCategory::kOneToMany:
      return "O2M";
    case CoflowCategory::kManyToOne:
      return "M2O";
    case CoflowCategory::kManyToMany:
      return "M2M";
  }
  return "?";
}

Coflow::Coflow(CoflowId id, Time arrival, std::vector<Flow> flows)
    : id_(id), arrival_(arrival), flows_(std::move(flows)) {
  std::set<PortId> senders, receivers;
  std::set<std::pair<PortId, PortId>> pairs;
  for (const Flow& f : flows_) {
    SUNFLOW_CHECK_MSG(f.src >= 0 && f.dst >= 0,
                      "negative port in coflow " << id_);
    SUNFLOW_CHECK_MSG(f.bytes > 0, "non-positive flow size in coflow " << id_);
    SUNFLOW_CHECK_MSG(pairs.insert({f.src, f.dst}).second,
                      "duplicate (src,dst)=(" << f.src << "," << f.dst
                                              << ") in coflow " << id_);
    senders.insert(f.src);
    receivers.insert(f.dst);
    total_bytes_ += f.bytes;
    max_port_ = std::max({max_port_, static_cast<PortId>(f.src + 1),
                          static_cast<PortId>(f.dst + 1)});
  }
  num_senders_ = static_cast<int>(senders.size());
  num_receivers_ = static_cast<int>(receivers.size());
}

CoflowCategory Coflow::category() const {
  SUNFLOW_CHECK(!flows_.empty());
  const bool one_sender = num_senders_ == 1;
  const bool one_receiver = num_receivers_ == 1;
  if (one_sender && one_receiver) return CoflowCategory::kOneToOne;
  if (one_sender) return CoflowCategory::kOneToMany;
  if (one_receiver) return CoflowCategory::kManyToOne;
  return CoflowCategory::kManyToMany;
}

Time Coflow::AvgProcessingTime(Bandwidth b) const {
  SUNFLOW_CHECK(b > 0);
  if (flows_.empty()) return 0;
  return total_bytes_ / b / static_cast<double>(flows_.size());
}

Bytes Coflow::min_flow_bytes() const {
  SUNFLOW_CHECK(!flows_.empty());
  Bytes m = flows_.front().bytes;
  for (const Flow& f : flows_) m = std::min(m, f.bytes);
  return m;
}

Coflow Coflow::ScaledBytes(double factor) const {
  SUNFLOW_CHECK(factor > 0);
  std::vector<Flow> scaled = flows_;
  for (Flow& f : scaled) f.bytes *= factor;
  return Coflow(id_, arrival_, std::move(scaled));
}

Coflow Coflow::WithArrival(Time arrival) const {
  return Coflow(id_, arrival, flows_);
}

std::string Coflow::DebugString() const {
  std::ostringstream os;
  os << "Coflow{id=" << id_ << " arr=" << arrival_ << " |C|=" << flows_.size()
     << " " << ToString(category()) << " bytes=" << total_bytes_ << "}";
  return os.str();
}

Bytes Trace::total_bytes() const {
  Bytes total = 0;
  for (const auto& c : coflows) total += c.total_bytes();
  return total;
}

void Trace::Validate() const {
  for (std::size_t i = 0; i < coflows.size(); ++i) {
    const Coflow& c = coflows[i];
    SUNFLOW_CHECK_MSG(c.max_port() <= num_ports,
                      c.DebugString() << " references port beyond fabric size "
                                      << num_ports);
    SUNFLOW_CHECK_MSG(c.arrival() >= 0, "negative arrival");
    if (i > 0) {
      SUNFLOW_CHECK_MSG(coflows[i - 1].arrival() <= c.arrival() + kTimeEps,
                        "coflows not sorted by arrival");
    }
  }
}

}  // namespace sunflow
