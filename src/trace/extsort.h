// External-memory arrival-order sort for trace stream files.
//
// Huge generated traces (trace_tool generate --stream_out) arrive on disk
// in generation order, which need not be arrival order; the engine's
// admission contract requires (arrival, id)-sorted input. This sorter
// never materializes the trace: it reads the input stream into
// bounded-size runs (each sorted in memory and spilled as its own stream
// file), then k-way-merges the runs — multiple passes when the run count
// exceeds the fan-in — so peak memory is O(run_payload_bytes + fan_in ·
// block read-ahead) regardless of trace length.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/stream.h"

namespace sunflow {

struct ExtSortOptions {
  /// In-memory run budget, measured in serialized payload bytes. Each run
  /// holds at most this much coflow data before it is sorted and spilled.
  std::size_t run_payload_bytes = 64ull << 20;
  /// Streams merged per pass (>= 2). Runs beyond this merge in multiple
  /// passes: ceil(log_fan_in(runs)) levels.
  std::size_t fan_in = 16;
  /// Prefix for spilled run files; "" uses "<output_path>.run". Run files
  /// are deleted as they are consumed unless keep_runs.
  std::string tmp_prefix;
  bool keep_runs = false;
  /// Block size / codec / read-ahead / decode pool for every stream
  /// opened by the sorter.
  TraceStreamOptions stream;
};

struct ExtSortStats {
  std::uint64_t coflows = 0;
  std::uint64_t payload_bytes = 0;  ///< uncompressed serialized bytes (input)
  std::uint64_t runs = 0;
  std::uint64_t merge_passes = 0;
  double run_seconds = 0;    ///< run generation (read + sort + spill)
  double merge_seconds = 0;  ///< all merge passes
};

/// Sorts the stream file at `input_path` by (arrival, id) into
/// `output_path` (a closed stream file with counted header). The sort is
/// stable in the sense that (arrival, id) is a total order over valid
/// traces — duplicate ids with equal arrivals keep input order. Throws
/// std::runtime_error on I/O or format errors.
ExtSortStats ExternalSortTrace(const std::string& input_path,
                               const std::string& output_path,
                               const ExtSortOptions& options = {});

}  // namespace sunflow
