// Coflow traffic model (§2.2 of the paper).
//
// A Coflow is a set of flows sharing a performance objective; each flow
// moves `bytes` from an input port to an output port of the abstract
// N-port non-blocking fabric. The demand matrix D of §2.2 is represented
// sparsely by the flow list; dense views are built on demand for the
// matrix-decomposition schedulers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/units.h"

namespace sunflow {

/// One subflow f_{i,j}: d_{i,j} bytes from input port src to output port dst.
struct Flow {
  PortId src = 0;
  PortId dst = 0;
  Bytes bytes = 0;

  friend bool operator==(const Flow&, const Flow&) = default;
};

/// Sender-to-receiver-ratio classification (paper Table 4).
enum class CoflowCategory {
  kOneToOne,    ///< one sender, one receiver, one flow
  kOneToMany,   ///< one sender, >1 receivers
  kManyToOne,   ///< >1 senders, one receiver (in-cast)
  kManyToMany,  ///< >1 senders, >1 receivers
};

const char* ToString(CoflowCategory c);

/// A Coflow: id, arrival time, and its non-zero flows.
class Coflow {
 public:
  Coflow() = default;
  Coflow(CoflowId id, Time arrival, std::vector<Flow> flows);

  CoflowId id() const { return id_; }
  Time arrival() const { return arrival_; }
  const std::vector<Flow>& flows() const { return flows_; }

  /// |C| — the number of subflows (non-zero demand entries).
  std::size_t size() const { return flows_.size(); }
  bool empty() const { return flows_.empty(); }

  Bytes total_bytes() const { return total_bytes_; }

  /// Number of distinct senders / receivers.
  int num_senders() const { return num_senders_; }
  int num_receivers() const { return num_receivers_; }

  CoflowCategory category() const;

  /// Largest port index referenced + 1 (a lower bound on fabric size).
  PortId max_port() const { return max_port_; }

  /// Average data processing time p_avg = sum(d_ij/B) / |C| (§5.3.2).
  Time AvgProcessingTime(Bandwidth b) const;

  /// Smallest flow size (defines α in Lemma 2).
  Bytes min_flow_bytes() const;

  /// Returns a copy with all flow sizes multiplied by `factor` (idleness
  /// scaling, §5.4 — preserves structure).
  Coflow ScaledBytes(double factor) const;

  /// Returns a copy with the given arrival time.
  Coflow WithArrival(Time arrival) const;

  std::string DebugString() const;

 private:
  CoflowId id_ = -1;
  Time arrival_ = 0;
  std::vector<Flow> flows_;
  // Cached aggregates (flows_ is immutable after construction).
  Bytes total_bytes_ = 0;
  int num_senders_ = 0;
  int num_receivers_ = 0;
  PortId max_port_ = 0;
};

/// A trace: fabric size plus coflows sorted by arrival time.
struct Trace {
  PortId num_ports = 0;
  std::vector<Coflow> coflows;

  Bytes total_bytes() const;
  /// Verifies port bounds and arrival ordering; throws CheckFailure if bad.
  void Validate() const;
};

}  // namespace sunflow
