#include "trace/parser.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "common/units.h"

namespace sunflow {

namespace {

[[noreturn]] void Fail(const std::string& source, int line_no,
                       const std::string& why) {
  throw std::runtime_error("coflow-benchmark parse error in " + source +
                           " at line " + std::to_string(line_no) + ": " + why);
}

}  // namespace

Trace ParseCoflowBenchmark(std::istream& in, const std::string& source) {
  Trace trace;
  std::string line;
  line.reserve(256);
  int line_no = 0;

  if (!std::getline(in, line)) Fail(source, 1, "empty input");
  ++line_no;
  {
    std::istringstream hdr(line);
    long long ports = 0, coflows = 0;
    if (!(hdr >> ports >> coflows) || ports <= 0 || coflows < 0)
      Fail(source, line_no, "expected '<num_ports> <num_coflows>'");
    trace.num_ports = static_cast<PortId>(ports);
    trace.coflows.reserve(static_cast<std::size_t>(coflows));
  }

  // Hoisted per-line scratch: the containers are cleared, not
  // reconstructed, so steady-state parsing reuses their allocations.
  std::vector<PortId> mappers;
  std::map<std::pair<PortId, PortId>, Bytes> demand;
  std::unordered_set<CoflowId> seen_ids;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    long long id = 0;
    double arrival_ms = 0;
    int num_mappers = 0;
    if (!(ls >> id >> arrival_ms >> num_mappers) || num_mappers <= 0)
      Fail(source, line_no, "expected '<id> <arrival_ms> <num_mappers> ...'");
    if (!seen_ids.insert(static_cast<CoflowId>(id)).second)
      Fail(source, line_no,
           "duplicate coflow id " + std::to_string(id));

    mappers.clear();
    mappers.reserve(static_cast<std::size_t>(num_mappers));
    for (int m = 0; m < num_mappers; ++m) {
      long long rack = 0;
      if (!(ls >> rack) || rack < 1 || rack > trace.num_ports)
        Fail(source, line_no, "bad mapper rack");
      mappers.push_back(static_cast<PortId>(rack - 1));  // to 0-based
    }

    int num_reducers = 0;
    if (!(ls >> num_reducers) || num_reducers <= 0)
      Fail(source, line_no, "bad reducer count");

    // Aggregate by (src,dst): real traces occasionally repeat a rack in the
    // mapper or reducer list; the Coflow invariant requires unique pairs.
    demand.clear();
    for (int r = 0; r < num_reducers; ++r) {
      std::string tok;
      if (!(ls >> tok)) Fail(source, line_no, "missing reducer token");
      const auto colon = tok.find(':');
      if (colon == std::string::npos)
        Fail(source, line_no, "reducer token lacks ':'");
      long long rack = 0;
      double mb = 0;
      try {
        rack = std::stoll(tok.substr(0, colon));
        mb = std::stod(tok.substr(colon + 1));
      } catch (const std::exception&) {
        Fail(source, line_no, "unparseable reducer token '" + tok + "'");
      }
      if (rack < 1 || rack > trace.num_ports)
        Fail(source, line_no, "bad reducer rack");
      if (mb <= 0) Fail(source, line_no, "non-positive reducer size");
      const PortId dst = static_cast<PortId>(rack - 1);
      const Bytes per_mapper = MB(mb) / num_mappers;
      for (PortId src : mappers) demand[{src, dst}] += per_mapper;
    }

    std::vector<Flow> flows;
    flows.reserve(demand.size());
    for (const auto& [pair, bytes] : demand)
      flows.push_back({pair.first, pair.second, bytes});
    trace.coflows.emplace_back(static_cast<CoflowId>(id),
                               Millis(arrival_ms), std::move(flows));
  }

  std::sort(trace.coflows.begin(), trace.coflows.end(),
            [](const Coflow& a, const Coflow& b) {
              return a.arrival() < b.arrival() ||
                     (a.arrival() == b.arrival() && a.id() < b.id());
            });
  trace.Validate();
  return trace;
}

Trace ParseCoflowBenchmarkFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return ParseCoflowBenchmark(f, path);
}

void WriteCoflowBenchmarkHeader(std::ostream& out, PortId num_ports,
                                std::uint64_t num_coflows) {
  out << num_ports << " " << num_coflows << "\n";
}

void WriteCoflowBenchmarkLine(std::ostream& out, const Coflow& c) {
  // Reconstruct the mapper/reducer view: mappers are the distinct sources,
  // reducer size is the total received (in MB).
  std::map<PortId, bool> mappers;
  std::map<PortId, Bytes> reducer_bytes;
  for (const Flow& f : c.flows()) {
    mappers[f.src] = true;
    reducer_bytes[f.dst] += f.bytes;
  }
  out << c.id() << " " << std::llround(c.arrival() * 1e3) << " "
      << mappers.size();
  for (const auto& [src, unused] : mappers) out << " " << (src + 1);
  out << " " << reducer_bytes.size();
  for (const auto& [dst, bytes] : reducer_bytes) {
    out << " " << (dst + 1) << ":" << std::llround(bytes / 1e6);
  }
  out << "\n";
}

void WriteCoflowBenchmark(std::ostream& out, const Trace& trace) {
  WriteCoflowBenchmarkHeader(out, trace.num_ports, trace.coflows.size());
  for (const Coflow& c : trace.coflows) WriteCoflowBenchmarkLine(out, c);
}

}  // namespace sunflow
