#include "trace/bounds.h"

#include <algorithm>
#include <map>

namespace sunflow {

namespace {
// Computes max over in-ports / out-ports of the per-flow cost function.
template <typename CostFn>
Time MaxPortLoad(const Coflow& coflow, CostFn cost) {
  std::map<PortId, Time> in_load, out_load;
  for (const Flow& f : coflow.flows()) {
    const Time c = cost(f);
    in_load[f.src] += c;
    out_load[f.dst] += c;
  }
  Time best = 0;
  for (const auto& [p, v] : in_load) best = std::max(best, v);
  for (const auto& [p, v] : out_load) best = std::max(best, v);
  return best;
}
}  // namespace

Time PacketLowerBound(const Coflow& coflow, Bandwidth bandwidth) {
  SUNFLOW_CHECK(bandwidth > 0);
  return MaxPortLoad(coflow,
                     [&](const Flow& f) { return f.bytes / bandwidth; });
}

Time CircuitLowerBound(const Coflow& coflow, Bandwidth bandwidth, Time delta) {
  SUNFLOW_CHECK(bandwidth > 0);
  SUNFLOW_CHECK(delta >= 0);
  return MaxPortLoad(coflow, [&](const Flow& f) {
    return f.bytes > 0 ? f.bytes / bandwidth + delta : 0.0;
  });
}

double LemmaTwoAlpha(const Coflow& coflow, Bandwidth bandwidth, Time delta) {
  SUNFLOW_CHECK(bandwidth > 0);
  const Time min_p = coflow.min_flow_bytes() / bandwidth;
  SUNFLOW_CHECK(min_p > 0);
  return delta / min_p;
}

}  // namespace sunflow
