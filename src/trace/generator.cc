#include "trace/generator.h"

#include <algorithm>
#include <cmath>

namespace sunflow {

namespace {

// MB-rounded with a 1 MB floor, matching the original trace's granularity.
Bytes RoundedMb(double mb) { return MB(std::max(1.0, std::round(mb))); }

// Draws a fan width in [2, num_ports] with a Pareto tail.
int DrawWidth(Rng& rng, const SyntheticTraceConfig& cfg) {
  const double w =
      rng.Pareto(cfg.width_pareto_scale, cfg.width_pareto_shape);
  return static_cast<int>(
      std::clamp(w, 2.0, static_cast<double>(cfg.num_ports)));
}

}  // namespace

void GenerateSyntheticTrace(const SyntheticTraceConfig& cfg,
                            const std::function<void(Coflow&&)>& sink) {
  SUNFLOW_CHECK(cfg.num_ports >= 2);
  SUNFLOW_CHECK(cfg.num_coflows >= 0);
  Rng rng(cfg.seed);

  const double frac_m2m = 1.0 - cfg.frac_one_to_one - cfg.frac_one_to_many -
                          cfg.frac_many_to_one;
  SUNFLOW_CHECK_MSG(frac_m2m >= 0, "category fractions exceed 1");
  const std::vector<double> mix = {cfg.frac_one_to_one, cfg.frac_one_to_many,
                                   cfg.frac_many_to_one, frac_m2m};

  // Poisson arrivals: exponential gaps with mean horizon / num_coflows.
  const double gap_mean =
      cfg.num_coflows > 0 ? cfg.horizon / cfg.num_coflows : 1.0;

  Time arrival = 0;
  for (int k = 0; k < cfg.num_coflows; ++k) {
    arrival = cfg.iid_arrivals ? rng.Uniform(0, cfg.horizon)
                               : arrival + rng.Exponential(gap_mean);
    const auto category = static_cast<CoflowCategory>(rng.Categorical(mix));

    int senders = 1, receivers = 1;
    switch (category) {
      case CoflowCategory::kOneToOne:
        break;
      case CoflowCategory::kOneToMany:
        receivers = DrawWidth(rng, cfg);
        break;
      case CoflowCategory::kManyToOne:
        senders = DrawWidth(rng, cfg);
        break;
      case CoflowCategory::kManyToMany:
        senders = DrawWidth(rng, cfg);
        receivers = DrawWidth(rng, cfg);
        break;
    }
    const auto src_ports = rng.SampleWithoutReplacement(cfg.num_ports, senders);
    const auto dst_ports =
        rng.SampleWithoutReplacement(cfg.num_ports, receivers);

    std::vector<Flow> flows;
    flows.reserve(static_cast<std::size_t>(senders) *
                  static_cast<std::size_t>(receivers));
    if (category == CoflowCategory::kManyToMany) {
      // Shuffle-like: each reducer receives a heavy-tailed total, split
      // evenly across mappers (mirrors the benchmark format semantics).
      for (PortId dst : dst_ports) {
        const double total_mb = std::min(
            cfg.m2m_flow_mb_cap * senders,
            rng.Pareto(cfg.m2m_flow_mb_scale * senders, cfg.m2m_flow_mb_shape));
        for (PortId src : src_ports) {
          flows.push_back({src, dst, RoundedMb(total_mb / senders)});
        }
      }
    } else {
      for (PortId src : src_ports) {
        for (PortId dst : dst_ports) {
          flows.push_back(
              {src, dst, RoundedMb(rng.Exponential(cfg.small_flow_mb_mean))});
        }
      }
    }
    sink(Coflow(static_cast<CoflowId>(k + 1), arrival, std::move(flows)));
  }
}

Trace GenerateSyntheticTrace(const SyntheticTraceConfig& cfg) {
  Trace trace;
  trace.num_ports = cfg.num_ports;
  trace.coflows.reserve(static_cast<std::size_t>(cfg.num_coflows));
  GenerateSyntheticTrace(
      cfg, [&](Coflow&& c) { trace.coflows.push_back(std::move(c)); });
  if (cfg.iid_arrivals) {
    std::stable_sort(trace.coflows.begin(), trace.coflows.end(),
                     [](const Coflow& a, const Coflow& b) {
                       return a.arrival() < b.arrival() ||
                              (a.arrival() == b.arrival() && a.id() < b.id());
                     });
  }
  trace.Validate();
  return trace;
}

Trace PerturbFlowSizes(const Trace& trace, double fraction, Bytes min_bytes,
                       std::uint64_t seed) {
  SUNFLOW_CHECK(fraction >= 0 && fraction < 1);
  Rng rng(seed);
  Trace out;
  out.num_ports = trace.num_ports;
  out.coflows.reserve(trace.coflows.size());
  for (const Coflow& c : trace.coflows) {
    std::vector<Flow> flows = c.flows();
    for (Flow& f : flows) {
      f.bytes = std::max(min_bytes,
                         f.bytes * (1.0 + rng.Uniform(-fraction, fraction)));
    }
    out.coflows.emplace_back(c.id(), c.arrival(), std::move(flows));
  }
  out.Validate();
  return out;
}

Trace ToBackToBack(const Trace& trace) {
  Trace out;
  out.num_ports = trace.num_ports;
  out.coflows.reserve(trace.coflows.size());
  for (const Coflow& c : trace.coflows)
    out.coflows.push_back(c.WithArrival(0));
  return out;
}

}  // namespace sunflow
