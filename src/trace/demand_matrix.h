// Dense demand-matrix view of a Coflow, restricted to its active ports.
//
// The matrix-decomposition schedulers (Solstice, TMS, Edmonds) operate on a
// dense K_in × K_out matrix of processing times. Building it over *active*
// ports only (rather than the full N-port fabric) keeps them polynomial in
// the coflow footprint, and a port map converts back to fabric port ids.
#pragma once

#include <vector>

#include "common/units.h"
#include "trace/coflow.h"

namespace sunflow {

class DemandMatrix {
 public:
  /// Builds the processing-time matrix p_ij = d_ij / bandwidth over the
  /// coflow's active ports.
  DemandMatrix(const Coflow& coflow, Bandwidth bandwidth);

  /// Builds a square matrix from explicit entries (tests, synthetic inputs).
  DemandMatrix(std::vector<std::vector<Time>> entries);

  int rows() const { return static_cast<int>(m_.size()); }
  int cols() const { return rows() == 0 ? 0 : static_cast<int>(m_[0].size()); }

  Time at(int r, int c) const { return m_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]; }
  Time& at(int r, int c) { return m_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]; }

  Time RowSum(int r) const;
  Time ColSum(int c) const;
  Time MaxRowSum() const;
  Time MaxColSum() const;
  /// max(max row sum, max col sum) — the packet lower bound of the matrix.
  Time MaxLineSum() const;
  Time Total() const;
  int NonZeroCount() const;
  bool IsZero(Time eps = kTimeEps) const;

  /// Fabric port id for matrix row r / column c.
  PortId InPort(int r) const { return in_ports_[static_cast<std::size_t>(r)]; }
  PortId OutPort(int c) const { return out_ports_[static_cast<std::size_t>(c)]; }

  /// Pads with zero rows/columns so the matrix is square; padded lines map
  /// to port id -1 (dummy ports, never touched by real flows).
  void MakeSquare();

 private:
  std::vector<std::vector<Time>> m_;
  std::vector<PortId> in_ports_;
  std::vector<PortId> out_ports_;
};

}  // namespace sunflow
