#include "trace/stream.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/assert.h"
#include "runtime/thread_pool.h"

#if defined(SUNFLOW_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace sunflow {

namespace {

constexpr std::array<char, 4> kFileMagic = {'S', 'F', 'T', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kBlockMagic = 0x4b4c4253;  // "SBLK" little-endian
constexpr std::size_t kFileHeaderBytes = 32;
constexpr std::size_t kBlockHeaderBytes = 24;
/// Header coflow-count sentinel for a file that was never Close()d.
constexpr std::uint64_t kUnclosedCount = ~std::uint64_t{0};
// Offset of the num_coflows / payload_bytes pair patched at Close().
constexpr std::streamoff kCountsOffset = 16;

// All multi-byte fields are little-endian. The encoder writes native
// byte order and the format is only defined on little-endian hosts (the
// static_assert-style runtime check below trips on anything else).
bool HostIsLittleEndian() {
  const std::uint32_t probe = 1;
  std::uint8_t first;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

[[noreturn]] void FormatFail(const std::string& path, const std::string& why) {
  throw std::runtime_error("trace stream '" + path + "': " + why);
}

void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t n = out.size();
  out.resize(n + 4);
  std::memcpy(out.data() + n, &v, 4);
}

void AppendU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t n = out.size();
  out.resize(n + 8);
  std::memcpy(out.data() + n, &v, 8);
}

void AppendVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void AppendDoubleBits(std::vector<std::uint8_t>& out, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  AppendU64(out, bits);
}

/// Bounded-buffer decoder cursor; every read is range-checked so a
/// corrupt count cannot walk past the block.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  const std::string& path;

  void Need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n)
      FormatFail(path, "block payload truncated mid-record");
  }
  std::uint64_t Varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      Need(1);
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
      if (shift >= 64) FormatFail(path, "varint overruns 64 bits");
    }
  }
  double DoubleBits() {
    Need(8);
    std::uint64_t bits;
    std::memcpy(&bits, p, 8);
    p += 8;
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
  }
};

void EncodeCoflow(std::vector<std::uint8_t>& out, const Coflow& c) {
  AppendVarint(out, ZigZag(c.id()));
  AppendDoubleBits(out, c.arrival());
  AppendVarint(out, c.flows().size());
  for (const Flow& f : c.flows()) {
    AppendVarint(out, static_cast<std::uint64_t>(f.src));
    AppendVarint(out, static_cast<std::uint64_t>(f.dst));
    AppendDoubleBits(out, f.bytes);
  }
}

Coflow DecodeCoflow(Cursor& cur) {
  const auto id = static_cast<CoflowId>(UnZigZag(cur.Varint()));
  const double arrival = cur.DoubleBits();
  const std::uint64_t n = cur.Varint();
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Flow f;
    f.src = static_cast<PortId>(cur.Varint());
    f.dst = static_cast<PortId>(cur.Varint());
    f.bytes = cur.DoubleBits();
    flows.push_back(f);
  }
  return Coflow(id, arrival, std::move(flows));
}

struct RawBlock {
  std::vector<std::uint8_t> stored;
  std::uint32_t raw_bytes = 0;
  std::uint32_t num_coflows = 0;
  std::uint32_t codec = 0;
  std::uint32_t crc = 0;
};

}  // namespace

bool DeflateSupported() {
#if defined(SUNFLOW_HAVE_ZLIB)
  return true;
#else
  return false;
#endif
}

StreamCodec DefaultStreamCodec() {
  return DeflateSupported() ? StreamCodec::kDeflate : StreamCodec::kStore;
}

std::uint32_t Crc32(const void* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

// --- TraceWriter --------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, PortId num_ports,
                         TraceStreamOptions options)
    : path_(path), options_(options) {
  SUNFLOW_CHECK_MSG(HostIsLittleEndian(),
                    "trace stream format requires a little-endian host");
  SUNFLOW_CHECK(num_ports > 0);
  if (options_.codec == StreamCodec::kDeflate && !DeflateSupported())
    FormatFail(path_, "deflate codec requested but zlib is not built in");
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) FormatFail(path_, "cannot open for writing");
  std::vector<std::uint8_t> header;
  header.reserve(kFileHeaderBytes);
  for (char m : kFileMagic) header.push_back(static_cast<std::uint8_t>(m));
  AppendU32(header, kFormatVersion);
  AppendU32(header, static_cast<std::uint32_t>(num_ports));
  AppendU32(header, static_cast<std::uint32_t>(options_.codec));
  AppendU64(header, kUnclosedCount);  // num_coflows, patched at Close
  AppendU64(header, 0);               // payload_bytes, patched at Close
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  stats_.file_bytes = kFileHeaderBytes;
  payload_.reserve(options_.block_bytes + 4096);
}

TraceWriter::~TraceWriter() {
  try {
    Close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace writer: %s\n", e.what());
  }
}

void TraceWriter::Append(const Coflow& coflow) {
  SUNFLOW_CHECK_MSG(!closed_, "Append after Close");
  EncodeCoflow(payload_, coflow);
  ++block_coflows_;
  if (payload_.size() >= options_.block_bytes) FlushBlock();
}

void TraceWriter::FlushBlock() {
  if (payload_.empty()) return;
  const std::uint32_t crc = Crc32(payload_.data(), payload_.size());
  const std::uint8_t* stored = payload_.data();
  std::size_t stored_n = payload_.size();
  auto codec = options_.codec;
  if (codec == StreamCodec::kDeflate) {
#if defined(SUNFLOW_HAVE_ZLIB)
    uLongf bound = compressBound(static_cast<uLong>(payload_.size()));
    stored_.resize(bound);
    // Level 1: the pipeline is I/O-bandwidth-shaped, so the fast setting
    // wins; the per-block codec field lets incompressible blocks fall
    // back to store.
    const int rc =
        compress2(stored_.data(), &bound, payload_.data(),
                  static_cast<uLong>(payload_.size()), /*level=*/1);
    if (rc != Z_OK) FormatFail(path_, "deflate failed");
    if (bound < payload_.size()) {
      stored = stored_.data();
      stored_n = bound;
    } else {
      codec = StreamCodec::kStore;
    }
#else
    FormatFail(path_, "deflate codec unavailable in this build");
#endif
  }
  std::vector<std::uint8_t> header;
  header.reserve(kBlockHeaderBytes);
  AppendU32(header, kBlockMagic);
  AppendU32(header, static_cast<std::uint32_t>(stored_n));
  AppendU32(header, static_cast<std::uint32_t>(payload_.size()));
  AppendU32(header, block_coflows_);
  AppendU32(header, static_cast<std::uint32_t>(codec));
  AppendU32(header, crc);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.write(reinterpret_cast<const char*>(stored),
             static_cast<std::streamsize>(stored_n));
  if (!out_) FormatFail(path_, "write failed");
  ++stats_.blocks;
  stats_.coflows += block_coflows_;
  stats_.payload_bytes += payload_.size();
  stats_.file_bytes += kBlockHeaderBytes + stored_n;
  payload_.clear();
  block_coflows_ = 0;
}

void TraceWriter::Close() {
  if (closed_) return;
  FlushBlock();
  closed_ = true;
  out_.seekp(kCountsOffset);
  std::vector<std::uint8_t> counts;
  AppendU64(counts, stats_.coflows);
  AppendU64(counts, stats_.payload_bytes);
  out_.write(reinterpret_cast<const char*>(counts.data()),
             static_cast<std::streamsize>(counts.size()));
  out_.flush();
  if (!out_) FormatFail(path_, "close failed");
  out_.close();
}

// --- TraceReader --------------------------------------------------------

TraceReader::TraceReader(const std::string& path, TraceStreamOptions options)
    : path_(path), options_(options) {
  SUNFLOW_CHECK_MSG(HostIsLittleEndian(),
                    "trace stream format requires a little-endian host");
  in_.open(path_, std::ios::binary);
  if (!in_) FormatFail(path_, "cannot open for reading");
  std::array<std::uint8_t, kFileHeaderBytes> header;
  in_.read(reinterpret_cast<char*>(header.data()), kFileHeaderBytes);
  if (in_.gcount() != static_cast<std::streamsize>(kFileHeaderBytes))
    FormatFail(path_, "file header truncated");
  if (std::memcmp(header.data(), kFileMagic.data(), 4) != 0)
    FormatFail(path_, "bad magic (not a trace stream file)");
  std::uint32_t version, ports, codec;
  std::memcpy(&version, header.data() + 4, 4);
  std::memcpy(&ports, header.data() + 8, 4);
  std::memcpy(&codec, header.data() + 12, 4);
  std::memcpy(&header_coflows_, header.data() + 16, 8);
  if (version != kFormatVersion)
    FormatFail(path_, "unsupported version " + std::to_string(version));
  if (ports == 0) FormatFail(path_, "zero num_ports in header");
  if (codec == static_cast<std::uint32_t>(StreamCodec::kDeflate) &&
      !DeflateSupported())
    FormatFail(path_, "deflate file but zlib is not built in");
  num_ports_ = static_cast<PortId>(ports);
  stats_.file_bytes = kFileHeaderBytes;
}

TraceReader::~TraceReader() {
  // Decode tasks hold no reference to the reader, but quiesce them so
  // their exceptions (if any) die with the futures, not the process.
  for (auto& f : inflight_)
    if (f.valid()) f.wait();
}

std::optional<std::uint64_t> TraceReader::size_hint() const {
  if (header_coflows_ == kUnclosedCount) return std::nullopt;
  return header_coflows_;
}

void TraceReader::FillPipeline() {
  const std::size_t depth = std::max<std::size_t>(1, options_.readahead_blocks);
  while (!raw_eof_ && inflight_.size() < depth) {
    std::array<std::uint8_t, kBlockHeaderBytes> hdr;
    in_.read(reinterpret_cast<char*>(hdr.data()), kBlockHeaderBytes);
    if (in_.gcount() == 0) {
      raw_eof_ = true;
      break;
    }
    if (in_.gcount() != static_cast<std::streamsize>(kBlockHeaderBytes))
      FormatFail(path_, "block header truncated");
    std::uint32_t magic, stored_bytes;
    auto raw = std::make_shared<RawBlock>();
    std::memcpy(&magic, hdr.data(), 4);
    std::memcpy(&stored_bytes, hdr.data() + 4, 4);
    std::memcpy(&raw->raw_bytes, hdr.data() + 8, 4);
    std::memcpy(&raw->num_coflows, hdr.data() + 12, 4);
    std::memcpy(&raw->codec, hdr.data() + 16, 4);
    std::memcpy(&raw->crc, hdr.data() + 20, 4);
    if (magic != kBlockMagic) FormatFail(path_, "bad block magic");
    raw->stored.resize(stored_bytes);
    in_.read(reinterpret_cast<char*>(raw->stored.data()), stored_bytes);
    if (in_.gcount() != static_cast<std::streamsize>(stored_bytes))
      FormatFail(path_, "block payload truncated");
    stats_.file_bytes += kBlockHeaderBytes + stored_bytes;

    auto prom = std::make_shared<std::promise<DecodedBlock>>();
    inflight_.push_back(prom->get_future());
    // The decode is self-contained (owns its raw bytes), so tasks run in
    // any order on the pool; consumption below stays FIFO regardless.
    auto decode = [raw, prom, path = path_] {
      try {
        std::vector<std::uint8_t> plain;
        const std::uint8_t* data = raw->stored.data();
        std::size_t n = raw->stored.size();
        if (raw->codec == static_cast<std::uint32_t>(StreamCodec::kDeflate)) {
#if defined(SUNFLOW_HAVE_ZLIB)
          plain.resize(raw->raw_bytes);
          uLongf out_n = raw->raw_bytes;
          const int rc = uncompress(plain.data(), &out_n, raw->stored.data(),
                                    static_cast<uLong>(raw->stored.size()));
          if (rc != Z_OK || out_n != raw->raw_bytes)
            FormatFail(path, "deflate block corrupt");
          data = plain.data();
          n = plain.size();
#else
          FormatFail(path, "deflate block but zlib is not built in");
#endif
        } else if (raw->codec !=
                   static_cast<std::uint32_t>(StreamCodec::kStore)) {
          FormatFail(path, "unknown block codec " +
                               std::to_string(raw->codec));
        } else if (n != raw->raw_bytes) {
          FormatFail(path, "stored block size mismatch");
        }
        if (Crc32(data, n) != raw->crc)
          FormatFail(path, "block checksum mismatch");
        DecodedBlock block;
        block.payload_bytes = n;
        block.coflows.reserve(raw->num_coflows);
        Cursor cur{data, data + n, path};
        for (std::uint32_t i = 0; i < raw->num_coflows; ++i)
          block.coflows.push_back(DecodeCoflow(cur));
        if (cur.p != cur.end)
          FormatFail(path, "trailing bytes after last coflow in block");
        prom->set_value(std::move(block));
      } catch (...) {
        prom->set_exception(std::current_exception());
      }
    };
    if (options_.pool != nullptr) {
      options_.pool->Submit(decode);
    } else {
      decode();
    }
  }
}

bool TraceReader::Next(Coflow& out) {
  while (current_.next >= current_.coflows.size()) {
    if (inflight_.empty()) FillPipeline();
    if (inflight_.empty()) {
      if (header_coflows_ != kUnclosedCount &&
          stats_.coflows != header_coflows_) {
        FormatFail(path_, "header promises " +
                              std::to_string(header_coflows_) +
                              " coflows but blocks carried " +
                              std::to_string(stats_.coflows));
      }
      return false;
    }
    current_ = inflight_.front().get();
    inflight_.pop_front();
    ++stats_.blocks;
    stats_.payload_bytes += current_.payload_bytes;
    FillPipeline();
  }
  out = std::move(current_.coflows[current_.next++]);
  ++stats_.coflows;
  return true;
}

// --- Conveniences -------------------------------------------------------

void WriteTraceStream(const std::string& path, const Trace& trace,
                      TraceStreamOptions options) {
  TraceWriter writer(path, trace.num_ports, options);
  for (const Coflow& c : trace.coflows) writer.Append(c);
  writer.Close();
}

Trace ReadTraceStream(const std::string& path, TraceStreamOptions options) {
  TraceReader reader(path, options);
  return MaterializeSource(reader);
}

bool IsTraceStreamFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::array<char, 4> magic;
  f.read(magic.data(), 4);
  return f.gcount() == 4 &&
         std::memcmp(magic.data(), kFileMagic.data(), 4) == 0;
}

}  // namespace sunflow
