#include "trace/extsort.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "obs/profiler.h"

namespace sunflow {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// Serialized-size estimate for run budgeting (varints assumed mid-width;
/// exactness is irrelevant — it only shapes run boundaries).
std::size_t ApproxPayloadBytes(const Coflow& c) {
  return 16 + 20 * c.size();
}

bool ArrivalLess(const Coflow& a, const Coflow& b) {
  return a.arrival() < b.arrival() ||
         (a.arrival() == b.arrival() && a.id() < b.id());
}

/// rename(2) with a byte-copy fallback for cross-filesystem moves.
void MoveFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) == 0) return;
  std::ifstream src(from, std::ios::binary);
  std::ofstream dst(to, std::ios::binary | std::ios::trunc);
  if (!src || !dst)
    throw std::runtime_error("extsort: cannot move " + from + " to " + to);
  dst << src.rdbuf();
  dst.flush();
  if (!dst) throw std::runtime_error("extsort: copy to " + to + " failed");
  src.close();
  std::remove(from.c_str());
}

/// One k-way merge of arrival-sorted stream files into `output`. The heap
/// key (arrival, id, input index) keeps duplicate (arrival, id) records in
/// input-file order.
void MergeRuns(const std::vector<std::string>& inputs,
               const std::string& output, PortId num_ports,
               const ExtSortOptions& options) {
  std::vector<std::unique_ptr<TraceReader>> readers;
  readers.reserve(inputs.size());
  for (const std::string& path : inputs)
    readers.push_back(std::make_unique<TraceReader>(path, options.stream));

  using Key = std::tuple<Time, CoflowId, std::size_t>;
  using HeapItem = std::pair<Key, Coflow>;
  auto greater = [](const HeapItem& a, const HeapItem& b) {
    return a.first > b.first;
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(greater)>
      heap(greater);
  Coflow c;
  for (std::size_t i = 0; i < readers.size(); ++i) {
    if (readers[i]->Next(c))
      heap.emplace(Key{c.arrival(), c.id(), i}, std::move(c));
  }

  TraceWriter writer(output, num_ports, options.stream);
  while (!heap.empty()) {
    // priority_queue::top is const — const_cast to move out is safe here
    // because pop() immediately destroys the slot.
    auto& top = const_cast<HeapItem&>(heap.top());
    const std::size_t src = std::get<2>(top.first);
    Coflow next = std::move(top.second);
    heap.pop();
    writer.Append(next);
    if (readers[src]->Next(c))
      heap.emplace(Key{c.arrival(), c.id(), src}, std::move(c));
  }
  writer.Close();
  readers.clear();
  if (!options.keep_runs)
    for (const std::string& path : inputs) std::remove(path.c_str());
}

}  // namespace

ExtSortStats ExternalSortTrace(const std::string& input_path,
                               const std::string& output_path,
                               const ExtSortOptions& options) {
  SUNFLOW_CHECK(options.fan_in >= 2);
  SUNFLOW_CHECK(options.run_payload_bytes > 0);
  const std::string prefix =
      options.tmp_prefix.empty() ? output_path + ".run" : options.tmp_prefix;
  ExtSortStats stats;

  // Phase 1: bounded-memory run generation. Each run is sorted in memory
  // and spilled as its own (already arrival-ordered) stream file.
  PortId num_ports = 0;
  std::vector<std::string> runs;
  const auto run_begin = Clock::now();
  {
    SUNFLOW_PROFILE_SCOPE("extsort.runs");
    TraceReader reader(input_path, options.stream);
    num_ports = reader.num_ports();
    std::vector<Coflow> buffer;
    std::size_t buffered_bytes = 0;
    auto spill = [&] {
      if (buffer.empty()) return;
      std::stable_sort(buffer.begin(), buffer.end(), ArrivalLess);
      const std::string path = prefix + "." + std::to_string(runs.size()) +
                               ".sft";
      TraceWriter writer(path, num_ports, options.stream);
      for (const Coflow& c : buffer) writer.Append(c);
      writer.Close();
      runs.push_back(path);
      buffer.clear();
      buffered_bytes = 0;
    };
    Coflow c;
    while (reader.Next(c)) {
      buffered_bytes += ApproxPayloadBytes(c);
      buffer.push_back(std::move(c));
      if (buffered_bytes >= options.run_payload_bytes) spill();
    }
    spill();
    stats.coflows = reader.stats().coflows;
    stats.payload_bytes = reader.stats().payload_bytes;
  }
  stats.runs = runs.size();
  stats.run_seconds = Seconds(run_begin, Clock::now());

  // Phase 2: fan_in-way merge levels until one file remains. A single run
  // (or an empty input) short-circuits: the run already is the answer.
  const auto merge_begin = Clock::now();
  {
    SUNFLOW_PROFILE_SCOPE("extsort.merge");
    if (runs.empty()) {
      TraceWriter writer(output_path, num_ports, options.stream);
      writer.Close();
    } else if (runs.size() == 1 && !options.keep_runs) {
      MoveFile(runs[0], output_path);
    } else {
      std::size_t level = 0;
      while (runs.size() > 1 || options.keep_runs) {
        ++stats.merge_passes;
        std::vector<std::string> next_level;
        const bool last =
            runs.size() <= options.fan_in;
        for (std::size_t i = 0; i < runs.size(); i += options.fan_in) {
          const std::size_t end = std::min(runs.size(), i + options.fan_in);
          std::vector<std::string> group(runs.begin() + i, runs.begin() + end);
          const std::string out =
              last ? output_path
                   : prefix + ".L" + std::to_string(level) + "." +
                         std::to_string(next_level.size()) + ".sft";
          // keep_runs preserves the *initial* runs only; intermediate
          // levels are always reclaimed.
          ExtSortOptions merge_options = options;
          merge_options.keep_runs = options.keep_runs && level == 0;
          MergeRuns(group, out, num_ports, merge_options);
          next_level.push_back(out);
        }
        runs = std::move(next_level);
        ++level;
        if (last) break;
      }
    }
  }
  stats.merge_seconds = Seconds(merge_begin, Clock::now());
  return stats;
}

}  // namespace sunflow
