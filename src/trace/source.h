// CoflowSource — the pull-based coflow feed behind out-of-core replays.
//
// The in-memory path hands the engine a whole `Trace`; a source instead
// yields coflows one at a time in arrival order, so the consumer's memory
// footprint is bounded by its *active* set plus whatever read-ahead the
// source keeps, never by the trace length. `TraceReader` (trace/stream.h)
// is the disk-backed implementation; `TraceCoflowSource` adapts an
// in-memory Trace for tests and equivalence harnesses.
#pragma once

#include <cstdint>
#include <optional>

#include "common/assert.h"
#include "trace/coflow.h"

namespace sunflow {

/// Pull interface over an arrival-ordered coflow sequence. Next() moves
/// the next coflow into `out` and returns true, or returns false at end
/// of stream (after which every further call returns false).
class CoflowSource {
 public:
  virtual ~CoflowSource() = default;

  /// Fabric size the coflows are addressed against.
  virtual PortId num_ports() const = 0;

  /// Total coflow count when known up front (e.g. a closed stream file's
  /// header); nullopt for open-ended sources.
  virtual std::optional<std::uint64_t> size_hint() const {
    return std::nullopt;
  }

  virtual bool Next(Coflow& out) = 0;
};

/// Adapts an in-memory Trace (not owned; must outlive the source). The
/// trace's own invariant (sorted by arrival) provides the ordering.
class TraceCoflowSource final : public CoflowSource {
 public:
  explicit TraceCoflowSource(const Trace& trace) : trace_(&trace) {}

  PortId num_ports() const override { return trace_->num_ports; }
  std::optional<std::uint64_t> size_hint() const override {
    return trace_->coflows.size();
  }
  bool Next(Coflow& out) override {
    if (next_ >= trace_->coflows.size()) return false;
    out = trace_->coflows[next_++];
    return true;
  }

 private:
  const Trace* trace_;
  std::size_t next_ = 0;
};

/// Drains a source into an in-memory Trace (test/convert helper). Checks
/// the arrival-order invariant via Trace::Validate.
inline Trace MaterializeSource(CoflowSource& source) {
  Trace t;
  t.num_ports = source.num_ports();
  if (auto n = source.size_hint(); n.has_value())
    t.coflows.reserve(static_cast<std::size_t>(*n));
  Coflow c;
  while (source.Next(c)) t.coflows.push_back(std::move(c));
  t.Validate();
  return t;
}

}  // namespace sunflow
