// CCT lower bounds (§2.4, Equations 1–4).
//
// TpL — packet-switched bound: the busiest port's total processing time.
// TcL — circuit-switched bound under the *not-all-stop* model: every
//        non-empty flow additionally pays one reconfiguration δ.
#pragma once

#include "common/units.h"
#include "trace/coflow.h"

namespace sunflow {

/// Equation (2): max over ports of summed processing time.
Time PacketLowerBound(const Coflow& coflow, Bandwidth bandwidth);

/// Equations (3)+(4): max over ports of summed (processing time + δ).
Time CircuitLowerBound(const Coflow& coflow, Bandwidth bandwidth, Time delta);

/// α = δ / min(d_ij / B) — the Lemma 2 constant for a coflow. The Lemma 2
/// guarantee is TS ≤ 2(1+α)·TpL.
double LemmaTwoAlpha(const Coflow& coflow, Bandwidth bandwidth, Time delta);

}  // namespace sunflow
