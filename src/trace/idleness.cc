#include "trace/idleness.h"

#include <algorithm>
#include <cmath>

#include "common/intervals.h"
#include "trace/bounds.h"

namespace sunflow {

double NetworkIdleness(const Trace& trace, Bandwidth bandwidth) {
  if (trace.coflows.empty()) return 0;
  IntervalSet active;
  Time first = kTimeInf, last = 0;
  for (const Coflow& c : trace.coflows) {
    const Time tpl = PacketLowerBound(c, bandwidth);
    active.Add(c.arrival(), c.arrival() + tpl);
    first = std::min(first, c.arrival());
    last = std::max(last, c.arrival() + tpl);
  }
  const Time horizon = last - first;
  if (horizon <= kTimeEps) return 0;
  const Time busy = active.UnionLengthWithin(first, last);
  return std::clamp(1.0 - busy / horizon, 0.0, 1.0);
}

Trace ScaleTraceBytes(const Trace& trace, double factor) {
  Trace out;
  out.num_ports = trace.num_ports;
  out.coflows.reserve(trace.coflows.size());
  for (const Coflow& c : trace.coflows)
    out.coflows.push_back(c.ScaledBytes(factor));
  return out;
}

ScaledTrace ScaleTraceToIdleness(const Trace& trace, Bandwidth bandwidth,
                                 double target_idleness, double tolerance) {
  SUNFLOW_CHECK(target_idleness >= 0 && target_idleness < 1);
  SUNFLOW_CHECK(!trace.coflows.empty());

  // Idleness is monotone non-increasing in the byte factor: bisect on
  // log-factor. Bounds wide enough for any realistic trace.
  double lo = 1e-6, hi = 1e6;
  auto idleness_at = [&](double factor) {
    return NetworkIdleness(ScaleTraceBytes(trace, factor), bandwidth);
  };

  // Ensure the bracket actually straddles the target.
  if (idleness_at(lo) < target_idleness) {
    // Even near-zero bytes cannot reach this idleness (arrivals too dense
    // relative to the horizon granularity) — return the best effort.
    Trace scaled = ScaleTraceBytes(trace, lo);
    return {std::move(scaled), lo, idleness_at(lo)};
  }
  if (idleness_at(hi) > target_idleness) {
    Trace scaled = ScaleTraceBytes(trace, hi);
    return {std::move(scaled), hi, idleness_at(hi)};
  }

  double factor = 1.0;
  for (int iter = 0; iter < 100; ++iter) {
    factor = std::sqrt(lo * hi);  // geometric midpoint
    const double idle = idleness_at(factor);
    if (std::fabs(idle - target_idleness) <= tolerance) break;
    if (idle > target_idleness) {
      lo = factor;  // too idle -> need more bytes
    } else {
      hi = factor;
    }
  }
  Trace scaled = ScaleTraceBytes(trace, factor);
  const double achieved = NetworkIdleness(scaled, bandwidth);
  return {std::move(scaled), factor, achieved};
}

}  // namespace sunflow
