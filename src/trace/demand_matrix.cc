#include "trace/demand_matrix.h"

#include <algorithm>
#include <map>

namespace sunflow {

DemandMatrix::DemandMatrix(const Coflow& coflow, Bandwidth bandwidth) {
  SUNFLOW_CHECK(bandwidth > 0);
  std::map<PortId, int> in_index, out_index;
  for (const Flow& f : coflow.flows()) {
    in_index.emplace(f.src, 0);
    out_index.emplace(f.dst, 0);
  }
  int r = 0;
  for (auto& [port, idx] : in_index) {
    idx = r++;
    in_ports_.push_back(port);
  }
  int c = 0;
  for (auto& [port, idx] : out_index) {
    idx = c++;
    out_ports_.push_back(port);
  }
  m_.assign(in_index.size(), std::vector<Time>(out_index.size(), 0));
  for (const Flow& f : coflow.flows()) {
    m_[static_cast<std::size_t>(in_index[f.src])]
      [static_cast<std::size_t>(out_index[f.dst])] = f.bytes / bandwidth;
  }
}

DemandMatrix::DemandMatrix(std::vector<std::vector<Time>> entries)
    : m_(std::move(entries)) {
  const std::size_t cols = m_.empty() ? 0 : m_[0].size();
  for (const auto& row : m_) SUNFLOW_CHECK(row.size() == cols);
  for (std::size_t i = 0; i < m_.size(); ++i)
    in_ports_.push_back(static_cast<PortId>(i));
  for (std::size_t j = 0; j < cols; ++j)
    out_ports_.push_back(static_cast<PortId>(j));
}

Time DemandMatrix::RowSum(int r) const {
  Time s = 0;
  for (Time v : m_[static_cast<std::size_t>(r)]) s += v;
  return s;
}

Time DemandMatrix::ColSum(int c) const {
  Time s = 0;
  for (const auto& row : m_) s += row[static_cast<std::size_t>(c)];
  return s;
}

Time DemandMatrix::MaxRowSum() const {
  Time best = 0;
  for (int r = 0; r < rows(); ++r) best = std::max(best, RowSum(r));
  return best;
}

Time DemandMatrix::MaxColSum() const {
  Time best = 0;
  for (int c = 0; c < cols(); ++c) best = std::max(best, ColSum(c));
  return best;
}

Time DemandMatrix::MaxLineSum() const {
  return std::max(MaxRowSum(), MaxColSum());
}

Time DemandMatrix::Total() const {
  Time s = 0;
  for (const auto& row : m_)
    for (Time v : row) s += v;
  return s;
}

int DemandMatrix::NonZeroCount() const {
  int n = 0;
  for (const auto& row : m_)
    for (Time v : row)
      if (v > kTimeEps) ++n;
  return n;
}

bool DemandMatrix::IsZero(Time eps) const {
  for (const auto& row : m_)
    for (Time v : row)
      if (v > eps) return false;
  return true;
}

void DemandMatrix::MakeSquare() {
  const int n = std::max(rows(), cols());
  for (auto& row : m_) row.resize(static_cast<std::size_t>(n), 0);
  while (static_cast<int>(m_.size()) < n)
    m_.emplace_back(static_cast<std::size_t>(n), 0);
  while (static_cast<int>(in_ports_.size()) < n) in_ports_.push_back(-1);
  while (static_cast<int>(out_ports_.size()) < n) out_ports_.push_back(-1);
}

}  // namespace sunflow
