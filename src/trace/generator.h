// Synthetic workload generation.
//
// The paper's workload is a one-hour Facebook Hive/MapReduce trace
// (~526 coflows, 150 ports) that is not redistributable offline. This
// generator produces a seeded synthetic trace calibrated to the published
// statistics (Table 4 category mix, MB-rounded sizes with a 1 MB floor,
// heavy-tailed many-to-many coflows carrying ~99.9% of bytes) so every
// experiment exercises the same code paths as the real trace.
//
// It also provides the two trace transforms used by §5:
//  - PerturbFlowSizes: ±p% size jitter, re-floored at 1 MB (gives the
//    α = 1.25 → 4.5× Lemma-2 bound in the paper's setup), and
//  - building back-to-back (intra-evaluation) arrival schedules.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "trace/coflow.h"

namespace sunflow {

struct SyntheticTraceConfig {
  PortId num_ports = 150;
  int num_coflows = 526;
  Time horizon = 3600.0;  ///< arrivals spread over one hour
  std::uint64_t seed = 20161212;  ///< CoNEXT'16 dates make a fine seed

  // Category mix — paper Table 4 (fractions of coflows).
  double frac_one_to_one = 0.234;
  double frac_one_to_many = 0.099;
  double frac_many_to_one = 0.401;
  // many-to-many gets the remainder (0.266).

  // Width (fan-in/out) distribution for "many" sides: Pareto tail capped
  // at num_ports. M2M coflows in the Facebook trace are *wide* (up to
  // 150x150) with *small* per-flow sizes — the width, not the flow size,
  // carries the bytes.
  double width_pareto_shape = 0.9;
  double width_pareto_scale = 8.0;

  // Flow sizes in MB. Small categories draw near the floor; M2M sizes are
  // heavy-tailed but MB-scale.
  // Defaults calibrated against the published trace statistics (see
  // DESIGN.md §4.1): 12% network idleness at 1 Gbps (paper: 12%),
  // M2M ≈ 98.9% of bytes (99.94%), long coflows (avg subflow ≥ 5 MB)
  // 25.3% of coflows carrying 98.9% of bytes (paper: 25.2% / 98.8%).
  double small_flow_mb_mean = 2.0;        ///< exponential, floored at 1 MB
  double m2m_flow_mb_scale = 3.0;         ///< Pareto scale (MB, per mapper)
  double m2m_flow_mb_shape = 1.15;        ///< Pareto shape (heavy tail)
  double m2m_flow_mb_cap = 2048.0;        ///< per-flow cap (MB)

  /// Draw arrivals i.i.d. Uniform(0, horizon) instead of cumulative
  /// Poisson gaps. The *streamed* emission order is then generation
  /// order, NOT arrival order — the input shape the external sorter
  /// (trace/extsort.h) exists for. The whole-trace overload sorts before
  /// validating, so its result is still a valid Trace.
  bool iid_arrivals = false;
};

/// Generates a trace: Poisson arrivals over the horizon, category-labelled
/// coflows, MB-rounded flow sizes with a 1 MB floor. Deterministic per seed.
Trace GenerateSyntheticTrace(const SyntheticTraceConfig& config);

/// Streaming variant: emits each generated coflow to `sink` and never
/// materializes the trace — generation memory is O(one coflow), so
/// million-coflow traces generate straight to disk (wire the sink to a
/// TraceWriter). Identical coflow sequence to the whole-trace overload
/// (same seed ⇒ same draws, pre-sort).
void GenerateSyntheticTrace(const SyntheticTraceConfig& config,
                            const std::function<void(Coflow&&)>& sink);

/// §5.1: adds ±fraction perturbation to each flow size, re-floors at
/// min_bytes, keeps structure. Deterministic per seed.
Trace PerturbFlowSizes(const Trace& trace, double fraction, Bytes min_bytes,
                       std::uint64_t seed);

/// Intra-Coflow evaluation arrival model (§5.1): "a Coflow arrives only
/// after the previous one is finished" — i.e. arrival times are ignored.
/// Returns the same coflows with arrival 0, preserving order.
Trace ToBackToBack(const Trace& trace);

}  // namespace sunflow
