// Network-idleness metric and byte scaling (§5.4).
//
// A coflow is "active" from its arrival t_arr to t_arr + TpL(B). Idleness is
// the fraction of the horizon with no active coflow. The metric is
// scheduler-independent and is the upper bound on true network idle time.
// To evaluate under a target idleness the paper scales coflow byte sizes
// (preserving structure); ScaleTraceToIdleness binary-searches that factor.
#pragma once

#include "common/units.h"
#include "trace/coflow.h"

namespace sunflow {

/// Fraction of [first arrival, max(t_arr + TpL)] not covered by any
/// coflow's active interval. Returns 0 for an empty trace.
double NetworkIdleness(const Trace& trace, Bandwidth bandwidth);

/// Returns the trace with every coflow's bytes multiplied by `factor`.
Trace ScaleTraceBytes(const Trace& trace, double factor);

/// Finds (by bisection on the byte-scale factor) a trace whose idleness is
/// within `tolerance` of `target_idleness`, and returns it together with
/// the factor used. Larger factor -> longer active intervals -> lower
/// idleness (monotone), so bisection is exact up to tolerance.
struct ScaledTrace {
  Trace trace;
  double factor = 1.0;
  double achieved_idleness = 0.0;
};

ScaledTrace ScaleTraceToIdleness(const Trace& trace, Bandwidth bandwidth,
                                 double target_idleness,
                                 double tolerance = 0.005);

}  // namespace sunflow
