// Parser for the public coflow-benchmark trace format
// (github.com/coflow/coflow-benchmark, e.g. FB2010-1Hr-150-0.txt), the
// workload used in §5.1.
//
// File format:
//   line 1:  <num_ports> <num_coflows>
//   line k:  <id> <arrival_ms> <M> <mapper_1> ... <mapper_M>
//            <R> <reducer_1>:<MB_1> ... <reducer_R>:<MB_R>
// Ports in the file are 1-based rack numbers; each reducer r receives
// MB_r megabytes in total, split evenly across the M mappers (the
// interpretation used by the Varys/Aalo simulators and by the Sunflow
// authors' simulator).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/coflow.h"

namespace sunflow {

/// Parses a trace from a stream. Throws std::runtime_error on malformed
/// input; the message carries `source` (e.g. the file path) and the
/// offending line number.
Trace ParseCoflowBenchmark(std::istream& in,
                           const std::string& source = "<stream>");

/// Parses a trace file from disk. Parse errors name the file path.
Trace ParseCoflowBenchmarkFile(const std::string& path);

/// Serializes a trace back into the benchmark format (bytes rounded to MB).
/// Round-trips with ParseCoflowBenchmark for MB-granular traces.
void WriteCoflowBenchmark(std::ostream& out, const Trace& trace);

/// The per-coflow pieces of WriteCoflowBenchmark, for streaming
/// converters that never hold the whole trace: write the header line
/// once, then one line per coflow in arrival order.
void WriteCoflowBenchmarkHeader(std::ostream& out, PortId num_ports,
                                std::uint64_t num_coflows);
void WriteCoflowBenchmarkLine(std::ostream& out, const Coflow& coflow);

}  // namespace sunflow
