// Parser for the public coflow-benchmark trace format
// (github.com/coflow/coflow-benchmark, e.g. FB2010-1Hr-150-0.txt), the
// workload used in §5.1.
//
// File format:
//   line 1:  <num_ports> <num_coflows>
//   line k:  <id> <arrival_ms> <M> <mapper_1> ... <mapper_M>
//            <R> <reducer_1>:<MB_1> ... <reducer_R>:<MB_R>
// Ports in the file are 1-based rack numbers; each reducer r receives
// MB_r megabytes in total, split evenly across the M mappers (the
// interpretation used by the Varys/Aalo simulators and by the Sunflow
// authors' simulator).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/coflow.h"

namespace sunflow {

/// Parses a trace from a stream. Throws std::runtime_error on malformed
/// input (with the offending line number).
Trace ParseCoflowBenchmark(std::istream& in);

/// Parses a trace file from disk.
Trace ParseCoflowBenchmarkFile(const std::string& path);

/// Serializes a trace back into the benchmark format (bytes rounded to MB).
/// Round-trips with ParseCoflowBenchmark for MB-granular traces.
void WriteCoflowBenchmark(std::ostream& out, const Trace& trace);

}  // namespace sunflow
