// Block-compressed binary trace streams (".sft" — Sunflow trace format).
//
// The text coflow-benchmark format (trace/parser.h) materializes the
// whole trace; this format is built for out-of-core pipelines: coflows
// are serialized into fixed-target-size blocks, each independently
// compressed and checksummed, so a reader touches O(block) bytes at a
// time and a corrupt byte is caught at the block that holds it.
//
// File layout (all integers little-endian; docs/traces.md has the full
// schema):
//   file header (32 B):  magic "SFT1" | u32 version | u32 num_ports |
//                        u32 default codec | u64 num_coflows |
//                        u64 payload_bytes
//   blocks until EOF:    u32 block magic | u32 stored_bytes |
//                        u32 raw_bytes | u32 num_coflows | u32 codec |
//                        u32 crc32(raw payload)  — then stored payload
//
// Per-coflow encoding inside a block payload: varint id (zigzag), the
// raw IEEE-754 bits of the arrival time (bit-exact round-trip — replay
// determinism depends on it), varint flow count, then per flow varint
// src/dst and raw byte-count bits.
//
// The writer patches num_coflows/payload_bytes into the header at
// Close(); a reader of an unclosed file still works (counts unknown).
// Compression is deflate (zlib) when the build has it, else store;
// readers handle both regardless of build flags only for codec 0 —
// a deflate file needs a deflate-enabled build (DeflateSupported()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/source.h"

namespace sunflow::runtime {
class ThreadPool;
}  // namespace sunflow::runtime

namespace sunflow {

/// Per-block payload codec. kStore is always available; kDeflate needs a
/// zlib-enabled build (SUNFLOW_HAVE_ZLIB).
enum class StreamCodec : std::uint32_t { kStore = 0, kDeflate = 1 };

/// True when this build can compress/decompress kDeflate blocks.
bool DeflateSupported();

/// kDeflate when supported, else kStore.
StreamCodec DefaultStreamCodec();

struct TraceStreamOptions {
  /// Uncompressed payload target per block. A single coflow larger than
  /// this still forms a (oversized) block — blocks are never split.
  std::size_t block_bytes = 256 * 1024;
  StreamCodec codec = DefaultStreamCodec();
  /// Decoded blocks the reader keeps in flight ahead of the consumer
  /// (>= 1). Bounds reader memory at readahead_blocks * block_bytes-ish.
  std::size_t readahead_blocks = 4;
  /// Optional pool for the reader's block decode (decompress + checksum +
  /// parse). Null decodes synchronously on the calling thread. Decode
  /// order of *consumption* is FIFO either way, so the coflow sequence is
  /// identical at any pool size. Not owned.
  runtime::ThreadPool* pool = nullptr;
};

struct TraceStreamStats {
  std::uint64_t blocks = 0;
  std::uint64_t coflows = 0;
  std::uint64_t payload_bytes = 0;  ///< uncompressed serialized bytes
  std::uint64_t file_bytes = 0;     ///< bytes on disk including headers
};

/// Streaming writer. Append() in any order (sorting is the external
/// sorter's job); Close() flushes the tail block and patches the header.
/// Throws std::runtime_error on I/O failure.
class TraceWriter {
 public:
  TraceWriter(const std::string& path, PortId num_ports,
              TraceStreamOptions options = {});
  ~TraceWriter();  ///< best-effort Close(); errors reported to stderr

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void Append(const Coflow& coflow);
  /// Flush + header patch. Idempotent; called by the destructor.
  void Close();

  const TraceStreamStats& stats() const { return stats_; }

 private:
  void FlushBlock();

  std::string path_;
  std::ofstream out_;
  TraceStreamOptions options_;
  std::vector<std::uint8_t> payload_;    ///< current block, uncompressed
  std::vector<std::uint8_t> stored_;     ///< compression scratch
  std::uint32_t block_coflows_ = 0;
  TraceStreamStats stats_;
  bool closed_ = false;
};

/// Streaming reader with bounded look-ahead: raw blocks are read
/// sequentially and decoded up to `readahead_blocks` ahead (on `pool`
/// when given), but consumed strictly FIFO — the coflow sequence is
/// byte-identical at any thread count. Throws std::runtime_error on a
/// malformed file, a checksum mismatch, or truncation.
class TraceReader final : public CoflowSource {
 public:
  explicit TraceReader(const std::string& path,
                       TraceStreamOptions options = {});
  ~TraceReader() override;

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  PortId num_ports() const override { return num_ports_; }
  /// Header coflow count; nullopt for an unclosed file.
  std::optional<std::uint64_t> size_hint() const override;
  bool Next(Coflow& out) override;

  /// Bytes/blocks consumed so far (payload_bytes grows as blocks decode).
  const TraceStreamStats& stats() const { return stats_; }

 private:
  struct DecodedBlock {
    std::vector<Coflow> coflows;
    std::size_t next = 0;
    std::uint64_t payload_bytes = 0;
  };

  /// Reads raw blocks off the file and queues their decode until the
  /// pipeline holds readahead_blocks futures or the file is exhausted.
  void FillPipeline();

  std::string path_;
  std::ifstream in_;
  TraceStreamOptions options_;
  PortId num_ports_ = 0;
  std::uint64_t header_coflows_ = 0;  ///< ~0 when the file was not closed
  std::deque<std::future<DecodedBlock>> inflight_;
  DecodedBlock current_;
  TraceStreamStats stats_;
  bool raw_eof_ = false;
};

// --- Whole-trace conveniences (tests, converters) -----------------------

void WriteTraceStream(const std::string& path, const Trace& trace,
                      TraceStreamOptions options = {});

/// Materializes a stream file; Validate()s, so the file must be
/// arrival-ordered (use extsort first otherwise).
Trace ReadTraceStream(const std::string& path, TraceStreamOptions options = {});

/// Sniffs the 4-byte magic. False for short/unreadable files.
bool IsTraceStreamFile(const std::string& path);

/// CRC-32 (IEEE 802.3 polynomial, zlib-compatible) over `n` bytes.
/// Exposed for tests and the auditor; the stream format uses it per block.
std::uint32_t Crc32(const void* data, std::size_t n);

}  // namespace sunflow
