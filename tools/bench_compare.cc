// sunflow_bench_compare — diff two bench result files and gate on
// regressions.
//
// Accepts either format the observability stack produces:
//   - a run manifest ("sunflow.run_manifest/v1", one run — obs/manifest.h)
//   - a bench aggregate ("sunflow.bench/v1", medians over N runs —
//     bench/harness.py)
// and compares wall time, peak RSS, every phase-profile entry, and any
// throughput-style extras (keys containing "per_sec", where higher is
// better). A metric regresses when the candidate is more than --threshold
// worse than the baseline; tiny phases below --min_phase_ms are skipped
// (their medians are timer noise, not signal).
//
// Usage:
//   sunflow_bench_compare --baseline=BENCH_engine_replan.json
//     --candidate=engine_replan.manifest.json [--threshold=0.15]
//     [--min_phase_ms=1] [--warn_only]
//
// Exit status: 0 = within threshold, 1 = regression (0 with --warn_only),
// 2 = unusable input. The row table always prints, so CI logs show the
// full comparison either way.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "common/version.h"
#include "obs/json.h"

using namespace sunflow;
using obs::JsonValue;

namespace {

// One comparable series extracted from either input schema: the median
// value of a named metric plus its improvement direction.
struct Metric {
  double value = 0;
  bool higher_is_better = false;
};

// A bench aggregate stores each metric as {"median": x, "p95": y, ...};
// a run manifest stores the scalar directly. Accept both.
double MedianOf(const JsonValue& v) {
  if (v.is_number()) return v.AsNumber();
  if (v.is_object()) {
    if (const JsonValue* m = v.Find("median")) return m->AsNumber();
  }
  throw std::runtime_error("metric is neither a number nor {median: ...}");
}

// Flattens the comparable metrics of one result file into name → Metric.
// Names are namespaced (wall_ns, phase.<name>.total_ns, extra.<key>) so
// the two schemas land on identical keys. Extras without a "per_sec" rate
// direction (attr.* fractions, best_speedup, ...) go to `info` when given:
// they print side by side but never gate — a shift in, say, the δ share of
// CCT is a question for a human, not a pass/fail signal.
std::map<std::string, Metric> ExtractMetrics(
    const JsonValue& doc, const std::string& path,
    std::map<std::string, double>* info = nullptr) {
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string()) {
    throw std::runtime_error(path + ": missing \"schema\"");
  }
  const bool is_manifest = schema->AsString() == "sunflow.run_manifest/v1";
  const bool is_bench = schema->AsString() == "sunflow.bench/v1";
  if (!is_manifest && !is_bench) {
    throw std::runtime_error(path + ": unknown schema \"" +
                             schema->AsString() + "\"");
  }

  std::map<std::string, Metric> out;
  // Wall time and peak RSS live under "run" in a manifest and at the top
  // level of a bench aggregate.
  const JsonValue& scalars = is_manifest ? doc.at("run") : doc;
  if (const JsonValue* wall = scalars.Find("wall_ns")) {
    out["wall_ns"] = {MedianOf(*wall), false};
  }
  if (const JsonValue* rss = scalars.Find("peak_rss_kb")) {
    out["peak_rss_kb"] = {MedianOf(*rss), false};
  }

  // Phase profile: manifest nests it as profile.phases.<name>.total_ns;
  // the bench aggregate as phases.<name>.total_ns.{median,...}.
  const JsonValue* phases = nullptr;
  if (is_manifest) {
    if (const JsonValue* profile = doc.Find("profile")) {
      phases = profile->Find("phases");
    }
  } else {
    phases = doc.Find("phases");
  }
  if (phases != nullptr && phases->is_object()) {
    for (const auto& [name, stats] : phases->AsObject()) {
      if (const JsonValue* total = stats.Find("total_ns")) {
        out["phase." + name + ".total_ns"] = {MedianOf(*total), false};
      }
    }
  }

  // Bench-specific extras (replans_per_sec_best, best_speedup, ...): only
  // rate-like keys have an unambiguous direction; the rest are skipped.
  // A manifest flattens extras into "run"; the aggregate keeps "extra".
  const JsonValue* extra = is_manifest ? doc.Find("run") : doc.Find("extra");
  if (extra != nullptr && extra->is_object()) {
    for (const auto& [name, v] : extra->AsObject()) {
      if (name.find("per_sec") != std::string::npos) {
        out["extra." + name] = {MedianOf(v), true};
      } else if (info != nullptr && name != "seed" && name != "threads" &&
                 name != "wall_ns" && name != "peak_rss_kb") {
        (*info)["extra." + name] = MedianOf(v);
      }
    }
  }
  return out;
}

std::string FmtValue(const std::string& name, double v) {
  if (name.find("_ns") != std::string::npos) {
    return TextTable::Fmt(v / 1e6, 2) + " ms";
  }
  return TextTable::Fmt(v, 2);
}

// Core count of the host that produced a result file: "hardware_threads"
// in a run manifest, "host_nproc" in a bench aggregate. 0 when the file
// predates the field — comparisons then proceed without the check.
int HostNproc(const JsonValue& doc) {
  for (const char* key : {"hardware_threads", "host_nproc"}) {
    if (const JsonValue* v = doc.Find(key)) {
      if (v->is_number()) return static_cast<int>(v->AsNumber());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string baseline_path =
      flags.GetString("baseline", "", "baseline result file (json)");
  const std::string candidate_path =
      flags.GetString("candidate", "", "candidate result file (json)");
  const double threshold = flags.GetDouble(
      "threshold", 0.15,
      "allowed relative slowdown before a metric counts as regressed");
  const double min_phase_ms = flags.GetDouble(
      "min_phase_ms", 1.0,
      "ignore phases whose baseline total is below this (timer noise)");
  const bool warn_only = flags.GetBool(
      "warn_only", false, "report regressions but exit 0 (first-landing CI)");
  if (flags.GetBool("version", false, "print build/version info and exit")) {
    std::printf("%s\n", VersionString("sunflow_bench_compare").c_str());
    return 0;
  }
  if (flags.help_requested() || baseline_path.empty() ||
      candidate_path.empty()) {
    flags.PrintHelp("Diff two bench result files; exit 1 past the threshold");
    return flags.help_requested() ? 0 : 2;
  }

  std::map<std::string, Metric> base, cand;
  std::map<std::string, double> base_info, cand_info;
  int base_nproc = 0;
  int cand_nproc = 0;
  try {
    const JsonValue base_doc = JsonValue::ParseFile(baseline_path);
    const JsonValue cand_doc = JsonValue::ParseFile(candidate_path);
    base = ExtractMetrics(base_doc, baseline_path, &base_info);
    cand = ExtractMetrics(cand_doc, candidate_path, &cand_info);
    base_nproc = HostNproc(base_doc);
    cand_nproc = HostNproc(cand_doc);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (base.empty()) {
    std::cerr << "error: " << baseline_path << " has no comparable metrics\n";
    return 2;
  }

  TextTable table("bench_compare: " + candidate_path + " vs " +
                  baseline_path);
  table.SetHeader({"metric", "baseline", "candidate", "ratio", "verdict"});
  std::vector<std::string> regressions;
  int compared = 0;
  for (const auto& [name, b] : base) {
    const auto it = cand.find(name);
    if (it == cand.end()) {
      table.AddRow({name, FmtValue(name, b.value), "-", "-", "missing"});
      continue;
    }
    const bool is_phase = name.rfind("phase.", 0) == 0;
    if (is_phase && b.value < min_phase_ms * 1e6) {
      table.AddRow({name, FmtValue(name, b.value),
                    FmtValue(name, it->second.value), "-", "skipped (tiny)"});
      continue;
    }
    const double c = it->second.value;
    if (b.value <= 0) {
      table.AddRow({name, FmtValue(name, b.value), FmtValue(name, c), "-",
                    "skipped (zero base)"});
      continue;
    }
    ++compared;
    const double ratio = c / b.value;
    const bool regressed = b.higher_is_better ? ratio < 1.0 - threshold
                                              : ratio > 1.0 + threshold;
    if (regressed) regressions.push_back(name);
    table.AddRow({name, FmtValue(name, b.value), FmtValue(name, c),
                  TextTable::Fmt(ratio, 3) + "x",
                  regressed ? "REGRESSED" : "ok"});
  }
  for (const auto& [name, c] : cand) {
    if (base.find(name) == base.end()) {
      table.AddRow({name, "-", FmtValue(name, c.value), "-", "new"});
    }
  }
  // Informational extras: shown for the record, never counted or gated.
  for (const auto& [name, b] : base_info) {
    const auto it = cand_info.find(name);
    table.AddRow({name, FmtValue(name, b),
                  it == cand_info.end() ? "-" : FmtValue(name, it->second),
                  "-", "info"});
  }
  for (const auto& [name, c] : cand_info) {
    if (base_info.find(name) == base_info.end()) {
      table.AddRow({name, "-", FmtValue(name, c), "-", "info"});
    }
  }
  table.AddFootnote("threshold " + TextTable::FmtPct(threshold, 0) +
                    ", phases under " + TextTable::Fmt(min_phase_ms, 1) +
                    " ms skipped; \"info\" rows never gate");
  // Cross-core-count comparisons of rate metrics are not apples-to-apples
  // (a baseline blessed on an 8-core runner will beat any 1-core
  // candidate on replans_per_sec without a single regressed line of
  // code). Warn, never gate: the numeric verdicts still print.
  if (base_nproc > 0 && cand_nproc > 0 && base_nproc != cand_nproc) {
    table.AddFootnote("WARNING: baseline host had " +
                      std::to_string(base_nproc) +
                      " hardware threads, candidate host has " +
                      std::to_string(cand_nproc) +
                      " — rate metrics are not directly comparable");
  }
  table.Print(std::cout);

  if (compared == 0) {
    std::cerr << "error: no metric present in both files\n";
    return 2;
  }
  if (!regressions.empty()) {
    std::printf("\n%zu regression(s) past %.0f%%:\n", regressions.size(),
                threshold * 100);
    for (const std::string& name : regressions) {
      std::printf("  %s\n", name.c_str());
    }
    return warn_only ? 0 : 1;
  }
  std::printf("\nno regressions past %.0f%% (%d metrics compared)\n",
              threshold * 100, compared);
  return 0;
}
