// sunflow_trace_inspect — summarize a structured JSONL trace.
//
// Reads an event stream written by the obs tracer (JsonlStreamSink or
// WriteJsonl) and reports what the paper's evaluation cares about:
// per-coflow Gantt stats, the δ-overhead fraction (reconfiguration time
// over circuit-hold time), per-port idleness over the horizon, and
// scheduler compute-time percentiles. The same numbers are cross-checkable
// against trace/idleness (network idleness) and viz/timeline (Gantt).
//
// Usage:
//   sunflow_trace_inspect --trace=run.jsonl [--top=20] [--csv]
//   sunflow_trace_inspect --trace=run.jsonl --attribution [--csv]
//   sunflow_trace_inspect --trace=run.jsonl --audit [--manifest=...]
//   sunflow_trace_inspect --manifest=run.manifest.json
//
// --csv switches the per-coflow section to machine-readable CSV on stdout.
// --attribution decomposes every coflow's CCT into additive causal
// components (obs/attribution.h) and prints the critical path of the
// largest coflow. --audit verifies the physical invariants of
// obs/audit.h and exits 1 on any violation; combined with --manifest it
// also cross-checks the δ-paying setup count against the producer's
// executor.circuit_setups metric.
// --manifest alone inspects a run manifest instead of an event trace: it
// prints the plan-cache counters (plan.cache_hits / plan.cache_misses),
// the parallel-planning counters (plan.parallel_fallbacks /
// pool.waiter_steals) and each profiled phase's share of total self time —
// the numbers the planner perf work is judged by.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/version.h"
#include "obs/attribution.h"
#include "obs/audit.h"
#include "obs/jsonl.h"
#include "obs/manifest.h"

using namespace sunflow;
using obs::Event;
using obs::EventType;

namespace {

struct CoflowStats {
  Time admitted = -1;
  Time completed = -1;
  Time cct = 0;
  int setups = 0;          // circuit setups that paid δ
  int reservations = 0;    // all circuit-hold spans
  Time circuit_seconds = 0;
  Time delta_seconds = 0;
  Time first_circuit = kTimeInf;
  Time last_release = 0;
  int flows_finished = 0;

  double DeltaFraction() const {
    return circuit_seconds > 0 ? delta_seconds / circuit_seconds : 0;
  }
};

struct PortStats {
  Time busy = 0;
  int setups = 0;
};

// --timeline mode: render a bench's --timeline_out CSV
// (sunflow.timeline/v1, obs/timeline.h) as ASCII sparklines + summary.

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t comma = line.find(',', begin);
    if (comma == std::string::npos) {
      out.push_back(line.substr(begin));
      return out;
    }
    out.push_back(line.substr(begin, comma - begin));
    begin = comma + 1;
  }
}

// Downsamples a series to `width` bucket maxima and renders each bucket as
// one of ten ASCII levels scaled to the series max. Max (not mean) so a
// narrow burst — one busy window among dozens of idle ones in the same
// bucket — still shows up instead of averaging down to a blank cell.
std::string Sparkline(const std::vector<double>& xs, std::size_t width) {
  static const char kLevels[] = " .:-=+*#%@";
  if (xs.empty()) return {};
  width = std::min(width, xs.size());
  double max = 0;
  for (double x : xs) max = std::max(max, x);
  std::string out;
  out.reserve(width);
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t lo = b * xs.size() / width;
    const std::size_t hi = std::max(lo + 1, (b + 1) * xs.size() / width);
    double v = 0;
    for (std::size_t i = lo; i < hi; ++i) v = std::max(v, xs[i]);
    const int level =
        max > 0 ? std::min(9, static_cast<int>(v / max * 9.999)) : 0;
    out.push_back(kLevels[level]);
  }
  return out;
}

int InspectTimeline(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "error: cannot open " << path << "\n";
    return 1;
  }
  std::string line, schema_comment, meta_comment;
  std::vector<std::string> cols;
  std::vector<std::vector<double>> rows;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      (schema_comment.empty() ? schema_comment : meta_comment) = line;
      continue;
    }
    std::vector<std::string> fields = SplitCsvLine(line);
    if (cols.empty()) {
      cols = std::move(fields);
      continue;
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const std::string& s : fields) row.push_back(std::atof(s.c_str()));
    rows.push_back(std::move(row));
  }
  if (schema_comment.find("sunflow.timeline/v1") == std::string::npos) {
    std::cerr << "error: " << path
              << " is not a telemetry timeline (no sunflow.timeline/v1 "
                 "header; expected a bench's --timeline_out CSV)\n";
    return 1;
  }
  if (rows.empty()) {
    std::printf("telemetry timeline %s: no samples\n", path.c_str());
    return 0;
  }

  const auto col = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < cols.size(); ++i)
      if (cols[i] == name) return static_cast<int>(i);
    return -1;
  };
  const auto series = [&](int c) {
    std::vector<double> out;
    if (c < 0) return out;
    out.reserve(rows.size());
    for (const auto& r : rows)
      out.push_back(static_cast<std::size_t>(c) < r.size()
                        ? r[static_cast<std::size_t>(c)]
                        : 0);
    return out;
  };

  // Overall utilization: mean across every util_* column per sample.
  std::vector<double> util(rows.size(), 0);
  int util_cols = 0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].rfind("util_", 0) != 0) continue;
    ++util_cols;
    for (std::size_t rix = 0; rix < rows.size(); ++rix)
      if (i < rows[rix].size()) util[rix] += rows[rix][i];
  }
  if (util_cols > 0)
    for (double& u : util) u /= util_cols;

  const Time t0 = rows.front()[0];
  const Time t1 = rows.back().size() > 1 ? rows.back()[1] : t0;
  std::printf("telemetry timeline %s\n", path.c_str());
  std::printf("%zu samples over sim [%g, %g] s\n", rows.size(), t0, t1);
  if (!meta_comment.empty()) std::printf("%s\n", meta_comment.c_str());
  std::printf("\n");

  constexpr std::size_t kWidth = 64;
  const auto print_row = [&](const char* name, const std::vector<double>& xs) {
    if (xs.empty()) return;
    double max = 0;
    for (double x : xs) max = std::max(max, x);
    std::printf("  %-18s peak %-12.4g |%s|\n", name, max,
                Sparkline(xs, kWidth).c_str());
  };
  print_row("fabric util", util);
  print_row("engine active", series(col("engine_active_frac")));
  print_row("active coflows", series(col("active")));
  print_row("queue depth", series(col("queue_depth")));
  print_row("blocked coflows", series(col("blocked")));
  print_row("replans", series(col("replans")));
  const std::vector<double> p99 = series(col("rolling_p99_ns"));
  if (!p99.empty()) print_row("replan p99 ns", p99);

  std::printf("\n");
  std::printf("  util mean %.4f  p99 %.4f\n", stats::Mean(util),
              stats::Percentile(util, 99));
  double total_replans = 0;
  for (double r : series(col("replans"))) total_replans += r;
  std::printf("  replans %g", total_replans);
  const std::vector<double> admitted = series(col("admitted"));
  if (!admitted.empty()) std::printf("  admitted %g", admitted.back());
  std::printf("\n");
  return 0;
}

// --manifest mode: plan-cache counters and per-phase self-time shares
// from a run manifest (obs/manifest.h).
int InspectManifest(const std::string& path) {
  obs::RunManifest m;
  try {
    m = obs::RunManifest::FromJson(obs::JsonValue::ParseFile(path));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::printf("manifest: %s\n", path.c_str());
  std::printf("tool: %s, wall %.2f ms, %d thread(s)\n", m.tool.c_str(),
              m.wall_ns / 1e6, m.threads);

  double hits = -1, misses = -1;
  double parallel_fallbacks = -1, waiter_steals = -1;
  for (const obs::MetricRow& r : m.metrics) {
    if (r.name == "plan.cache_hits") hits = r.value;
    if (r.name == "plan.cache_misses") misses = r.value;
    if (r.name == "plan.parallel_fallbacks") parallel_fallbacks = r.value;
    if (r.name == "pool.waiter_steals") waiter_steals = r.value;
  }
  if (hits >= 0 || misses >= 0) {
    hits = std::max(hits, 0.0);
    misses = std::max(misses, 0.0);
    const double total = hits + misses;
    std::printf(
        "plan cache: %.0f hits, %.0f misses (%.1f%% of %.0f replans "
        "spliced from the memo)\n",
        hits, misses, total > 0 ? 100.0 * hits / total : 0.0, total);
  } else {
    std::printf(
        "plan cache: no plan.cache_* counters (run predates the plan memo "
        "or never planned)\n");
  }
  if (parallel_fallbacks >= 0) {
    std::printf(
        "parallel plan fallbacks: %.0f replan(s) fell back to the serial "
        "path (no pool, one group, or an observer attached)\n",
        parallel_fallbacks);
  }
  if (waiter_steals >= 0) {
    std::printf(
        "pool waiter steals: %.0f queued task(s) run by a caller while "
        "waiting for its ParallelFor to drain\n",
        waiter_steals);
  }

  double total_self = 0;
  for (const obs::ProfileRow& r : m.profile) total_self += r.stats.self_ns;
  if (m.profile.empty()) {
    std::printf(
        "no profile block in this manifest (the producing run was built "
        "without profiling or wrote a reduced manifest) — phase table "
        "skipped\n");
    return 0;
  }
  std::vector<obs::ProfileRow> rows = m.profile;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.stats.self_ns > b.stats.self_ns;
  });
  TextTable table("Per-phase self time (share of " +
                  TextTable::Fmt(total_self / 1e6, 2) + " ms total self)");
  table.SetHeader({"phase", "count", "total ms", "self ms", "self %"});
  for (const obs::ProfileRow& r : rows) {
    table.AddRow({r.name, std::to_string(r.stats.count),
                  TextTable::Fmt(r.stats.total_ns / 1e6, 2),
                  TextTable::Fmt(r.stats.self_ns / 1e6, 2),
                  TextTable::Fmt(
                      total_self > 0 ? 100.0 * r.stats.self_ns / total_self : 0,
                      2)});
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}

// --attribution mode: the causal CCT decomposition of obs/attribution.h.
int RunAttribution(const std::vector<Event>& events, bool csv,
                   std::size_t top) {
  const obs::AttributionReport report = obs::Attribute(events);
  if (report.coflows.empty()) {
    std::cerr << "error: no completed coflows in the trace — nothing to "
                 "attribute (was the trace produced with admissions and "
                 "completions enabled?)\n";
    return 1;
  }

  if (csv) {
    std::printf(
        "coflow,cct_s,pre_admission_s,delta_s,contention_s,starvation_s,"
        "transmit_s,unattributed_s,sum_s,residual_s,top_blamer,"
        "top_blamer_s,planner_ns\n");
    for (const obs::CoflowAttribution& a : report.coflows) {
      const Time sum = a.Sum();
      const CoflowId top_blamer =
          a.by_blamer.empty() ? -1 : a.by_blamer.front().blamer;
      const Time top_blamer_s =
          a.by_blamer.empty() ? 0 : a.by_blamer.front().seconds;
      std::printf("%lld,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.3g,%lld,"
                  "%.9g,%.9g\n",
                  static_cast<long long>(a.coflow), a.cct, a.pre_admission,
                  a.delta, a.contention, a.starvation_hold, a.transmit,
                  a.unattributed, sum, a.cct - sum,
                  static_cast<long long>(top_blamer), top_blamer_s,
                  a.planner_compute_ns);
    }
    return 0;
  }

  TextTable table("CCT attribution (top " +
                  std::to_string(std::min(top, report.coflows.size())) +
                  " by CCT; components sum to the measured CCT)");
  table.SetHeader({"coflow", "cct_s", "wait_s", "delta_s", "contend_s",
                   "hold_s", "transmit_s", "unattr_s", "top blamer"});
  for (std::size_t i = 0; i < report.coflows.size() && i < top; ++i) {
    const obs::CoflowAttribution& a = report.coflows[i];
    std::string blamer = "-";
    if (!a.by_blamer.empty()) {
      blamer = std::to_string(a.by_blamer.front().blamer) + " (" +
               TextTable::Fmt(a.by_blamer.front().seconds, 4) + " s)";
    }
    table.AddRow({std::to_string(a.coflow), TextTable::Fmt(a.cct, 4),
                  TextTable::Fmt(a.pre_admission, 4),
                  TextTable::Fmt(a.delta, 4),
                  TextTable::Fmt(a.contention, 4),
                  TextTable::Fmt(a.starvation_hold, 4),
                  TextTable::Fmt(a.transmit, 4),
                  TextTable::Fmt(a.unattributed, 4), blamer});
  }
  table.AddFootnote(
      "aggregate shares of " + TextTable::Fmt(report.total_cct, 4) +
      " s total CCT: wait " +
      TextTable::FmtPct(report.pre_admission_fraction, 1) + ", delta " +
      TextTable::FmtPct(report.delta_fraction, 1) + ", contention " +
      TextTable::FmtPct(report.contention_fraction, 1) + ", hold " +
      TextTable::FmtPct(report.starvation_fraction, 1) + ", transmit " +
      TextTable::FmtPct(report.transmit_fraction, 1) + ", unattributed " +
      TextTable::FmtPct(report.unattributed_fraction, 1));
  table.Print(std::cout);

  // Per-plane δ only when the trace actually spans a K-core fabric, so
  // classic single-plane output is unchanged.
  const auto& by_plane = report.delta_seconds_by_plane;
  if (by_plane.size() > 1 ||
      (by_plane.size() == 1 && by_plane.begin()->first != 0)) {
    std::printf("\ndelta seconds by switch plane:\n");
    for (const auto& [plane, seconds] : by_plane) {
      std::printf("  plane %d: %.6f s\n", static_cast<int>(plane), seconds);
    }
  }

  std::printf("\ncritical path of coflow %lld (completion first):\n",
              static_cast<long long>(report.critical_coflow));
  for (const obs::CriticalPathStep& s : report.critical_path) {
    std::printf("  %-8s [%.6f, %.6f] (%.6f s)",
                obs::ToString(s.kind), s.begin, s.end, s.end - s.begin);
    if (s.in >= 0) std::printf("  flow %lld->%lld",
                               static_cast<long long>(s.in),
                               static_cast<long long>(s.out));
    if (s.kind == obs::CriticalPathStep::Kind::kBlocked) {
      std::printf("  behind coflow %lld (%s)",
                  static_cast<long long>(s.blamer), obs::ToString(s.reason));
    }
    std::printf("\n");
  }
  return 0;
}

// --audit mode: physical-invariant verification, nonzero exit on any
// violation so CI can gate on it.
int RunAudit(const std::vector<Event>& events,
             const std::string& manifest_path, obs::AuditScope scope) {
  long long expected_setups = -1;
  if (!manifest_path.empty()) {
    try {
      const obs::RunManifest m =
          obs::RunManifest::FromJson(obs::JsonValue::ParseFile(manifest_path));
      for (const obs::MetricRow& r : m.metrics) {
        if (r.name == "executor.circuit_setups") {
          expected_setups = static_cast<long long>(r.value);
        }
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  const obs::AuditReport report =
      obs::AuditTrace(events, expected_setups, scope);
  std::printf("audit: %zu events, %zu checks, %zu violation(s)\n",
              report.events, report.checks, report.violations.size());
  for (const obs::AuditViolation& v : report.violations) {
    std::printf("  [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
  }
  if (!report.ok()) {
    std::printf("audit FAILED\n");
    return 1;
  }
  std::printf("audit passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string path =
      flags.GetString("trace", "", "JSONL trace file to inspect");
  const auto top =
      static_cast<std::size_t>(flags.GetInt("top", 20, "coflow rows to show"));
  const bool csv =
      flags.GetBool("csv", false, "emit the per-coflow table as CSV");
  const std::string manifest_path = flags.GetString(
      "manifest", "",
      "run manifest JSON to inspect instead of a trace: prints the "
      "plan-cache counters and per-phase self-time shares (with --audit: "
      "cross-checks the trace's setup count against its metrics)");
  const bool attribution = flags.GetBool(
      "attribution", false,
      "decompose each coflow's CCT into causal components (with --csv for "
      "machine-readable rows) and print the largest coflow's critical path");
  const bool do_audit = flags.GetBool(
      "audit", false,
      "verify the trace's physical invariants; exit 1 on any violation");
  const std::string audit_scope = flags.GetString(
      "audit_scope", "fabric",
      "\"fabric\" = one shared timeline (engine replays, strict); "
      "\"coflow\" = concatenated standalone replays (intra benches), "
      "fabric checks keyed per coflow lifecycle");
  const std::string timeline_path = flags.GetString(
      "timeline", "",
      "telemetry-timeline CSV (a bench's --timeline_out) to render as "
      "ASCII sparklines + summary instead of a trace");
  const bool version =
      flags.GetBool("version", false, "print build/version info and exit");
  if (version) {
    std::printf("%s\n", VersionString("sunflow_trace_inspect").c_str());
    return 0;
  }
  if (!timeline_path.empty() && !flags.help_requested())
    return InspectTimeline(timeline_path);
  if (flags.help_requested() || (path.empty() && manifest_path.empty())) {
    flags.PrintHelp("Summarize a Sunflow JSONL event trace or run manifest");
    return path.empty() && manifest_path.empty() && !flags.help_requested()
               ? 2
               : 0;
  }
  if (path.empty()) return InspectManifest(manifest_path);

  std::vector<Event> events;
  try {
    events = obs::ReadJsonlFile(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (do_audit) {
    if (audit_scope != "fabric" && audit_scope != "coflow") {
      std::cerr << "error: --audit_scope must be \"fabric\" or \"coflow\"\n";
      return 2;
    }
    return RunAudit(events, manifest_path,
                    audit_scope == "coflow" ? obs::AuditScope::kPerCoflow
                                            : obs::AuditScope::kSharedFabric);
  }
  if (attribution && !events.empty()) return RunAttribution(events, csv, top);

  std::map<EventType, std::size_t> type_counts;
  std::map<CoflowId, CoflowStats> coflows;
  std::map<PortId, PortStats> ports;
  std::map<PlaneId, Time> plane_circuit_seconds;
  std::vector<double> compute_ns;
  Time t_min = kTimeInf, t_max = 0;
  int starvation_rounds = 0;
  Time blocked_seconds = 0;
  int blocked_episodes = 0;

  for (const Event& e : events) {
    ++type_counts[e.type];
    t_min = std::min(t_min, e.t);
    t_max = std::max(t_max, e.t + std::max(0.0, e.dur));
    switch (e.type) {
      case EventType::kCircuitSetup: {
        plane_circuit_seconds[e.plane] += e.dur;
        auto& cs = coflows[e.coflow];
        ++cs.reservations;
        if (e.value > 0) ++cs.setups;
        cs.circuit_seconds += e.dur;
        cs.delta_seconds += e.value;
        cs.first_circuit = std::min(cs.first_circuit, e.t);
        cs.last_release = std::max(cs.last_release, e.t + e.dur);
        auto& ps = ports[e.in];
        ps.busy += e.dur;
        if (e.value > 0) ++ps.setups;
        break;
      }
      case EventType::kCircuitTeardown:
        break;
      case EventType::kCoflowAdmitted:
        coflows[e.coflow].admitted = e.t;
        break;
      case EventType::kCoflowCompleted: {
        auto& cs = coflows[e.coflow];
        cs.completed = e.t;
        cs.cct = e.value;
        break;
      }
      case EventType::kAssignmentComputed:
        compute_ns.push_back(e.value);
        break;
      case EventType::kStarvationRound:
        ++starvation_rounds;
        break;
      case EventType::kFlowFinished:
        ++coflows[e.coflow].flows_finished;
        break;
      case EventType::kFlowBlocked:
        break;  // only the closing event carries the span
      case EventType::kFlowUnblocked:
        blocked_seconds += e.dur;
        ++blocked_episodes;
        break;
    }
  }
  if (events.empty()) {
    // An empty trace is almost always a truncated or wrong file (a crash
    // before the flush, or a path typo), not a legitimate run: every
    // tracer-enabled replay emits at least the admission events. Fail
    // loudly instead of printing an all-zero summary that looks fine.
    std::cerr << "error: " << path
              << " contains no events — the producing run likely exited "
                 "before flushing its trace, or this is not a Sunflow "
                 "JSONL trace\n";
    return 1;
  }
  const Time horizon = std::max(kTimeEps, t_max - std::min(t_min, t_max));

  std::printf("trace: %s\n", path.c_str());
  std::printf("events: %zu over [%.6f, %.6f] s (horizon %.6f s)\n",
              events.size(), std::min(t_min, t_max), t_max, horizon);
  for (const auto& [type, n] : type_counts) {
    std::printf("  %-20s %zu\n", obs::ToString(type), n);
  }

  // δ overhead: reconfiguration seconds over total circuit-hold seconds.
  Time total_circuit = 0, total_delta = 0;
  int total_setups = 0;
  for (const auto& [id, cs] : coflows) {
    total_circuit += cs.circuit_seconds;
    total_delta += cs.delta_seconds;
    total_setups += cs.setups;
  }
  std::printf("\ncircuit setups paying delta: %d\n", total_setups);
  std::printf("circuit-hold time: %.6f s, of which delta: %.6f s (%.2f%%)\n",
              total_circuit, total_delta,
              total_circuit > 0 ? 100.0 * total_delta / total_circuit : 0.0);
  if (plane_circuit_seconds.size() > 1) {
    std::printf("circuit-hold by switch plane (K=%zu):\n",
                plane_circuit_seconds.size());
    for (const auto& [plane, seconds] : plane_circuit_seconds) {
      std::printf("  plane %d: %.6f s\n", static_cast<int>(plane), seconds);
    }
  }

  // Port idleness: fraction of the horizon each seen input port held no
  // circuit (the executable-trace analogue of trace/idleness).
  if (!ports.empty()) {
    std::vector<double> idle;
    idle.reserve(ports.size());
    for (const auto& [p, ps] : ports) {
      idle.push_back(std::max(0.0, 1.0 - ps.busy / horizon));
    }
    std::printf("port idleness over %zu active ports: %s\n", ports.size(),
                stats::ToString(stats::Summarize(idle)).c_str());
  }

  if (!compute_ns.empty()) {
    std::printf("scheduler compute (ns): %s\n",
                stats::ToString(stats::Summarize(compute_ns)).c_str());
  }
  if (starvation_rounds > 0) {
    std::printf("starvation-guard rounds: %d\n", starvation_rounds);
  }
  if (blocked_episodes > 0) {
    std::printf(
        "blocked episodes: %d totaling %.6f s (see --attribution for the "
        "per-coflow, per-blamer breakdown)\n",
        blocked_episodes, blocked_seconds);
  }

  // Per-coflow Gantt stats, largest CCT first.
  std::vector<std::pair<CoflowId, CoflowStats>> rows(coflows.begin(),
                                                     coflows.end());
  std::erase_if(rows, [](const auto& kv) { return kv.first < 0; });
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.cct > b.second.cct;
  });

  if (csv) {
    std::printf(
        "\ncoflow,admitted_s,completed_s,cct_s,setups,reservations,"
        "circuit_s,delta_s,delta_fraction,flows_finished\n");
    for (const auto& [id, cs] : rows) {
      std::printf("%lld,%.9g,%.9g,%.9g,%d,%d,%.9g,%.9g,%.6f,%d\n",
                  static_cast<long long>(id), cs.admitted, cs.completed,
                  cs.cct, cs.setups, cs.reservations, cs.circuit_seconds,
                  cs.delta_seconds, cs.DeltaFraction(), cs.flows_finished);
    }
    return 0;
  }

  TextTable table("Per-coflow Gantt stats (top " +
                  std::to_string(std::min(top, rows.size())) + " by CCT)");
  table.SetHeader({"coflow", "cct_s", "setups", "circuit_s", "delta_s",
                   "delta%", "flows"});
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    const auto& [id, cs] = rows[i];
    table.AddRow({std::to_string(id), TextTable::Fmt(cs.cct, 4),
                  std::to_string(cs.setups),
                  TextTable::Fmt(cs.circuit_seconds, 4),
                  TextTable::Fmt(cs.delta_seconds, 4),
                  TextTable::Fmt(100 * cs.DeltaFraction(), 2),
                  std::to_string(cs.flows_finished)});
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}
