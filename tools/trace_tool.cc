// sunflow_trace_tool — inspect, generate, convert, sort and benchmark
// coflow traces, in both the text coflow-benchmark format and the
// block-compressed stream format (.sft, trace/stream.h).
//
// Subcommands (first positional argument):
//   info      print fabric size, classification (Table 4 view), idleness,
//             size distributions; stream files are summarized in
//             O(block) memory
//   generate  write a synthetic FB-like trace; --out writes text,
//             --stream_out streams straight to .sft in O(block) memory
//   convert   text <-> stream, directions sniffed from the input magic
//   sort      external-memory (arrival, id) sort of a stream file
//   cat       print per-coflow summary lines from a stream file
//   bench     write/read/sort throughput (MB/s, coflows/s) + manifest
//   scale     rescale a trace's bytes to a target network idleness
//   bounds    per-coflow TpL / TcL listing (CSV on stdout)
//
// Examples:
//   sunflow_trace_tool info --trace=FB2010-1Hr-150-0.txt
//   sunflow_trace_tool generate --coflows=1000000 --iid_arrivals
//       --stream_out=/tmp/big.sft
//   sunflow_trace_tool sort --in=/tmp/big.sft --out=/tmp/big.sorted.sft
//   sunflow_trace_tool convert --in=/tmp/big.sorted.sft --out=/tmp/big.txt
//   sunflow_trace_tool bench --coflows=200000 --threads=8
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "common/cli.h"
#include "common/rng.h"
#include "common/version.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/classify.h"
#include "obs/manifest.h"
#include "runtime/thread_pool.h"
#include "trace/bounds.h"
#include "trace/extsort.h"
#include "trace/generator.h"
#include "trace/idleness.h"
#include "trace/parser.h"
#include "trace/stream.h"

using namespace sunflow;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

double MbPerSec(std::uint64_t bytes, double seconds) {
  return seconds > 0 ? bytes / 1e6 / seconds : 0;
}

StreamCodec CodecFromFlags(CliFlags& flags) {
  const std::string name = flags.GetString(
      "codec", DeflateSupported() ? "deflate" : "store",
      "stream block codec: store | deflate");
  if (name == "store") return StreamCodec::kStore;
  if (name == "deflate") return StreamCodec::kDeflate;
  throw std::runtime_error("unknown --codec '" + name + "'");
}

TraceStreamOptions StreamOptionsFromFlags(CliFlags& flags,
                                          runtime::ThreadPool* pool) {
  TraceStreamOptions o;
  o.block_bytes = static_cast<std::size_t>(
                      flags.GetInt("block_kb", 256, "stream block size, KiB"))
                  << 10;
  o.codec = CodecFromFlags(flags);
  o.readahead_blocks = static_cast<std::size_t>(
      flags.GetInt("readahead", 4, "reader look-ahead, blocks"));
  o.pool = pool;
  return o;
}

/// The reader decode pool behind --threads (0/1 = synchronous decode).
std::unique_ptr<runtime::ThreadPool> PoolFromFlags(CliFlags& flags) {
  const auto n = flags.GetInt(
      "threads", 1, "stream decode/prefetch threads (<=1 = synchronous)");
  if (n <= 1) return nullptr;
  return std::make_unique<runtime::ThreadPool>(static_cast<int>(n));
}

Trace Load(CliFlags& flags) {
  const std::string path = flags.GetString("trace", "", "input trace file");
  if (!path.empty()) {
    return IsTraceStreamFile(path) ? ReadTraceStream(path)
                                   : ParseCoflowBenchmarkFile(path);
  }
  SyntheticTraceConfig cfg;
  cfg.num_coflows =
      static_cast<int>(flags.GetInt("coflows", 526, "synthetic coflows"));
  cfg.num_ports =
      static_cast<PortId>(flags.GetInt("ports", 150, "fabric ports"));
  cfg.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", 20161212, "synthetic seed"));
  Trace t = GenerateSyntheticTrace(cfg);
  const double perturb = flags.GetDouble("perturb", 0.05, "size perturbation");
  if (perturb > 0) t = PerturbFlowSizes(t, perturb, MB(1), cfg.seed + 1);
  return t;
}

/// Streaming `info` for .sft files: one pass, O(block) memory — works on
/// traces far larger than RAM.
int StreamInfo(const std::string& path, CliFlags& flags) {
  auto pool = PoolFromFlags(flags);
  TraceReader reader(path, StreamOptionsFromFlags(flags, pool.get()));
  std::array<std::uint64_t, 4> count{};
  std::array<double, 4> bytes{};
  double min_arrival = 0, max_arrival = 0;
  std::uint64_t flows = 0;
  bool sorted = true;
  Time prev = 0;
  Coflow c;
  bool first = true;
  while (reader.Next(c)) {
    const auto cat = static_cast<std::size_t>(c.category());
    ++count[cat];
    bytes[cat] += c.total_bytes();
    flows += c.size();
    if (first) {
      min_arrival = max_arrival = c.arrival();
      first = false;
    } else {
      min_arrival = std::min(min_arrival, c.arrival());
      max_arrival = std::max(max_arrival, c.arrival());
      if (c.arrival() < prev) sorted = false;
    }
    prev = c.arrival();
  }
  const auto& st = reader.stats();
  double total_bytes = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    total_bytes += bytes[i];
    total += count[i];
  }
  std::printf("stream file: %s\n", path.c_str());
  std::printf("ports: %d\ncoflows: %llu\nflows: %llu\ntotal bytes: %.2f GB\n",
              reader.num_ports(), static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(flows), total_bytes / 1e9);
  std::printf("blocks: %llu (payload %.1f MB, file %.1f MB)\n",
              static_cast<unsigned long long>(st.blocks),
              st.payload_bytes / 1e6, st.file_bytes / 1e6);
  std::printf("arrivals: [%.3f s, %.3f s], %s\n", min_arrival, max_arrival,
              sorted ? "sorted" : "NOT sorted (run `sort` before replay)");
  TextTable table("Classification (Table 4 view)");
  table.SetHeader({"", "O2O", "O2M", "M2O", "M2M"});
  std::vector<std::string> row1 = {"Coflow%"}, row2 = {"Bytes%"};
  for (std::size_t i = 0; i < 4; ++i) {
    row1.push_back(TextTable::Fmt(
        total > 0 ? 100.0 * static_cast<double>(count[i]) / total : 0, 1));
    row2.push_back(TextTable::Fmt(
        total_bytes > 0 ? 100.0 * bytes[i] / total_bytes : 0, 3));
  }
  table.AddRow(row1);
  table.AddRow(row2);
  table.Print(std::cout);
  return 0;
}

int Info(CliFlags& flags) {
  const std::string path = flags.GetString("trace", "", "input trace file");
  if (!path.empty() && IsTraceStreamFile(path)) return StreamInfo(path, flags);
  const Trace trace = Load(flags);
  const Bandwidth b = Gbps(flags.GetDouble("bandwidth_gbps", 1, "link rate"));

  std::printf("ports: %d\ncoflows: %zu\ntotal bytes: %.2f GB\n",
              trace.num_ports, trace.coflows.size(),
              trace.total_bytes() / 1e9);
  std::printf("network idleness at %.0f Gbps: %.1f%%\n",
              b * 8 / 1e9, NetworkIdleness(trace, b) * 100);

  const auto breakdown = exp::ClassifyTrace(trace);
  TextTable table("Classification (Table 4 view)");
  table.SetHeader({"", "O2O", "O2M", "M2O", "M2M"});
  std::vector<std::string> row1 = {"Coflow%"}, row2 = {"Bytes%"};
  for (const auto& share : breakdown) {
    row1.push_back(TextTable::Fmt(share.coflow_fraction * 100, 1));
    row2.push_back(TextTable::Fmt(share.byte_fraction * 100, 3));
  }
  table.AddRow(row1);
  table.AddRow(row2);
  table.Print(std::cout);

  std::vector<double> sizes, widths;
  for (const Coflow& c : trace.coflows) {
    sizes.push_back(c.total_bytes());
    widths.push_back(static_cast<double>(c.size()));
  }
  std::printf("coflow bytes: %s\n",
              stats::ToString(stats::Summarize(sizes)).c_str());
  std::printf("coflow |C|  : %s\n",
              stats::ToString(stats::Summarize(widths)).c_str());
  return 0;
}

/// ±perturb jitter on one coflow's flows — the streaming counterpart of
/// PerturbFlowSizes (identical draw sequence when coflows pass through in
/// trace order, which default generation order is).
Coflow PerturbCoflow(Rng& rng, const Coflow& c, double fraction,
                     Bytes min_bytes) {
  std::vector<Flow> flows = c.flows();
  for (Flow& f : flows) {
    f.bytes = std::max(min_bytes,
                       f.bytes * (1.0 + rng.Uniform(-fraction, fraction)));
  }
  return Coflow(c.id(), c.arrival(), std::move(flows));
}

int Generate(CliFlags& flags) {
  const std::string stream_out = flags.GetString(
      "stream_out", "",
      "write a .sft stream directly (O(block) memory — use for "
      "million-coflow traces)");
  if (!stream_out.empty()) {
    SyntheticTraceConfig cfg;
    cfg.num_coflows = static_cast<int>(
        flags.GetInt("coflows", 526, "synthetic coflows"));
    cfg.num_ports =
        static_cast<PortId>(flags.GetInt("ports", 150, "fabric ports"));
    cfg.seed = static_cast<std::uint64_t>(
        flags.GetInt("seed", 20161212, "synthetic seed"));
    cfg.horizon = flags.GetDouble(
        "horizon", cfg.horizon * cfg.num_coflows / 526.0,
        "arrival horizon, seconds (default keeps the paper's density)");
    cfg.iid_arrivals = flags.GetBool(
        "iid_arrivals", false,
        "draw arrivals i.i.d. uniform (emission order is then NOT arrival "
        "order; sort before replay)");
    const double perturb =
        flags.GetDouble("perturb", 0.05, "size perturbation");
    TraceWriter writer(stream_out, cfg.num_ports,
                       StreamOptionsFromFlags(flags, nullptr));
    Rng perturb_rng(cfg.seed + 1);
    GenerateSyntheticTrace(cfg, [&](Coflow&& c) {
      writer.Append(perturb > 0
                        ? PerturbCoflow(perturb_rng, c, perturb, MB(1))
                        : c);
    });
    writer.Close();
    std::printf("wrote %llu coflows (%.1f MB payload, %.1f MB on disk) "
                "to %s\n",
                static_cast<unsigned long long>(writer.stats().coflows),
                writer.stats().payload_bytes / 1e6,
                writer.stats().file_bytes / 1e6, stream_out.c_str());
    return 0;
  }
  const Trace trace = Load(flags);
  const std::string out = flags.GetString("out", "", "output file");
  if (out.empty()) {
    std::cerr << "generate: --out=<file> or --stream_out=<file> required\n";
    return 2;
  }
  std::ofstream f(out);
  WriteCoflowBenchmark(f, trace);
  std::printf("wrote %zu coflows to %s\n", trace.coflows.size(),
              out.c_str());
  return 0;
}

int Convert(CliFlags& flags) {
  const std::string in = flags.GetString("in", "", "input trace (text/.sft)");
  const std::string out = flags.GetString("out", "", "output trace");
  if (in.empty() || out.empty()) {
    std::cerr << "convert: --in=<file> --out=<file> required\n";
    return 2;
  }
  auto pool = PoolFromFlags(flags);
  const TraceStreamOptions options = StreamOptionsFromFlags(flags, pool.get());
  if (IsTraceStreamFile(in)) {
    // Stream -> text, one coflow at a time (the text header needs the
    // coflow count, so the file must have been Close()d).
    TraceReader reader(in, options);
    if (!reader.size_hint().has_value()) {
      std::cerr << "convert: " << in << " was not closed (no coflow count); "
                << "re-write it first\n";
      return 2;
    }
    std::ofstream f(out);
    if (!f) throw std::runtime_error("cannot open " + out);
    WriteCoflowBenchmarkHeader(f, reader.num_ports(), *reader.size_hint());
    Coflow c;
    while (reader.Next(c)) WriteCoflowBenchmarkLine(f, c);
    f.flush();
    if (!f) throw std::runtime_error("failed writing " + out);
    std::printf("converted %llu coflows %s -> %s (text)\n",
                static_cast<unsigned long long>(reader.stats().coflows),
                in.c_str(), out.c_str());
  } else {
    const Trace trace = ParseCoflowBenchmarkFile(in);
    TraceStreamOptions wo = options;
    wo.pool = nullptr;
    WriteTraceStream(out, trace, wo);
    std::printf("converted %zu coflows %s -> %s (stream)\n",
                trace.coflows.size(), in.c_str(), out.c_str());
  }
  return 0;
}

int Sort(CliFlags& flags) {
  const std::string in = flags.GetString("in", "", "input stream file");
  const std::string out = flags.GetString("out", "", "output stream file");
  if (in.empty() || out.empty()) {
    std::cerr << "sort: --in=<file.sft> --out=<file.sft> required\n";
    return 2;
  }
  auto pool = PoolFromFlags(flags);
  ExtSortOptions options;
  options.stream = StreamOptionsFromFlags(flags, pool.get());
  options.run_payload_bytes = static_cast<std::size_t>(flags.GetInt(
                                  "run_mb", 64, "in-memory run budget, MB"))
                              << 20;
  options.fan_in = static_cast<std::size_t>(
      flags.GetInt("fan_in", 16, "streams merged per pass"));
  options.keep_runs =
      flags.GetBool("keep_runs", false, "keep spilled run files");
  const auto stats = ExternalSortTrace(in, out, options);
  std::printf(
      "sorted %llu coflows (%.1f MB payload) in %llu run(s), %llu merge "
      "pass(es)\n",
      static_cast<unsigned long long>(stats.coflows),
      stats.payload_bytes / 1e6, static_cast<unsigned long long>(stats.runs),
      static_cast<unsigned long long>(stats.merge_passes));
  std::printf("run phase %.2f s (%.1f MB/s), merge phase %.2f s (%.1f MB/s)\n",
              stats.run_seconds,
              MbPerSec(stats.payload_bytes, stats.run_seconds),
              stats.merge_seconds,
              MbPerSec(stats.payload_bytes, stats.merge_seconds));
  return 0;
}

int Cat(CliFlags& flags) {
  const std::string in = flags.GetString("in", "", "input stream file");
  if (in.empty()) {
    std::cerr << "cat: --in=<file.sft> required\n";
    return 2;
  }
  const auto limit = flags.GetInt("limit", 0, "max coflows to print (0=all)");
  auto pool = PoolFromFlags(flags);
  TraceReader reader(in, StreamOptionsFromFlags(flags, pool.get()));
  std::printf("coflow_id,arrival_s,category,flows,bytes\n");
  Coflow c;
  std::int64_t printed = 0;
  while (reader.Next(c)) {
    std::printf("%lld,%.6f,%s,%zu,%.0f\n", static_cast<long long>(c.id()),
                c.arrival(), ToString(c.category()), c.size(),
                c.total_bytes());
    if (limit > 0 && ++printed >= limit) break;
  }
  return 0;
}

int Bench(CliFlags& flags, int argc, char** argv) {
  auto manifest = obs::RunManifest::Begin("trace_io", argc, argv);
  const auto coflows = flags.GetInt("coflows", 20000, "coflows to generate");
  const auto ports = flags.GetInt("ports", 150, "fabric ports");
  const auto seed = flags.GetInt("seed", 20161212, "generator seed");
  const auto threads =
      flags.GetInt("threads", 1, "decode/prefetch threads (<=1 = sync)");
  const std::string dir =
      flags.GetString("dir", ".", "scratch directory for bench files");
  const bool keep = flags.GetBool("keep", false, "keep bench files");
  const std::string manifest_out = flags.GetString(
      "manifest_out", "trace_io.manifest.json", "run manifest (empty=skip)");
  // Ignored workload flag accepted for harness compatibility.
  flags.GetDouble("perturb", 0.05, "unused (harness compatibility)");

  std::unique_ptr<runtime::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<runtime::ThreadPool>(
      static_cast<int>(threads));
  const TraceStreamOptions options = StreamOptionsFromFlags(flags, pool.get());
  ExtSortOptions sort_options;
  sort_options.stream = options;
  sort_options.run_payload_bytes = static_cast<std::size_t>(flags.GetInt(
                                      "run_mb", 32, "in-memory run budget, MB"))
                                   << 20;
  sort_options.fan_in = static_cast<std::size_t>(
      flags.GetInt("fan_in", 16, "streams merged per pass"));

  const std::string unsorted = dir + "/trace_io_unsorted.sft";
  const std::string sorted = dir + "/trace_io_sorted.sft";

  SyntheticTraceConfig cfg;
  cfg.num_coflows = static_cast<int>(coflows);
  cfg.num_ports = static_cast<PortId>(ports);
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.horizon = 3600.0 * cfg.num_coflows / 526.0;  // paper arrival density
  cfg.iid_arrivals = true;  // unsorted emission — exercises the sorter

  // 1. Generate straight to disk (write path).
  auto begin = Clock::now();
  std::uint64_t payload_bytes = 0;
  {
    TraceStreamOptions wo = options;
    wo.pool = nullptr;
    TraceWriter writer(unsorted, cfg.num_ports, wo);
    GenerateSyntheticTrace(cfg, [&](Coflow&& c) { writer.Append(c); });
    writer.Close();
    payload_bytes = writer.stats().payload_bytes;
  }
  const double write_s = SecondsSince(begin);

  // 2. Full scan (read path, with --threads of decode look-ahead).
  begin = Clock::now();
  std::uint64_t read_coflows = 0;
  {
    TraceReader reader(unsorted, options);
    Coflow c;
    while (reader.Next(c)) ++read_coflows;
  }
  const double read_s = SecondsSince(begin);

  // 3. External sort (run generation + k-way merge).
  begin = Clock::now();
  const auto sort_stats = ExternalSortTrace(unsorted, sorted, sort_options);
  const double sort_s = SecondsSince(begin);

  // 4. Streaming verification: sorted order and conserved count.
  std::uint64_t verify_coflows = 0;
  bool is_sorted = true;
  {
    TraceReader reader(sorted, options);
    Coflow c;
    Time prev = -1;
    while (reader.Next(c)) {
      if (c.arrival() < prev) is_sorted = false;
      prev = c.arrival();
      ++verify_coflows;
    }
  }
  const bool ok = is_sorted && verify_coflows == read_coflows &&
                  read_coflows == static_cast<std::uint64_t>(coflows);

  const double write_mb_s = MbPerSec(payload_bytes, write_s);
  const double read_mb_s = MbPerSec(payload_bytes, read_s);
  const double sort_mb_s = MbPerSec(sort_stats.payload_bytes, sort_s);
  std::printf("trace I/O bench: %lld coflows, %.1f MB payload, codec %s, "
              "%lld thread(s)\n",
              static_cast<long long>(coflows), payload_bytes / 1e6,
              options.codec == StreamCodec::kDeflate ? "deflate" : "store",
              static_cast<long long>(threads));
  std::printf("  write: %6.2f s  %8.1f MB/s  %10.0f coflows/s\n", write_s,
              write_mb_s, write_s > 0 ? coflows / write_s : 0);
  std::printf("  read : %6.2f s  %8.1f MB/s  %10.0f coflows/s\n", read_s,
              read_mb_s, read_s > 0 ? coflows / read_s : 0);
  std::printf("  sort : %6.2f s  %8.1f MB/s  (%llu runs, %llu passes)\n",
              sort_s, sort_mb_s,
              static_cast<unsigned long long>(sort_stats.runs),
              static_cast<unsigned long long>(sort_stats.merge_passes));
  std::printf("  %s (%llu coflows through sort)\n",
              ok ? "sorted OK" : "VERIFY FAILED",
              static_cast<unsigned long long>(verify_coflows));

  if (!keep) {
    std::remove(unsorted.c_str());
    std::remove(sorted.c_str());
  }
  if (!manifest_out.empty()) {
    manifest.seed = cfg.seed;
    manifest.threads = static_cast<int>(threads);
    manifest.extra["coflows"] = static_cast<double>(coflows);
    manifest.extra["ports"] = static_cast<double>(ports);
    manifest.extra["trace.payload_mb"] = payload_bytes / 1e6;
    manifest.extra["trace.write_mb_s"] = write_mb_s;
    manifest.extra["trace.read_mb_s"] = read_mb_s;
    manifest.extra["trace.sort_mb_s"] = sort_mb_s;
    manifest.extra["trace.sort_runs"] =
        static_cast<double>(sort_stats.runs);
    manifest.Finalize();
    manifest.WriteFile(manifest_out);
    std::printf("wrote run manifest to %s\n", manifest_out.c_str());
  }
  return ok ? 0 : 1;
}

int Scale(CliFlags& flags) {
  const Trace trace = Load(flags);
  const Bandwidth b = Gbps(flags.GetDouble("bandwidth_gbps", 1, "link rate"));
  const double target = flags.GetDouble("idleness", 0.4, "target idleness");
  const std::string out = flags.GetString("out", "", "output file");
  const auto scaled = ScaleTraceToIdleness(trace, b, target);
  std::printf("byte factor %.4f -> idleness %.1f%%\n", scaled.factor,
              scaled.achieved_idleness * 100);
  if (!out.empty()) {
    std::ofstream f(out);
    WriteCoflowBenchmark(f, scaled.trace);
    std::printf("wrote scaled trace to %s\n", out.c_str());
  }
  return 0;
}

int Bounds(CliFlags& flags) {
  const Trace trace = Load(flags);
  const Bandwidth b = Gbps(flags.GetDouble("bandwidth_gbps", 1, "link rate"));
  const Time delta =
      Millis(flags.GetDouble("delta_ms", 10, "reconfiguration delay"));
  std::printf("coflow_id,category,flows,bytes,tpl_seconds,tcl_seconds\n");
  for (const Coflow& c : trace.coflows) {
    std::printf("%lld,%s,%zu,%.0f,%.6f,%.6f\n",
                static_cast<long long>(c.id()), ToString(c.category()),
                c.size(), c.total_bytes(), PacketLowerBound(c, b),
                CircuitLowerBound(c, b, delta));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  if (flags.GetBool("version", false, "print build/version info and exit")) {
    std::printf("%s\n", sunflow::VersionString("sunflow_trace_tool").c_str());
    return 0;
  }
  const auto& positional = flags.positional();
  const std::string cmd = positional.empty() ? "info" : positional[0];
  try {
    if (cmd == "info") return Info(flags);
    if (cmd == "generate") return Generate(flags);
    if (cmd == "convert") return Convert(flags);
    if (cmd == "sort") return Sort(flags);
    if (cmd == "cat") return Cat(flags);
    if (cmd == "bench") return Bench(flags, argc, argv);
    if (cmd == "scale") return Scale(flags);
    if (cmd == "bounds") return Bounds(flags);
    std::cerr << "unknown subcommand '" << cmd
              << "' (expected info|generate|convert|sort|cat|bench|scale|"
                 "bounds)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
