// sunflow_trace_tool — inspect, generate, scale and convert coflow traces.
//
// Subcommands (first positional argument):
//   info      print fabric size, classification (Table 4 view), idleness,
//             size distributions
//   generate  write a synthetic FB-like trace in coflow-benchmark format
//   scale     rescale a trace's bytes to a target network idleness
//   bounds    per-coflow TpL / TcL listing (CSV on stdout)
//
// Examples:
//   sunflow_trace_tool info --trace=FB2010-1Hr-150-0.txt
//   sunflow_trace_tool generate --coflows=526 --out=/tmp/synth.txt
//   sunflow_trace_tool scale --trace=... --idleness=0.4 --out=/tmp/scaled.txt
//   sunflow_trace_tool bounds --trace=... --bandwidth_gbps=10
#include <fstream>
#include <iostream>

#include "common/cli.h"
#include "common/version.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/classify.h"
#include "trace/bounds.h"
#include "trace/generator.h"
#include "trace/idleness.h"
#include "trace/parser.h"

using namespace sunflow;

namespace {

Trace Load(CliFlags& flags) {
  const std::string path = flags.GetString("trace", "", "input trace file");
  if (!path.empty()) return ParseCoflowBenchmarkFile(path);
  SyntheticTraceConfig cfg;
  cfg.num_coflows =
      static_cast<int>(flags.GetInt("coflows", 526, "synthetic coflows"));
  cfg.num_ports =
      static_cast<PortId>(flags.GetInt("ports", 150, "fabric ports"));
  cfg.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", 20161212, "synthetic seed"));
  Trace t = GenerateSyntheticTrace(cfg);
  const double perturb = flags.GetDouble("perturb", 0.05, "size perturbation");
  if (perturb > 0) t = PerturbFlowSizes(t, perturb, MB(1), cfg.seed + 1);
  return t;
}

int Info(CliFlags& flags) {
  const Trace trace = Load(flags);
  const Bandwidth b = Gbps(flags.GetDouble("bandwidth_gbps", 1, "link rate"));

  std::printf("ports: %d\ncoflows: %zu\ntotal bytes: %.2f GB\n",
              trace.num_ports, trace.coflows.size(),
              trace.total_bytes() / 1e9);
  std::printf("network idleness at %.0f Gbps: %.1f%%\n",
              b * 8 / 1e9, NetworkIdleness(trace, b) * 100);

  const auto breakdown = exp::ClassifyTrace(trace);
  TextTable table("Classification (Table 4 view)");
  table.SetHeader({"", "O2O", "O2M", "M2O", "M2M"});
  std::vector<std::string> row1 = {"Coflow%"}, row2 = {"Bytes%"};
  for (const auto& share : breakdown) {
    row1.push_back(TextTable::Fmt(share.coflow_fraction * 100, 1));
    row2.push_back(TextTable::Fmt(share.byte_fraction * 100, 3));
  }
  table.AddRow(row1);
  table.AddRow(row2);
  table.Print(std::cout);

  std::vector<double> sizes, widths;
  for (const Coflow& c : trace.coflows) {
    sizes.push_back(c.total_bytes());
    widths.push_back(static_cast<double>(c.size()));
  }
  std::printf("coflow bytes: %s\n",
              stats::ToString(stats::Summarize(sizes)).c_str());
  std::printf("coflow |C|  : %s\n",
              stats::ToString(stats::Summarize(widths)).c_str());
  return 0;
}

int Generate(CliFlags& flags) {
  const Trace trace = Load(flags);
  const std::string out = flags.GetString("out", "", "output file");
  if (out.empty()) {
    std::cerr << "generate: --out=<file> required\n";
    return 2;
  }
  std::ofstream f(out);
  WriteCoflowBenchmark(f, trace);
  std::printf("wrote %zu coflows to %s\n", trace.coflows.size(),
              out.c_str());
  return 0;
}

int Scale(CliFlags& flags) {
  const Trace trace = Load(flags);
  const Bandwidth b = Gbps(flags.GetDouble("bandwidth_gbps", 1, "link rate"));
  const double target = flags.GetDouble("idleness", 0.4, "target idleness");
  const std::string out = flags.GetString("out", "", "output file");
  const auto scaled = ScaleTraceToIdleness(trace, b, target);
  std::printf("byte factor %.4f -> idleness %.1f%%\n", scaled.factor,
              scaled.achieved_idleness * 100);
  if (!out.empty()) {
    std::ofstream f(out);
    WriteCoflowBenchmark(f, scaled.trace);
    std::printf("wrote scaled trace to %s\n", out.c_str());
  }
  return 0;
}

int Bounds(CliFlags& flags) {
  const Trace trace = Load(flags);
  const Bandwidth b = Gbps(flags.GetDouble("bandwidth_gbps", 1, "link rate"));
  const Time delta =
      Millis(flags.GetDouble("delta_ms", 10, "reconfiguration delay"));
  std::printf("coflow_id,category,flows,bytes,tpl_seconds,tcl_seconds\n");
  for (const Coflow& c : trace.coflows) {
    std::printf("%lld,%s,%zu,%.0f,%.6f,%.6f\n",
                static_cast<long long>(c.id()), ToString(c.category()),
                c.size(), c.total_bytes(), PacketLowerBound(c, b),
                CircuitLowerBound(c, b, delta));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  if (flags.GetBool("version", false, "print build/version info and exit")) {
    std::printf("%s\n", sunflow::VersionString("sunflow_trace_tool").c_str());
    return 0;
  }
  const auto& positional = flags.positional();
  const std::string cmd = positional.empty() ? "info" : positional[0];
  try {
    if (cmd == "info") return Info(flags);
    if (cmd == "generate") return Generate(flags);
    if (cmd == "scale") return Scale(flags);
    if (cmd == "bounds") return Bounds(flags);
    std::cerr << "unknown subcommand '" << cmd
              << "' (expected info|generate|scale|bounds)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
