file(REMOVE_RECURSE
  "CMakeFiles/sunflow_matching.dir/bipartite.cc.o"
  "CMakeFiles/sunflow_matching.dir/bipartite.cc.o.d"
  "CMakeFiles/sunflow_matching.dir/decomposition.cc.o"
  "CMakeFiles/sunflow_matching.dir/decomposition.cc.o.d"
  "libsunflow_matching.a"
  "libsunflow_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
