# Empty compiler generated dependencies file for sunflow_matching.
# This may be replaced when dependencies are built.
