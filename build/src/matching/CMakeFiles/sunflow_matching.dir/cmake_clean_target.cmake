file(REMOVE_RECURSE
  "libsunflow_matching.a"
)
