# Empty compiler generated dependencies file for sunflow_viz.
# This may be replaced when dependencies are built.
