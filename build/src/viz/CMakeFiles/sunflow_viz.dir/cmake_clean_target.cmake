file(REMOVE_RECURSE
  "libsunflow_viz.a"
)
