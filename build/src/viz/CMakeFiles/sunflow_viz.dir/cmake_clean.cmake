file(REMOVE_RECURSE
  "CMakeFiles/sunflow_viz.dir/timeline.cc.o"
  "CMakeFiles/sunflow_viz.dir/timeline.cc.o.d"
  "libsunflow_viz.a"
  "libsunflow_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
