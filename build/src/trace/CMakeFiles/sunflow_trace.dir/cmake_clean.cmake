file(REMOVE_RECURSE
  "CMakeFiles/sunflow_trace.dir/bounds.cc.o"
  "CMakeFiles/sunflow_trace.dir/bounds.cc.o.d"
  "CMakeFiles/sunflow_trace.dir/coflow.cc.o"
  "CMakeFiles/sunflow_trace.dir/coflow.cc.o.d"
  "CMakeFiles/sunflow_trace.dir/demand_matrix.cc.o"
  "CMakeFiles/sunflow_trace.dir/demand_matrix.cc.o.d"
  "CMakeFiles/sunflow_trace.dir/generator.cc.o"
  "CMakeFiles/sunflow_trace.dir/generator.cc.o.d"
  "CMakeFiles/sunflow_trace.dir/idleness.cc.o"
  "CMakeFiles/sunflow_trace.dir/idleness.cc.o.d"
  "CMakeFiles/sunflow_trace.dir/parser.cc.o"
  "CMakeFiles/sunflow_trace.dir/parser.cc.o.d"
  "libsunflow_trace.a"
  "libsunflow_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
