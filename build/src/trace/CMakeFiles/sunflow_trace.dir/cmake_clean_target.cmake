file(REMOVE_RECURSE
  "libsunflow_trace.a"
)
