# Empty compiler generated dependencies file for sunflow_trace.
# This may be replaced when dependencies are built.
