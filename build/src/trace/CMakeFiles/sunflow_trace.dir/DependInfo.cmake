
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/bounds.cc" "src/trace/CMakeFiles/sunflow_trace.dir/bounds.cc.o" "gcc" "src/trace/CMakeFiles/sunflow_trace.dir/bounds.cc.o.d"
  "/root/repo/src/trace/coflow.cc" "src/trace/CMakeFiles/sunflow_trace.dir/coflow.cc.o" "gcc" "src/trace/CMakeFiles/sunflow_trace.dir/coflow.cc.o.d"
  "/root/repo/src/trace/demand_matrix.cc" "src/trace/CMakeFiles/sunflow_trace.dir/demand_matrix.cc.o" "gcc" "src/trace/CMakeFiles/sunflow_trace.dir/demand_matrix.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/trace/CMakeFiles/sunflow_trace.dir/generator.cc.o" "gcc" "src/trace/CMakeFiles/sunflow_trace.dir/generator.cc.o.d"
  "/root/repo/src/trace/idleness.cc" "src/trace/CMakeFiles/sunflow_trace.dir/idleness.cc.o" "gcc" "src/trace/CMakeFiles/sunflow_trace.dir/idleness.cc.o.d"
  "/root/repo/src/trace/parser.cc" "src/trace/CMakeFiles/sunflow_trace.dir/parser.cc.o" "gcc" "src/trace/CMakeFiles/sunflow_trace.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sunflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
