# Empty compiler generated dependencies file for sunflow_sim.
# This may be replaced when dependencies are built.
