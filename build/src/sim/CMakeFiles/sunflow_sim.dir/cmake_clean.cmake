file(REMOVE_RECURSE
  "CMakeFiles/sunflow_sim.dir/circuit_replay.cc.o"
  "CMakeFiles/sunflow_sim.dir/circuit_replay.cc.o.d"
  "CMakeFiles/sunflow_sim.dir/dag_replay.cc.o"
  "CMakeFiles/sunflow_sim.dir/dag_replay.cc.o.d"
  "CMakeFiles/sunflow_sim.dir/hybrid_replay.cc.o"
  "CMakeFiles/sunflow_sim.dir/hybrid_replay.cc.o.d"
  "CMakeFiles/sunflow_sim.dir/rotor_replay.cc.o"
  "CMakeFiles/sunflow_sim.dir/rotor_replay.cc.o.d"
  "CMakeFiles/sunflow_sim.dir/starvation_replay.cc.o"
  "CMakeFiles/sunflow_sim.dir/starvation_replay.cc.o.d"
  "libsunflow_sim.a"
  "libsunflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
