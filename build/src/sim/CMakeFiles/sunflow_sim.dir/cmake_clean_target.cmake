file(REMOVE_RECURSE
  "libsunflow_sim.a"
)
