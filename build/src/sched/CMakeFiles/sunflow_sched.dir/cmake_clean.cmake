file(REMOVE_RECURSE
  "CMakeFiles/sunflow_sched.dir/edmonds.cc.o"
  "CMakeFiles/sunflow_sched.dir/edmonds.cc.o.d"
  "CMakeFiles/sunflow_sched.dir/executor.cc.o"
  "CMakeFiles/sunflow_sched.dir/executor.cc.o.d"
  "CMakeFiles/sunflow_sched.dir/optimal.cc.o"
  "CMakeFiles/sunflow_sched.dir/optimal.cc.o.d"
  "CMakeFiles/sunflow_sched.dir/solstice.cc.o"
  "CMakeFiles/sunflow_sched.dir/solstice.cc.o.d"
  "CMakeFiles/sunflow_sched.dir/tms.cc.o"
  "CMakeFiles/sunflow_sched.dir/tms.cc.o.d"
  "libsunflow_sched.a"
  "libsunflow_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
