# Empty compiler generated dependencies file for sunflow_sched.
# This may be replaced when dependencies are built.
