
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/edmonds.cc" "src/sched/CMakeFiles/sunflow_sched.dir/edmonds.cc.o" "gcc" "src/sched/CMakeFiles/sunflow_sched.dir/edmonds.cc.o.d"
  "/root/repo/src/sched/executor.cc" "src/sched/CMakeFiles/sunflow_sched.dir/executor.cc.o" "gcc" "src/sched/CMakeFiles/sunflow_sched.dir/executor.cc.o.d"
  "/root/repo/src/sched/optimal.cc" "src/sched/CMakeFiles/sunflow_sched.dir/optimal.cc.o" "gcc" "src/sched/CMakeFiles/sunflow_sched.dir/optimal.cc.o.d"
  "/root/repo/src/sched/solstice.cc" "src/sched/CMakeFiles/sunflow_sched.dir/solstice.cc.o" "gcc" "src/sched/CMakeFiles/sunflow_sched.dir/solstice.cc.o.d"
  "/root/repo/src/sched/tms.cc" "src/sched/CMakeFiles/sunflow_sched.dir/tms.cc.o" "gcc" "src/sched/CMakeFiles/sunflow_sched.dir/tms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/sunflow_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sunflow_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
