file(REMOVE_RECURSE
  "libsunflow_sched.a"
)
