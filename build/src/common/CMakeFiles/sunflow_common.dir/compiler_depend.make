# Empty compiler generated dependencies file for sunflow_common.
# This may be replaced when dependencies are built.
