file(REMOVE_RECURSE
  "CMakeFiles/sunflow_common.dir/cli.cc.o"
  "CMakeFiles/sunflow_common.dir/cli.cc.o.d"
  "CMakeFiles/sunflow_common.dir/intervals.cc.o"
  "CMakeFiles/sunflow_common.dir/intervals.cc.o.d"
  "CMakeFiles/sunflow_common.dir/rng.cc.o"
  "CMakeFiles/sunflow_common.dir/rng.cc.o.d"
  "CMakeFiles/sunflow_common.dir/stats.cc.o"
  "CMakeFiles/sunflow_common.dir/stats.cc.o.d"
  "CMakeFiles/sunflow_common.dir/table.cc.o"
  "CMakeFiles/sunflow_common.dir/table.cc.o.d"
  "libsunflow_common.a"
  "libsunflow_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
