file(REMOVE_RECURSE
  "libsunflow_common.a"
)
