file(REMOVE_RECURSE
  "CMakeFiles/sunflow_exp.dir/classify.cc.o"
  "CMakeFiles/sunflow_exp.dir/classify.cc.o.d"
  "CMakeFiles/sunflow_exp.dir/csv_export.cc.o"
  "CMakeFiles/sunflow_exp.dir/csv_export.cc.o.d"
  "CMakeFiles/sunflow_exp.dir/inter_runner.cc.o"
  "CMakeFiles/sunflow_exp.dir/inter_runner.cc.o.d"
  "CMakeFiles/sunflow_exp.dir/intra_runner.cc.o"
  "CMakeFiles/sunflow_exp.dir/intra_runner.cc.o.d"
  "libsunflow_exp.a"
  "libsunflow_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
