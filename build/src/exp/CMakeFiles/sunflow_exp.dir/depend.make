# Empty dependencies file for sunflow_exp.
# This may be replaced when dependencies are built.
