file(REMOVE_RECURSE
  "libsunflow_exp.a"
)
