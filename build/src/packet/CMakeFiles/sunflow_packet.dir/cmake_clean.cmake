file(REMOVE_RECURSE
  "CMakeFiles/sunflow_packet.dir/aalo.cc.o"
  "CMakeFiles/sunflow_packet.dir/aalo.cc.o.d"
  "CMakeFiles/sunflow_packet.dir/fabric.cc.o"
  "CMakeFiles/sunflow_packet.dir/fabric.cc.o.d"
  "CMakeFiles/sunflow_packet.dir/fair_share.cc.o"
  "CMakeFiles/sunflow_packet.dir/fair_share.cc.o.d"
  "CMakeFiles/sunflow_packet.dir/replay.cc.o"
  "CMakeFiles/sunflow_packet.dir/replay.cc.o.d"
  "CMakeFiles/sunflow_packet.dir/varys.cc.o"
  "CMakeFiles/sunflow_packet.dir/varys.cc.o.d"
  "libsunflow_packet.a"
  "libsunflow_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
