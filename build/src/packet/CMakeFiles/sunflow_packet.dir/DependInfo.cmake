
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/aalo.cc" "src/packet/CMakeFiles/sunflow_packet.dir/aalo.cc.o" "gcc" "src/packet/CMakeFiles/sunflow_packet.dir/aalo.cc.o.d"
  "/root/repo/src/packet/fabric.cc" "src/packet/CMakeFiles/sunflow_packet.dir/fabric.cc.o" "gcc" "src/packet/CMakeFiles/sunflow_packet.dir/fabric.cc.o.d"
  "/root/repo/src/packet/fair_share.cc" "src/packet/CMakeFiles/sunflow_packet.dir/fair_share.cc.o" "gcc" "src/packet/CMakeFiles/sunflow_packet.dir/fair_share.cc.o.d"
  "/root/repo/src/packet/replay.cc" "src/packet/CMakeFiles/sunflow_packet.dir/replay.cc.o" "gcc" "src/packet/CMakeFiles/sunflow_packet.dir/replay.cc.o.d"
  "/root/repo/src/packet/varys.cc" "src/packet/CMakeFiles/sunflow_packet.dir/varys.cc.o" "gcc" "src/packet/CMakeFiles/sunflow_packet.dir/varys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sunflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sunflow_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
