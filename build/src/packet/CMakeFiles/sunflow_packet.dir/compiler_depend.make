# Empty compiler generated dependencies file for sunflow_packet.
# This may be replaced when dependencies are built.
