file(REMOVE_RECURSE
  "libsunflow_packet.a"
)
