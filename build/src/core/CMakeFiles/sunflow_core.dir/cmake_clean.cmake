file(REMOVE_RECURSE
  "CMakeFiles/sunflow_core.dir/admission.cc.o"
  "CMakeFiles/sunflow_core.dir/admission.cc.o.d"
  "CMakeFiles/sunflow_core.dir/components.cc.o"
  "CMakeFiles/sunflow_core.dir/components.cc.o.d"
  "CMakeFiles/sunflow_core.dir/policy.cc.o"
  "CMakeFiles/sunflow_core.dir/policy.cc.o.d"
  "CMakeFiles/sunflow_core.dir/prt.cc.o"
  "CMakeFiles/sunflow_core.dir/prt.cc.o.d"
  "CMakeFiles/sunflow_core.dir/schedule_io.cc.o"
  "CMakeFiles/sunflow_core.dir/schedule_io.cc.o.d"
  "CMakeFiles/sunflow_core.dir/starvation.cc.o"
  "CMakeFiles/sunflow_core.dir/starvation.cc.o.d"
  "CMakeFiles/sunflow_core.dir/sunflow.cc.o"
  "CMakeFiles/sunflow_core.dir/sunflow.cc.o.d"
  "libsunflow_core.a"
  "libsunflow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
