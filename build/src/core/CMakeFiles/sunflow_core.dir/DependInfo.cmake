
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cc" "src/core/CMakeFiles/sunflow_core.dir/admission.cc.o" "gcc" "src/core/CMakeFiles/sunflow_core.dir/admission.cc.o.d"
  "/root/repo/src/core/components.cc" "src/core/CMakeFiles/sunflow_core.dir/components.cc.o" "gcc" "src/core/CMakeFiles/sunflow_core.dir/components.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/sunflow_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/sunflow_core.dir/policy.cc.o.d"
  "/root/repo/src/core/prt.cc" "src/core/CMakeFiles/sunflow_core.dir/prt.cc.o" "gcc" "src/core/CMakeFiles/sunflow_core.dir/prt.cc.o.d"
  "/root/repo/src/core/schedule_io.cc" "src/core/CMakeFiles/sunflow_core.dir/schedule_io.cc.o" "gcc" "src/core/CMakeFiles/sunflow_core.dir/schedule_io.cc.o.d"
  "/root/repo/src/core/starvation.cc" "src/core/CMakeFiles/sunflow_core.dir/starvation.cc.o" "gcc" "src/core/CMakeFiles/sunflow_core.dir/starvation.cc.o.d"
  "/root/repo/src/core/sunflow.cc" "src/core/CMakeFiles/sunflow_core.dir/sunflow.cc.o" "gcc" "src/core/CMakeFiles/sunflow_core.dir/sunflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sunflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sunflow_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
