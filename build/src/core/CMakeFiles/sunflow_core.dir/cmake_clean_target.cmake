file(REMOVE_RECURSE
  "libsunflow_core.a"
)
