# Empty dependencies file for sunflow_core.
# This may be replaced when dependencies are built.
