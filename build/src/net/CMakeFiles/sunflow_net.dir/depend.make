# Empty dependencies file for sunflow_net.
# This may be replaced when dependencies are built.
