
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/driver.cc" "src/net/CMakeFiles/sunflow_net.dir/driver.cc.o" "gcc" "src/net/CMakeFiles/sunflow_net.dir/driver.cc.o.d"
  "/root/repo/src/net/ocs.cc" "src/net/CMakeFiles/sunflow_net.dir/ocs.cc.o" "gcc" "src/net/CMakeFiles/sunflow_net.dir/ocs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sunflow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sunflow_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
