file(REMOVE_RECURSE
  "CMakeFiles/sunflow_net.dir/driver.cc.o"
  "CMakeFiles/sunflow_net.dir/driver.cc.o.d"
  "CMakeFiles/sunflow_net.dir/ocs.cc.o"
  "CMakeFiles/sunflow_net.dir/ocs.cc.o.d"
  "libsunflow_net.a"
  "libsunflow_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
