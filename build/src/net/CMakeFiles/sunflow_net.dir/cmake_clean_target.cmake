file(REMOVE_RECURSE
  "libsunflow_net.a"
)
