# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/prt_test[1]_include.cmake")
include("/root/repo/build/tests/sunflow_intra_test[1]_include.cmake")
include("/root/repo/build/tests/sunflow_inter_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/packet_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/starvation_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/dag_hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/lemma_proof_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/rotor_viz_test[1]_include.cmake")
include("/root/repo/build/tests/optimal_test[1]_include.cmake")
