file(REMOVE_RECURSE
  "CMakeFiles/sunflow_intra_test.dir/sunflow_intra_test.cc.o"
  "CMakeFiles/sunflow_intra_test.dir/sunflow_intra_test.cc.o.d"
  "sunflow_intra_test"
  "sunflow_intra_test.pdb"
  "sunflow_intra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_intra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
