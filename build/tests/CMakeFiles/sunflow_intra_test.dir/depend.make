# Empty dependencies file for sunflow_intra_test.
# This may be replaced when dependencies are built.
