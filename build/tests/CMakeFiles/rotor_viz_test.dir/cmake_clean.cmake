file(REMOVE_RECURSE
  "CMakeFiles/rotor_viz_test.dir/rotor_viz_test.cc.o"
  "CMakeFiles/rotor_viz_test.dir/rotor_viz_test.cc.o.d"
  "rotor_viz_test"
  "rotor_viz_test.pdb"
  "rotor_viz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotor_viz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
