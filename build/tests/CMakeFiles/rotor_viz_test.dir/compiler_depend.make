# Empty compiler generated dependencies file for rotor_viz_test.
# This may be replaced when dependencies are built.
