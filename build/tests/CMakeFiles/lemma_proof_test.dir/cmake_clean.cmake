file(REMOVE_RECURSE
  "CMakeFiles/lemma_proof_test.dir/lemma_proof_test.cc.o"
  "CMakeFiles/lemma_proof_test.dir/lemma_proof_test.cc.o.d"
  "lemma_proof_test"
  "lemma_proof_test.pdb"
  "lemma_proof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma_proof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
