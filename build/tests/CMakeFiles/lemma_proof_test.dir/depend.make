# Empty dependencies file for lemma_proof_test.
# This may be replaced when dependencies are built.
