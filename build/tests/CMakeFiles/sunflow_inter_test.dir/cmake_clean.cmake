file(REMOVE_RECURSE
  "CMakeFiles/sunflow_inter_test.dir/sunflow_inter_test.cc.o"
  "CMakeFiles/sunflow_inter_test.dir/sunflow_inter_test.cc.o.d"
  "sunflow_inter_test"
  "sunflow_inter_test.pdb"
  "sunflow_inter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_inter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
