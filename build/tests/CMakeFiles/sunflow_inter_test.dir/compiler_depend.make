# Empty compiler generated dependencies file for sunflow_inter_test.
# This may be replaced when dependencies are built.
