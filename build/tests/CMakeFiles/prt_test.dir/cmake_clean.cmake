file(REMOVE_RECURSE
  "CMakeFiles/prt_test.dir/prt_test.cc.o"
  "CMakeFiles/prt_test.dir/prt_test.cc.o.d"
  "prt_test"
  "prt_test.pdb"
  "prt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
