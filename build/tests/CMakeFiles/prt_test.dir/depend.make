# Empty dependencies file for prt_test.
# This may be replaced when dependencies are built.
