# Empty dependencies file for dag_hybrid_test.
# This may be replaced when dependencies are built.
