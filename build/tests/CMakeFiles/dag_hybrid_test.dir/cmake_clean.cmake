file(REMOVE_RECURSE
  "CMakeFiles/dag_hybrid_test.dir/dag_hybrid_test.cc.o"
  "CMakeFiles/dag_hybrid_test.dir/dag_hybrid_test.cc.o.d"
  "dag_hybrid_test"
  "dag_hybrid_test.pdb"
  "dag_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
