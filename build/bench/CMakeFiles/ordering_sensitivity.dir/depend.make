# Empty dependencies file for ordering_sensitivity.
# This may be replaced when dependencies are built.
