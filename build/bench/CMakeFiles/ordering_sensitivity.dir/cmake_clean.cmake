file(REMOVE_RECURSE
  "CMakeFiles/ordering_sensitivity.dir/ordering_sensitivity.cc.o"
  "CMakeFiles/ordering_sensitivity.dir/ordering_sensitivity.cc.o.d"
  "ordering_sensitivity"
  "ordering_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
