file(REMOVE_RECURSE
  "CMakeFiles/fig7_vs_tpl.dir/fig7_vs_tpl.cc.o"
  "CMakeFiles/fig7_vs_tpl.dir/fig7_vs_tpl.cc.o.d"
  "fig7_vs_tpl"
  "fig7_vs_tpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vs_tpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
