# Empty compiler generated dependencies file for fig7_vs_tpl.
# This may be replaced when dependencies are built.
