file(REMOVE_RECURSE
  "CMakeFiles/hybrid_offload.dir/hybrid_offload.cc.o"
  "CMakeFiles/hybrid_offload.dir/hybrid_offload.cc.o.d"
  "hybrid_offload"
  "hybrid_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
