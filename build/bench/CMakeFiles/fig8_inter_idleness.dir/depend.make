# Empty dependencies file for fig8_inter_idleness.
# This may be replaced when dependencies are built.
