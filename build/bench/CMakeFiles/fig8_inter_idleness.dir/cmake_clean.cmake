file(REMOVE_RECURSE
  "CMakeFiles/fig8_inter_idleness.dir/fig8_inter_idleness.cc.o"
  "CMakeFiles/fig8_inter_idleness.dir/fig8_inter_idleness.cc.o.d"
  "fig8_inter_idleness"
  "fig8_inter_idleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_inter_idleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
