file(REMOVE_RECURSE
  "CMakeFiles/fig5_switching.dir/fig5_switching.cc.o"
  "CMakeFiles/fig5_switching.dir/fig5_switching.cc.o.d"
  "fig5_switching"
  "fig5_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
