# Empty dependencies file for fig5_switching.
# This may be replaced when dependencies are built.
