file(REMOVE_RECURSE
  "CMakeFiles/fig10_delta_inter.dir/fig10_delta_inter.cc.o"
  "CMakeFiles/fig10_delta_inter.dir/fig10_delta_inter.cc.o.d"
  "fig10_delta_inter"
  "fig10_delta_inter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_delta_inter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
