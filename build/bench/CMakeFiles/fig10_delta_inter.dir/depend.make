# Empty dependencies file for fig10_delta_inter.
# This may be replaced when dependencies are built.
