# Empty dependencies file for fig4_m2m_cdf.
# This may be replaced when dependencies are built.
