file(REMOVE_RECURSE
  "CMakeFiles/fig9_cct_diff.dir/fig9_cct_diff.cc.o"
  "CMakeFiles/fig9_cct_diff.dir/fig9_cct_diff.cc.o.d"
  "fig9_cct_diff"
  "fig9_cct_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cct_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
