# Empty compiler generated dependencies file for fig9_cct_diff.
# This may be replaced when dependencies are built.
