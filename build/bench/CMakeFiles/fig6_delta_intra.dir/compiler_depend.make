# Empty compiler generated dependencies file for fig6_delta_intra.
# This may be replaced when dependencies are built.
