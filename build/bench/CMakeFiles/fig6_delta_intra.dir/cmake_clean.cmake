file(REMOVE_RECURSE
  "CMakeFiles/fig6_delta_intra.dir/fig6_delta_intra.cc.o"
  "CMakeFiles/fig6_delta_intra.dir/fig6_delta_intra.cc.o.d"
  "fig6_delta_intra"
  "fig6_delta_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_delta_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
