file(REMOVE_RECURSE
  "CMakeFiles/ablation_allstop.dir/ablation_allstop.cc.o"
  "CMakeFiles/ablation_allstop.dir/ablation_allstop.cc.o.d"
  "ablation_allstop"
  "ablation_allstop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allstop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
