# Empty dependencies file for ablation_allstop.
# This may be replaced when dependencies are built.
