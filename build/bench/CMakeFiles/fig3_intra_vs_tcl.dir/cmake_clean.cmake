file(REMOVE_RECURSE
  "CMakeFiles/fig3_intra_vs_tcl.dir/fig3_intra_vs_tcl.cc.o"
  "CMakeFiles/fig3_intra_vs_tcl.dir/fig3_intra_vs_tcl.cc.o.d"
  "fig3_intra_vs_tcl"
  "fig3_intra_vs_tcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_intra_vs_tcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
