# Empty compiler generated dependencies file for fig3_intra_vs_tcl.
# This may be replaced when dependencies are built.
