file(REMOVE_RECURSE
  "CMakeFiles/table4_traffic.dir/table4_traffic.cc.o"
  "CMakeFiles/table4_traffic.dir/table4_traffic.cc.o.d"
  "table4_traffic"
  "table4_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
