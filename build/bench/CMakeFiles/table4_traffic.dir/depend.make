# Empty dependencies file for table4_traffic.
# This may be replaced when dependencies are built.
