
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/trace_tool.cc" "tools/CMakeFiles/sunflow_trace_tool.dir/trace_tool.cc.o" "gcc" "tools/CMakeFiles/sunflow_trace_tool.dir/trace_tool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/sunflow_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sunflow_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sunflow_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/sunflow_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sunflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sunflow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/sunflow_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
