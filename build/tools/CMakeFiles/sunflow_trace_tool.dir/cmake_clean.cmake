file(REMOVE_RECURSE
  "CMakeFiles/sunflow_trace_tool.dir/trace_tool.cc.o"
  "CMakeFiles/sunflow_trace_tool.dir/trace_tool.cc.o.d"
  "sunflow_trace_tool"
  "sunflow_trace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunflow_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
