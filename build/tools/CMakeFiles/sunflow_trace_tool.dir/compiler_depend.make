# Empty compiler generated dependencies file for sunflow_trace_tool.
# This may be replaced when dependencies are built.
