# Empty dependencies file for priority_tiers.
# This may be replaced when dependencies are built.
