file(REMOVE_RECURSE
  "CMakeFiles/multistage_job.dir/multistage_job.cpp.o"
  "CMakeFiles/multistage_job.dir/multistage_job.cpp.o.d"
  "multistage_job"
  "multistage_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistage_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
