# Empty dependencies file for multistage_job.
# This may be replaced when dependencies are built.
