file(REMOVE_RECURSE
  "CMakeFiles/cluster_replay.dir/cluster_replay.cpp.o"
  "CMakeFiles/cluster_replay.dir/cluster_replay.cpp.o.d"
  "cluster_replay"
  "cluster_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
