# Empty dependencies file for deadline_admission.
# This may be replaced when dependencies are built.
