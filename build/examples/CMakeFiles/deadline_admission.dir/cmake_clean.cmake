file(REMOVE_RECURSE
  "CMakeFiles/deadline_admission.dir/deadline_admission.cpp.o"
  "CMakeFiles/deadline_admission.dir/deadline_admission.cpp.o.d"
  "deadline_admission"
  "deadline_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
