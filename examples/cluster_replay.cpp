// Full cluster trace replay: Sunflow (optical circuit switch) head-to-head
// with Varys and Aalo (packet switch) and a FIFO circuit baseline.
//
// Replays a Facebook-like coflow trace (or a real coflow-benchmark file
// via --trace=...) and reports average / p95 CCT per scheme plus the
// slowdown distribution relative to the per-coflow packet lower bound.
//
//   ./cluster_replay [--coflows=200] [--ports=150] [--delta_ms=10]
//                    [--trace=FB2010-1Hr-150-0.txt]
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/policy.h"
#include "exp/inter_runner.h"
#include "packet/aalo.h"
#include "packet/fair_share.h"
#include "packet/replay.h"
#include "packet/varys.h"
#include "sim/circuit_replay.h"
#include "trace/bounds.h"
#include "trace/generator.h"
#include "trace/idleness.h"
#include "trace/parser.h"

using namespace sunflow;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string path = flags.GetString("trace", "", "trace file");
  const auto coflows = flags.GetInt("coflows", 200, "synthetic coflows");
  const auto ports = flags.GetInt("ports", 150, "fabric ports");
  const double delta_ms = flags.GetDouble("delta_ms", 10, "reconfig delay");
  if (flags.help_requested()) {
    flags.PrintHelp("Cluster replay: Sunflow vs Varys vs Aalo vs FIFO");
    return 0;
  }

  Trace trace;
  if (!path.empty()) {
    trace = ParseCoflowBenchmarkFile(path);
  } else {
    SyntheticTraceConfig cfg;
    cfg.num_coflows = static_cast<int>(coflows);
    cfg.num_ports = static_cast<PortId>(ports);
    trace = PerturbFlowSizes(GenerateSyntheticTrace(cfg), 0.05, MB(1), 7);
  }
  std::printf("replaying %zu coflows on %d ports, idleness %.0f%%\n\n",
              trace.coflows.size(), trace.num_ports,
              NetworkIdleness(trace, Gbps(1)) * 100);

  struct Scheme {
    std::string name;
    std::map<CoflowId, Time> cct;
  };
  std::vector<Scheme> schemes;

  {
    CircuitReplayConfig cfg;
    cfg.sunflow.delta = Millis(delta_ms);
    const auto scf = MakeShortestFirstPolicy();
    schemes.push_back(
        {"Sunflow (OCS, SCF)", ReplayCircuitTrace(trace, *scf, cfg).cct});
    const auto fifo = MakeFifoPolicy();
    schemes.push_back(
        {"Sunflow (OCS, FIFO)", ReplayCircuitTrace(trace, *fifo, cfg).cct});
  }
  {
    packet::PacketReplayConfig cfg;
    auto varys = packet::MakeVarysAllocator();
    schemes.push_back(
        {"Varys (packet)", packet::ReplayPacketTrace(trace, *varys, cfg).cct});
    cfg.reallocate_on_flow_completion = true;
    cfg.track_queue_crossings = true;
    auto aalo = packet::MakeAaloAllocator();
    schemes.push_back(
        {"Aalo (packet)", packet::ReplayPacketTrace(trace, *aalo, cfg).cct});
    auto fair = packet::MakeFairShareAllocator();
    schemes.push_back({"per-flow fair (packet)",
                       packet::ReplayPacketTrace(trace, *fair, cfg).cct});
  }

  std::map<CoflowId, Time> tpl;
  for (const Coflow& c : trace.coflows)
    tpl[c.id()] = PacketLowerBound(c, Gbps(1));

  TextTable table("Coflow completion times");
  table.SetHeader(
      {"scheme", "avg CCT", "p50", "p95", "avg CCT/TpL", "p95 CCT/TpL"});
  for (const auto& scheme : schemes) {
    std::vector<double> ccts, slowdowns;
    for (const auto& [id, cct] : scheme.cct) {
      ccts.push_back(cct);
      if (tpl.at(id) > 0) slowdowns.push_back(cct / tpl.at(id));
    }
    table.AddRow({scheme.name, TextTable::Fmt(stats::Mean(ccts), 2) + "s",
                  TextTable::Fmt(stats::Percentile(ccts, 50), 2) + "s",
                  TextTable::Fmt(stats::Percentile(ccts, 95), 2) + "s",
                  TextTable::Fmt(stats::Mean(slowdowns), 2),
                  TextTable::Fmt(stats::Percentile(slowdowns, 95), 2)});
  }
  table.AddFootnote(
      "Sunflow pays circuit setup on short coflows but matches packet "
      "switching on the heavy ones (§5.4)");
  table.Print(std::cout);
  return 0;
}
