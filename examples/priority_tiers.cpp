// Inter-Coflow policy playground: privileged vs regular tenants, and the
// starvation-avoidance guard of §4.2.
//
// A privileged tenant submits a continuous stream of coflows that saturate
// a port; a regular tenant submits one coflow on the same port. Under the
// pure class policy the regular coflow starves behind the stream; with the
// Φ / (T+τ) guard it receives service within every N(T+τ) window and
// completes.
//
//   ./priority_tiers [--attackers=40] [--T=1.0] [--tau=0.1]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "core/policy.h"
#include "core/starvation.h"
#include "sim/circuit_replay.h"
#include "sim/starvation_replay.h"

using namespace sunflow;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const int attackers = static_cast<int>(flags.GetInt("attackers", 40, ""));
  const double big_t = flags.GetDouble("T", 1.0, "priority interval");
  const double tau = flags.GetDouble("tau", 0.1, "fixed-assignment interval");
  if (flags.help_requested()) {
    flags.PrintHelp("Priority tiers + starvation guard demo");
    return 0;
  }

  // Privileged stream: 440 ms of demand every 400 ms on ports (0 -> 1):
  // the port never drains. One regular coflow wants the same ports.
  Trace trace;
  trace.num_ports = 3;
  for (int k = 0; k < attackers; ++k)
    trace.coflows.push_back(Coflow(k + 1, 0.4 * k, {{0, 1, MB(55)}}));
  const CoflowId regular_id = 1000;
  trace.coflows.push_back(Coflow(regular_id, 0.0, {{0, 1, MB(40)}}));
  std::sort(trace.coflows.begin(), trace.coflows.end(),
            [](const Coflow& a, const Coflow& b) {
              return a.arrival() < b.arrival();
            });

  const auto policy = MakeClassPolicy({{regular_id, 1}}, /*default=*/0);
  CircuitReplayConfig config;

  std::printf("privileged stream: %d coflows, 440 ms demand each, every "
              "400 ms\nregular coflow: 40 MB on the same port pair\n\n",
              attackers);

  {
    const auto result = ReplayCircuitTrace(trace, *policy, config);
    std::printf("WITHOUT guard: regular coflow CCT = %.2f s (finishes only "
                "after the\n               privileged stream drains — pure "
                "priority starves it)\n",
                result.cct.at(regular_id));
  }
  {
    StarvationGuardConfig guard;
    guard.enabled = true;
    guard.big_interval = big_t;
    guard.small_interval = tau;
    const StarvationGuardTimeline timeline(guard, trace.num_ports);
    const auto result =
        ReplayWithStarvationGuard(trace, *policy, config, guard);
    std::printf("WITH guard (T=%.2fs, tau=%.2fs): regular coflow CCT = "
                "%.2f s\n",
                big_t, tau, result.cct.at(regular_id));
    std::printf("  max service gap: %.2f s (guaranteed <= N(T+tau) = %.2f "
                "s)\n",
                result.max_service_gap.at(regular_id),
                timeline.MaxServiceGap());
    std::vector<double> privileged_cct;
    for (const auto& [id, cct] : result.cct)
      if (id != regular_id) privileged_cct.push_back(cct);
    double worst = 0;
    for (double c : privileged_cct) worst = std::max(worst, c);
    std::printf("  privileged stream worst CCT: %.2f s (guard costs tau "
                "per period)\n",
                worst);
  }
  std::printf("\nThe guard trades a bounded slice of circuit time (tau per "
              "T+tau period)\nfor a hard service guarantee — §4.2's design "
              "point.\n");
  return 0;
}
