// MapReduce shuffle on an optical circuit switch: scheduler shoot-out.
//
// The scenario the paper's introduction motivates — a dense many-to-many
// shuffle stage — scheduled by Sunflow and by the three pre-existing
// circuit schedulers (Solstice, TMS, Edmonds), across a range of
// reconfiguration delays. Shows why preemptive, all-stop-era algorithms
// struggle as δ grows and why Sunflow's switching count stays minimal.
//
//   ./mapreduce_shuffle [--mappers=16] [--reducers=16] [--mb_per_flow=24]
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "exp/intra_runner.h"
#include "trace/bounds.h"

using namespace sunflow;
using namespace sunflow::exp;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const int mappers = static_cast<int>(flags.GetInt("mappers", 16, ""));
  const int reducers = static_cast<int>(flags.GetInt("reducers", 16, ""));
  const double mb = flags.GetDouble("mb_per_flow", 24, "mean flow size");
  if (flags.help_requested()) {
    flags.PrintHelp("MapReduce shuffle scheduler comparison");
    return 0;
  }

  // Shuffle coflow: every mapper sends a perturbed share to every reducer.
  Rng rng(42);
  std::vector<Flow> flows;
  for (PortId m = 0; m < mappers; ++m) {
    for (PortId r = 0; r < reducers; ++r) {
      flows.push_back({m, static_cast<PortId>(mappers + r),
                       MB(std::max(1.0, rng.Uniform(0.5 * mb, 1.5 * mb)))});
    }
  }
  const Coflow shuffle(1, 0.0, std::move(flows));
  Trace trace;
  trace.num_ports = static_cast<PortId>(mappers + reducers);
  trace.coflows.push_back(shuffle);

  std::printf("Shuffle: %d x %d, %zu flows, %.1f GB total\n\n", mappers,
              reducers, shuffle.size(), shuffle.total_bytes() / 1e9);

  TextTable table("CCT by scheduler and reconfiguration delay (B = 1 Gbps)");
  table.SetHeader({"delta", "bound TcL", "Sunflow", "Solstice", "TMS",
                   "Edmonds", "Sunflow setups", "Solstice setups"});
  for (double delta_ms : {100.0, 10.0, 1.0, 0.1}) {
    IntraRunConfig cfg;
    cfg.delta = Millis(delta_ms);
    std::vector<std::string> row = {TextTable::Fmt(delta_ms, 1) + "ms"};
    row.push_back(
        TextTable::Fmt(CircuitLowerBound(shuffle, cfg.bandwidth, cfg.delta),
                       2) +
        "s");
    int sunflow_setups = 0, solstice_setups = 0;
    for (auto algorithm :
         {IntraAlgorithm::kSunflow, IntraAlgorithm::kSolstice,
          IntraAlgorithm::kTms, IntraAlgorithm::kEdmonds}) {
      const auto run = RunIntra(trace, algorithm, cfg);
      row.push_back(TextTable::Fmt(run.records[0].cct, 2) + "s");
      if (algorithm == IntraAlgorithm::kSunflow)
        sunflow_setups = run.records[0].switching_count;
      if (algorithm == IntraAlgorithm::kSolstice)
        solstice_setups = run.records[0].switching_count;
    }
    row.push_back(std::to_string(sunflow_setups));
    row.push_back(std::to_string(solstice_setups));
    table.AddRow(row);
  }
  table.AddFootnote("Sunflow's setup count equals |C| at every delta");
  table.Print(std::cout);
  return 0;
}
