// Quickstart: schedule one Coflow on an optical circuit switch with
// Sunflow and inspect the resulting Port Reservation Table.
//
// Mirrors Figure 1 of the paper: a 5-sender x 2-receiver shuffle. Prints
// the reservation timeline per input port (ASCII Gantt), the CCT, and how
// it compares to the theoretical lower bounds.
//
//   ./quickstart [--delta_ms=10] [--bandwidth_gbps=1]
#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.h"
#include "core/sunflow.h"
#include "trace/bounds.h"
#include "viz/timeline.h"

using namespace sunflow;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const double delta_ms = flags.GetDouble("delta_ms", 10, "reconfig delay");
  const double gbps = flags.GetDouble("bandwidth_gbps", 1, "link rate");
  const std::string svg_out =
      flags.GetString("svg_out", "", "write the timeline as SVG here");
  if (flags.help_requested()) {
    flags.PrintHelp("Sunflow quickstart: one coflow, one schedule");
    return 0;
  }

  // The Figure-1 shuffle: five mappers each send to two reducers.
  std::vector<Flow> flows;
  for (PortId i = 0; i < 5; ++i) {
    flows.push_back({i, 5, MB(20 + 11 * i)});  // reducer on port 5
    flows.push_back({i, 6, MB(35 - 6 * i)});   // reducer on port 6
  }
  const Coflow coflow(/*id=*/1, /*arrival=*/0.0, std::move(flows));

  SunflowConfig config;
  config.bandwidth = Gbps(gbps);
  config.delta = Millis(delta_ms);

  const PortId kPorts = 7;
  SunflowPlanner planner(kPorts, config);
  SunflowSchedule schedule;
  planner.ScheduleOne(PlanRequest::FromCoflow(coflow, config.bandwidth, 0.0),
                      schedule);

  const Time cct = schedule.completion_time.at(coflow.id());
  const Time tcl = CircuitLowerBound(coflow, config.bandwidth, config.delta);
  const Time tpl = PacketLowerBound(coflow, config.bandwidth);

  std::printf("Coflow: %s\n", coflow.DebugString().c_str());
  std::printf("Sunflow CCT      : %.4f s\n", cct);
  std::printf("circuit bound TcL: %.4f s  (CCT/TcL = %.3f, Lemma 1: < 2)\n",
              tcl, cct / tcl);
  std::printf("packet bound TpL : %.4f s  (CCT/TpL = %.3f)\n", tpl,
              cct / tpl);
  std::printf("circuit setups   : %d (minimum = |C| = %zu)\n\n",
              schedule.reservation_count.at(coflow.id()), coflow.size());

  std::printf("Port reservation timeline ('#' = reconfiguration, digit = "
              "output port):\n");
  viz::TimelineOptions viz_options;
  viz_options.label_coflows = false;  // label by output port, like Fig 1c
  std::printf("%s", viz::RenderTimelineAscii(
                        planner.prt().reservations(), viz_options)
                        .c_str());
  if (!svg_out.empty()) {
    std::ofstream f(svg_out);
    viz::WriteTimelineSvg(f, planner.prt().reservations());
    std::printf("\n(SVG timeline written to %s)\n", svg_out.c_str());
  }
  std::printf("\nEach circuit is set up exactly once and runs until its "
              "flow completes —\nSunflow never preempts within a coflow "
              "(§4.1 of the paper).\n");
  return 0;
}
