// Deadline-aware admission control (§1's "individual Coflow's performance
// requirement" + the Varys-style admit-or-reject contract).
//
// A stream of coflows with deadlines arrives at a busy switch. Each is
// admitted only if Sunflow can still meet its deadline at the lowest
// priority — admitted coflows are never disturbed by later admissions, so
// an admitted deadline is a kept deadline.
//
//   ./deadline_admission [--coflows=40] [--deadline_slack=2.0]
#include <cstdio>

#include "common/cli.h"
#include "common/rng.h"
#include "core/admission.h"
#include "trace/bounds.h"

using namespace sunflow;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const int n = static_cast<int>(flags.GetInt("coflows", 40, "arrivals"));
  const double slack = flags.GetDouble(
      "deadline_slack", 2.0, "deadline = slack x ideal CCT");
  if (flags.help_requested()) {
    flags.PrintHelp("Deadline admission on the Sunflow PRT");
    return 0;
  }

  const PortId kPorts = 8;
  SunflowConfig config;  // 1 Gbps, δ = 10 ms
  SunflowPlanner planner(kPorts, config);
  SunflowSchedule out;

  Rng rng(2016);
  int admitted = 0, rejected = 0, kept = 0;
  Time t = 0;
  for (int k = 0; k < n; ++k) {
    t += rng.Exponential(0.3);
    std::vector<Flow> flows;
    const int nf = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int f = 0; f < nf; ++f) {
      const PortId s = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
      const PortId d = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
      bool dup = false;
      for (const auto& existing : flows)
        if (existing.src == s && existing.dst == d) dup = true;
      if (!dup) flows.push_back({s, d, MB(rng.Uniform(5, 120))});
    }
    const Coflow coflow(k + 1, t, std::move(flows));
    const Time ideal =
        CircuitLowerBound(coflow, config.bandwidth, config.delta);
    const Time deadline = slack * ideal;

    const auto result = TryAdmitWithDeadline(
        planner, PlanRequest::FromCoflow(coflow, config.bandwidth), deadline,
        out);
    if (result.admitted) {
      ++admitted;
      if (out.completion_time.at(coflow.id()) <= deadline + kTimeEps) ++kept;
      std::printf("t=%6.2f  coflow %2d  ADMIT  (cct %.2fs <= deadline "
                  "%.2fs)\n",
                  t, k + 1, result.planned_cct, deadline);
    } else {
      ++rejected;
      std::printf("t=%6.2f  coflow %2d  reject (best offer %.2fs > deadline "
                  "%.2fs)\n",
                  t, k + 1, result.planned_cct, deadline);
    }
  }

  std::printf("\nadmitted %d / rejected %d; every admitted deadline kept: "
              "%s\n",
              admitted, rejected, kept == admitted ? "yes" : "NO (bug!)");
  std::printf("Sunflow's non-preemptive PRT makes the admission contract "
              "trivial to honour:\nadmitted reservations are physically "
              "immutable (§4.1).\n");
  return 0;
}
