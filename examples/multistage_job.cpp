// Multi-stage job scheduling on the optical circuit switch (§4.2, third
// usage scenario).
//
// A three-stage analytics job (ingest shuffle -> aggregate -> publish)
// shares the fabric with an unrelated ad-hoc query. With plain
// shortest-coflow-first the ad-hoc query preempts job stages and can
// straggle the job; with the earlier-stage-first policy the job's critical
// path is protected.
//
//   ./multistage_job [--delta_ms=10]
#include <cstdio>

#include "common/cli.h"
#include "core/policy.h"
#include "sim/dag_replay.h"

using namespace sunflow;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const double delta_ms = flags.GetDouble("delta_ms", 10, "reconfig delay");
  if (flags.help_requested()) {
    flags.PrintHelp("Multi-stage job DAG on the circuit switch");
    return 0;
  }

  // Ports 0-3: mappers; 4-5: aggregators; 6: publisher; 7: ad-hoc user.
  Trace trace;
  trace.num_ports = 8;
  // Stage 0 — ingest shuffle: 4 mappers x 2 aggregators.
  {
    std::vector<Flow> flows;
    for (PortId m = 0; m < 4; ++m)
      for (PortId a = 4; a <= 5; ++a)
        flows.push_back({m, a, MB(60 + 10 * m)});
    trace.coflows.push_back(Coflow(1, 0.0, std::move(flows)));
  }
  // Stage 1 — aggregate: both aggregators into the publisher.
  trace.coflows.push_back(
      Coflow(2, 0.0, {{4, 6, MB(120)}, {5, 6, MB(140)}}));
  // Stage 2 — publish results back to the mappers.
  trace.coflows.push_back(
      Coflow(3, 0.0, {{6, 0, MB(30)}, {6, 1, MB(30)}, {6, 2, MB(30)}}));
  // Unrelated ad-hoc query arriving mid-job; it writes into the publisher
  // machine (out-port 6) exactly when stage 1 needs that port, and it is
  // smaller than stage 1's remaining demand, so SCF prefers it.
  trace.coflows.push_back(Coflow(10, 2.0, {{7, 6, MB(100)}}));

  CoflowDag dag;
  dag.AddDependency(2, 1);
  dag.AddDependency(3, 2);

  CircuitReplayConfig config;
  config.sunflow.delta = Millis(delta_ms);

  std::printf("3-stage job (coflows 1 -> 2 -> 3) + ad-hoc query (coflow "
              "10) on shared ports\n\n");

  auto report = [&](const char* name, const PriorityPolicy& policy) {
    const auto result = ReplayDagTrace(trace, dag, policy, config);
    std::printf("%-24s job done at %.3f s (stages: %.3f / %.3f / %.3f), "
                "ad-hoc CCT %.3f s\n",
                name, result.completion.at(3), result.completion.at(1),
                result.completion.at(2), result.completion.at(3),
                result.cct.at(10));
  };

  // The ad-hoc query is not part of the job: rank it behind every stage.
  auto stages = dag.StageOf(trace);
  stages[10] = 99;
  auto stage_policy = MakeStagePolicy(stages);
  auto scf = MakeShortestFirstPolicy();
  report("earlier-stage-first:", *stage_policy);
  report("shortest-coflow-first:", *scf);

  std::printf("\nUnder SCF the smaller ad-hoc query takes the publisher port first and\n"
              "the job stages straggle; earlier-stage-first protects the job's\n"
              "critical path at the cost of the ad-hoc query (§4.2).\n");
  return 0;
}
