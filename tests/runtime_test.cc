// Tests for the parallel sweep engine (src/runtime) and the sharded obs
// layer it relies on: pool lifecycle, exception propagation, ParallelFor
// coverage, the bit-identical-at-any-thread-count sweep contract, and
// sharded-metrics merge equivalence.
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/intra_runner.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "runtime/arena.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "trace/generator.h"

namespace sunflow::runtime {
namespace {

// ---------- arena allocator ----------

TEST(ArenaTest, BumpAllocatesWithinOneBlock) {
  Arena arena;
  void* a = arena.Allocate(16);
  void* b = arena.Allocate(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Monotone bump within the block: 16 rounded to 16, back to back.
  EXPECT_EQ(static_cast<char*>(b) - static_cast<char*>(a), 16);
  EXPECT_EQ(arena.stats().allocations, 2u);
  EXPECT_EQ(arena.stats().block_allocs, 1u);
  EXPECT_EQ(arena.bytes_in_use(), 32u);
}

TEST(ArenaTest, ScopeRewindReusesMemoryAcrossFrames) {
  Arena arena;
  void* first = nullptr;
  {
    ArenaScope frame(arena);
    first = arena.Allocate(64);
    arena.Allocate(128);
  }
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // The next frame starts from the same mark: identical first pointer,
  // and no new block was fetched from the system.
  ArenaScope frame(arena);
  void* again = arena.Allocate(64);
  EXPECT_EQ(again, first);
  EXPECT_EQ(arena.stats().block_allocs, 1u);
  EXPECT_EQ(arena.stats().frames, 1u);
}

TEST(ArenaTest, NoCrossRequestBleed) {
  // A frame's writes must never be visible through a later frame's fresh
  // allocations once that later frame initializes them — the pattern the
  // planner relies on when back-to-back requests reuse the same bytes.
  Arena arena;
  {
    ArenaScope frame(arena);
    ArenaVector<int> v{ArenaAllocator<int>(arena)};
    v.assign(100, 0xABAB);
  }
  ArenaScope frame(arena);
  ArenaVector<int> v{ArenaAllocator<int>(arena)};
  v.assign(100, 7);
  for (int x : v) EXPECT_EQ(x, 7);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/256);
  void* small = arena.Allocate(16);
  void* huge = arena.Allocate(4096);  // larger than the block size
  ASSERT_NE(small, nullptr);
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(arena.stats().block_allocs, 2u);
  // The arena keeps working after the oversized detour.
  EXPECT_NE(arena.Allocate(16), nullptr);
}

TEST(ArenaTest, ArenaVectorGrowsThroughReallocation) {
  Arena arena;
  ArenaScope frame(arena);
  ArenaVector<std::size_t> v{ArenaAllocator<std::size_t>(arena)};
  for (std::size_t i = 0; i < 10000; ++i) v.push_back(i);
  for (std::size_t i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);
}

TEST(ArenaTest, NestedScopesRewindLifo) {
  Arena arena;
  ArenaScope outer(arena);
  arena.Allocate(32);
  const std::size_t outer_bytes = arena.bytes_in_use();
  {
    ArenaScope inner(arena);
    arena.Allocate(512);
    EXPECT_GT(arena.bytes_in_use(), outer_bytes);
  }
  EXPECT_EQ(arena.bytes_in_use(), outer_bytes);
}

TEST(ArenaTest, ThisThreadArenaIsPerThread) {
  Arena* main_arena = &ThisThreadArena();
  EXPECT_EQ(main_arena, &ThisThreadArena());  // stable within a thread
  Arena* other_arena = nullptr;
  std::thread t([&] { other_arena = &ThisThreadArena(); });
  t.join();
  EXPECT_NE(main_arena, other_arena);
}

#ifdef SUNFLOW_ARENA_ASAN
TEST(ArenaTest, FreedRegionsArePoisonedUnderAsan) {
  Arena arena;
  char* p = nullptr;
  {
    ArenaScope frame(arena);
    p = static_cast<char*>(arena.Allocate(64));
    EXPECT_FALSE(__asan_address_is_poisoned(p));
  }
  // The scope rewound: the frame's bytes are poisoned until re-allocated.
  EXPECT_TRUE(__asan_address_is_poisoned(p));
  ArenaScope frame(arena);
  char* q = static_cast<char*>(arena.Allocate(64));
  EXPECT_EQ(q, p);
  EXPECT_FALSE(__asan_address_is_poisoned(q));
}
#endif

TEST(ThreadPoolTest, HardwareConcurrencyIsAtLeastOne) {
  EXPECT_GE(HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_EQ(pool.size(), HardwareConcurrency());
  ThreadPool inline_pool(1);
  EXPECT_EQ(inline_pool.size(), 1);
  ThreadPool clamped(-3);
  EXPECT_EQ(clamped.size(), HardwareConcurrency());
}

TEST(ThreadPoolTest, SubmitRunsInlineOnSizeOnePool) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  // Inline execution: already done by the time Submit returned.
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
  }  // ~ThreadPool must run every queued task before joining.
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(0, hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::size_t seen = 0;
  pool.ParallelFor(7, 8, [&](std::size_t i) { seen = i; ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 7u);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestFailingIndex) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    try {
      pool.ParallelFor(0, 100, [&](std::size_t i) {
        if (i % 3 == 1) {  // fails at 1, 4, 7, ... — lowest is 1
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "ParallelFor should have thrown (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 1");
    }
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 8,
                       [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<int> ok{0};
  pool.ParallelFor(0, 8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(TaskSeedTest, DeterministicAndDecorrelated) {
  EXPECT_EQ(TaskSeed(42, 7), TaskSeed(42, 7));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(TaskSeed(0, i));
  EXPECT_EQ(seeds.size(), 1000u);  // adjacent indices must not collide
  EXPECT_NE(TaskSeed(1, 0), TaskSeed(2, 0));  // base seed matters
}

TEST(SweepRunnerTest, ResultsAndSeedsIndependentOfThreadCount) {
  auto run = [](int threads) {
    SweepConfig cfg;
    cfg.threads = threads;
    cfg.base_seed = 99;
    SweepRunner runner(cfg);
    return runner.Run<std::uint64_t>(
        64, /*capture_events=*/false,
        [](TaskContext& ctx) { return ctx.seed ^ ctx.index; });
  };
  const auto serial = run(1);
  for (int threads : {2, 8}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.results, serial.results) << "threads " << threads;
  }
}

TEST(SweepRunnerTest, EventBuffersComeBackInTaskOrder) {
  SweepConfig cfg;
  cfg.threads = 4;
  SweepRunner runner(cfg);
  const auto sweep =
      runner.Run<int>(16, /*capture_events=*/true, [](TaskContext& ctx) {
        obs::Event e;
        e.type = obs::EventType::kCoflowAdmitted;
        e.t = static_cast<double>(ctx.index);
        ctx.sink->OnEvent(e);
        return 0;
      });
  ASSERT_EQ(sweep.events.size(), 16u);
  obs::MemorySink merged;
  MergeEvents(&merged, sweep.events);
  ASSERT_EQ(merged.events().size(), 16u);
  for (std::size_t i = 0; i < merged.events().size(); ++i) {
    EXPECT_EQ(merged.events()[i].t, static_cast<double>(i));
  }
}

// The tentpole contract, end to end: RunIntra over a real (small) trace
// produces bit-identical records and merged event streams at any thread
// count.
TEST(SweepRunnerTest, RunIntraBitIdenticalAcrossThreadCounts) {
  SyntheticTraceConfig tc;
  tc.num_coflows = 40;
  tc.num_ports = 24;
  const Trace trace = GenerateSyntheticTrace(tc);

  auto run = [&](int threads) {
    obs::MemorySink sink;
    exp::IntraRunConfig cfg;
    cfg.threads = threads;
    cfg.sink = &sink;
    auto result = exp::RunIntra(trace, exp::IntraAlgorithm::kSunflow, cfg);
    return std::pair{std::move(result), sink.events()};
  };

  const auto [serial, serial_events] = run(1);
  for (int threads : {2, 8}) {
    const auto [parallel, parallel_events] = run(threads);
    ASSERT_EQ(parallel.records.size(), serial.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
      const auto &a = serial.records[i], &b = parallel.records[i];
      EXPECT_EQ(a.id, b.id);
      EXPECT_EQ(a.cct, b.cct) << "coflow " << a.id << " threads " << threads;
      EXPECT_EQ(a.tcl, b.tcl);
      EXPECT_EQ(a.tpl, b.tpl);
      EXPECT_EQ(a.switching_count, b.switching_count);
    }
    ASSERT_EQ(parallel_events.size(), serial_events.size());
    for (std::size_t i = 0; i < serial_events.size(); ++i) {
      EXPECT_EQ(parallel_events[i].type, serial_events[i].type);
      EXPECT_EQ(parallel_events[i].t, serial_events[i].t)
          << "event " << i << " threads " << threads;
      EXPECT_EQ(parallel_events[i].coflow, serial_events[i].coflow);
    }
  }
}

TEST(ShardedMetricsTest, MergeMatchesSingleRegistry) {
  // Reference: everything recorded into one single-threaded registry.
  obs::MetricsRegistry reference;
  for (int i = 0; i < 1000; ++i) {
    reference.GetCounter("t.count").Increment();
    reference.GetHistogram("t.hist").Record(static_cast<double>(i % 97));
  }
  reference.GetGauge("t.gauge").Add(12.5);

  // Same values recorded through a sharded registry from 8 threads.
  obs::ShardedMetricsRegistry sharded;
  ThreadPool pool(8);
  pool.ParallelFor(0, 1000, [&](std::size_t i) {
    sharded.GetCounter("t.count").Increment();
    sharded.GetHistogram("t.hist").Record(static_cast<double>(i % 97));
  });
  sharded.GetGauge("t.gauge").Add(12.5);

  const obs::MetricsRegistry merged = sharded.Merged();
  ASSERT_NE(merged.FindCounter("t.count"), nullptr);
  EXPECT_EQ(merged.FindCounter("t.count")->value(),
            reference.FindCounter("t.count")->value());
  EXPECT_DOUBLE_EQ(merged.FindGauge("t.gauge")->value(), 12.5);
  const obs::Histogram* mh = merged.FindHistogram("t.hist");
  const obs::Histogram* rh = reference.FindHistogram("t.hist");
  ASSERT_NE(mh, nullptr);
  EXPECT_EQ(mh->count(), rh->count());
  EXPECT_DOUBLE_EQ(mh->sum(), rh->sum());
  EXPECT_DOUBLE_EQ(mh->min(), rh->min());
  EXPECT_DOUBLE_EQ(mh->max(), rh->max());
  for (double pct : {10.0, 50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(mh->ValueAtPercentile(pct), rh->ValueAtPercentile(pct));
  }
}

TEST(ShardedMetricsTest, RowsAreIdenticalAtAnyThreadCount) {
  auto record = [](int threads) {
    obs::ShardedMetricsRegistry reg;
    ThreadPool pool(threads);
    pool.ParallelFor(0, 500, [&](std::size_t i) {
      reg.GetCounter("r.count").Increment(i % 5);
      reg.GetHistogram("r.hist").Record(static_cast<double>(i));
    });
    return reg.Rows();
  };
  const auto serial = record(1);
  const auto parallel = record(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].kind, parallel[i].kind);
    EXPECT_EQ(serial[i].count, parallel[i].count);
    EXPECT_DOUBLE_EQ(serial[i].value, parallel[i].value);
    EXPECT_DOUBLE_EQ(serial[i].p95, parallel[i].p95);
  }
}

TEST(ShardedMetricsTest, ResetZeroesEveryShard) {
  obs::ShardedMetricsRegistry reg;
  ThreadPool pool(4);
  pool.ParallelFor(0, 100,
                   [&](std::size_t) { reg.GetCounter("z").Increment(); });
  ASSERT_NE(reg.FindCounter("z"), nullptr);
  EXPECT_EQ(reg.FindCounter("z")->value(), 100u);
  reg.Reset();
  ASSERT_NE(reg.FindCounter("z"), nullptr);  // registration survives
  EXPECT_EQ(reg.FindCounter("z")->value(), 0u);
}

// TSan target: concurrent recording through the process-wide registry
// must be race-free (each thread only touches its own shard).
TEST(ShardedMetricsTest, ConcurrentGlobalRecordingIsRaceFree) {
  auto& metrics = obs::GlobalMetrics();
  const std::uint64_t before =
      metrics.FindCounter("test.stress")
          ? metrics.FindCounter("test.stress")->value()
          : 0;
  ThreadPool pool(8);
  pool.ParallelFor(0, 4000, [&](std::size_t) {
    metrics.GetCounter("test.stress").Increment();
    metrics.GetHistogram("test.stress_hist").Record(1.0);
  });
  EXPECT_EQ(metrics.FindCounter("test.stress")->value(), before + 4000);
}

}  // namespace
}  // namespace sunflow::runtime
