// Intra-replan parallel planning (core/components.h,
// ScheduleRequestsParallel): the pool must change wall-clock only, never
// output. Every test here compares the parallel path against the serial
// planner.ScheduleAll oracle with EXACT equality — same doubles, same
// reservation stream, same insertion order — because the engine goldens
// are byte-diffed across --threads values and any drift here would
// surface there.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/components.h"
#include "core/plan_memo.h"
#include "core/policy.h"
#include "core/sunflow.h"
#include "runtime/thread_pool.h"
#include "sim/engine/scenario.h"
#include "trace/generator.h"

namespace sunflow {
namespace {

SunflowConfig Config() {
  SunflowConfig c;
  c.bandwidth = Gbps(1);
  c.delta = Millis(10);
  return c;
}

// Random request set over `clusters` port-disjoint clusters of 4 ports
// each; every request stays inside one cluster, so the union-find yields
// one group per populated cluster.
std::vector<PlanRequest> RandomClusteredRequests(Rng& rng, int clusters,
                                                 int num_requests) {
  std::vector<PlanRequest> reqs;
  for (int i = 0; i < num_requests; ++i) {
    PlanRequest req;
    req.coflow = i + 1;
    req.start = 0;
    const PortId base =
        static_cast<PortId>(4 * rng.UniformInt(0, clusters - 1));
    const int flows = 1 + static_cast<int>(rng.UniformInt(0, 4));
    for (int f = 0; f < flows; ++f) {
      const PortId s = base + static_cast<PortId>(rng.UniformInt(0, 1));
      const PortId d = base + static_cast<PortId>(rng.UniformInt(2, 3));
      bool dup = false;
      for (const auto& e : req.demand)
        if (e.src == s && e.dst == d) dup = true;
      if (!dup) req.demand.push_back({s, d, rng.Uniform(0.001, 0.2)});
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

std::vector<const PlanRequest*> Ptrs(const std::vector<PlanRequest>& reqs) {
  std::vector<const PlanRequest*> out;
  for (const auto& r : reqs) out.push_back(&r);
  return out;
}

void ExpectExactlyEqual(const SunflowSchedule& a, const SunflowSchedule& b) {
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.flow_finish, b.flow_finish);
  EXPECT_EQ(a.reservation_count, b.reservation_count);
  ASSERT_EQ(a.reservations.size(), b.reservations.size());
  for (std::size_t i = 0; i < a.reservations.size(); ++i) {
    const CircuitReservation& x = a.reservations[i];
    const CircuitReservation& y = b.reservations[i];
    EXPECT_EQ(x.in, y.in) << "reservation " << i;
    EXPECT_EQ(x.out, y.out) << "reservation " << i;
    EXPECT_EQ(x.start, y.start) << "reservation " << i;
    EXPECT_EQ(x.end, y.end) << "reservation " << i;
    EXPECT_EQ(x.setup, y.setup) << "reservation " << i;
    EXPECT_EQ(x.coflow, y.coflow) << "reservation " << i;
  }
}

TEST(PlannerParallel, MatchesSerialScheduleAllExactly) {
  Rng rng(42);
  runtime::ThreadPool pool(4);
  for (int trial = 0; trial < 20; ++trial) {
    const int clusters = 2 + static_cast<int>(rng.UniformInt(0, 4));
    const auto reqs = RandomClusteredRequests(
        rng, clusters, 3 + static_cast<int>(rng.UniformInt(0, 12)));
    const PortId ports = static_cast<PortId>(4 * clusters);

    // Fresh memo per side so neither run can be served the other's plans
    // (a hit is byte-identical anyway; this keeps the comparison honest).
    GlobalPlanMemo().Clear();
    SunflowPlanner serial(ports, Config());
    const SunflowSchedule want = serial.ScheduleAll(Ptrs(reqs));

    GlobalPlanMemo().Clear();
    SunflowPlanner parallel(ports, Config());
    const SunflowSchedule got =
        ScheduleRequestsParallel(parallel, Ptrs(reqs), &pool);

    ExpectExactlyEqual(got, want);
    // The target planner's PRT must hold the merged stream in the same
    // insertion order as serial planning left it.
    ASSERT_EQ(parallel.prt().reservations().size(),
              serial.prt().reservations().size());
    parallel.prt().CheckInvariants();
  }
}

TEST(PlannerParallel, DeterministicAcrossPoolSizes) {
  Rng rng(7);
  const auto reqs = RandomClusteredRequests(rng, 4, 12);
  std::vector<SunflowSchedule> results;
  for (const int threads : {1, 2, 8}) {
    runtime::ThreadPool pool(threads);
    GlobalPlanMemo().Clear();
    SunflowPlanner planner(16, Config());
    results.push_back(ScheduleRequestsParallel(planner, Ptrs(reqs), &pool));
  }
  ExpectExactlyEqual(results[1], results[0]);
  ExpectExactlyEqual(results[2], results[0]);
}

TEST(PlannerParallel, GroupsFollowPortFootprints) {
  // Two disjoint clusters plus one cross-cluster coflow welding them: the
  // weld forces those requests into one group, but the third cluster
  // still plans apart. Output must stay exact either way.
  std::vector<PlanRequest> reqs;
  reqs.push_back({1, 0, {{0, 2, 0.05}}});
  reqs.push_back({2, 0, {{4, 6, 0.05}}});
  reqs.push_back({3, 0, {{0, 6, 0.05}}});   // welds clusters 0 and 1
  reqs.push_back({4, 0, {{8, 10, 0.05}}});  // its own group
  runtime::ThreadPool pool(4);

  GlobalPlanMemo().Clear();
  SunflowPlanner serial(12, Config());
  const SunflowSchedule want = serial.ScheduleAll(Ptrs(reqs));
  GlobalPlanMemo().Clear();
  SunflowPlanner parallel(12, Config());
  const SunflowSchedule got =
      ScheduleRequestsParallel(parallel, Ptrs(reqs), &pool);
  ExpectExactlyEqual(got, want);
}

TEST(PlannerParallel, FallsBackWhenPreconditionsFail) {
  Rng rng(11);
  const auto reqs = RandomClusteredRequests(rng, 3, 8);
  runtime::ThreadPool pool(4);

  GlobalPlanMemo().Clear();
  SunflowPlanner oracle(12, Config());
  const SunflowSchedule want = oracle.ScheduleAll(Ptrs(reqs));

  {
    // Null pool → serial path, same output.
    GlobalPlanMemo().Clear();
    SunflowPlanner p(12, Config());
    ExpectExactlyEqual(ScheduleRequestsParallel(p, Ptrs(reqs), nullptr), want);
  }
  {
    // A reservation callback must observe the stream in planning order, so
    // the parallel path declines; output is unchanged and the callback
    // fires once per reservation.
    GlobalPlanMemo().Clear();
    SunflowPlanner p(12, Config());
    std::size_t fired = 0;
    p.SetReservationCallback([&](const CircuitReservation&) { ++fired; });
    ExpectExactlyEqual(ScheduleRequestsParallel(p, Ptrs(reqs), &pool), want);
    EXPECT_EQ(fired, want.reservations.size());
  }
  {
    // Non-empty PRT → the group planners could not reconstruct the prior
    // state, so the call must route through serial ScheduleAll.
    GlobalPlanMemo().Clear();
    SunflowPlanner p(12, Config());
    SunflowSchedule scratch;
    PlanRequest occupant{99, 0, {{0, 2, 0.05}}};
    p.ScheduleOne(occupant, scratch);

    GlobalPlanMemo().Clear();
    SunflowPlanner q(12, Config());
    SunflowSchedule scratch2;
    q.ScheduleOne(occupant, scratch2);
    const SunflowSchedule after = q.ScheduleAll(Ptrs(reqs));

    ExpectExactlyEqual(ScheduleRequestsParallel(p, Ptrs(reqs), &pool), after);
  }
  {
    // Duplicate coflow ids break the merge keying → serial fallback.
    std::vector<PlanRequest> dup = reqs;
    dup.push_back(dup.front());
    GlobalPlanMemo().Clear();
    SunflowPlanner a(12, Config());
    const SunflowSchedule want_dup = a.ScheduleAll(Ptrs(dup));
    GlobalPlanMemo().Clear();
    SunflowPlanner b(12, Config());
    ExpectExactlyEqual(ScheduleRequestsParallel(b, Ptrs(dup), &pool),
                       want_dup);
  }
}

TEST(PlannerParallel, EstablishedCircuitsCarryIntoGroups) {
  // A carried-over circuit in cluster 0 zeroes that pair's setup; the
  // group planner must replicate it even though cluster 1's group never
  // touches those ports.
  std::vector<PlanRequest> reqs;
  reqs.push_back({1, 1.0, {{0, 2, 0.05}}});
  reqs.push_back({2, 1.0, {{4, 6, 0.05}}});
  EstablishedCircuits established{{0, 2}};
  runtime::ThreadPool pool(4);

  GlobalPlanMemo().Clear();
  SunflowPlanner serial(8, Config());
  serial.SetEstablishedCircuits(established, 1.0);
  const SunflowSchedule want = serial.ScheduleAll(Ptrs(reqs));
  // The carried circuit really must have zeroed the setup, or this test
  // isn't exercising the carry-over path at all.
  ASSERT_EQ(want.reservations.at(0).setup, 0.0);

  GlobalPlanMemo().Clear();
  SunflowPlanner parallel(8, Config());
  parallel.SetEstablishedCircuits(established, 1.0);
  ExpectExactlyEqual(ScheduleRequestsParallel(parallel, Ptrs(reqs), &pool),
                     want);
}

TEST(PlannerParallel, EngineReplayIdenticalWithAndWithoutPool) {
  SyntheticTraceConfig cfg;
  cfg.num_coflows = 30;
  cfg.num_ports = 32;
  cfg.seed = 20161212;
  const Trace trace = GenerateSyntheticTrace(cfg);
  const auto policy = MakeShortestFirstPolicy();

  engine::EngineConfig serial_ec;
  serial_ec.sunflow = Config();
  const auto serial_result = engine::ScenarioRegistry::Global().Run(
      "circuit", trace, policy.get(), serial_ec);

  runtime::ThreadPool pool(8);
  engine::EngineConfig pooled_ec;
  pooled_ec.sunflow = Config();
  pooled_ec.plan_pool = &pool;
  const auto pooled_result = engine::ScenarioRegistry::Global().Run(
      "circuit", trace, policy.get(), pooled_ec);

  EXPECT_EQ(serial_result.cct, pooled_result.cct);
  EXPECT_EQ(serial_result.completion, pooled_result.completion);
  EXPECT_EQ(serial_result.reservations, pooled_result.reservations);
  EXPECT_EQ(serial_result.replans, pooled_result.replans);
}

TEST(PlannerParallel, NestedParallelForDoesNotDeadlock) {
  // Group planning runs inside a replay that may itself be a pool task
  // (exp/inter_runner fans replays over the same pool), so a waiting task
  // must steal queued work instead of blocking a worker slot. A pool
  // smaller than the total task fan-out deadlocks without stealing.
  runtime::ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(0, 4, [&](std::size_t) {
    pool.ParallelFor(0, 4, [&](std::size_t) {
      leaves.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(leaves.load(), 16);
}

}  // namespace
}  // namespace sunflow
