// Property test for the flat-timeline PortReservationTable: a randomized
// workload (>10k reservations) cross-checked against a brute-force O(n)
// oracle that re-derives every probe from first principles. The probe
// schedule is adversarial on two axes: times sit on and within ±2ε of
// reservation boundaries (exercising every tolerant comparison), and the
// probe sequence mixes long forward sweeps with backward jumps so the
// per-port cursor is repeatedly advanced, invalidated and re-seated.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "core/prt.h"

namespace sunflow {
namespace {

// Brute-force reference: unordered per-port interval lists plus the global
// release list, each probe answered by a full scan using the PRT's
// documented semantics (half-open intervals, ε-tolerant comparisons).
class Oracle {
 public:
  explicit Oracle(PortId num_ports)
      : in_(static_cast<std::size_t>(num_ports)),
        out_(static_cast<std::size_t>(num_ports)) {}

  void Add(const CircuitReservation& r) {
    in_[static_cast<std::size_t>(r.in)].push_back({r.start, r.end});
    out_[static_cast<std::size_t>(r.out)].push_back({r.start, r.end});
    releases_.push_back(r.end);
  }

  bool InputFreeAt(PortId i, Time t) const { return FreeAt(in_, i, t); }
  bool OutputFreeAt(PortId j, Time t) const { return FreeAt(out_, j, t); }
  Time InputBusyUntil(PortId i, Time t) const { return BusyUntil(in_, i, t); }
  Time OutputBusyUntil(PortId j, Time t) const {
    return BusyUntil(out_, j, t);
  }

  PortReservationTable::NextReservation NextReservationAfter(PortId in,
                                                             PortId out,
                                                             Time t) const {
    const auto a = NextStartAfter(in_, in, t);
    const auto b = NextStartAfter(out_, out, t);
    if (a.start < b.start) return a;
    if (b.start < a.start) return b;
    return {a.start, std::max(a.release, b.release)};
  }

  Time NextReleaseAfter(Time t) const {
    Time best = kTimeInf;
    for (Time e : releases_)
      if (e > t + kTimeEps) best = std::min(best, e);
    return best;
  }

  Time FirstReleaseAtOrAfter(Time t) const {
    Time best = kTimeInf;
    for (Time e : releases_)
      if (e >= t) best = std::min(best, e);
    return best;
  }

  Time LastReleaseBefore(Time t) const {
    Time best = -kTimeInf;
    for (Time e : releases_)
      if (e < t) best = std::max(best, e);
    return best;
  }

 private:
  using Slots = std::vector<std::vector<std::pair<Time, Time>>>;

  static bool FreeAt(const Slots& side, PortId p, Time t) {
    for (const auto& [s, e] : side[static_cast<std::size_t>(p)]) {
      if (s <= t && e > t + kTimeEps) return false;
    }
    return true;
  }

  static Time BusyUntil(const Slots& side, PortId p, Time t) {
    for (const auto& [s, e] : side[static_cast<std::size_t>(p)]) {
      if (s <= t && e > t + kTimeEps) return e;
    }
    return t;
  }

  static PortReservationTable::NextReservation NextStartAfter(
      const Slots& side, PortId p, Time t) {
    PortReservationTable::NextReservation best;
    for (const auto& [s, e] : side[static_cast<std::size_t>(p)]) {
      if (s > t && s < best.start) best = {s, e};
    }
    return best;
  }

  Slots in_;
  Slots out_;
  std::vector<Time> releases_;
};

class Workload {
 public:
  Workload(std::uint64_t seed, PortId ports)
      : rng_(seed),
        ports_(ports),
        frontier_(static_cast<std::size_t>(ports), 0.0) {}

  // Adds `target` more accepted reservations. 70% of inserts extend a
  // port pair's frontier (the planner's append pattern); the rest land at
  // historical times, where overlap rejections are expected and
  // mid-vector insertion is exercised. The frontier persists across
  // calls so incremental fills stay productive.
  void Fill(PortReservationTable& prt, Oracle& oracle, int target) {
    std::vector<Time>& frontier = frontier_;
    int accepted = 0;
    int attempts = 0;
    while (accepted < target && ++attempts < 40 * target) {
      const auto in = static_cast<PortId>(rng_.UniformInt(0, ports_ - 1));
      const auto out = static_cast<PortId>(rng_.UniformInt(0, ports_ - 1));
      Time start;
      if (rng_.Uniform(0, 1) < 0.7) {
        start = std::max(frontier[static_cast<std::size_t>(in)],
                         frontier[static_cast<std::size_t>(out)]) +
                rng_.Uniform(0, 0.02);
      } else {
        start = rng_.Uniform(0, 50.0);
      }
      // ε-scale jitter half the time, so boundaries land within tolerance
      // of each other instead of on a clean grid.
      if (rng_.Uniform(0, 1) < 0.5) {
        start += rng_.Uniform(-2.0, 2.0) * kTimeEps;
      }
      const Time len = rng_.Uniform(0, 1) < 0.2
                           ? rng_.Uniform(2.0, 10.0) * kTimeEps
                           : rng_.Uniform(0.005, 0.5);
      const CircuitReservation r{in, out, start, start + len, 0.0, 7};
      try {
        prt.Reserve(r);
      } catch (const CheckFailure&) {
        continue;  // overlap — expected for historical draws
      }
      oracle.Add(r);
      ++accepted;
      frontier[static_cast<std::size_t>(in)] =
          std::max(frontier[static_cast<std::size_t>(in)], r.end);
      frontier[static_cast<std::size_t>(out)] =
          std::max(frontier[static_cast<std::size_t>(out)], r.end);
    }
    ASSERT_GE(accepted, target) << "workload generator starved";
  }

  // One adversarial probe time: a reservation boundary, ±{0.5, 1, 2}ε off
  // one, or uniform over the horizon.
  Time ProbeTime(const std::vector<CircuitReservation>& all) {
    const double coin = rng_.Uniform(0, 1);
    if (coin < 0.6 && !all.empty()) {
      const auto& r =
          all[static_cast<std::size_t>(rng_.UniformInt(
              0, static_cast<int>(all.size()) - 1))];
      const Time base = rng_.Uniform(0, 1) < 0.5 ? r.start : r.end;
      static constexpr double kOffsets[] = {-2.0, -1.0, -0.5, 0.0,
                                            0.5,  1.0,  2.0};
      return base + kOffsets[rng_.UniformInt(0, 6)] * kTimeEps;
    }
    return rng_.Uniform(-1.0, 60.0);
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  PortId ports_;
  std::vector<Time> frontier_;
};

void CheckProbe(const PortReservationTable& prt, const Oracle& oracle,
                PortId in, PortId out, Time t) {
  EXPECT_EQ(prt.InputFreeAt(in, t), oracle.InputFreeAt(in, t)) << "t=" << t;
  EXPECT_EQ(prt.OutputFreeAt(out, t), oracle.OutputFreeAt(out, t))
      << "t=" << t;
  EXPECT_EQ(prt.InputBusyUntil(in, t), oracle.InputBusyUntil(in, t))
      << "t=" << t;
  EXPECT_EQ(prt.OutputBusyUntil(out, t), oracle.OutputBusyUntil(out, t))
      << "t=" << t;
  const auto got = prt.NextReservationAfter(in, out, t);
  const auto want = oracle.NextReservationAfter(in, out, t);
  EXPECT_EQ(got.start, want.start) << "t=" << t;
  EXPECT_EQ(got.release, want.release) << "t=" << t;
  EXPECT_EQ(prt.NextReservationStartAfter(in, out, t), want.start)
      << "t=" << t;
  EXPECT_EQ(prt.NextReleaseAfter(t), oracle.NextReleaseAfter(t)) << "t=" << t;
  EXPECT_EQ(prt.FirstReleaseAtOrAfter(t), oracle.FirstReleaseAtOrAfter(t))
      << "t=" << t;
  EXPECT_EQ(prt.LastReleaseBefore(t), oracle.LastReleaseBefore(t))
      << "t=" << t;
}

TEST(PrtProperty, MatchesBruteForceOracleOnAdversarialProbes) {
  constexpr PortId kPorts = 12;
  constexpr int kReservations = 12000;
  PortReservationTable prt(kPorts);
  Oracle oracle(kPorts);
  Workload workload(/*seed=*/20161212, kPorts);
  workload.Fill(prt, oracle, kReservations);
  prt.CheckInvariants();
  ASSERT_GE(prt.reservations().size(),
            static_cast<std::size_t>(kReservations));

  const auto& all = prt.reservations();
  Rng& rng = workload.rng();
  // Random probes: fresh port pair and adversarial time each round, with
  // occasional short monotone sweeps (the planner's forward pattern).
  for (int k = 0; k < 3000; ++k) {
    const auto in = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
    const auto out = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
    Time t = workload.ProbeTime(all);
    CheckProbe(prt, oracle, in, out, t);
    if (k % 5 == 0) {
      for (int step = 0; step < 4; ++step) {
        t = prt.NextReleaseAfter(t);
        if (t == kTimeInf) break;
        CheckProbe(prt, oracle, in, out, t);
      }
    }
  }
}

// The cursor must survive pathological probe sequences: strictly
// backward walks, repeats of the same instant, and alternation between
// the two ends of the horizon.
TEST(PrtProperty, CursorSurvivesBackwardAndRepeatedProbes) {
  constexpr PortId kPorts = 6;
  PortReservationTable prt(kPorts);
  Oracle oracle(kPorts);
  Workload workload(/*seed=*/7, kPorts);
  workload.Fill(prt, oracle, 2000);

  std::vector<Time> times;
  for (const auto& r : prt.reservations()) {
    times.push_back(r.start);
    times.push_back(r.end - kTimeEps);
  }
  std::sort(times.begin(), times.end());
  for (PortId p = 0; p < kPorts; ++p) {
    // Forward sweep, then strictly backward, then ping-pong.
    for (const Time t : times) CheckProbe(prt, oracle, p, p, t);
    for (auto it = times.rbegin(); it != times.rend(); ++it) {
      CheckProbe(prt, oracle, p, p, *it);
    }
    for (std::size_t k = 0; k < times.size(); k += 2) {
      CheckProbe(prt, oracle, p, p, times[k]);
      CheckProbe(prt, oracle, p, p, times[times.size() - 1 - k / 2]);
      CheckProbe(prt, oracle, p, p, times[k]);
    }
  }
}

// ---- K-plane fabric ------------------------------------------------------

// Brute-force reference for the K-plane fabric: one unordered interval
// list per (side, plane, port) answered by full scan, with the PRT's
// documented ε semantics. Release times stay global across planes — the
// planner's wakeup chain does not care which plane released a port.
class FabricOracle {
 public:
  using Side = FabricReservationTable::Side;

  FabricOracle(PortId ports, int planes)
      : ports_(ports),
        slots_{Timelines(static_cast<std::size_t>(planes) *
                         static_cast<std::size_t>(ports)),
               Timelines(static_cast<std::size_t>(planes) *
                         static_cast<std::size_t>(ports))} {}

  void Add(const CircuitReservation& r) {
    At(Side::kIn, r.plane, r.in).push_back({r.start, r.end});
    At(Side::kOut, r.plane, r.out).push_back({r.start, r.end});
    releases_.push_back(r.end);
  }

  bool FreeAt(Side side, PortId p, Time t, PlaneId plane) const {
    for (const auto& [s, e] : At(side, plane, p)) {
      if (s <= t && e > t + kTimeEps) return false;
    }
    return true;
  }

  Time BusyUntil(Side side, PortId p, Time t, PlaneId plane) const {
    for (const auto& [s, e] : At(side, plane, p)) {
      if (s <= t && e > t + kTimeEps) return e;
    }
    return t;
  }

  FabricReservationTable::NextReservation NextReservationAfter(
      PortId in, PortId out, Time t, PlaneId plane) const {
    const auto a = NextStartAfter(Side::kIn, plane, in, t);
    const auto b = NextStartAfter(Side::kOut, plane, out, t);
    if (a.start < b.start) return a;
    if (b.start < a.start) return b;
    return {a.start, std::max(a.release, b.release)};
  }

  Time NextReleaseAfter(Time t) const {
    Time best = kTimeInf;
    for (Time e : releases_)
      if (e > t + kTimeEps) best = std::min(best, e);
    return best;
  }

 private:
  using Timelines = std::vector<std::vector<std::pair<Time, Time>>>;

  const std::vector<std::pair<Time, Time>>& At(Side side, PlaneId plane,
                                               PortId p) const {
    return slots_[static_cast<std::size_t>(side)]
                 [static_cast<std::size_t>(plane) *
                      static_cast<std::size_t>(ports_) +
                  static_cast<std::size_t>(p)];
  }
  std::vector<std::pair<Time, Time>>& At(Side side, PlaneId plane, PortId p) {
    return const_cast<std::vector<std::pair<Time, Time>>&>(
        std::as_const(*this).At(side, plane, p));
  }

  FabricReservationTable::NextReservation NextStartAfter(Side side,
                                                         PlaneId plane,
                                                         PortId p,
                                                         Time t) const {
    FabricReservationTable::NextReservation best;
    for (const auto& [s, e] : At(side, plane, p)) {
      if (s > t && s < best.start) best = {s, e};
    }
    return best;
  }

  PortId ports_;
  Timelines slots_[2];
  std::vector<Time> releases_;
};

void CheckFabricProbe(const FabricReservationTable& prt,
                      const FabricOracle& oracle, PortId in, PortId out,
                      Time t, int num_planes) {
  using Side = FabricReservationTable::Side;
  for (PlaneId plane = 0; plane < num_planes; ++plane) {
    EXPECT_EQ(prt.FreeAt(Side::kIn, in, t, plane),
              oracle.FreeAt(Side::kIn, in, t, plane))
        << "t=" << t << " plane=" << plane;
    EXPECT_EQ(prt.FreeAt(Side::kOut, out, t, plane),
              oracle.FreeAt(Side::kOut, out, t, plane))
        << "t=" << t << " plane=" << plane;
    EXPECT_EQ(prt.BusyUntil(Side::kIn, in, t, plane),
              oracle.BusyUntil(Side::kIn, in, t, plane))
        << "t=" << t << " plane=" << plane;
    EXPECT_EQ(prt.BusyUntil(Side::kOut, out, t, plane),
              oracle.BusyUntil(Side::kOut, out, t, plane))
        << "t=" << t << " plane=" << plane;
    const auto got = prt.NextReservationAfter(in, out, t, plane);
    const auto want = oracle.NextReservationAfter(in, out, t, plane);
    EXPECT_EQ(got.start, want.start) << "t=" << t << " plane=" << plane;
    EXPECT_EQ(got.release, want.release) << "t=" << t << " plane=" << plane;
  }
  EXPECT_EQ(prt.NextReleaseAfter(t), oracle.NextReleaseAfter(t)) << "t=" << t;
}

// Randomized K=3 fill cross-checked against the plane-indexed oracle.
// Per-plane port frontiers keep each plane's append pattern realistic
// while planes stay mutually oblivious: the same port pair is routinely
// busy on one plane and free on another at the same instant.
TEST(PrtProperty, MultiPlaneMatchesBruteForceOracle) {
  constexpr PortId kPorts = 8;
  constexpr int kPlanes = 3;
  FabricReservationTable prt(kPorts, kPlanes);
  FabricOracle oracle(kPorts, kPlanes);
  Rng rng(20161212);
  std::vector<Time> frontier(static_cast<std::size_t>(kPlanes) * kPorts, 0.0);
  std::vector<CircuitReservation> all;
  int accepted = 0;
  int attempts = 0;
  while (accepted < 4000 && ++attempts < 200000) {
    const auto in = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
    const auto out = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
    const auto plane = static_cast<PlaneId>(rng.UniformInt(0, kPlanes - 1));
    const auto fi = static_cast<std::size_t>(plane) * kPorts;
    Time start;
    if (rng.Uniform(0, 1) < 0.7) {
      start = std::max(frontier[fi + static_cast<std::size_t>(in)],
                       frontier[fi + static_cast<std::size_t>(out)]) +
              rng.Uniform(0, 0.02);
    } else {
      start = rng.Uniform(0, 50.0);
    }
    if (rng.Uniform(0, 1) < 0.5) start += rng.Uniform(-2.0, 2.0) * kTimeEps;
    const Time len = rng.Uniform(0, 1) < 0.2
                         ? rng.Uniform(2.0, 10.0) * kTimeEps
                         : rng.Uniform(0.005, 0.5);
    const CircuitReservation r{in, out, start, start + len, 0.0, 7, plane};
    try {
      prt.Reserve(r);
    } catch (const CheckFailure&) {
      continue;  // overlap on this plane — expected for historical draws
    }
    oracle.Add(r);
    all.push_back(r);
    ++accepted;
    frontier[fi + static_cast<std::size_t>(in)] =
        std::max(frontier[fi + static_cast<std::size_t>(in)], r.end);
    frontier[fi + static_cast<std::size_t>(out)] =
        std::max(frontier[fi + static_cast<std::size_t>(out)], r.end);
  }
  ASSERT_GE(accepted, 4000) << "workload generator starved";
  prt.CheckInvariants();

  for (int k = 0; k < 1500; ++k) {
    const auto in = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
    const auto out = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
    Time t;
    if (rng.Uniform(0, 1) < 0.6) {
      const auto& r = all[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(all.size()) - 1))];
      static constexpr double kOffsets[] = {-2.0, -1.0, -0.5, 0.0,
                                            0.5,  1.0,  2.0};
      t = (rng.Uniform(0, 1) < 0.5 ? r.start : r.end) +
          kOffsets[rng.UniformInt(0, 6)] * kTimeEps;
    } else {
      t = rng.Uniform(-1.0, 60.0);
    }
    CheckFabricProbe(prt, oracle, in, out, t, kPlanes);
  }
}

// Plane-exclusivity is a property of the table itself: one (port pair,
// window) can be reserved once per plane — the K-th duplicate on a fresh
// plane is accepted, any duplicate on an occupied plane throws. Backward
// and ping-pong probe sweeps then alternate across planes so each
// (side, plane, port) cursor is advanced, invalidated and re-seated
// independently of its siblings.
TEST(PrtProperty, PlaneExclusivityAndPerPlaneCursorReseat) {
  using Side = FabricReservationTable::Side;
  constexpr PortId kPorts = 4;
  constexpr int kPlanes = 4;
  FabricReservationTable prt(kPorts, kPlanes);
  FabricOracle oracle(kPorts, kPlanes);

  // The same window lands on every plane of the same port pair.
  std::vector<Time> boundaries;
  for (int w = 0; w < 64; ++w) {
    const Time start = 0.1 * w;
    const Time end = start + 0.08;
    for (PlaneId plane = 0; plane < kPlanes; ++plane) {
      const CircuitReservation r{static_cast<PortId>(w % kPorts),
                                 static_cast<PortId>((w + 1) % kPorts),
                                 start,
                                 end,
                                 0.0,
                                 static_cast<CoflowId>(w),
                                 plane};
      prt.Reserve(r);  // must not throw: planes are independent
      oracle.Add(r);
      // Re-reserving the occupied plane must be rejected...
      EXPECT_THROW(prt.Reserve(r), CheckFailure);
      // ...and must not have half-applied: the probe state is unchanged.
      EXPECT_FALSE(prt.FreeAt(Side::kIn, r.in, start, plane));
    }
    boundaries.push_back(start);
    boundaries.push_back(end - kTimeEps);
  }
  prt.CheckInvariants();

  std::sort(boundaries.begin(), boundaries.end());
  for (PortId p = 0; p < kPorts; ++p) {
    // Forward sweep on every plane, then strictly backward, then
    // ping-pong — alternating planes at every probe so no cursor can
    // coast on a neighbouring plane's progress.
    for (const Time t : boundaries) {
      CheckFabricProbe(prt, oracle, p, p, t, kPlanes);
    }
    for (auto it = boundaries.rbegin(); it != boundaries.rend(); ++it) {
      CheckFabricProbe(prt, oracle, p, p, *it, kPlanes);
    }
    for (std::size_t k = 0; k < boundaries.size(); k += 2) {
      CheckFabricProbe(prt, oracle, p, p, boundaries[k], kPlanes);
      CheckFabricProbe(prt, oracle, p, p,
                       boundaries[boundaries.size() - 1 - k / 2], kPlanes);
    }
  }
}

// Interleaving probes with inserts re-validates the cursor adjustment on
// mid-vector insertion (slots shifting under a live cursor).
TEST(PrtProperty, ProbesInterleavedWithInserts) {
  constexpr PortId kPorts = 8;
  PortReservationTable prt(kPorts);
  Oracle oracle(kPorts);
  Workload workload(/*seed=*/99, kPorts);
  Rng& rng = workload.rng();
  for (int round = 0; round < 40; ++round) {
    workload.Fill(prt, oracle, 100);
    const auto& all = prt.reservations();
    for (int k = 0; k < 50; ++k) {
      const auto in = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
      const auto out = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
      CheckProbe(prt, oracle, in, out, workload.ProbeTime(all));
    }
  }
  prt.CheckInvariants();
}

}  // namespace
}  // namespace sunflow
