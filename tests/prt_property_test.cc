// Property test for the flat-timeline PortReservationTable: a randomized
// workload (>10k reservations) cross-checked against a brute-force O(n)
// oracle that re-derives every probe from first principles. The probe
// schedule is adversarial on two axes: times sit on and within ±2ε of
// reservation boundaries (exercising every tolerant comparison), and the
// probe sequence mixes long forward sweeps with backward jumps so the
// per-port cursor is repeatedly advanced, invalidated and re-seated.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "core/prt.h"

namespace sunflow {
namespace {

// Brute-force reference: unordered per-port interval lists plus the global
// release list, each probe answered by a full scan using the PRT's
// documented semantics (half-open intervals, ε-tolerant comparisons).
class Oracle {
 public:
  explicit Oracle(PortId num_ports)
      : in_(static_cast<std::size_t>(num_ports)),
        out_(static_cast<std::size_t>(num_ports)) {}

  void Add(const CircuitReservation& r) {
    in_[static_cast<std::size_t>(r.in)].push_back({r.start, r.end});
    out_[static_cast<std::size_t>(r.out)].push_back({r.start, r.end});
    releases_.push_back(r.end);
  }

  bool InputFreeAt(PortId i, Time t) const { return FreeAt(in_, i, t); }
  bool OutputFreeAt(PortId j, Time t) const { return FreeAt(out_, j, t); }
  Time InputBusyUntil(PortId i, Time t) const { return BusyUntil(in_, i, t); }
  Time OutputBusyUntil(PortId j, Time t) const {
    return BusyUntil(out_, j, t);
  }

  PortReservationTable::NextReservation NextReservationAfter(PortId in,
                                                             PortId out,
                                                             Time t) const {
    const auto a = NextStartAfter(in_, in, t);
    const auto b = NextStartAfter(out_, out, t);
    if (a.start < b.start) return a;
    if (b.start < a.start) return b;
    return {a.start, std::max(a.release, b.release)};
  }

  Time NextReleaseAfter(Time t) const {
    Time best = kTimeInf;
    for (Time e : releases_)
      if (e > t + kTimeEps) best = std::min(best, e);
    return best;
  }

  Time FirstReleaseAtOrAfter(Time t) const {
    Time best = kTimeInf;
    for (Time e : releases_)
      if (e >= t) best = std::min(best, e);
    return best;
  }

  Time LastReleaseBefore(Time t) const {
    Time best = -kTimeInf;
    for (Time e : releases_)
      if (e < t) best = std::max(best, e);
    return best;
  }

 private:
  using Slots = std::vector<std::vector<std::pair<Time, Time>>>;

  static bool FreeAt(const Slots& side, PortId p, Time t) {
    for (const auto& [s, e] : side[static_cast<std::size_t>(p)]) {
      if (s <= t && e > t + kTimeEps) return false;
    }
    return true;
  }

  static Time BusyUntil(const Slots& side, PortId p, Time t) {
    for (const auto& [s, e] : side[static_cast<std::size_t>(p)]) {
      if (s <= t && e > t + kTimeEps) return e;
    }
    return t;
  }

  static PortReservationTable::NextReservation NextStartAfter(
      const Slots& side, PortId p, Time t) {
    PortReservationTable::NextReservation best;
    for (const auto& [s, e] : side[static_cast<std::size_t>(p)]) {
      if (s > t && s < best.start) best = {s, e};
    }
    return best;
  }

  Slots in_;
  Slots out_;
  std::vector<Time> releases_;
};

class Workload {
 public:
  Workload(std::uint64_t seed, PortId ports)
      : rng_(seed),
        ports_(ports),
        frontier_(static_cast<std::size_t>(ports), 0.0) {}

  // Adds `target` more accepted reservations. 70% of inserts extend a
  // port pair's frontier (the planner's append pattern); the rest land at
  // historical times, where overlap rejections are expected and
  // mid-vector insertion is exercised. The frontier persists across
  // calls so incremental fills stay productive.
  void Fill(PortReservationTable& prt, Oracle& oracle, int target) {
    std::vector<Time>& frontier = frontier_;
    int accepted = 0;
    int attempts = 0;
    while (accepted < target && ++attempts < 40 * target) {
      const auto in = static_cast<PortId>(rng_.UniformInt(0, ports_ - 1));
      const auto out = static_cast<PortId>(rng_.UniformInt(0, ports_ - 1));
      Time start;
      if (rng_.Uniform(0, 1) < 0.7) {
        start = std::max(frontier[static_cast<std::size_t>(in)],
                         frontier[static_cast<std::size_t>(out)]) +
                rng_.Uniform(0, 0.02);
      } else {
        start = rng_.Uniform(0, 50.0);
      }
      // ε-scale jitter half the time, so boundaries land within tolerance
      // of each other instead of on a clean grid.
      if (rng_.Uniform(0, 1) < 0.5) {
        start += rng_.Uniform(-2.0, 2.0) * kTimeEps;
      }
      const Time len = rng_.Uniform(0, 1) < 0.2
                           ? rng_.Uniform(2.0, 10.0) * kTimeEps
                           : rng_.Uniform(0.005, 0.5);
      const CircuitReservation r{in, out, start, start + len, 0.0, 7};
      try {
        prt.Reserve(r);
      } catch (const CheckFailure&) {
        continue;  // overlap — expected for historical draws
      }
      oracle.Add(r);
      ++accepted;
      frontier[static_cast<std::size_t>(in)] =
          std::max(frontier[static_cast<std::size_t>(in)], r.end);
      frontier[static_cast<std::size_t>(out)] =
          std::max(frontier[static_cast<std::size_t>(out)], r.end);
    }
    ASSERT_GE(accepted, target) << "workload generator starved";
  }

  // One adversarial probe time: a reservation boundary, ±{0.5, 1, 2}ε off
  // one, or uniform over the horizon.
  Time ProbeTime(const std::vector<CircuitReservation>& all) {
    const double coin = rng_.Uniform(0, 1);
    if (coin < 0.6 && !all.empty()) {
      const auto& r =
          all[static_cast<std::size_t>(rng_.UniformInt(
              0, static_cast<int>(all.size()) - 1))];
      const Time base = rng_.Uniform(0, 1) < 0.5 ? r.start : r.end;
      static constexpr double kOffsets[] = {-2.0, -1.0, -0.5, 0.0,
                                            0.5,  1.0,  2.0};
      return base + kOffsets[rng_.UniformInt(0, 6)] * kTimeEps;
    }
    return rng_.Uniform(-1.0, 60.0);
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  PortId ports_;
  std::vector<Time> frontier_;
};

void CheckProbe(const PortReservationTable& prt, const Oracle& oracle,
                PortId in, PortId out, Time t) {
  EXPECT_EQ(prt.InputFreeAt(in, t), oracle.InputFreeAt(in, t)) << "t=" << t;
  EXPECT_EQ(prt.OutputFreeAt(out, t), oracle.OutputFreeAt(out, t))
      << "t=" << t;
  EXPECT_EQ(prt.InputBusyUntil(in, t), oracle.InputBusyUntil(in, t))
      << "t=" << t;
  EXPECT_EQ(prt.OutputBusyUntil(out, t), oracle.OutputBusyUntil(out, t))
      << "t=" << t;
  const auto got = prt.NextReservationAfter(in, out, t);
  const auto want = oracle.NextReservationAfter(in, out, t);
  EXPECT_EQ(got.start, want.start) << "t=" << t;
  EXPECT_EQ(got.release, want.release) << "t=" << t;
  EXPECT_EQ(prt.NextReservationStartAfter(in, out, t), want.start)
      << "t=" << t;
  EXPECT_EQ(prt.NextReleaseAfter(t), oracle.NextReleaseAfter(t)) << "t=" << t;
  EXPECT_EQ(prt.FirstReleaseAtOrAfter(t), oracle.FirstReleaseAtOrAfter(t))
      << "t=" << t;
  EXPECT_EQ(prt.LastReleaseBefore(t), oracle.LastReleaseBefore(t))
      << "t=" << t;
}

TEST(PrtProperty, MatchesBruteForceOracleOnAdversarialProbes) {
  constexpr PortId kPorts = 12;
  constexpr int kReservations = 12000;
  PortReservationTable prt(kPorts);
  Oracle oracle(kPorts);
  Workload workload(/*seed=*/20161212, kPorts);
  workload.Fill(prt, oracle, kReservations);
  prt.CheckInvariants();
  ASSERT_GE(prt.reservations().size(),
            static_cast<std::size_t>(kReservations));

  const auto& all = prt.reservations();
  Rng& rng = workload.rng();
  // Random probes: fresh port pair and adversarial time each round, with
  // occasional short monotone sweeps (the planner's forward pattern).
  for (int k = 0; k < 3000; ++k) {
    const auto in = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
    const auto out = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
    Time t = workload.ProbeTime(all);
    CheckProbe(prt, oracle, in, out, t);
    if (k % 5 == 0) {
      for (int step = 0; step < 4; ++step) {
        t = prt.NextReleaseAfter(t);
        if (t == kTimeInf) break;
        CheckProbe(prt, oracle, in, out, t);
      }
    }
  }
}

// The cursor must survive pathological probe sequences: strictly
// backward walks, repeats of the same instant, and alternation between
// the two ends of the horizon.
TEST(PrtProperty, CursorSurvivesBackwardAndRepeatedProbes) {
  constexpr PortId kPorts = 6;
  PortReservationTable prt(kPorts);
  Oracle oracle(kPorts);
  Workload workload(/*seed=*/7, kPorts);
  workload.Fill(prt, oracle, 2000);

  std::vector<Time> times;
  for (const auto& r : prt.reservations()) {
    times.push_back(r.start);
    times.push_back(r.end - kTimeEps);
  }
  std::sort(times.begin(), times.end());
  for (PortId p = 0; p < kPorts; ++p) {
    // Forward sweep, then strictly backward, then ping-pong.
    for (const Time t : times) CheckProbe(prt, oracle, p, p, t);
    for (auto it = times.rbegin(); it != times.rend(); ++it) {
      CheckProbe(prt, oracle, p, p, *it);
    }
    for (std::size_t k = 0; k < times.size(); k += 2) {
      CheckProbe(prt, oracle, p, p, times[k]);
      CheckProbe(prt, oracle, p, p, times[times.size() - 1 - k / 2]);
      CheckProbe(prt, oracle, p, p, times[k]);
    }
  }
}

// Interleaving probes with inserts re-validates the cursor adjustment on
// mid-vector insertion (slots shifting under a live cursor).
TEST(PrtProperty, ProbesInterleavedWithInserts) {
  constexpr PortId kPorts = 8;
  PortReservationTable prt(kPorts);
  Oracle oracle(kPorts);
  Workload workload(/*seed=*/99, kPorts);
  Rng& rng = workload.rng();
  for (int round = 0; round < 40; ++round) {
    workload.Fill(prt, oracle, 100);
    const auto& all = prt.reservations();
    for (int k = 0; k < 50; ++k) {
      const auto in = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
      const auto out = static_cast<PortId>(rng.UniformInt(0, kPorts - 1));
      CheckProbe(prt, oracle, in, out, workload.ProbeTime(all));
    }
  }
  prt.CheckInvariants();
}

}  // namespace
}  // namespace sunflow
